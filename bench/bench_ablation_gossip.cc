// Ablation: gossip parameters (§5.2.3) — interval, fanout and seed bias
// versus (a) membership convergence time for a late joiner's state and
// (b) message cost per node per second.

#include <memory>

#include "bench_common.h"
#include "bson/codec.h"
#include "gossip/gossiper.h"
#include "sim/network.h"

using namespace hotman;  // NOLINT

namespace {

struct GossipResult {
  double convergence_s = -1;  ///< time until all nodes saw the new state
  double msgs_per_node_s = 0;
};

GossipResult RunGossip(int nodes, int seeds, gossip::GossipConfig config,
                       std::uint64_t seed) {
  sim::EventLoop loop;
  sim::SimNetwork network(&loop, sim::NetworkConfig{}, seed);
  std::vector<std::unique_ptr<gossip::Gossiper>> gossipers;
  std::vector<std::string> seed_names;
  for (int i = 0; i < seeds; ++i) seed_names.push_back("n" + std::to_string(i));

  for (int i = 0; i < nodes; ++i) {
    const std::string name = "n" + std::to_string(i);
    auto gossiper = std::make_unique<gossip::Gossiper>(
        name, seed_names, i < seeds, &loop, config, seed + i,
        [&network, name](const std::string& to, const std::string& type,
                         bson::Document body) {
          sim::Message msg;
          msg.from = name;
          msg.to = to;
          msg.type = type;
          const std::size_t bytes = bson::EncodedSize(body);
          msg.body = std::move(body);
          network.Send(std::move(msg), bytes);
        });
    gossip::Gossiper* raw = gossiper.get();
    network.RegisterEndpoint(name, [raw](const sim::Message& msg) {
      if (msg.type == gossip::kMsgGossipSyn) {
        raw->HandleSyn(msg.from, msg.body);
      } else if (msg.type == gossip::kMsgGossipAck1) {
        raw->HandleAck1(msg.from, msg.body);
      } else if (msg.type == gossip::kMsgGossipAck2) {
        raw->HandleAck2(msg.from, msg.body);
      }
    });
    gossiper->Boot(1);
    gossiper->Start();
    gossipers.push_back(std::move(gossiper));
  }
  loop.RunFor(10 * kMicrosPerSecond);  // membership warm-up

  // Inject a fresh state at node 0 and time full propagation.
  const Micros t0 = loop.Now();
  gossipers[0]->SetLocalState("marker", "sentinel");
  const std::size_t msgs_before = network.messages_sent();
  GossipResult result;
  for (int tick = 0; tick < 600; ++tick) {
    loop.RunFor(100 * kMicrosPerMilli);
    bool everyone = true;
    for (const auto& g : gossipers) {
      const gossip::EndpointState* state = g->states().Get("n0");
      const gossip::VersionedEntry* entry =
          state != nullptr ? state->GetEntry("marker") : nullptr;
      if (entry == nullptr || entry->value != "sentinel") {
        everyone = false;
        break;
      }
    }
    if (everyone) {
      result.convergence_s =
          static_cast<double>(loop.Now() - t0) / kMicrosPerSecond;
      break;
    }
  }
  const double elapsed_s = static_cast<double>(loop.Now() - t0) / kMicrosPerSecond;
  result.msgs_per_node_s =
      static_cast<double>(network.messages_sent() - msgs_before) /
      std::max(0.1, elapsed_s) / nodes;
  return result;
}

}  // namespace

int main() {
  bench::Header("Ablation", "gossip interval / fanout / seed bias vs convergence");
  const int kNodes = 24;
  const int kSeeds = 3;
  std::printf("cluster: %d nodes, %d seeds; marker injected at n0\n\n", kNodes,
              kSeeds);

  bench::Row({"interval", "fanout", "seed bias", "converge s", "msgs/node/s"});
  const struct {
    Micros interval;
    int fanout;
    double bias;
  } sweeps[] = {
      {2 * kMicrosPerSecond, 1, 0.6}, {1 * kMicrosPerSecond, 1, 0.6},
      {500 * kMicrosPerMilli, 1, 0.6}, {1 * kMicrosPerSecond, 2, 0.6},
      {1 * kMicrosPerSecond, 3, 0.6},  {1 * kMicrosPerSecond, 1, 0.0},
      {1 * kMicrosPerSecond, 1, 0.9},
  };
  for (const auto& sweep : sweeps) {
    gossip::GossipConfig config;
    config.interval = sweep.interval;
    config.fanout = sweep.fanout;
    config.seed_bias = sweep.bias;
    GossipResult result = RunGossip(kNodes, kSeeds, config, 33);
    bench::Row({bench::Fmt(sweep.interval / 1.0e6, 1) + "s",
                std::to_string(sweep.fanout), bench::Fmt(sweep.bias, 1),
                result.convergence_s < 0 ? "never"
                                         : bench::Fmt(result.convergence_s, 1),
                bench::Fmt(result.msgs_per_node_s, 1)});
  }

  bench::Section("expected shapes");
  std::printf("- shorter interval or higher fanout converges faster but costs\n");
  std::printf("  proportionally more messages per node\n");
  std::printf("- seed bias trades uniform mixing for faster hub dissemination\n");
  return 0;
}
