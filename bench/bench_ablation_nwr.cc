// Ablation: the (N, W, R) tuning space of §5.2.2.
//
// "If the system needs high consistency, then configures N = W and R = 1.
// This relationship provides low availability. If the system needs high
// availability, configures W = 1 ..." This ablation measures, per
// configuration: write latency (time to the W-th acknowledgement), write
// availability under a crashed replica (hinted handoff and long-failure
// repair disabled to isolate the quorum arithmetic), and read-your-writes
// freshness.

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace hotman;  // NOLINT

namespace {

struct Outcome {
  double put_ms = 0;
  double healthy_success = 0;
  double crash_success = 0;
  double fresh_reads = 0;
};

Outcome RunConfig(int n, int w, int r) {
  Outcome outcome;
  // --- latency + consistency on a healthy cluster ---
  {
    cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5);
    config.replication_factor = n;
    config.write_quorum = w;
    config.read_quorum = r;
    cluster::Cluster cluster(config, /*seed=*/7);
    if (!cluster.Start().ok()) return outcome;
    const int ops = 200;
    int ok = 0, fresh = 0, answered = 0;
    double total_us = 0;
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(i);
      // Async put measured on the virtual clock for microsecond precision.
      const Micros start = cluster.loop()->Now();
      bool put_ok = false;
      cluster.AnyCoordinator()->CoordinatePut(
          key, ToBytes("v" + std::to_string(i)),
          [&put_ok, &total_us, &cluster, start](const Status& s) {
            if (s.ok()) {
              put_ok = true;
              total_us += static_cast<double>(cluster.loop()->Now() - start);
            }
          });
      cluster.RunFor(5 * kMicrosPerSecond);
      if (!put_ok) continue;
      ++ok;
      auto value = cluster.GetSync(key);
      ++answered;
      if (value.ok() && ToString(*value) == "v" + std::to_string(i)) ++fresh;
    }
    outcome.put_ms = ok > 0 ? total_us / ok / 1000.0 : 0;
    outcome.healthy_success = 100.0 * ok / ops;
    outcome.fresh_reads = answered > 0 ? 100.0 * fresh / answered : 0;
  }
  // --- write availability with one replica crashed, no handoff/repair ---
  {
    cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5);
    config.replication_factor = n;
    config.write_quorum = w;
    config.read_quorum = r;
    config.hinted_handoff = false;      // isolate the quorum arithmetic
    config.put_timeout = 200 * kMicrosPerMilli;
    // Freeze membership: the seeds must not repair around the crash.
    config.detector.dead_after = 3600 * kMicrosPerSecond;
    cluster::Cluster cluster(config, /*seed=*/7);
    if (!cluster.Start().ok()) return outcome;
    (void)cluster.CrashNode("db3:19870");
    const int ops = 100;
    int ok = 0;
    for (int i = 0; i < ops; ++i) {
      if (cluster.PutSync("c" + std::to_string(i), ToBytes("v")).ok()) ++ok;
    }
    outcome.crash_success = 100.0 * ok / ops;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::Header("Ablation", "(N,W,R) sweep: latency / availability / freshness");
  std::printf("crash column: writes succeeding with 1 node down, hinted "
              "handoff and long-failure repair OFF\n\n");
  bench::Row({"(N,W,R)", "put ms", "healthy %", "crash %", "fresh reads %"});

  const struct {
    int n, w, r;
    const char* note;
  } configs[] = {
      {3, 1, 1, "high availability (W=1)"},
      {3, 2, 1, "the paper's deployment"},
      {3, 2, 2, "R+W > N"},
      {3, 3, 1, "high consistency (N=W)"},
      {5, 3, 3, "wide quorums"},
      {5, 5, 1, "N=W at width 5"},
  };

  for (const auto& c : configs) {
    Outcome o = RunConfig(c.n, c.w, c.r);
    bench::Row({"(" + std::to_string(c.n) + "," + std::to_string(c.w) + "," +
                    std::to_string(c.r) + ")",
                bench::Fmt(o.put_ms, 3), bench::Fmt(o.healthy_success, 0),
                bench::Fmt(o.crash_success, 0), bench::Fmt(o.fresh_reads, 0)});
    std::printf("    ^ %s\n", c.note);
  }

  bench::Section("expected shapes");
  std::printf("- put latency grows with W (the W-th ack is awaited; \"the\n");
  std::printf("  Get/Put latency is decided by the slowest replication\")\n");
  std::printf("- N=W collapses toward ~%d%% under a crashed replica (keys\n", 40);
  std::printf("  whose preference list includes the dead node fail);\n");
  std::printf("  W<N stays at 100%% — the availability the paper targets\n");
  std::printf("- R+W>N keeps reads fresh even right after the write\n");
  return 0;
}
