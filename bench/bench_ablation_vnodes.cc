// Ablation: the revised virtual-node method (§5.2.1).
//
// DESIGN.md calls out virtual nodes as the fix for "the value for node or
// data may not be equal probability on the ring, especially when the number
// of nodes in the system is limited". This ablation sweeps the vnode count
// and reports (a) primary-placement balance, (b) replica balance on the
// live cluster, and (c) migration volume on node arrival.

#include <cmath>
#include <map>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "hashring/migration.h"

using namespace hotman;  // NOLINT

namespace {

double WorstSkew(const hashring::Ring& ring, int keys) {
  std::map<std::string, int> counts;
  for (int i = 0; i < keys; ++i) {
    counts[*ring.PrimaryFor("key" + std::to_string(i))]++;
  }
  const double fair = static_cast<double>(keys) / ring.NumPhysicalNodes();
  double worst = 0;
  for (const auto& [node, count] : counts) {
    worst = std::max(worst, std::abs(count - fair) / fair);
  }
  return worst;
}

}  // namespace

int main() {
  bench::Header("Ablation", "virtual-node count vs balance and migration");

  bench::Section("primary-placement skew on a 5-node ring (20k keys)");
  bench::Row({"vnodes", "worst skew", "remap on +1 node"});
  for (int vnodes : {1, 4, 16, 64, 128, 256, 512}) {
    hashring::Ring ring;
    for (int i = 0; i < 5; ++i) {
      (void)ring.AddNode("db" + std::to_string(i), vnodes);
    }
    const double skew = WorstSkew(ring, 20000);
    hashring::Ring grown = ring;
    (void)grown.AddNode("db5", vnodes);
    const double remap =
        hashring::MigratedFraction(hashring::PlanMigration(ring, grown));
    bench::Row({std::to_string(vnodes), bench::Fmt(100 * skew) + "%",
                bench::Fmt(100 * remap) + "% (ideal 16.7%)"});
  }

  bench::Section("replica balance on the live cluster (1000 records, N=3)");
  bench::Row({"vnodes", "min/node", "max/node", "stddev"});
  for (int vnodes : {4, 32, 128}) {
    cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5, 1, vnodes);
    cluster::Cluster cluster(config, /*seed=*/88);
    if (!cluster.Start().ok()) return 1;
    for (int i = 0; i < 1000; ++i) {
      (void)cluster.PutSync("rec" + std::to_string(i), ToBytes("x"));
    }
    cluster.RunFor(5 * kMicrosPerSecond);
    std::size_t min_count = SIZE_MAX, max_count = 0;
    double sum = 0, sum_sq = 0;
    for (cluster::StorageNode* node : cluster.nodes()) {
      const std::size_t count = node->store()->NumRecords();
      min_count = std::min(min_count, count);
      max_count = std::max(max_count, count);
      sum += static_cast<double>(count);
      sum_sq += static_cast<double>(count) * count;
    }
    const double mean = sum / 5.0;
    const double stddev = std::sqrt(std::max(0.0, sum_sq / 5.0 - mean * mean));
    bench::Row({std::to_string(vnodes), std::to_string(min_count),
                std::to_string(max_count), bench::Fmt(stddev)});
  }

  bench::Section("capacity weighting (\"more powerful means more virtual nodes\")");
  hashring::Ring weighted;
  (void)weighted.AddNode("big", 256);
  (void)weighted.AddNode("small", 64);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[*weighted.PrimaryFor("key" + std::to_string(i))]++;
  }
  std::printf("big(256 vnodes) : %d keys  |  small(64 vnodes) : %d keys  "
              "(expected ratio 4:1, got %.1f:1)\n",
              counts["big"], counts["small"],
              static_cast<double>(counts["big"]) / counts["small"]);
  return 0;
}
