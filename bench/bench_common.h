#ifndef HOTMAN_BENCH_BENCH_COMMON_H_
#define HOTMAN_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the paper-figure reproduction harnesses.
//
// Every harness prints (1) the experiment's paper-reported numbers, (2) the
// numbers measured on the simulated cluster, and (3) the qualitative shape
// the figure is expected to show. Absolute values differ from the paper's
// 2009-era testbed; the shapes are asserted in EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"

namespace hotman::bench {

inline void Header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
  // Benchmarks run quiet: no log noise in the measured path.
  SetLogLevel(LogLevel::kOff);
}

inline void Section(const char* text) { std::printf("\n-- %s --\n", text); }

inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace hotman::bench

#endif  // HOTMAN_BENCH_BENCH_COMMON_H_
