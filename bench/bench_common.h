#ifndef HOTMAN_BENCH_BENCH_COMMON_H_
#define HOTMAN_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the paper-figure reproduction harnesses.
//
// Every harness prints (1) the experiment's paper-reported numbers, (2) the
// numbers measured on the simulated cluster, and (3) the qualitative shape
// the figure is expected to show. Absolute values differ from the paper's
// 2009-era testbed; the shapes are asserted in EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace hotman::bench {

inline void Header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
  // Benchmarks run quiet: no log noise in the measured path.
  SetLogLevel(LogLevel::kOff);
}

inline void Section(const char* text) { std::printf("\n-- %s --\n", text); }

inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Accumulates the run's measurements and writes them as
/// BENCH_<id>.json in the working directory, so figure trajectories
/// (including latency percentiles) survive the run as machine-readable
/// artifacts. Values added via Json() must already be rendered JSON
/// (e.g. LatencyRecorder::JsonSummary() or Registry::ToJson()).
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_id) : id_(std::move(bench_id)) {}

  void Number(const std::string& name, double value, int decimals = 3) {
    fields_.emplace_back(name, Fmt(value, decimals));
  }
  void Integer(const std::string& name, long long value) {
    fields_.emplace_back(name, std::to_string(value));
  }
  void Text(const std::string& name, const std::string& value) {
    fields_.emplace_back(name, "\"" + value + "\"");
  }
  void Json(const std::string& name, const std::string& rendered) {
    fields_.emplace_back(name, rendered);
  }

  std::string Render() const {
    std::string out = "{\"bench\":\"" + id_ + "\"";
    for (const auto& [name, value] : fields_) {
      out += ",\"" + name + "\":" + value;
    }
    out += "}\n";
    return out;
  }

  /// Writes BENCH_<id>.json; prints the path (or the failure) to stdout.
  bool WriteFile() const {
    const std::string path = "BENCH_" + id_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::printf("(could not write %s)\n", path.c_str());
      return false;
    }
    const std::string body = Render();
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string id_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace hotman::bench

#endif  // HOTMAN_BENCH_BENCH_COMMON_H_
