// Fast consistent reads: dirty-set single-replica path vs. the R-quorum
// baseline (ISSUE 6; Harmonia-style, PAPERS.md).
//
// Closed-loop clients hammer a 5-server cluster whose quorums are strict
// (R+W>N, hinted handoff off — the mode where the fast path may engage).
// Sweeps replica count N in {3, 5} and write ratio in {0%, 5%, 20%}, each
// with fast_reads off (baseline) and on. Reported throughput is completed
// reads per simulated second; the speedup column is on/off at equal
// configuration. The acceptance bar is >= 1.5x at N=3 under a >= 95%-read
// workload.
//
//   bench_fast_reads [--short]    # --short: CI smoke (small sweep)

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace hotman;  // NOLINT

namespace {

struct RunResult {
  double reads_per_s = 0;   ///< completed reads per simulated second
  double fast_hit_pct = 0;  ///< % of coordinated gets served by the fast path
  double demotion_pct = 0;  ///< % of coordinated gets that demoted to quorum
  double read_fail_pct = 0;
};

/// One closed-loop client: finishes an op, flips a weighted coin, issues
/// the next. Lives outside the Cluster so Stop()'s callback flush during
/// teardown still finds it alive.
struct Driver {
  cluster::Cluster* cluster = nullptr;
  std::mt19937_64 rng;
  int keys = 0;
  double write_ratio = 0;
  long long reads_done = 0;
  long long reads_failed = 0;
  bool stop = false;

  void Next() {
    if (stop) return;
    const std::string key = "k" + std::to_string(rng() % keys);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < write_ratio) {
      cluster->Put(key, ToBytes("v" + std::to_string(rng() % 1000)),
                   [this](const Status&) { Next(); });
    } else {
      cluster->Get(key, [this](const Result<bson::Document>& value) {
        ++reads_done;
        if (!value.ok()) ++reads_failed;
        Next();
      });
    }
  }
};

RunResult RunOne(int n, double write_ratio, bool fast, bool short_mode) {
  RunResult result;
  const int kKeys = 64;
  // Enough closed-loop demand to saturate the replicas' service stations
  // (5 nodes x 8 workers / 300us base cost ~= 133k serves/s; a quorum read
  // burns N serves, a fast read one) — the regime the fast path targets.
  const int kClients = short_mode ? 64 : 128;
  const Micros kMeasure = (short_mode ? 4 : 12) * kMicrosPerSecond;

  // Drivers declared before the cluster: teardown flushes pending callbacks.
  std::vector<std::unique_ptr<Driver>> drivers;

  cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5);
  config.replication_factor = n;
  // Strict read quorums (R+W>N) so both arms serve consistent reads; the
  // fast path's claim is matching that consistency at single-replica cost.
  config.write_quorum = (n + 2) / 2;
  config.read_quorum = n + 1 - config.write_quorum;
  config.hinted_handoff = false;  // anchoring precondition (see DESIGN.md)
  config.fast_reads = fast;
  cluster::Cluster cluster(config, /*seed=*/7);
  if (!cluster.Start().ok()) return result;

  for (int i = 0; i < kKeys; ++i) {
    (void)cluster.PutSync("k" + std::to_string(i), ToBytes("seed"));
  }
  // Let the preload writes age past the quiescence window so the sweep
  // starts from clean dirty sets in both arms.
  cluster.RunFor(config.fast_read_quiescence + kMicrosPerSecond);

  for (int c = 0; c < kClients; ++c) {
    auto driver = std::make_unique<Driver>();
    driver->cluster = &cluster;
    driver->rng.seed(0x9E3779B9u + static_cast<std::uint64_t>(c));
    driver->keys = kKeys;
    driver->write_ratio = write_ratio;
    drivers.push_back(std::move(driver));
  }
  for (auto& driver : drivers) driver->Next();
  cluster.RunFor(2 * kMicrosPerSecond);  // warmup

  long long reads_before = 0;
  for (auto& driver : drivers) reads_before += driver->reads_done;
  const cluster::NodeStats stats_before = cluster.AggregateStats();

  cluster.RunFor(kMeasure);

  long long reads_after = 0, fails = 0;
  for (auto& driver : drivers) {
    reads_after += driver->reads_done;
    fails += driver->reads_failed;
    driver->stop = true;
  }
  const cluster::NodeStats stats_after = cluster.AggregateStats();
  cluster.RunFor(2 * kMicrosPerSecond);  // drain in-flight ops

  const double seconds =
      static_cast<double>(kMeasure) / static_cast<double>(kMicrosPerSecond);
  const double reads = static_cast<double>(reads_after - reads_before);
  const double gets = static_cast<double>(stats_after.gets_coordinated -
                                          stats_before.gets_coordinated);
  result.reads_per_s = reads / seconds;
  if (gets > 0) {
    result.fast_hit_pct =
        100.0 * static_cast<double>(stats_after.fast_read_hits -
                                    stats_before.fast_read_hits) / gets;
    result.demotion_pct =
        100.0 * static_cast<double>(stats_after.fast_read_demotions -
                                    stats_before.fast_read_demotions) / gets;
  }
  if (reads > 0) result.read_fail_pct = 100.0 * static_cast<double>(fails) / reads;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool short_mode = argc > 1 && std::strcmp(argv[1], "--short") == 0;

  bench::Header("fast_reads",
                "dirty-set single-replica reads vs. R-quorum baseline");
  std::printf("strict quorums (R+W>N), hinted handoff off, 64 keys, "
              "closed-loop clients\n\n");
  bench::Row({"N", "writes %", "quorum r/s", "fast r/s", "speedup",
              "fast hit %", "demote %"});

  bench::JsonWriter json("fast_reads");
  json.Text("mode", short_mode ? "short" : "full");

  const int replication[] = {3, 5};
  const double write_ratios_full[] = {0.0, 0.05, 0.20};
  const double write_ratios_short[] = {0.05};
  const double* write_ratios = short_mode ? write_ratios_short : write_ratios_full;
  const int n_ratios = short_mode ? 1 : 3;

  double speedup_n3_read_heavy = 0;
  for (int n : replication) {
    for (int i = 0; i < n_ratios; ++i) {
      const double ratio = write_ratios[i];
      const RunResult off = RunOne(n, ratio, /*fast=*/false, short_mode);
      const RunResult on = RunOne(n, ratio, /*fast=*/true, short_mode);
      const double speedup =
          off.reads_per_s > 0 ? on.reads_per_s / off.reads_per_s : 0;
      if (n == 3 && ratio <= 0.05) {
        speedup_n3_read_heavy = std::max(speedup_n3_read_heavy, speedup);
      }
      bench::Row({std::to_string(n), bench::Fmt(100 * ratio, 0),
                  bench::Fmt(off.reads_per_s, 0), bench::Fmt(on.reads_per_s, 0),
                  bench::Fmt(speedup, 2), bench::Fmt(on.fast_hit_pct, 1),
                  bench::Fmt(on.demotion_pct, 1)});
      const std::string tag =
          "n" + std::to_string(n) + "_w" + std::to_string(int(100 * ratio));
      json.Number(tag + "_quorum_reads_per_s", off.reads_per_s, 0);
      json.Number(tag + "_fast_reads_per_s", on.reads_per_s, 0);
      json.Number(tag + "_speedup", speedup, 3);
      json.Number(tag + "_fast_hit_pct", on.fast_hit_pct, 1);
      json.Number(tag + "_demotion_pct", on.demotion_pct, 1);
      json.Number(tag + "_read_fail_pct", on.read_fail_pct, 2);
    }
  }
  json.Number("speedup_n3_read_heavy", speedup_n3_read_heavy, 3);
  json.WriteFile();

  bench::Section("expected shapes");
  std::printf("- read-heavy, N=3: fast path >= 1.5x the quorum baseline\n");
  std::printf("  (one replica read instead of R=2 of 3, so less replica\n");
  std::printf("  service load per read and no straggler wait)\n");
  std::printf("- the gap widens at N=5 (R=3 fan-out vs. still one read)\n");
  std::printf("- rising write ratio dirties more keys: hit %% falls,\n");
  std::printf("  throughput converges back toward the quorum baseline\n");
  return 0;
}
