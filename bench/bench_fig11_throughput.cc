// Figure 11 (and §6.1 prose): system throughput and requests-per-second.
//
// Paper setup: 5 DB nodes + 4 cache servers (1 GB each), 700 k XML items of
// 3-600 KB (36 GB); dataset load ≈ 6 MB/s; steady-state reads ≈ 11 MB/s at
// 236 RPS under 60 000 users with 0-500 ms think time.
// Here: the same topology at laptop scale (item count is a parameter), the
// same workload law, virtual time. Shape to reproduce: read throughput and
// RPS well above the load throughput, stable under sustained load.

#include "bench_common.h"
#include "core/mystore.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

int main() {
  bench::Header("Fig. 11 / §6.1", "system throughput and RPS (MyStore)");

  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  config.cache_servers = 4;
  core::MyStore store(config);
  if (!store.Start().ok()) return 1;

  workload::Dataset dataset(workload::DatasetSpec::SystemEvaluation(2000));
  sim::EventLoop* loop = store.storage()->loop();
  std::printf("dataset: %zu XML items, %.1f MB total (paper: 700k items, 36 GB)\n",
              dataset.size(), dataset.TotalBytes() / (1024.0 * 1024.0));

  bench::Section("dataset load (write path, paced at the paper's 125 req/s)");
  workload::RunOptions load_options;
  load_options.load_rate_per_sec = 125.0;  // "the number of requests is 125/s"
  workload::WorkloadRunner loader(loop, &dataset, workload::TargetFor(&store),
                                  load_options);
  workload::RunReport load = loader.RunLoad(/*concurrency=*/32);
  bench::Row({"metric", "paper", "measured"});
  bench::Row({"load MB/s", "~6", bench::Fmt(load.meter.ThroughputMBps())});
  bench::Row({"load ok", "-", std::to_string(load.meter.ops())});

  bench::Section("steady-state reads (GET), 0-500 ms think time");
  workload::RunOptions read_options;
  read_options.clients = 300;
  read_options.duration = 25 * kMicrosPerSecond;
  read_options.read_fraction = 1.0;
  workload::WorkloadRunner reader(loop, &dataset, workload::TargetFor(&store),
                                  read_options);
  workload::RunReport reads = reader.Run();
  bench::Row({"metric", "paper", "measured"});
  bench::Row({"read MB/s", "~11", bench::Fmt(reads.meter.ThroughputMBps())});
  bench::Row({"read RPS", "236", bench::Fmt(reads.meter.Rps(), 0)});
  bench::Row({"success %", "-", bench::Fmt(100.0 * reads.SuccessRate())});
  bench::Row({"cache hit %", "-",
              bench::Fmt(100.0 * store.cache_pool()->HitRate())});

  bench::Section("steady-state writes (POST)");
  workload::RunOptions write_options = read_options;
  write_options.clients = 300;
  write_options.duration = 15 * kMicrosPerSecond;
  write_options.read_fraction = 0.0;
  write_options.seed = 9;
  workload::WorkloadRunner writer(loop, &dataset, workload::TargetFor(&store),
                                  write_options);
  workload::RunReport writes = writer.Run();
  bench::Row({"metric", "paper", "measured"});
  bench::Row({"write MB/s", "-", bench::Fmt(writes.meter.ThroughputMBps())});
  bench::Row({"write RPS", "-", bench::Fmt(writes.meter.Rps(), 0)});
  bench::Row({"success %", "-", bench::Fmt(100.0 * writes.SuccessRate())});

  bench::Section("shape check");
  std::printf("read throughput > load throughput : %s\n",
              reads.meter.ThroughputMBps() > load.meter.ThroughputMBps() ? "yes"
                                                                         : "NO");
  std::printf("read RPS > write RPS              : %s\n",
              reads.meter.Rps() > writes.meter.Rps() ? "yes" : "NO");
  return 0;
}
