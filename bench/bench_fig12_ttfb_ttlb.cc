// Figure 12: TTFB and TTLB comparison across three storage patterns —
// MyStore, the ext3-file-system baseline and the MySQL master/slave
// baseline — for three resource types (a, b, c of increasing size).
//
// Paper shape: MyStore has "a dramatic improvement on response time"; the
// wait for the server's first byte dominates each request ("receiving data
// from server is rather quick"); the gap widens with resource size.

#include <functional>

#include "bench_common.h"
#include "baselines/fs_store.h"
#include "baselines/rel_store.h"
#include "core/mystore.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

namespace {

struct Measurement {
  double ttfb_ms = 0;
  double ttlb_ms = 0;
};

/// Runs a read-only workload of one resource class against `target`.
Measurement Measure(sim::EventLoop* loop, const workload::Dataset& dataset,
                    workload::KvTarget target) {
  workload::WorkloadRunner loader(loop, &dataset, target, workload::RunOptions{});
  (void)loader.RunLoad(8);
  workload::RunOptions options;
  options.clients = 60;
  options.duration = 10 * kMicrosPerSecond;
  workload::WorkloadRunner runner(loop, &dataset, target, options);
  workload::RunReport report = runner.Run();
  Measurement m;
  m.ttfb_ms = report.ttfb.MeanMicros() / 1000.0;
  m.ttlb_ms = report.ttlb.MeanMicros() / 1000.0;
  return m;
}

workload::DatasetSpec ResourceClass(std::size_t bytes, const char* prefix) {
  workload::DatasetSpec spec;
  spec.count = 120;
  spec.min_bytes = bytes;
  spec.max_bytes = bytes + 1;
  spec.key_prefix = prefix;
  return spec;
}

}  // namespace

int main() {
  bench::Header("Fig. 12", "TTFB / TTLB: MyStore vs ext3-FS vs MySQL master/slave");

  // Resource types a/b/c: small, medium, large unstructured objects.
  const struct {
    const char* label;
    std::size_t bytes;
  } classes[] = {{"a (3 KB)", 3 * 1024}, {"b (60 KB)", 60 * 1024},
                 {"c (600 KB)", 600 * 1024}};

  bench::Row({"resource", "system", "TTFB ms", "TTLB ms"});
  double mystore_ttfb_sum = 0, fs_ttfb_sum = 0, rel_ttfb_sum = 0;
  Measurement last_fs{};

  for (const auto& cls : classes) {
    // Fresh systems per class so caches/queues don't leak across rows.
    // --- MyStore ---
    core::MyStoreConfig config;
    config.cluster = cluster::ClusterConfig::PaperSetup();
    core::MyStore store(config);
    if (!store.Start().ok()) return 1;
    workload::Dataset dataset(ResourceClass(cls.bytes, "res"));
    Measurement my = Measure(store.storage()->loop(), dataset,
                             workload::TargetFor(&store));
    bench::Row({cls.label, "MyStore", bench::Fmt(my.ttfb_ms, 2),
                bench::Fmt(my.ttlb_ms, 2)});
    mystore_ttfb_sum += my.ttfb_ms;

    // --- ext3 file system baseline ---
    sim::EventLoop fs_loop;
    baselines::FsStore fs(&fs_loop);
    Measurement fsm = Measure(&fs_loop, dataset, workload::TargetFor(&fs));
    bench::Row({"", "ext3-FS", bench::Fmt(fsm.ttfb_ms, 2),
                bench::Fmt(fsm.ttlb_ms, 2)});
    fs_ttfb_sum += fsm.ttfb_ms;
    last_fs = fsm;

    // --- MySQL master/slave baseline ---
    sim::EventLoop rel_loop;
    baselines::RelStore rel(&rel_loop);
    Measurement relm = Measure(&rel_loop, dataset, workload::TargetFor(&rel));
    bench::Row({"", "MySQL m/s", bench::Fmt(relm.ttfb_ms, 2),
                bench::Fmt(relm.ttlb_ms, 2)});
    rel_ttfb_sum += relm.ttfb_ms;
  }

  bench::Section("shape check (paper: MyStore dramatically faster; TTFB "
                 "dominates TTLB)");
  std::printf("MyStore TTFB < ext3-FS TTFB   : %s (%.2f vs %.2f ms mean)\n",
              mystore_ttfb_sum < fs_ttfb_sum ? "yes" : "NO",
              mystore_ttfb_sum / 3, fs_ttfb_sum / 3);
  std::printf("MyStore TTFB < MySQL TTFB     : %s (%.2f vs %.2f ms mean)\n",
              mystore_ttfb_sum < rel_ttfb_sum ? "yes" : "NO",
              mystore_ttfb_sum / 3, rel_ttfb_sum / 3);
  // "The waiting for response from server spends most time of a request.
  // Receiving data from server is rather quick." — visible on the
  // server-bound baseline (MyStore's cache pushes TTFB to nearly zero).
  std::printf("waiting dominates (TTFB/TTLB) : %.0f%% of the ext3 large-object "
              "response time is first-byte wait\n",
              100.0 * last_fs.ttfb_ms / last_fs.ttlb_ms);
  return 0;
}
