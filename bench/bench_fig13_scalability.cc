// Figure 13: TTFB versus the number of concurrent client processes.
//
// Paper shape: "the response time increases almost linearly with the growth
// of the amount of processes ... when it is less than 1,000. However, when
// the amount of processes is more than 1,000, the response time almost does
// not change and [is] stable around 200 ms." The plateau comes from the
// application tier's bounded admission queue: beyond capacity, extra
// requests are shed instead of queued forever.

#include "bench_common.h"
#include "core/mystore.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

int main() {
  bench::Header("Fig. 13", "TTFB vs number of client processes (MyStore)");

  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  core::MyStore store(config);
  if (!store.Start().ok()) return 1;

  workload::Dataset dataset(workload::DatasetSpec::SystemEvaluation(800));
  sim::EventLoop* loop = store.storage()->loop();

  // The application node (Nginx + spawn-fcgi tier) fronts the store; its
  // bounded queue is the saturation point.
  workload::FrontEnd front_end(loop);
  workload::KvTarget target = front_end.Wrap(workload::TargetFor(&store));

  workload::WorkloadRunner loader(loop, &dataset, target, workload::RunOptions{});
  (void)loader.RunLoad(16);

  bench::Row({"processes", "TTFB ms", "success %"});
  std::vector<std::pair<int, double>> series;
  std::string steps_json = "[";
  for (int clients : {50, 100, 200, 400, 700, 1000, 1500, 2000}) {
    workload::RunOptions options;
    options.clients = clients;
    options.duration = 8 * kMicrosPerSecond;
    options.seed = 100 + clients;
    workload::WorkloadRunner runner(loop, &dataset, target, options);
    workload::RunReport report = runner.Run();
    const double ttfb_ms = report.ttfb.MeanMicros() / 1000.0;
    series.emplace_back(clients, ttfb_ms);
    bench::Row({std::to_string(clients), bench::Fmt(ttfb_ms, 2),
                bench::Fmt(100.0 * report.SuccessRate())});
    if (steps_json.size() > 1) steps_json += ',';
    steps_json += "{\"clients\":" + std::to_string(clients) +
                  ",\"success_pct\":" + bench::Fmt(100.0 * report.SuccessRate()) +
                  ",\"ttfb\":" + report.ttfb.JsonSummary() + "}";
    store.RunFor(2 * kMicrosPerSecond);  // drain between steps
  }
  steps_json += ']';

  bench::JsonWriter json("fig13_scalability");
  json.Json("steps", steps_json);
  json.Json("cluster", store.storage()->StatsJson());
  json.WriteFile();

  bench::Section("shape check (rise, then plateau past the knee)");
  const double low = series[0].second;        // 50 procs
  const double mid = series[4].second;        // 700 procs
  const double post_knee = series[6].second;  // 1500 procs
  const double high = series.back().second;   // 2000 procs
  std::printf("TTFB grows up to the knee        : %s (%.2f -> %.2f ms)\n",
              mid > low * 1.5 ? "yes" : "NO", low, mid);
  std::printf("TTFB plateaus past the knee      : %s (%.0f -> %.0f ms, %+0.0f%%; "
              "paper: stable ~200 ms)\n",
              high < post_knee * 1.5 ? "yes" : "NO", post_knee, high,
              100.0 * (high - post_knee) / post_knee);
  return 0;
}
