// Figure 14: throughput (MB/s) and RPS versus the number of client
// processes.
//
// Paper shape: "throughput and RPS will not change a lot after the amount
// of processes reaches a certain threshold, regardless of the increment of
// request processes" — classic closed-loop saturation at the service tier's
// capacity.

#include "bench_common.h"
#include "core/mystore.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

int main() {
  bench::Header("Fig. 14", "throughput and RPS vs client processes (MyStore)");

  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  core::MyStore store(config);
  if (!store.Start().ok()) return 1;

  workload::Dataset dataset(workload::DatasetSpec::SystemEvaluation(800));
  sim::EventLoop* loop = store.storage()->loop();
  workload::FrontEnd front_end(loop);
  workload::KvTarget target = front_end.Wrap(workload::TargetFor(&store));

  workload::WorkloadRunner loader(loop, &dataset, target, workload::RunOptions{});
  (void)loader.RunLoad(16);

  bench::Row({"processes", "MB/s", "RPS"});
  std::vector<std::tuple<int, double, double>> series;
  for (int clients : {50, 100, 200, 400, 700, 1000, 1500, 2000}) {
    workload::RunOptions options;
    options.clients = clients;
    options.duration = 8 * kMicrosPerSecond;
    options.seed = 500 + clients;
    workload::WorkloadRunner runner(loop, &dataset, target, options);
    workload::RunReport report = runner.Run();
    series.emplace_back(clients, report.meter.ThroughputMBps(),
                        report.meter.Rps());
    bench::Row({std::to_string(clients),
                bench::Fmt(report.meter.ThroughputMBps()),
                bench::Fmt(report.meter.Rps(), 0)});
    store.RunFor(2 * kMicrosPerSecond);
  }

  bench::Section("shape check (near-linear rise, then plateau)");
  const double rps_small = std::get<2>(series[0]);
  const double rps_mid = std::get<2>(series[3]);      // 400
  const double rps_knee = std::get<2>(series[5]);     // 1000
  const double rps_high = std::get<2>(series.back()); // 2000
  std::printf("RPS grows before the knee        : %s (%.0f -> %.0f)\n",
              rps_mid > rps_small * 3 ? "yes" : "NO", rps_small, rps_mid);
  std::printf("RPS plateaus beyond 1000 procs   : %s (%.0f -> %.0f, %+0.0f%%)\n",
              rps_high < rps_knee * 1.3 ? "yes" : "NO", rps_knee, rps_high,
              100.0 * (rps_high - rps_knee) / rps_knee);
  return 0;
}
