// Figure 15: records per physical node after replicating the whole dataset.
//
// Paper setup: 10,000 records, N=3 => 30,000 replicas over 5 DB nodes,
// "the average replicas of each node are 6,000 ... this difference is
// negligible and acceptable" (good balancing from consistent hashing +
// virtual nodes).

#include <cmath>

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace hotman;  // NOLINT

int main() {
  bench::Header("Fig. 15", "records per node after full replication (N=3)");

  cluster::ClusterConfig config = cluster::ClusterConfig::PaperSetup();
  cluster::Cluster cluster(config, /*seed=*/15);
  if (!cluster.Start().ok()) return 1;

  const int kRecords = 10000;
  std::printf("storing %d records with (N,W,R)=(3,2,1) on 5 nodes...\n\n",
              kRecords);
  int stored = 0;
  for (int i = 0; i < kRecords; ++i) {
    // Small payloads: this experiment measures placement, not bandwidth.
    if (cluster.PutSync("record" + std::to_string(i), ToBytes("x")).ok()) {
      ++stored;
    }
  }
  // Let W..N replication finish so every record reaches all 3 replicas.
  cluster.RunFor(10 * kMicrosPerSecond);

  bench::Row({"node", "replicas", "of total", "paper"});
  std::size_t total = 0;
  std::size_t min_count = kRecords * 3, max_count = 0;
  for (cluster::StorageNode* node : cluster.nodes()) {
    const std::size_t count = node->store()->NumRecords();
    total += count;
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
    bench::Row({node->id(), std::to_string(count),
                bench::Fmt(100.0 * count / (kRecords * 3.0)) + "%", "~6000 (20%)"});
  }
  bench::Row({"TOTAL", std::to_string(total), "100%", "30000"});

  bench::Section("shape check");
  const double fair = kRecords * 3.0 / 5.0;
  const double worst_skew =
      std::max(std::abs(max_count - fair), std::abs(fair - min_count)) / fair;
  std::printf("all %d records stored            : %s\n", kRecords,
              stored == kRecords ? "yes" : "NO");
  std::printf("total replicas == 3 x records    : %s (%zu)\n",
              total == static_cast<std::size_t>(kRecords) * 3 ? "yes" : "NO",
              total);
  std::printf("worst per-node deviation         : %.1f%% of fair share "
              "(paper: 'negligible and acceptable')\n",
              100.0 * worst_skew);
  return 0;
}
