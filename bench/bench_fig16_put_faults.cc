// Figure 16: Put performance of MyStore with and without injected faults.
//
// Paper setup: storage-module dataset (files of 18-7633 KB picked by the
// Gaussian(15, 5) rule over the size-sorted dataset), (N,W,R)=(3,2,1),
// faults per Table 2. "It is obvious that the one with fault is lower than
// one with no-fault system because failure handling takes some time."

#include "bench_common.h"
#include "cluster/cluster.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

namespace {

struct Arm {
  double puts_per_sec = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t faults_injected = 0;
  std::size_t handoffs = 0;
  std::string latency_json;  ///< LatencyRecorder::JsonSummary of put latency
  std::string cluster_json;  ///< Cluster::StatsJson at end of run
};

Arm RunArm(bool with_faults, std::uint64_t seed) {
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperSetup();
  // Short per-replica timeouts: the coordinator reroutes quickly instead of
  // stalling the client (the abnormal-event process reacting fast).
  config.put_timeout = 250 * kMicrosPerMilli;
  config.get_timeout = 250 * kMicrosPerMilli;
  sim::FailureConfig faults =
      with_faults ? sim::FailureConfig{} : sim::FailureConfig::None();
  cluster::Cluster cluster(config, seed, faults);
  if (!cluster.Start().ok()) return {};

  workload::Dataset dataset(workload::DatasetSpec::StorageModuleEvaluation(400));
  workload::KvTarget target;
  target.put = [&cluster](const std::string& key, Bytes value,
                          std::function<void(const Status&)> cb) {
    cluster.Put(key, std::move(value), std::move(cb));
  };
  target.get = [&cluster](const std::string& key,
                          std::function<void(const Result<Bytes>&)> cb) {
    cluster.Get(key, [cb = std::move(cb)](const Result<bson::Document>& r) {
      if (!r.ok()) {
        cb(r.status());
      } else {
        cb(core::RecordValue(*r));
      }
    });
  };
  target.del = [&cluster](const std::string& key,
                          std::function<void(const Status&)> cb) {
    cluster.Delete(key, std::move(cb));
  };

  workload::RunOptions options;
  options.clients = 60;
  options.duration = 30 * kMicrosPerSecond;
  options.read_fraction = 0.0;        // Put-only experiment
  options.gaussian_selection = true;  // the paper's size-rank Gaussian
  options.seed = seed;
  workload::WorkloadRunner runner(cluster.loop(), &dataset, target, options);
  workload::RunReport report = runner.Run();

  Arm arm;
  arm.puts_per_sec = report.meter.Rps();
  arm.mean_ms = report.latency.MeanMicros() / 1000.0;
  arm.p99_ms = report.latency.Percentile(99) / 1000.0;
  arm.ok = report.meter.ops();
  arm.failed = report.failed;
  arm.faults_injected = cluster.injector()->stats().total();
  arm.handoffs = cluster.AggregateStats().handoff_writes;
  arm.latency_json = report.latency.JsonSummary();
  arm.cluster_json = cluster.StatsJson();
  return arm;
}

}  // namespace

int main() {
  bench::Header("Fig. 16", "Put performance with no-fault vs fault (Table 2)");
  std::printf("dataset: 18-7633 KB files, Gaussian(mu=15, sigma=5) selection\n");
  std::printf("faults per Table 2: network 0.1, disk 0.002, blocked 0.002, "
              "breakdown 0.001 per op\n\n");

  const Arm no_fault = RunArm(/*with_faults=*/false, /*seed=*/16);
  const Arm with_fault = RunArm(/*with_faults=*/true, /*seed=*/16);

  bench::Row({"metric", "no-fault", "fault"});
  bench::Row({"puts/s", bench::Fmt(no_fault.puts_per_sec, 0),
              bench::Fmt(with_fault.puts_per_sec, 0)});
  bench::Row({"mean ms", bench::Fmt(no_fault.mean_ms, 2),
              bench::Fmt(with_fault.mean_ms, 2)});
  bench::Row({"p99 ms", bench::Fmt(no_fault.p99_ms, 2),
              bench::Fmt(with_fault.p99_ms, 2)});
  bench::Row({"ok", std::to_string(no_fault.ok), std::to_string(with_fault.ok)});
  bench::Row({"failed", std::to_string(no_fault.failed),
              std::to_string(with_fault.failed)});
  bench::Row({"faults", std::to_string(no_fault.faults_injected),
              std::to_string(with_fault.faults_injected)});
  bench::Row({"handoffs", std::to_string(no_fault.handoffs),
              std::to_string(with_fault.handoffs)});

  bench::Section("shape check (fault arm lower, but still highly available)");
  std::printf("fault arm slower than no-fault   : %s (%.0f vs %.0f puts/s)\n",
              with_fault.puts_per_sec < no_fault.puts_per_sec ? "yes" : "NO",
              with_fault.puts_per_sec, no_fault.puts_per_sec);
  // Table 2's per-operation rates keep roughly one node degraded at any
  // moment at this op rate, so the throughput gap is steeper than the
  // paper's figure; the headline property is that availability holds.
  std::printf("degradation bounded (<70%%)       : %s (%.0f%%)\n",
              with_fault.puts_per_sec > no_fault.puts_per_sec * 0.3 ? "yes" : "NO",
              100.0 * (1.0 - with_fault.puts_per_sec / no_fault.puts_per_sec));
  const double success =
      100.0 * with_fault.ok / (with_fault.ok + with_fault.failed);
  std::printf("fault-arm success rate           : %.1f%% (failure handling "
              "masks nearly all faults)\n", success);

  bench::JsonWriter json("fig16_put_faults");
  json.Json("no_fault_latency", no_fault.latency_json);
  json.Json("fault_latency", with_fault.latency_json);
  json.Number("no_fault_puts_per_sec", no_fault.puts_per_sec, 1);
  json.Number("fault_puts_per_sec", with_fault.puts_per_sec, 1);
  json.Integer("fault_faults_injected",
               static_cast<long long>(with_fault.faults_injected));
  json.Integer("fault_handoffs", static_cast<long long>(with_fault.handoffs));
  json.Json("fault_cluster", with_fault.cluster_json);
  json.WriteFile();
  return 0;
}
