// Figure 17: distribution of Put completion times — MyStore with no-fault,
// MyStore with fault, and original MongoDB master/slave mode with fault.
//
// The paper sorts all 10,000 Puts by consuming time, samples every 100th,
// and plots, for each consuming time, how many operations finished within
// it. Shape: no-fault MyStore best; MyStore-with-fault close behind;
// master/slave-with-fault clearly worst (a master outage stalls every
// write until the master returns, while MyStore reroutes around the fault).

#include <functional>
#include <memory>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "docstore/master_slave.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

namespace {

constexpr int kClients = 40;
constexpr Micros kDuration = 25 * kMicrosPerSecond;

workload::RunOptions PutOptions(std::uint64_t seed) {
  workload::RunOptions options;
  options.clients = kClients;
  options.duration = kDuration;
  options.read_fraction = 0.0;
  options.gaussian_selection = true;
  options.seed = seed;
  return options;
}

/// MyStore arm: returns the sorted put consuming times.
workload::LatencyRecorder RunMyStore(bool with_faults) {
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperSetup();
  // Short per-replica timeouts: the coordinator reroutes quickly instead of
  // stalling the client (the abnormal-event process reacting fast).
  config.put_timeout = 250 * kMicrosPerMilli;
  config.get_timeout = 250 * kMicrosPerMilli;
  sim::FailureConfig faults =
      with_faults ? sim::FailureConfig{} : sim::FailureConfig::None();
  cluster::Cluster cluster(config, /*seed=*/17, faults);
  if (!cluster.Start().ok()) return {};
  workload::Dataset dataset(workload::DatasetSpec::StorageModuleEvaluation(400));
  workload::KvTarget target;
  target.put = [&cluster](const std::string& key, Bytes value,
                          std::function<void(const Status&)> cb) {
    cluster.Put(key, std::move(value), std::move(cb));
  };
  target.get = [](const std::string&, std::function<void(const Result<Bytes>&)> cb) {
    cb(Status::NotSupported(""));
  };
  target.del = [](const std::string&, std::function<void(const Status&)> cb) {
    cb(Status::NotSupported(""));
  };
  workload::WorkloadRunner runner(cluster.loop(), &dataset, target,
                                  PutOptions(17));
  return runner.Run().latency;
}

/// MongoDB master/slave arm: writes must reach the master; while the master
/// is faulted the client retries, which is exactly what produces the long
/// completion-time tail.
workload::LatencyRecorder RunMasterSlave() {
  sim::EventLoop loop;
  sim::SimNetwork network(&loop, sim::NetworkConfig{}, 170);
  sim::FailureInjector injector(&loop, &network, sim::FailureConfig{}, 171);

  std::vector<std::unique_ptr<docstore::DocStoreServer>> servers;
  std::vector<docstore::DocStoreServer*> raw;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<docstore::DocStoreServer>(
        "ms" + std::to_string(i), i + 1, loop.clock()));
    raw.push_back(servers.back().get());
    network.RegisterEndpoint(raw.back()->address(), [](const sim::Message&) {});
    injector.RegisterServer(raw.back());
  }
  docstore::MasterSlaveCluster ms(raw, "records");
  sim::ServiceStation master_station(&loop, sim::ServiceConfig{});

  workload::Dataset dataset(workload::DatasetSpec::StorageModuleEvaluation(400));
  bson::ObjectIdGenerator ids(99, loop.clock());

  workload::KvTarget target;
  target.put = [&](const std::string& key, Bytes value,
                   std::function<void(const Status&)> cb) {
    injector.MaybeInjectAnywhere();
    auto attempt = std::make_shared<std::function<void(int)>>();
    auto shared_value = std::make_shared<Bytes>(std::move(value));
    *attempt = [&, attempt, key, shared_value, cb = std::move(cb)](int tries) {
      if (tries > 40) {
        cb(Status::Unavailable("master never came back"));
        return;
      }
      if (!ms.master()->CheckAvailable().ok()) {
        // No failover for writes: wait for the master and try again.
        loop.Schedule(100 * kMicrosPerMilli,
                      [attempt, tries]() { (*attempt)(tries + 1); });
        return;
      }
      const std::size_t bytes = shared_value->size();
      master_station.Submit(bytes, [&, key, shared_value, cb, attempt,
                                    tries](Micros, Micros) {
        if (!ms.master()->CheckAvailable().ok()) {
          loop.Schedule(100 * kMicrosPerMilli,
                        [attempt, tries]() { (*attempt)(tries + 1); });
          return;
        }
        bson::Document doc = core::MakeRecord(ids.Next(), key, *shared_value,
                                              false, false, loop.Now(), "ms0");
        cb(ms.Put(doc));
      });
    };
    (*attempt)(0);
  };
  target.get = [](const std::string&, std::function<void(const Result<Bytes>&)> cb) {
    cb(Status::NotSupported(""));
  };
  target.del = [](const std::string&, std::function<void(const Status&)> cb) {
    cb(Status::OK());
  };

  workload::WorkloadRunner runner(&loop, &dataset, target, PutOptions(18));
  return runner.Run().latency;
}

}  // namespace

int main() {
  bench::Header("Fig. 17",
                "Put completion-time distribution: MyStore vs MongoDB m/s");
  std::printf("arms: MyStore no-fault | MyStore fault | MongoDB master/slave "
              "fault (Table 2)\n\n");

  workload::LatencyRecorder no_fault = RunMyStore(false);
  workload::LatencyRecorder with_fault = RunMyStore(true);
  workload::LatencyRecorder master_slave = RunMasterSlave();

  // The paper's cumulative view: operations completed within a consuming
  // time, sampled at representative thresholds.
  bench::Row({"within ms", "MyStore", "MyStore+fault", "MongoDB+fault"}, 16);
  for (Micros ms : {5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}) {
    const Micros bound = ms * kMicrosPerMilli;
    bench::Row({std::to_string(ms),
                std::to_string(no_fault.CountWithin(bound)),
                std::to_string(with_fault.CountWithin(bound)),
                std::to_string(master_slave.CountWithin(bound))},
               16);
  }
  std::printf("\ntotals: %zu / %zu / %zu puts completed\n", no_fault.count(),
              with_fault.count(), master_slave.count());
  std::printf("medians: %.1f / %.1f / %.1f ms\n",
              no_fault.Percentile(50) / 1000.0,
              with_fault.Percentile(50) / 1000.0,
              master_slave.Percentile(50) / 1000.0);
  std::printf("p99:     %.1f / %.1f / %.1f ms\n",
              no_fault.Percentile(99) / 1000.0,
              with_fault.Percentile(99) / 1000.0,
              master_slave.Percentile(99) / 1000.0);

  bench::Section("shape check (paper: no-fault best; MyStore+fault beats "
                 "MongoDB+fault)");
  const Micros probe = 200 * kMicrosPerMilli;
  const double frac_nf = static_cast<double>(no_fault.CountWithin(probe)) /
                         std::max<std::size_t>(1, no_fault.count());
  const double frac_wf = static_cast<double>(with_fault.CountWithin(probe)) /
                         std::max<std::size_t>(1, with_fault.count());
  const double frac_ms = static_cast<double>(master_slave.CountWithin(probe)) /
                         std::max<std::size_t>(1, master_slave.count());
  std::printf("within 200 ms: no-fault %.1f%% >= fault %.1f%% > m/s %.1f%% : %s\n",
              100 * frac_nf, 100 * frac_wf, 100 * frac_ms,
              (frac_nf >= frac_wf && frac_wf > frac_ms) ? "yes" : "NO");

  bench::JsonWriter json("fig17_put_cdf");
  json.Json("mystore_no_fault", no_fault.JsonSummary());
  json.Json("mystore_fault", with_fault.JsonSummary());
  json.Json("mongodb_master_slave_fault", master_slave.JsonSummary());
  json.WriteFile();
  return 0;
}
