// Microbenchmarks of the BSON layer: record encode/decode, document copy
// (O(1) binary payload sharing), matcher evaluation and update application.

#include <benchmark/benchmark.h>

#include "bson/codec.h"
#include "core/record.h"
#include "query/matcher.h"
#include "query/update.h"

namespace hotman {
namespace {

bson::Document MakeTestRecord(std::size_t payload_bytes) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  return core::MakeRecord(gen.Next(), "Resistor5", Bytes(payload_bytes, 0x42),
                          false, false, 123456, "db1:19870");
}

void BM_EncodeRecord(benchmark::State& state) {
  const bson::Document record = MakeTestRecord(state.range(0));
  for (auto _ : state) {
    std::string out;
    bson::Encode(record, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeRecord)->Arg(1024)->Arg(65536)->Arg(600 * 1024);

void BM_DecodeRecord(benchmark::State& state) {
  const std::string encoded = bson::EncodeToString(MakeTestRecord(state.range(0)));
  for (auto _ : state) {
    bson::Document doc;
    benchmark::DoNotOptimize(bson::Decode(encoded, &doc).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecodeRecord)->Arg(1024)->Arg(65536)->Arg(600 * 1024);

void BM_EncodedSize(benchmark::State& state) {
  const bson::Document record = MakeTestRecord(600 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bson::EncodedSize(record));
  }
}
BENCHMARK(BM_EncodedSize);

void BM_RecordCopy(benchmark::State& state) {
  // The payload buffer is shared, so copying a 600 KB record is O(fields).
  const bson::Document record = MakeTestRecord(600 * 1024);
  for (auto _ : state) {
    bson::Document copy = record;
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_RecordCopy);

void BM_ReplicaCopyFlagFlip(benchmark::State& state) {
  const bson::Document record = MakeTestRecord(600 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AsReplicaCopy(record));
  }
}
BENCHMARK(BM_ReplicaCopyFlagFlip);

void BM_MatcherCompile(benchmark::State& state) {
  bson::Document filter;
  bson::Document range;
  range.Append("$gte", bson::Value(std::int32_t{10}));
  range.Append("$lt", bson::Value(std::int32_t{100}));
  filter.Append("size", bson::Value(std::move(range)));
  filter.Append("kind", bson::Value("xml"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::Matcher::Compile(filter).ok());
  }
}
BENCHMARK(BM_MatcherCompile);

void BM_MatcherEvaluate(benchmark::State& state) {
  bson::Document filter;
  bson::Document range;
  range.Append("$gte", bson::Value(std::int32_t{10}));
  range.Append("$lt", bson::Value(std::int32_t{100}));
  filter.Append("size", bson::Value(std::move(range)));
  auto matcher = query::Matcher::Compile(filter);
  bson::Document doc;
  doc.Append("size", bson::Value(std::int32_t{42}));
  doc.Append("kind", bson::Value("xml"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher->Matches(doc));
  }
}
BENCHMARK(BM_MatcherEvaluate);

void BM_ApplyUpdateSet(benchmark::State& state) {
  bson::Document update;
  bson::Document fields;
  fields.Append("views", bson::Value(std::int32_t{1}));
  update.Append("$inc", bson::Value(std::move(fields)));
  bson::Document doc;
  doc.Append("views", bson::Value(std::int32_t{0}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::ApplyUpdate(update, &doc).ok());
  }
}
BENCHMARK(BM_ApplyUpdateSet);

void BM_LwwCompare(benchmark::State& state) {
  const bson::Document a = MakeTestRecord(1024);
  const bson::Document b = MakeTestRecord(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SupersedesLww(a, b));
  }
}
BENCHMARK(BM_LwwCompare);

}  // namespace
}  // namespace hotman
