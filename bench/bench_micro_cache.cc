// Microbenchmarks of the cache tier: LRU hit/miss/eviction paths and the
// key-hash balancing of the cache pool.

#include <benchmark/benchmark.h>

#include "cache/cache_pool.h"

namespace hotman::cache {
namespace {

void BM_CacheHit(benchmark::State& state) {
  LruCache cache(64 << 20);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), Bytes(1024, 'x'));
  }
  Bytes out;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("key" + std::to_string(i++ % 1000), &out));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMiss(benchmark::State& state) {
  LruCache cache(64 << 20);
  Bytes out;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("absent" + std::to_string(i++), &out));
  }
}
BENCHMARK(BM_CacheMiss);

void BM_CachePutFresh(benchmark::State& state) {
  LruCache cache(std::size_t{4} << 30);
  int i = 0;
  const Bytes value(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Put("key" + std::to_string(i++), value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CachePutFresh)->Arg(1024)->Arg(65536);

void BM_CachePutWithEviction(benchmark::State& state) {
  // Cache deliberately small: every insert evicts (steady-state age-out).
  LruCache cache(256 * 1024);
  int i = 0;
  const Bytes value(16 * 1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Put("key" + std::to_string(i++), value));
  }
}
BENCHMARK(BM_CachePutWithEviction);

void BM_PoolRouting(benchmark::State& state) {
  CachePool pool(4, 1 << 20);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ServerFor("key" + std::to_string(i++ % 1000)));
  }
}
BENCHMARK(BM_PoolRouting);

void BM_PoolGetThroughRouting(benchmark::State& state) {
  CachePool pool(4, 64 << 20);
  for (int i = 0; i < 1000; ++i) {
    pool.Put("key" + std::to_string(i), Bytes(1024, 'x'));
  }
  Bytes out;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Get("key" + std::to_string(i++ % 1000), &out));
  }
}
BENCHMARK(BM_PoolGetThroughRouting);

}  // namespace
}  // namespace hotman::cache
