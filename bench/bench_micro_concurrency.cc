// Read-path concurrency scaling: docstore shared-lock reads and the sharded
// cache against single-exclusive-lock baselines, at 1/2/4/8 threads.
//
// A plain binary (not google-benchmark) because it owns its thread pools and
// emits BENCH_micro_concurrency.json via bench_common.h like the figure
// harnesses. `--short` shrinks the measured window for CI smoke runs.
//
// Scaling above 1 is only physically possible with multiple cores; the
// `cores` field records what the run actually had. On a single-core host
// every multi-threaded arm degenerates to ~1x (plus scheduling overhead).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cache/lru_cache.h"
#include "cache/sharded_lru_cache.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "docstore/collection.h"
#include "net/sharded_executor.h"

namespace hotman {
namespace {

using bson::Document;
using bson::Value;

constexpr int kDocs = 4096;
constexpr int kCacheKeys = 4096;
constexpr std::size_t kPayloadBytes = 512;
const int kThreadCounts[] = {1, 2, 4, 8};

std::string DocId(int i) { return "doc" + std::to_string(i); }

/// A record-shaped document: a dozen short fields plus a binary payload,
/// so per-read copy work (the thing shared Binary payloads make O(1))
/// dominates the lock handshake itself.
Document MakeDoc(int i) {
  Document doc;
  doc.Append("_id", Value(DocId(i)));
  doc.Append("app", Value("hotman"));
  doc.Append("kind", Value("k" + std::to_string(i % 20)));
  doc.Append("owner", Value("user" + std::to_string(i % 97)));
  doc.Append("region", Value("dc" + std::to_string(i % 4)));
  doc.Append("state", Value("live"));
  doc.Append("rev", Value(std::int32_t{1}));
  doc.Append("size", Value(std::int32_t{i}));
  doc.Append("flags", Value(std::int32_t{0}));
  doc.Append("score", Value(static_cast<double>(i) * 0.5));
  doc.Append("tag", Value("t" + std::to_string(i % 13)));
  doc.Append("note", Value("benchmark fixture row"));
  doc.Append("value", Value(bson::Binary(Bytes(kPayloadBytes, 'x'))));
  return doc;
}

std::unique_ptr<docstore::Collection> PopulatedCollection(
    bson::ObjectIdGenerator* gen) {
  auto collection = std::make_unique<docstore::Collection>("bench", gen);
  for (int i = 0; i < kDocs; ++i) {
    collection->Insert(MakeDoc(i)).ok();
  }
  return collection;
}

/// Runs `op(thread_id, iteration)` on `threads` threads for `window` and
/// returns aggregate operations per second. Threads start together (spin
/// barrier) and the window is measured around the running phase only.
template <typename Op>
double MeasureOpsPerSec(int threads, std::chrono::milliseconds window,
                        const Op& op) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        op(t, n);
        ++n;
      }
      counts[static_cast<std::size_t>(t)] = n;
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
}

// --- shard-per-core reactors ------------------------------------------------

struct ShardedReadResult {
  double ops_per_sec = 0.0;
  std::uint64_t cross_posts = 0;
};

/// Reads through a shard-per-core runtime: `shards` reactor threads, each
/// owning a disjoint partition of the keyspace, each running
/// `chains_per_shard` self-rescheduling read chains entirely inside its own
/// shard context (the steady state of a node where every keyed request was
/// routed home). shards=1 is the "before" arm: the whole keyspace behind
/// one reactor.
ShardedReadResult MeasureShardedReads(int shards, int chains_per_shard,
                                      std::chrono::milliseconds window,
                                      bson::ObjectIdGenerator* gen) {
  // Shard s owns global docs {s, s+S, s+2S, ...}: trivially balanced.
  std::vector<std::unique_ptr<docstore::Collection>> parts;
  std::vector<int> part_docs(static_cast<std::size_t>(shards), 0);
  parts.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    parts.push_back(std::make_unique<docstore::Collection>(
        "bench_s" + std::to_string(s), gen));
  }
  for (int i = 0; i < kDocs; ++i) {
    parts[static_cast<std::size_t>(i % shards)]->Insert(MakeDoc(i)).ok();
    ++part_docs[static_cast<std::size_t>(i % shards)];
  }

  net::ShardedExecutorConfig cfg;
  cfg.shards = shards;
  cfg.threaded = true;
  net::ShardedExecutor sharded(static_cast<net::Executor*>(nullptr), cfg);
  if (!sharded.Launch().ok()) return {};

  std::atomic<bool> stop{false};
  std::vector<std::atomic<std::uint64_t>> counts(
      static_cast<std::size_t>(shards));
  for (auto& c : counts) c.store(0);

  for (int s = 0; s < shards; ++s) {
    for (int chain = 0; chain < chains_per_shard; ++chain) {
      auto body = std::make_shared<std::function<void()>>();
      auto rng = std::make_shared<std::uint64_t>(
          0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                      s * chains_per_shard + chain + 1));
      *body = [&sharded, &stop, &counts, &parts, &part_docs, s, body, rng] {
        if (stop.load(std::memory_order_relaxed)) return;
        *rng = *rng * 6364136223846793005ull + 1442695040888963407ull;
        const int local = static_cast<int>(
            (*rng >> 33) % static_cast<std::uint64_t>(
                               part_docs[static_cast<std::size_t>(s)]));
        const int shard_count = static_cast<int>(parts.size());
        parts[static_cast<std::size_t>(s)]
            ->FindById(Value(DocId(s + local * shard_count)))
            .ok();
        counts[static_cast<std::size_t>(s)].fetch_add(
            1, std::memory_order_relaxed);
        // Zero-delay reschedule instead of recursion: a same-shard Post
        // would run inline and overflow the stack.
        sharded.executor(s)->ScheduleTimer(0, *body);
      };
      sharded.Post(s, [body] { (*body)(); });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  const auto end = std::chrono::steady_clock::now();
  sharded.Shutdown();

  std::uint64_t total = 0;
  for (auto& c : counts) total += c.load();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  ShardedReadResult result;
  result.ops_per_sec = seconds > 0 ? static_cast<double>(total) / seconds : 0;
  result.cross_posts = sharded.cross_posts();
  return result;
}

/// Round-trip rate of the SPSC mailbox path: one message ping-ponging
/// between two reactors, each leg a cross-shard Post. The inverse is the
/// per-hop latency a mis-routed keyed frame pays.
double MeasureCrossShardHops(std::chrono::milliseconds window) {
  net::ShardedExecutorConfig cfg;
  cfg.shards = 2;
  cfg.threaded = true;
  net::ShardedExecutor sharded(static_cast<net::Executor*>(nullptr), cfg);
  if (!sharded.Launch().ok()) return 0.0;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hops{0};
  auto step = std::make_shared<std::function<void(int)>>();
  *step = [&sharded, &stop, &hops, step](int me) {
    if (stop.load(std::memory_order_relaxed)) return;
    hops.fetch_add(1, std::memory_order_relaxed);
    sharded.Post(1 - me, [step, me] { (*step)(1 - me); });
  };
  sharded.Post(0, [step] { (*step)(0); });

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  const auto end = std::chrono::steady_clock::now();
  sharded.Shutdown();

  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  return seconds > 0 ? static_cast<double>(hops.load()) / seconds : 0.0;
}

}  // namespace
}  // namespace hotman

int main(int argc, char** argv) {
  using namespace hotman;  // NOLINT(google-build-using-namespace)

  bool short_mode = false;
  int shards = 4;
  bool shards_explicit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      shards_explicit = true;
    }
  }
  if (shards < 1 || shards > 64) {
    std::fprintf(stderr, "--shards must be in [1, 64]\n");
    return 2;
  }
  const std::chrono::milliseconds window(short_mode ? 60 : 400);
  const unsigned cores = std::thread::hardware_concurrency();

  // An explicit --shards=N run writes its own artifact
  // (BENCH_micro_concurrency_shards<N>.json) so CI can upload several arms
  // side by side; the default run keeps the canonical id.
  const std::string json_id =
      shards_explicit ? "micro_concurrency_shards" + std::to_string(shards)
                      : "micro_concurrency";

  bench::Header("micro_concurrency",
                "read-path scaling: shared locks, sharded cache and "
                "shard-per-core reactors vs single-lock baselines");
  std::printf("cores=%u window=%lldms shards=%d%s\n", cores,
              static_cast<long long>(window.count()), shards,
              short_mode ? " (short mode)" : "");

  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  auto collection = PopulatedCollection(&gen);
  // Models the pre-shared-lock engine: every operation serialized behind
  // one exclusive mutex (the collection's internal lock contributes the
  // same handshake in both arms, so the delta isolates reader sharing).
  Mutex serial_mu;

  bench::JsonWriter json(json_id);
  json.Integer("cores", cores);
  json.Integer("shards", shards);
  json.Integer("docs", kDocs);
  json.Integer("payload_bytes", static_cast<long long>(kPayloadBytes));
  json.Text("mode", short_mode ? "short" : "full");

  const auto read_op = [&](int t, std::uint64_t n) {
    const int i = static_cast<int>((n * 17 + static_cast<std::uint64_t>(t) * 131) % kDocs);
    collection->FindById(Value(DocId(i))).ok();
  };
  const auto read_op_exclusive = [&](int t, std::uint64_t n) {
    MutexLock lock(&serial_mu);
    read_op(t, n);
  };
  // 95/5 read/write over the same keyspace.
  const auto mixed_op = [&](int t, std::uint64_t n) {
    const int i = static_cast<int>((n * 17 + static_cast<std::uint64_t>(t) * 131) % kDocs);
    if (n % 20 == 19) {
      collection->PutDocument(MakeDoc(i)).ok();
    } else {
      collection->FindById(Value(DocId(i))).ok();
    }
  };
  const auto mixed_op_exclusive = [&](int t, std::uint64_t n) {
    MutexLock lock(&serial_mu);
    mixed_op(t, n);
  };

  bench::Section("docstore read-only: FindById ops/sec");
  bench::Row({"threads", "exclusive", "shared", "shared/excl"});
  double read_shared_1t = 0, read_shared_4t = 0;
  for (int threads : kThreadCounts) {
    const double excl = MeasureOpsPerSec(threads, window, read_op_exclusive);
    const double shared = MeasureOpsPerSec(threads, window, read_op);
    if (threads == 1) read_shared_1t = shared;
    if (threads == 4) read_shared_4t = shared;
    json.Number("read_exclusive_" + std::to_string(threads) + "t_ops_per_sec",
                excl, 0);
    json.Number("read_shared_" + std::to_string(threads) + "t_ops_per_sec",
                shared, 0);
    bench::Row({std::to_string(threads), bench::Fmt(excl, 0),
                bench::Fmt(shared, 0), bench::Fmt(shared / excl, 2) + "x"});
  }
  const double read_speedup_4t =
      read_shared_1t > 0 ? read_shared_4t / read_shared_1t : 0.0;
  json.Number("read_shared_speedup_4t", read_speedup_4t, 2);
  std::printf("read-only shared-lock speedup at 4 threads vs 1: %.2fx\n",
              read_speedup_4t);

  bench::Section("docstore mixed 95/5 read/write: ops/sec");
  bench::Row({"threads", "exclusive", "shared", "shared/excl"});
  double mixed_shared_1t = 0, mixed_exclusive_1t = 0;
  for (int threads : kThreadCounts) {
    const double excl = MeasureOpsPerSec(threads, window, mixed_op_exclusive);
    const double shared = MeasureOpsPerSec(threads, window, mixed_op);
    if (threads == 1) {
      mixed_exclusive_1t = excl;
      mixed_shared_1t = shared;
    }
    json.Number("mixed_exclusive_" + std::to_string(threads) + "t_ops_per_sec",
                excl, 0);
    json.Number("mixed_shared_" + std::to_string(threads) + "t_ops_per_sec",
                shared, 0);
    bench::Row({std::to_string(threads), bench::Fmt(excl, 0),
                bench::Fmt(shared, 0), bench::Fmt(shared / excl, 2) + "x"});
  }
  const double mixed_regression_pct =
      mixed_exclusive_1t > 0
          ? (mixed_exclusive_1t - mixed_shared_1t) / mixed_exclusive_1t * 100.0
          : 0.0;
  json.Number("mixed_single_thread_regression_pct", mixed_regression_pct, 2);
  std::printf(
      "mixed 95/5 single-thread regression (shared vs exclusive): %.2f%%\n",
      mixed_regression_pct);

  bench::Section("cache hit path: single-locked Get vs sharded GetShared");
  cache::LruCache single_cache(64 << 20);
  Mutex cache_mu;
  cache::ShardedLruCache sharded_cache(64 << 20);
  for (int i = 0; i < kCacheKeys; ++i) {
    single_cache.Put("key" + std::to_string(i), Bytes(4096, 'x'));
    sharded_cache.Put("key" + std::to_string(i), Bytes(4096, 'x'));
  }
  const auto cache_single_op = [&](int t, std::uint64_t n) {
    const int i = static_cast<int>((n * 13 + static_cast<std::uint64_t>(t) * 71) % kCacheKeys);
    Bytes out;
    MutexLock lock(&cache_mu);
    single_cache.Get("key" + std::to_string(i), &out);
  };
  const auto cache_sharded_op = [&](int t, std::uint64_t n) {
    const int i = static_cast<int>((n * 13 + static_cast<std::uint64_t>(t) * 71) % kCacheKeys);
    std::shared_ptr<const Bytes> out;
    sharded_cache.GetShared("key" + std::to_string(i), &out);
  };
  bench::Row({"threads", "single", "sharded", "sharded/single"});
  double cache_sharded_1t = 0, cache_sharded_4t = 0;
  for (int threads : kThreadCounts) {
    const double single = MeasureOpsPerSec(threads, window, cache_single_op);
    const double sharded = MeasureOpsPerSec(threads, window, cache_sharded_op);
    if (threads == 1) cache_sharded_1t = sharded;
    if (threads == 4) cache_sharded_4t = sharded;
    json.Number("cache_single_" + std::to_string(threads) + "t_ops_per_sec",
                single, 0);
    json.Number("cache_sharded_" + std::to_string(threads) + "t_ops_per_sec",
                sharded, 0);
    bench::Row({std::to_string(threads), bench::Fmt(single, 0),
                bench::Fmt(sharded, 0), bench::Fmt(sharded / single, 2) + "x"});
  }
  json.Number("cache_sharded_speedup_4t",
              cache_sharded_1t > 0 ? cache_sharded_4t / cache_sharded_1t : 0.0,
              2);

  bench::Section("shard-per-core reactors: partitioned reads ops/sec");
  // Before/after rows: the whole keyspace behind one reactor vs split
  // across `shards` reactors, same total read chains either way.
  constexpr int kTotalChains = 8;
  const int chains_per_shard = std::max(1, kTotalChains / shards);
  const ShardedReadResult before =
      MeasureShardedReads(1, kTotalChains, window, &gen);
  const ShardedReadResult after =
      MeasureShardedReads(shards, chains_per_shard, window, &gen);
  const double shard_speedup =
      before.ops_per_sec > 0 ? after.ops_per_sec / before.ops_per_sec : 0.0;
  bench::Row({"shards", "ops/sec", "vs 1 shard"});
  bench::Row({"1", bench::Fmt(before.ops_per_sec, 0), "1.00x"});
  bench::Row({std::to_string(shards), bench::Fmt(after.ops_per_sec, 0),
              bench::Fmt(shard_speedup, 2) + "x"});
  const double hops_per_sec = MeasureCrossShardHops(window);
  std::printf("cross-shard mailbox round trips: %s hops/sec (%.0f ns/hop)\n",
              bench::Fmt(hops_per_sec, 0).c_str(),
              hops_per_sec > 0 ? 1e9 / hops_per_sec : 0.0);
  if (cores < static_cast<unsigned>(shards)) {
    std::printf(
        "NOTE: %d shards on %u core(s): reactor threads time-share, so the "
        "speedup reflects scheduling overhead, not shard-per-core scaling.\n",
        shards, cores);
  }
  json.Number("sharded_read_1shard_ops_per_sec", before.ops_per_sec, 0);
  json.Number("sharded_read_" + std::to_string(shards) + "shard_ops_per_sec",
              after.ops_per_sec, 0);
  json.Number("sharded_read_speedup_" + std::to_string(shards) + "shard",
              shard_speedup, 2);
  json.Number("cross_shard_hops_per_sec", hops_per_sec, 0);

  std::printf("\n");
  json.WriteFile();
  return 0;
}
