// Microbenchmarks of the embedded document engine: inserts, point reads,
// filtered queries with and without a secondary index, and updates.

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "docstore/collection.h"

namespace hotman::docstore {
namespace {

using bson::Document;
using bson::Value;

std::unique_ptr<Collection> Populated(int docs, bool with_index,
                                      bson::ObjectIdGenerator* gen) {
  auto collection = std::make_unique<Collection>("bench", gen);
  if (with_index) {
    benchmark::DoNotOptimize(
        collection->CreateIndex(IndexSpec{"kind", false}).ok());
  }
  for (int i = 0; i < docs; ++i) {
    Document doc;
    doc.Append("_id", Value("doc" + std::to_string(i)));
    doc.Append("kind", Value("k" + std::to_string(i % 20)));
    doc.Append("size", Value(std::int32_t{i}));
    benchmark::DoNotOptimize(collection->Insert(std::move(doc)).ok());
  }
  return collection;
}

void BM_Insert(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  Collection collection("bench", &gen);
  int i = 0;
  for (auto _ : state) {
    Document doc;
    doc.Append("kind", Value("k" + std::to_string(i % 20)));
    doc.Append("size", Value(std::int32_t{i++}));
    benchmark::DoNotOptimize(collection.Insert(std::move(doc)).ok());
  }
}
BENCHMARK(BM_Insert);

void BM_FindById(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  auto collection = Populated(10000, false, &gen);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        collection->FindById(Value("doc" + std::to_string(i++ % 10000))).ok());
  }
}
BENCHMARK(BM_FindById);

void BM_FilteredFind(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  const bool with_index = state.range(0) != 0;
  auto collection = Populated(10000, with_index, &gen);
  Document filter;
  filter.Append("kind", Value("k7"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(collection->Find(filter).ok());
  }
  state.SetLabel(with_index ? "INDEX(kind)" : "SCAN");
}
BENCHMARK(BM_FilteredFind)->Arg(0)->Arg(1);

void BM_RangeQueryIndexed(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  auto collection = Populated(10000, false, &gen);
  benchmark::DoNotOptimize(collection->CreateIndex(IndexSpec{"size", false}).ok());
  Document filter;
  Document range;
  range.Append("$gte", Value(std::int32_t{5000}));
  range.Append("$lt", Value(std::int32_t{5100}));
  filter.Append("size", Value(std::move(range)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(collection->Find(filter).ok());
  }
}
BENCHMARK(BM_RangeQueryIndexed);

void BM_UpdateById(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  auto collection = Populated(10000, false, &gen);
  Document update;
  Document inc;
  inc.Append("size", Value(std::int32_t{1}));
  update.Append("$inc", Value(std::move(inc)));
  int i = 0;
  for (auto _ : state) {
    Document filter;
    filter.Append("_id", Value("doc" + std::to_string(i++ % 10000)));
    benchmark::DoNotOptimize(collection->Update(filter, update).ok());
  }
}
BENCHMARK(BM_UpdateById);

void BM_PutDocumentUpsert(benchmark::State& state) {
  ManualClock clock(0);
  bson::ObjectIdGenerator gen(1, &clock);
  auto collection = Populated(10000, false, &gen);
  int i = 0;
  for (auto _ : state) {
    Document doc;
    doc.Append("_id", Value("doc" + std::to_string(i++ % 10000)));
    doc.Append("kind", Value("replaced"));
    benchmark::DoNotOptimize(collection->PutDocument(std::move(doc)).ok());
  }
}
BENCHMARK(BM_PutDocumentUpsert);

}  // namespace
}  // namespace hotman::docstore
