// Microbenchmarks of the from-scratch MD5 (the hash behind both consistent
// hashing and the REST URI signatures).

#include <string>

#include <benchmark/benchmark.h>

#include "hashring/md5.h"
#include "rest/signature.h"

namespace hotman {
namespace {

void BM_Md5Small(benchmark::State& state) {
  const std::string input(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashring::Md5::Hash(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Small)->Arg(16)->Arg(64)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Md5HexDigest(benchmark::State& state) {
  const std::string input = "token-4ee44627/data/Resistor5-secretkey";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashring::Md5::HexDigest(input));
  }
}
BENCHMARK(BM_Md5HexDigest);

void BM_Md5Incremental(benchmark::State& state) {
  const std::string chunk(1024, 'y');
  for (auto _ : state) {
    hashring::Md5 md5;
    for (int i = 0; i < 64; ++i) md5.Update(chunk);
    benchmark::DoNotOptimize(md5.Finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          1024);
}
BENCHMARK(BM_Md5Incremental);

void BM_UriSignature(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rest::ComputeSignature("tok123", "/data/Resistor5", "secret-key"));
  }
}
BENCHMARK(BM_UriSignature);

void BM_SignedUriVerify(benchmark::State& state) {
  const std::string signature =
      rest::ComputeSignature("tok123", "/data/Resistor5", "secret-key");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rest::VerifySignature("tok123", "/data/Resistor5", "secret-key",
                              signature));
  }
}
BENCHMARK(BM_SignedUriVerify);

}  // namespace
}  // namespace hotman
