// Microbenchmarks of the consistent-hash ring: key placement, preference
// lists, ring construction, and the Eq. (1) vs Eq. (2) remap contrast that
// motivates consistent hashing in the first place.

#include <benchmark/benchmark.h>

#include "hashring/ketama.h"
#include "hashring/migration.h"
#include "hashring/ring.h"

namespace hotman::hashring {
namespace {

Ring MakeRing(int nodes, int vnodes) {
  Ring ring;
  for (int i = 0; i < nodes; ++i) {
    benchmark::DoNotOptimize(ring.AddNode("db" + std::to_string(i), vnodes).ok());
  }
  return ring;
}

void BM_KetamaHash(benchmark::State& state) {
  std::string key = "Resistor5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(KetamaHash(key));
  }
}
BENCHMARK(BM_KetamaHash);

void BM_PrimaryLookup(benchmark::State& state) {
  Ring ring = MakeRing(static_cast<int>(state.range(0)), 128);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.PrimaryFor("key" + std::to_string(i++ % 1000)));
  }
}
BENCHMARK(BM_PrimaryLookup)->Arg(5)->Arg(20)->Arg(100);

void BM_PreferenceList(benchmark::State& state) {
  Ring ring = MakeRing(static_cast<int>(state.range(0)), 128);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.PreferenceList("key" + std::to_string(i++ % 1000), 3));
  }
}
BENCHMARK(BM_PreferenceList)->Arg(5)->Arg(20)->Arg(100);

void BM_RingConstruction(benchmark::State& state) {
  const int vnodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Ring ring = MakeRing(5, vnodes);
    benchmark::DoNotOptimize(ring.NumVirtualNodes());
  }
}
BENCHMARK(BM_RingConstruction)->Arg(16)->Arg(128)->Arg(512);

void BM_AddNodeToLiveRing(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Ring ring = MakeRing(5, 128);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ring.AddNode("fresh", 128).ok());
  }
}
BENCHMARK(BM_AddNodeToLiveRing);

void BM_MigrationPlan(benchmark::State& state) {
  Ring before = MakeRing(static_cast<int>(state.range(0)), 128);
  Ring after = MakeRing(static_cast<int>(state.range(0)), 128);
  benchmark::DoNotOptimize(after.AddNode("fresh", 128).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanMigration(before, after));
  }
}
BENCHMARK(BM_MigrationPlan)->Arg(5)->Arg(20);

void BM_ModNPlacementBaseline(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModNPlacement("key" + std::to_string(i++ % 1000), 5));
  }
}
BENCHMARK(BM_ModNPlacementBaseline);

/// Not a timing benchmark: reports the remap fraction as counters so the
/// Eq. (1)-vs-Eq. (2) contrast shows up in the benchmark output.
void BM_RemapFractionOnNodeAdd(benchmark::State& state) {
  Ring before = MakeRing(5, 128);
  Ring after = MakeRing(5, 128);
  benchmark::DoNotOptimize(after.AddNode("db5", 128).ok());
  double ring_fraction = 0;
  int modn_moved = 0;
  const int keys = 2000;
  for (auto _ : state) {
    ring_fraction = MigratedFraction(PlanMigration(before, after));
    modn_moved = 0;
    for (int i = 0; i < keys; ++i) {
      const std::string key = "key" + std::to_string(i);
      if (ModNPlacement(key, 5) != ModNPlacement(key, 6)) ++modn_moved;
    }
  }
  state.counters["consistent_remap_%"] = 100.0 * ring_fraction;
  state.counters["modN_remap_%"] = 100.0 * modn_moved / keys;
}
BENCHMARK(BM_RemapFractionOnNodeAdd)->Iterations(1);

}  // namespace
}  // namespace hotman::hashring
