// bench_rebalance: foreground latency under a live join, across throttle
// settings.
//
// A five-node paper-setup cluster serves a mixed workload; eight seconds
// in, a sixth node joins and the rebalancer streams its arcs over. The
// throttle's whole purpose is to keep foreground p99 bounded while that
// stream runs, so the arms are: no join (baseline), join with the default
// throttle, join with a tight throttle, and join unthrottled. The shape to
// expect: every join arm moves the same records, throttled arms hug the
// baseline p99, and the tight throttle is the one that stalls sends.

#include "bench_common.h"
#include "cluster/cluster.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT

namespace {

struct Arm {
  std::string name;
  double ops_per_sec = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  std::size_t failed = 0;
  std::uint64_t records_streamed = 0;
  std::uint64_t throttle_stalls = 0;
  std::uint64_t transfers_completed = 0;
  std::string latency_json;
};

Arm RunArm(const std::string& name, bool join, int records_per_sec,
           std::uint64_t seed) {
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperSetup();
  config.rebalance.records_per_sec = records_per_sec;
  cluster::Cluster cluster(config, seed, sim::FailureConfig::None());
  if (!cluster.Start().ok()) return {};

  workload::Dataset dataset(workload::DatasetSpec::SystemEvaluation(2000));
  workload::KvTarget target;
  target.put = [&cluster](const std::string& key, Bytes value,
                          std::function<void(const Status&)> cb) {
    cluster.Put(key, std::move(value), std::move(cb));
  };
  target.get = [&cluster](const std::string& key,
                          std::function<void(const Result<Bytes>&)> cb) {
    cluster.Get(key, [cb = std::move(cb)](const Result<bson::Document>& r) {
      if (!r.ok()) {
        cb(r.status());
      } else {
        cb(core::RecordValue(*r));
      }
    });
  };
  target.del = [&cluster](const std::string& key,
                          std::function<void(const Status&)> cb) {
    cluster.Delete(key, std::move(cb));
  };

  if (join) {
    // The first eight seconds of traffic seed the stores, so the join
    // migrates real data while the same workload keeps running — the
    // whole-run p99 includes the contended window.
    cluster.loop()->Schedule(8 * kMicrosPerSecond, [&cluster] {
      cluster::NodeSpec spec;
      spec.address = "db6:19870";
      Status added = cluster.AddNodeAsync(spec);
      (void)added;
    });
  }

  workload::RunOptions options;
  options.clients = 80;
  options.duration = 30 * kMicrosPerSecond;
  options.read_fraction = 0.2;
  options.seed = seed;
  workload::WorkloadRunner runner(cluster.loop(), &dataset, target, options);
  workload::RunReport report = runner.Run();

  Arm arm;
  arm.name = name;
  arm.ops_per_sec = report.meter.Rps();
  arm.mean_ms = report.latency.MeanMicros() / 1000.0;
  arm.p99_ms = report.latency.Percentile(99) / 1000.0;
  arm.failed = report.failed;
  const rebalance::RebalanceStats stats = cluster.AggregateRebalanceStats();
  arm.records_streamed = stats.records_streamed;
  arm.throttle_stalls = stats.throttle_stalls;
  arm.transfers_completed = stats.transfers_completed;
  arm.latency_json = report.latency.JsonSummary();
  return arm;
}

}  // namespace

int main() {
  bench::Header("rebalance", "foreground p99 under a live join, by throttle");
  std::printf("5 nodes + 1 joining at t=8s, 80 clients, 80%% puts, 30s\n\n");

  const std::uint64_t seed = 29;
  std::vector<Arm> arms;
  arms.push_back(RunArm("baseline", /*join=*/false, 2000, seed));
  arms.push_back(RunArm("rps=500", /*join=*/true, 500, seed));
  arms.push_back(RunArm("rps=2000", /*join=*/true, 2000, seed));
  arms.push_back(RunArm("unthrottled", /*join=*/true, 0, seed));

  bench::Row({"arm", "ops/s", "mean ms", "p99 ms", "failed", "streamed",
              "stalls"});
  for (const Arm& arm : arms) {
    bench::Row({arm.name, bench::Fmt(arm.ops_per_sec, 0),
                bench::Fmt(arm.mean_ms, 2), bench::Fmt(arm.p99_ms, 2),
                std::to_string(arm.failed),
                std::to_string(arm.records_streamed),
                std::to_string(arm.throttle_stalls)});
  }

  const Arm& baseline = arms[0];
  const Arm& tight = arms[1];
  const Arm& dflt = arms[2];
  const Arm& open = arms[3];

  bench::Section("shape check (throttle bounds the foreground p99 cost)");
  std::printf("join arms streamed records       : %s\n",
              (tight.records_streamed > 0 && dflt.records_streamed > 0 &&
               open.records_streamed > 0)
                  ? "yes"
                  : "NO");
  std::printf("tight throttle stalls most       : %s (%llu vs %llu)\n",
              tight.throttle_stalls >= open.throttle_stalls ? "yes" : "NO",
              static_cast<unsigned long long>(tight.throttle_stalls),
              static_cast<unsigned long long>(open.throttle_stalls));
  const double bound = baseline.p99_ms * 1.5;
  std::printf("throttled p99 within 1.5x base   : %s (%.2f, %.2f vs %.2f ms)\n",
              (tight.p99_ms <= bound && dflt.p99_ms <= bound) ? "yes" : "NO",
              tight.p99_ms, dflt.p99_ms, baseline.p99_ms);
  std::printf("unthrottled pays >= default p99  : %s (%.2f vs %.2f ms)\n",
              open.p99_ms >= dflt.p99_ms ? "yes" : "NO", open.p99_ms,
              dflt.p99_ms);

  bench::JsonWriter json("rebalance");
  for (const Arm& arm : arms) {
    std::string prefix = arm.name == "baseline"    ? "baseline"
                         : arm.name == "rps=500"   ? "rps500"
                         : arm.name == "rps=2000"  ? "rps2000"
                                                   : "unthrottled";
    json.Number(prefix + "_ops_per_sec", arm.ops_per_sec, 1);
    json.Number(prefix + "_p99_ms", arm.p99_ms, 3);
    json.Integer(prefix + "_records_streamed",
                 static_cast<long long>(arm.records_streamed));
    json.Integer(prefix + "_throttle_stalls",
                 static_cast<long long>(arm.throttle_stalls));
    json.Json(prefix + "_latency", arm.latency_json);
  }
  json.WriteFile();
  return 0;
}
