// Hot-spot taming under skew (ISSUE 10): Zipf and flash-crowd workloads
// against the strict-quorum cluster, hot-key read rotation off vs. on.
//
// Closed-loop clients draw read keys Zipfian(theta) (theta in {0.8, 0.99,
// 1.2}) or from a flash-crowd schedule (one key ramps to 90% of traffic,
// holds, decays); the 2% writes draw uniformly (read storms are read
// phenomena), except the t120w arm where writes ride the same Zipf — the
// boundary regime where fanned reads race in-flight head-key writes,
// digest-mismatch and demote. With the rotation off every read of the
// head key anchors its payload on the key's primary holder; with it on,
// hot clean keys rotate the payload fetch across the N preference
// replicas, digest-verified against the primary. Reported:
// client-observed read p50/p99/p999, completed reads per simulated
// second, and the replica-serve balance (max/mean payload serves per
// node — 1.0 is perfectly even).
//
// The acceptance shape: at theta = 1.2 the p999 improves with the rotation
// on (same seed, same demand), because the head key's payload serves no
// longer queue on one service station.
//
//   bench_skew [--short]    # --short: CI smoke (small sweep)

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "workload/metrics.h"
#include "workload/skew.h"

using namespace hotman;  // NOLINT

namespace {

struct ArmResult {
  double reads_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double balance = 0;      ///< max/mean replica payload serves per node
  double hot_hit_pct = 0;  ///< % of coordinated gets served by the rotation
  double demote_pct = 0;   ///< % of coordinated gets that demoted after fanning
};

/// One closed-loop client: finishes an op, draws the next key from the
/// skewed picker, repeats. Lives outside the Cluster so Stop()'s callback
/// flush during teardown still finds it alive.
struct Driver {
  cluster::Cluster* cluster = nullptr;
  Rng rng{0};
  const workload::ZipfGenerator* zipf = nullptr;        ///< zipf arms
  const workload::FlashCrowdGenerator* crowd = nullptr; ///< flash arm
  int keys = 0;
  double write_ratio = 0;
  /// Writes draw from the same skewed picker as reads. Off by default: a
  /// flash crowd / Zipf read storm is a *read* phenomenon, and uniform
  /// writes isolate the read-path comparison. The skewed-writes arm
  /// measures the boundary where the head key is write-hot too — fanned
  /// reads then race in-flight writes, digest-mismatch and demote, and
  /// the rotation's tail win shrinks to parity.
  bool skewed_writes = false;
  workload::LatencyRecorder* reads = nullptr;
  const bool* measuring = nullptr;
  long long reads_done = 0;
  long long reads_failed = 0;
  bool stop = false;

  void Next() {
    if (stop) return;
    const Micros now = cluster->loop()->Now();
    if (rng.NextDouble() < write_ratio) {
      const std::size_t rank =
          skewed_writes
              ? (crowd != nullptr ? crowd->Next(&rng, now) : zipf->Next(&rng))
              : rng.Uniform(keys);
      cluster->Put("k" + std::to_string(rank), ToBytes("v"),
                   [this](const Status&) { Next(); });
    } else {
      const std::size_t rank =
          crowd != nullptr ? crowd->Next(&rng, now) : zipf->Next(&rng);
      const std::string key = "k" + std::to_string(rank);
      const Micros issued = now;
      cluster->Get(key, [this, issued](const Result<bson::Document>& value) {
        ++reads_done;
        if (!value.ok()) ++reads_failed;
        if (*measuring) {
          reads->Record(cluster->loop()->Now() - issued);
        }
        Next();
      });
    }
  }
};

/// One measured run: `theta` < 0 selects the flash-crowd schedule.
ArmResult RunOne(double theta, bool skewed_writes, bool hot, bool short_mode) {
  ArmResult result;
  const int kKeys = short_mode ? 128 : 512;
  const int kClients = short_mode ? 64 : 128;
  const Micros kMeasure = (short_mode ? 4 : 12) * kMicrosPerSecond;

  // Drivers declared before the cluster: teardown flushes pending callbacks.
  std::vector<std::unique_ptr<Driver>> drivers;

  cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5);
  config.replication_factor = 3;
  config.write_quorum = 2;
  config.read_quorum = 2;  // strict (R+W>N): both arms serve consistent reads
  config.hinted_handoff = false;
  config.fast_reads = true;  // the rotation refines the fast path, so both
                             // arms share it; only hot_reads differs
  config.hot_reads = hot;
  // The Zipf head sees thousands of qps at this closed-loop demand; the
  // uniform tail a handful. This bar separates them with a wide margin.
  config.heat.hot_qps = 50.0;
  cluster::Cluster cluster(config, /*seed=*/7);
  if (!cluster.Start().ok()) return result;

  for (int i = 0; i < kKeys; ++i) {
    (void)cluster.PutSync("k" + std::to_string(i), ToBytes("seed"));
  }
  // Age the preload past the quiescence window: clean dirty sets all round.
  cluster.RunFor(config.fast_read_quiescence + kMicrosPerSecond);

  // The pickers are built after the preload so the flash-crowd schedule can
  // anchor its onset in the warmup that follows.
  std::unique_ptr<workload::ZipfGenerator> zipf;
  std::unique_ptr<workload::FlashCrowdGenerator> crowd;
  if (theta >= 0) {
    zipf = std::make_unique<workload::ZipfGenerator>(kKeys, theta);
  } else {
    workload::FlashCrowdSpec spec;
    spec.n = kKeys;
    spec.crowd_rank = 0;
    spec.start = cluster.loop()->Now() + 3 * kMicrosPerSecond;  // mid-warmup
    spec.ramp = kMicrosPerSecond;
    spec.hold = kMeasure;  // the whole measured window rides the spike
    spec.decay_half_life = 2 * kMicrosPerSecond;
    spec.peak_fraction = 0.9;
    crowd = std::make_unique<workload::FlashCrowdGenerator>(spec);
  }

  workload::LatencyRecorder reads;
  bool measuring = false;
  Rng master(0x5eedba5e);
  for (int c = 0; c < kClients; ++c) {
    auto driver = std::make_unique<Driver>();
    driver->cluster = &cluster;
    driver->rng = master.Fork();
    driver->zipf = zipf.get();
    driver->crowd = crowd.get();
    driver->keys = kKeys;
    driver->write_ratio = 0.02;
    driver->skewed_writes = skewed_writes;
    driver->reads = &reads;
    driver->measuring = &measuring;
    drivers.push_back(std::move(driver));
  }
  for (auto& driver : drivers) driver->Next();
  cluster.RunFor(4 * kMicrosPerSecond);  // warmup (heats the sketch too)

  long long reads_before = 0;
  for (auto& driver : drivers) reads_before += driver->reads_done;
  const cluster::NodeStats total_before = cluster.AggregateStats();
  std::vector<std::size_t> served_before;
  for (cluster::StorageNode* node : cluster.nodes()) {
    served_before.push_back(node->stats().replica_gets_served);
  }

  measuring = true;
  cluster.RunFor(kMeasure);
  measuring = false;

  long long reads_after = 0;
  for (auto& driver : drivers) {
    reads_after += driver->reads_done;
    driver->stop = true;
  }
  const cluster::NodeStats total_after = cluster.AggregateStats();
  double served_max = 0, served_sum = 0;
  std::size_t node_index = 0;
  for (cluster::StorageNode* node : cluster.nodes()) {
    const double served = static_cast<double>(
        node->stats().replica_gets_served - served_before[node_index++]);
    served_max = std::max(served_max, served);
    served_sum += served;
  }
  cluster.RunFor(2 * kMicrosPerSecond);  // drain in-flight ops

  const double seconds =
      static_cast<double>(kMeasure) / static_cast<double>(kMicrosPerSecond);
  result.reads_per_s =
      static_cast<double>(reads_after - reads_before) / seconds;
  if (reads.count() > 0) {
    result.p50_ms = static_cast<double>(reads.Percentile(50)) / 1000.0;
    result.p99_ms = static_cast<double>(reads.Percentile(99)) / 1000.0;
    result.p999_ms = static_cast<double>(reads.Percentile(99.9)) / 1000.0;
  }
  const double mean =
      served_sum / static_cast<double>(std::max<std::size_t>(node_index, 1));
  if (mean > 0) result.balance = served_max / mean;
  const double gets = static_cast<double>(total_after.gets_coordinated -
                                          total_before.gets_coordinated);
  if (gets > 0) {
    result.hot_hit_pct =
        100.0 * static_cast<double>(total_after.hot_read_hits -
                                    total_before.hot_read_hits) / gets;
    result.demote_pct =
        100.0 * static_cast<double>(total_after.hot_read_demotions -
                                    total_before.hot_read_demotions) / gets;
  }
  return result;
}

struct Arm {
  const char* name;   ///< table + json tag
  double theta;       ///< < 0 = flash crowd
  bool skewed_writes; ///< writes drawn from the skewed picker too
};

}  // namespace

int main(int argc, char** argv) {
  const bool short_mode = argc > 1 && std::strcmp(argv[1], "--short") == 0;

  bench::Header("skew", "hot-key read rotation under Zipf / flash crowds");
  std::printf("5 nodes, N=3 W=2 R=2 strict, fast reads on in both arms, "
              "2%% uniform\nwrites (t120w: writes skewed too), closed-loop "
              "clients;\noff = primary-anchored, on = hot rotation\n\n");
  bench::Row({"arm", "off r/s", "on r/s", "off p99", "on p99", "off p999",
              "on p999", "off bal", "on bal", "hot %"}, 10);

  bench::JsonWriter json("skew");
  json.Text("mode", short_mode ? "short" : "full");

  const Arm arms_full[] = {{"t080", 0.8, false},
                           {"t099", 0.99, false},
                           {"t120", 1.2, false},
                           {"t120w", 1.2, true},  // head key write-hot too
                           {"flash", -1.0, false}};
  const Arm arms_short[] = {{"t099", 0.99, false}, {"flash", -1.0, false}};
  const Arm* arms = short_mode ? arms_short : arms_full;
  const int n_arms = short_mode ? 2 : 5;

  double p999_gain_t120 = 0;
  for (int i = 0; i < n_arms; ++i) {
    const Arm& arm = arms[i];
    const ArmResult off =
        RunOne(arm.theta, arm.skewed_writes, /*hot=*/false, short_mode);
    const ArmResult on =
        RunOne(arm.theta, arm.skewed_writes, /*hot=*/true, short_mode);
    if (std::strcmp(arm.name, "t120") == 0 && on.p999_ms > 0) {
      p999_gain_t120 = off.p999_ms / on.p999_ms;
    }
    bench::Row({arm.name, bench::Fmt(off.reads_per_s, 0),
                bench::Fmt(on.reads_per_s, 0), bench::Fmt(off.p99_ms, 1),
                bench::Fmt(on.p99_ms, 1), bench::Fmt(off.p999_ms, 1),
                bench::Fmt(on.p999_ms, 1), bench::Fmt(off.balance, 2),
                bench::Fmt(on.balance, 2), bench::Fmt(on.hot_hit_pct, 1)},
               10);
    const std::string tag = arm.name;
    json.Number(tag + "_off_reads_per_s", off.reads_per_s, 0);
    json.Number(tag + "_on_reads_per_s", on.reads_per_s, 0);
    json.Number(tag + "_off_p50_ms", off.p50_ms, 2);
    json.Number(tag + "_on_p50_ms", on.p50_ms, 2);
    json.Number(tag + "_off_p99_ms", off.p99_ms, 2);
    json.Number(tag + "_on_p99_ms", on.p99_ms, 2);
    json.Number(tag + "_off_p999_ms", off.p999_ms, 2);
    json.Number(tag + "_on_p999_ms", on.p999_ms, 2);
    json.Number(tag + "_off_balance", off.balance, 3);
    json.Number(tag + "_on_balance", on.balance, 3);
    json.Number(tag + "_hot_hit_pct", on.hot_hit_pct, 1);
    json.Number(tag + "_demote_pct", on.demote_pct, 2);
  }
  if (!short_mode) json.Number("p999_gain_t120", p999_gain_t120, 3);
  json.WriteFile();

  bench::Section("expected shapes");
  std::printf("- theta = 0.8: mild skew, both arms near-even balance, the\n");
  std::printf("  rotation engages rarely (head key barely clears the bar)\n");
  std::printf("- theta rising: the off arm's balance worsens (one primary\n");
  std::printf("  serves the head) and its p999 inflates with that queue;\n");
  std::printf("  the on arm spreads payload serves, p999 gain > 1 at 1.2\n");
  std::printf("- t120w (head key write-hot too): fanned reads race the\n");
  std::printf("  writes and demote on digest mismatch — the tail win\n");
  std::printf("  shrinks toward parity, throughput/balance still improve\n");
  std::printf("- flash crowd: the spike key is hot within a half-life;\n");
  std::printf("  the on arm rides it with near-even balance\n");
  return 0;
}
