// TCP saturation knee of a real loopback cluster: spawns three `hotmand`
// daemons (actual sockets, actual reactor threads), drives a closed-loop
// 90/10 get/put workload at rising client concurrency, and reports the
// knee — the concurrency level past which extra clients stop buying
// throughput. Run at --shards=1 vs --shards=4 to compare the single-reactor
// node against the shard-per-core one.
//
// The daemon binary path comes from $HOTMAND_BIN or --hotmand=PATH (falls
// back to <this binary's dir>/../tools/hotmand). Emits
// BENCH_tcp_saturation.json (or BENCH_tcp_saturation_shards<N>.json when
// --shards is passed explicitly), with the host's core count recorded:
// on a single-core host every level time-shares one CPU and the knee
// arrives immediately — the artifact is still honest, just not a
// parallelism measurement.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/bytes.h"
#include "net/remote_client.h"

namespace hotman {
namespace {

using namespace std::chrono_literals;

constexpr int kNodes = 3;
constexpr int kKeys = 256;

struct DaemonNode {
  std::string name;
  std::uint16_t port = 0;
  pid_t pid = -1;
};

std::uint16_t PickPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  ::close(fd);
  return ntohs(bound.sin_port);
}

bool Spawn(const std::string& bin, const std::vector<DaemonNode>& all,
           DaemonNode* node, int shards) {
  std::vector<std::string> args = {
      bin,
      "--node", node->name,
      "--listen", "127.0.0.1:" + std::to_string(node->port),
      "--seeds", all[0].name,
      "--n", "3", "--w", "2", "--r", "1",
      "--shards", std::to_string(shards),
      "--gossip-ms", "200",
      "--op-timeout-ms", "1000",
  };
  for (const DaemonNode& peer : all) {
    args.push_back("--peer");
    args.push_back(peer.name + "=127.0.0.1:" + std::to_string(peer.port));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == -1) return false;
  if (pid == 0) {
    // Quiet the daemons: their stderr chatter is not part of the artifact.
    std::FILE* sink = std::freopen("/dev/null", "w", stderr);
    (void)sink;
    ::execv(bin.c_str(), argv.data());
    std::perror("execv hotmand");
    ::_exit(127);
  }
  node->pid = pid;
  return true;
}

void KillAll(std::vector<DaemonNode>* nodes, int sig) {
  for (DaemonNode& node : *nodes) {
    if (node.pid > 0) ::kill(node.pid, sig);
  }
  for (DaemonNode& node : *nodes) {
    if (node.pid > 0) {
      ::waitpid(node.pid, nullptr, 0);
      node.pid = -1;
    }
  }
}

net::RemoteClientConfig ClientConfig(const DaemonNode& node, int worker) {
  net::RemoteClientConfig config;
  config.host = "127.0.0.1";
  config.port = node.port;
  config.name = "sat-" + std::to_string(::getpid()) + "-" +
                std::to_string(worker);
  config.op_timeout = 5 * kMicrosPerSecond;
  return config;
}

std::string KeyOf(int i) { return "sat" + std::to_string(i); }

/// Closed-loop throughput at `concurrency` workers, 90/10 get/put, workers
/// spread round-robin over the three nodes. Every worker owns its own
/// connection (RemoteClient is single-threaded by contract).
double MeasureLevel(const std::vector<DaemonNode>& nodes, int concurrency,
                    std::chrono::milliseconds window) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(concurrency), 0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w) {
    pool.emplace_back([&, w] {
      const DaemonNode& node = nodes[static_cast<std::size_t>(w % kNodes)];
      net::RemoteClient client(ClientConfig(node, w));
      client.Connect().ok();  // lazy reconnect covers failures
      std::uint64_t rng = 0x2545f4914f6cdd1dull * static_cast<std::uint64_t>(w + 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int i = static_cast<int>((rng >> 33) % kKeys);
        bool ok;
        if ((rng & 1023) < 102) {  // ~10% writes
          ok = client.Put(node.name, KeyOf(i), ToBytes("w")).ok();
        } else {
          const auto r = client.Get(node.name, KeyOf(i));
          ok = r.ok() || r.status().IsNotFound();
        }
        if (ok) {
          ++n;
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      counts[static_cast<std::size_t>(w)] = n;
    });
  }
  while (ready.load() < concurrency) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();

  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (failures.load() > total / 10) {
    std::printf("  (warning: %llu failed ops at concurrency %d)\n",
                static_cast<unsigned long long>(failures.load()), concurrency);
  }
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  return seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
}

std::string DefaultHotmandPath(const char* argv0) {
  const char* env = std::getenv("HOTMAND_BIN");
  if (env != nullptr) return env;
  std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../tools/hotmand";
}

}  // namespace
}  // namespace hotman

int main(int argc, char** argv) {
  using namespace hotman;  // NOLINT(google-build-using-namespace)

  bool short_mode = false;
  int shards = 1;
  bool shards_explicit = false;
  std::string bin = DefaultHotmandPath(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      shards_explicit = true;
    }
    if (std::strncmp(argv[i], "--hotmand=", 10) == 0) bin = argv[i] + 10;
  }
  if (shards < 1 || shards > 64) {
    std::fprintf(stderr, "--shards must be in [1, 64]\n");
    return 2;
  }
  if (::access(bin.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "bench_tcp_saturation: hotmand binary not found at %s "
                 "(set $HOTMAND_BIN or pass --hotmand=PATH)\n",
                 bin.c_str());
    return 2;
  }

  const std::chrono::milliseconds window(short_mode ? 250 : 1500);
  const std::vector<int> levels =
      short_mode ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};
  const unsigned cores = std::thread::hardware_concurrency();
  const std::string json_id =
      shards_explicit ? "tcp_saturation_shards" + std::to_string(shards)
                      : "tcp_saturation";

  bench::Header("tcp_saturation",
                "loopback 3-daemon cluster: closed-loop throughput vs client "
                "concurrency, to the knee");
  std::printf("cores=%u shards=%d window=%lldms%s\n", cores, shards,
              static_cast<long long>(window.count()),
              short_mode ? " (short mode)" : "");

  std::vector<DaemonNode> nodes;
  for (int i = 0; i < kNodes; ++i) {
    DaemonNode node;
    node.port = PickPort();
    if (node.port == 0) {
      std::fprintf(stderr, "could not reserve a loopback port\n");
      return 1;
    }
    node.name = "sat" + std::to_string(i + 1) + ":" + std::to_string(node.port);
    nodes.push_back(node);
  }
  for (DaemonNode& node : nodes) {
    if (!Spawn(bin, nodes, &node, shards)) {
      std::fprintf(stderr, "failed to spawn %s\n", node.name.c_str());
      KillAll(&nodes, SIGKILL);
      return 1;
    }
  }

  // Boot barrier + preload: retry until the cluster serves writes, then
  // seed the keyspace so the 90% read side hits real records.
  {
    net::RemoteClient seeder(ClientConfig(nodes[0], 999));
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    bool booted = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (seeder.Put(nodes[0].name, "boot-probe", ToBytes("up")).ok()) {
        booted = true;
        break;
      }
      std::this_thread::sleep_for(100ms);
    }
    if (!booted) {
      std::fprintf(stderr, "cluster never booted\n");
      KillAll(&nodes, SIGKILL);
      return 1;
    }
    // All through node 0: a client frame must address the node it is
    // connected to (the daemon only delivers to its own endpoint).
    for (int i = 0; i < kKeys; ++i) {
      seeder.Put(nodes[0].name, KeyOf(i), ToBytes("seed")).ok();
    }
  }

  bench::JsonWriter json(json_id);
  json.Integer("cores", cores);
  json.Integer("shards", shards);
  json.Integer("nodes", kNodes);
  json.Integer("window_ms", static_cast<long long>(window.count()));
  json.Text("mode", short_mode ? "short" : "full");

  bench::Section("closed-loop 90/10 get/put ops/sec by client concurrency");
  bench::Row({"clients", "ops/sec", "vs prev"});
  std::vector<double> tputs;
  int knee_concurrency = levels.front();
  double knee_ops = 0.0;
  bool knee_found = false;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const double tput = MeasureLevel(nodes, levels[l], window);
    const double gain = l == 0 || tputs.back() <= 0 ? 1.0 : tput / tputs.back();
    bench::Row({std::to_string(levels[l]), bench::Fmt(tput, 0),
                l == 0 ? "-" : bench::Fmt(gain, 2) + "x"});
    json.Number("c" + std::to_string(levels[l]) + "_ops_per_sec", tput, 0);
    // The knee: the last level that still bought >=10% more throughput.
    if (l > 0 && !knee_found && gain < 1.10) {
      knee_concurrency = levels[l - 1];
      knee_ops = tputs.back();
      knee_found = true;
    }
    tputs.push_back(tput);
  }
  if (!knee_found) {
    knee_concurrency = levels.back();
    knee_ops = tputs.back();
  }
  std::printf("saturation knee: %.0f ops/sec at %d clients%s\n", knee_ops,
              knee_concurrency,
              knee_found ? "" : " (never flattened within the sweep)");
  if (cores <= 1) {
    std::printf(
        "NOTE: single-core host: daemons, reactors and clients time-share "
        "one CPU, so the knee measures scheduling, not shard scaling.\n");
  }
  json.Integer("knee_concurrency", knee_concurrency);
  json.Number("knee_ops_per_sec", knee_ops, 0);

  KillAll(&nodes, SIGTERM);
  std::printf("\n");
  json.WriteFile();
  return 0;
}
