file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nwr.dir/bench_ablation_nwr.cc.o"
  "CMakeFiles/bench_ablation_nwr.dir/bench_ablation_nwr.cc.o.d"
  "bench_ablation_nwr"
  "bench_ablation_nwr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
