# Empty dependencies file for bench_ablation_nwr.
# This may be replaced when dependencies are built.
