file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vnodes.dir/bench_ablation_vnodes.cc.o"
  "CMakeFiles/bench_ablation_vnodes.dir/bench_ablation_vnodes.cc.o.d"
  "bench_ablation_vnodes"
  "bench_ablation_vnodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vnodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
