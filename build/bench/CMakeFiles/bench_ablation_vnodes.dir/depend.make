# Empty dependencies file for bench_ablation_vnodes.
# This may be replaced when dependencies are built.
