file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ttfb_ttlb.dir/bench_fig12_ttfb_ttlb.cc.o"
  "CMakeFiles/bench_fig12_ttfb_ttlb.dir/bench_fig12_ttfb_ttlb.cc.o.d"
  "bench_fig12_ttfb_ttlb"
  "bench_fig12_ttfb_ttlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ttfb_ttlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
