# Empty dependencies file for bench_fig12_ttfb_ttlb.
# This may be replaced when dependencies are built.
