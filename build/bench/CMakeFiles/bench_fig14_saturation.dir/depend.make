# Empty dependencies file for bench_fig14_saturation.
# This may be replaced when dependencies are built.
