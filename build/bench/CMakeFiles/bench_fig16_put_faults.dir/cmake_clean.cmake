file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_put_faults.dir/bench_fig16_put_faults.cc.o"
  "CMakeFiles/bench_fig16_put_faults.dir/bench_fig16_put_faults.cc.o.d"
  "bench_fig16_put_faults"
  "bench_fig16_put_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_put_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
