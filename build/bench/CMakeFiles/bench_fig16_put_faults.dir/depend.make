# Empty dependencies file for bench_fig16_put_faults.
# This may be replaced when dependencies are built.
