file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bson.dir/bench_micro_bson.cc.o"
  "CMakeFiles/bench_micro_bson.dir/bench_micro_bson.cc.o.d"
  "bench_micro_bson"
  "bench_micro_bson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
