# Empty dependencies file for bench_micro_bson.
# This may be replaced when dependencies are built.
