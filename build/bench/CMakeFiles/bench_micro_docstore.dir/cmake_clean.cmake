file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_docstore.dir/bench_micro_docstore.cc.o"
  "CMakeFiles/bench_micro_docstore.dir/bench_micro_docstore.cc.o.d"
  "bench_micro_docstore"
  "bench_micro_docstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
