# Empty compiler generated dependencies file for bench_micro_docstore.
# This may be replaced when dependencies are built.
