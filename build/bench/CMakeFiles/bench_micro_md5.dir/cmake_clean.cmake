file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_md5.dir/bench_micro_md5.cc.o"
  "CMakeFiles/bench_micro_md5.dir/bench_micro_md5.cc.o.d"
  "bench_micro_md5"
  "bench_micro_md5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_md5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
