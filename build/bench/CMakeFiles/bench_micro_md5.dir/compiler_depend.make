# Empty compiler generated dependencies file for bench_micro_md5.
# This may be replaced when dependencies are built.
