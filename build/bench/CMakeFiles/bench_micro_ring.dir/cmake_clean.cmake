file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ring.dir/bench_micro_ring.cc.o"
  "CMakeFiles/bench_micro_ring.dir/bench_micro_ring.cc.o.d"
  "bench_micro_ring"
  "bench_micro_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
