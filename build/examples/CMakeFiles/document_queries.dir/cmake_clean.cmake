file(REMOVE_RECURSE
  "CMakeFiles/document_queries.dir/document_queries.cpp.o"
  "CMakeFiles/document_queries.dir/document_queries.cpp.o.d"
  "document_queries"
  "document_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
