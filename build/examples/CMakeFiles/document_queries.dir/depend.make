# Empty dependencies file for document_queries.
# This may be replaced when dependencies are built.
