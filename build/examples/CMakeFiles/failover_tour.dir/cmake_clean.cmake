file(REMOVE_RECURSE
  "CMakeFiles/failover_tour.dir/failover_tour.cpp.o"
  "CMakeFiles/failover_tour.dir/failover_tour.cpp.o.d"
  "failover_tour"
  "failover_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
