# Empty compiler generated dependencies file for failover_tour.
# This may be replaced when dependencies are built.
