file(REMOVE_RECURSE
  "CMakeFiles/rest_api_tour.dir/rest_api_tour.cpp.o"
  "CMakeFiles/rest_api_tour.dir/rest_api_tour.cpp.o.d"
  "rest_api_tour"
  "rest_api_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_api_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
