# Empty dependencies file for rest_api_tour.
# This may be replaced when dependencies are built.
