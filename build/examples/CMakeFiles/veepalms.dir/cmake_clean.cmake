file(REMOVE_RECURSE
  "CMakeFiles/veepalms.dir/veepalms.cpp.o"
  "CMakeFiles/veepalms.dir/veepalms.cpp.o.d"
  "veepalms"
  "veepalms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veepalms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
