# Empty compiler generated dependencies file for veepalms.
# This may be replaced when dependencies are built.
