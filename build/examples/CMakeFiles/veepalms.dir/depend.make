# Empty dependencies file for veepalms.
# This may be replaced when dependencies are built.
