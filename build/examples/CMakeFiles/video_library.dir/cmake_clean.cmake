file(REMOVE_RECURSE
  "CMakeFiles/video_library.dir/video_library.cpp.o"
  "CMakeFiles/video_library.dir/video_library.cpp.o.d"
  "video_library"
  "video_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
