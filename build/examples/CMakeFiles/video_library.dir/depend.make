# Empty dependencies file for video_library.
# This may be replaced when dependencies are built.
