
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fs_store.cc" "src/CMakeFiles/hotman.dir/baselines/fs_store.cc.o" "gcc" "src/CMakeFiles/hotman.dir/baselines/fs_store.cc.o.d"
  "/root/repo/src/baselines/rel_store.cc" "src/CMakeFiles/hotman.dir/baselines/rel_store.cc.o" "gcc" "src/CMakeFiles/hotman.dir/baselines/rel_store.cc.o.d"
  "/root/repo/src/bson/codec.cc" "src/CMakeFiles/hotman.dir/bson/codec.cc.o" "gcc" "src/CMakeFiles/hotman.dir/bson/codec.cc.o.d"
  "/root/repo/src/bson/document.cc" "src/CMakeFiles/hotman.dir/bson/document.cc.o" "gcc" "src/CMakeFiles/hotman.dir/bson/document.cc.o.d"
  "/root/repo/src/bson/json.cc" "src/CMakeFiles/hotman.dir/bson/json.cc.o" "gcc" "src/CMakeFiles/hotman.dir/bson/json.cc.o.d"
  "/root/repo/src/bson/object_id.cc" "src/CMakeFiles/hotman.dir/bson/object_id.cc.o" "gcc" "src/CMakeFiles/hotman.dir/bson/object_id.cc.o.d"
  "/root/repo/src/bson/value.cc" "src/CMakeFiles/hotman.dir/bson/value.cc.o" "gcc" "src/CMakeFiles/hotman.dir/bson/value.cc.o.d"
  "/root/repo/src/cache/cache_pool.cc" "src/CMakeFiles/hotman.dir/cache/cache_pool.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cache/cache_pool.cc.o.d"
  "/root/repo/src/cache/lru_cache.cc" "src/CMakeFiles/hotman.dir/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cache/lru_cache.cc.o.d"
  "/root/repo/src/cluster/anti_entropy.cc" "src/CMakeFiles/hotman.dir/cluster/anti_entropy.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/anti_entropy.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/hotman.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/config.cc" "src/CMakeFiles/hotman.dir/cluster/config.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/config.cc.o.d"
  "/root/repo/src/cluster/hinted_handoff.cc" "src/CMakeFiles/hotman.dir/cluster/hinted_handoff.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/hinted_handoff.cc.o.d"
  "/root/repo/src/cluster/messages.cc" "src/CMakeFiles/hotman.dir/cluster/messages.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/messages.cc.o.d"
  "/root/repo/src/cluster/replica_store.cc" "src/CMakeFiles/hotman.dir/cluster/replica_store.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/replica_store.cc.o.d"
  "/root/repo/src/cluster/storage_node.cc" "src/CMakeFiles/hotman.dir/cluster/storage_node.cc.o" "gcc" "src/CMakeFiles/hotman.dir/cluster/storage_node.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/hotman.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/hotman.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/hotman.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/hotman.dir/common/clock.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hotman.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hotman.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/hotman.dir/common/random.cc.o" "gcc" "src/CMakeFiles/hotman.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hotman.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hotman.dir/common/status.cc.o.d"
  "/root/repo/src/core/chunked.cc" "src/CMakeFiles/hotman.dir/core/chunked.cc.o" "gcc" "src/CMakeFiles/hotman.dir/core/chunked.cc.o.d"
  "/root/repo/src/core/mystore.cc" "src/CMakeFiles/hotman.dir/core/mystore.cc.o" "gcc" "src/CMakeFiles/hotman.dir/core/mystore.cc.o.d"
  "/root/repo/src/core/record.cc" "src/CMakeFiles/hotman.dir/core/record.cc.o" "gcc" "src/CMakeFiles/hotman.dir/core/record.cc.o.d"
  "/root/repo/src/docstore/collection.cc" "src/CMakeFiles/hotman.dir/docstore/collection.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/collection.cc.o.d"
  "/root/repo/src/docstore/connection.cc" "src/CMakeFiles/hotman.dir/docstore/connection.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/connection.cc.o.d"
  "/root/repo/src/docstore/cursor.cc" "src/CMakeFiles/hotman.dir/docstore/cursor.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/cursor.cc.o.d"
  "/root/repo/src/docstore/database.cc" "src/CMakeFiles/hotman.dir/docstore/database.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/database.cc.o.d"
  "/root/repo/src/docstore/index.cc" "src/CMakeFiles/hotman.dir/docstore/index.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/index.cc.o.d"
  "/root/repo/src/docstore/journal.cc" "src/CMakeFiles/hotman.dir/docstore/journal.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/journal.cc.o.d"
  "/root/repo/src/docstore/master_slave.cc" "src/CMakeFiles/hotman.dir/docstore/master_slave.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/master_slave.cc.o.d"
  "/root/repo/src/docstore/planner.cc" "src/CMakeFiles/hotman.dir/docstore/planner.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/planner.cc.o.d"
  "/root/repo/src/docstore/server.cc" "src/CMakeFiles/hotman.dir/docstore/server.cc.o" "gcc" "src/CMakeFiles/hotman.dir/docstore/server.cc.o.d"
  "/root/repo/src/gossip/failure_detector.cc" "src/CMakeFiles/hotman.dir/gossip/failure_detector.cc.o" "gcc" "src/CMakeFiles/hotman.dir/gossip/failure_detector.cc.o.d"
  "/root/repo/src/gossip/gossiper.cc" "src/CMakeFiles/hotman.dir/gossip/gossiper.cc.o" "gcc" "src/CMakeFiles/hotman.dir/gossip/gossiper.cc.o.d"
  "/root/repo/src/gossip/messages.cc" "src/CMakeFiles/hotman.dir/gossip/messages.cc.o" "gcc" "src/CMakeFiles/hotman.dir/gossip/messages.cc.o.d"
  "/root/repo/src/gossip/node_state.cc" "src/CMakeFiles/hotman.dir/gossip/node_state.cc.o" "gcc" "src/CMakeFiles/hotman.dir/gossip/node_state.cc.o.d"
  "/root/repo/src/hashring/ketama.cc" "src/CMakeFiles/hotman.dir/hashring/ketama.cc.o" "gcc" "src/CMakeFiles/hotman.dir/hashring/ketama.cc.o.d"
  "/root/repo/src/hashring/md5.cc" "src/CMakeFiles/hotman.dir/hashring/md5.cc.o" "gcc" "src/CMakeFiles/hotman.dir/hashring/md5.cc.o.d"
  "/root/repo/src/hashring/migration.cc" "src/CMakeFiles/hotman.dir/hashring/migration.cc.o" "gcc" "src/CMakeFiles/hotman.dir/hashring/migration.cc.o.d"
  "/root/repo/src/hashring/ring.cc" "src/CMakeFiles/hotman.dir/hashring/ring.cc.o" "gcc" "src/CMakeFiles/hotman.dir/hashring/ring.cc.o.d"
  "/root/repo/src/query/matcher.cc" "src/CMakeFiles/hotman.dir/query/matcher.cc.o" "gcc" "src/CMakeFiles/hotman.dir/query/matcher.cc.o.d"
  "/root/repo/src/query/path.cc" "src/CMakeFiles/hotman.dir/query/path.cc.o" "gcc" "src/CMakeFiles/hotman.dir/query/path.cc.o.d"
  "/root/repo/src/query/projection.cc" "src/CMakeFiles/hotman.dir/query/projection.cc.o" "gcc" "src/CMakeFiles/hotman.dir/query/projection.cc.o.d"
  "/root/repo/src/query/sort.cc" "src/CMakeFiles/hotman.dir/query/sort.cc.o" "gcc" "src/CMakeFiles/hotman.dir/query/sort.cc.o.d"
  "/root/repo/src/query/update.cc" "src/CMakeFiles/hotman.dir/query/update.cc.o" "gcc" "src/CMakeFiles/hotman.dir/query/update.cc.o.d"
  "/root/repo/src/rest/request.cc" "src/CMakeFiles/hotman.dir/rest/request.cc.o" "gcc" "src/CMakeFiles/hotman.dir/rest/request.cc.o.d"
  "/root/repo/src/rest/router.cc" "src/CMakeFiles/hotman.dir/rest/router.cc.o" "gcc" "src/CMakeFiles/hotman.dir/rest/router.cc.o.d"
  "/root/repo/src/rest/signature.cc" "src/CMakeFiles/hotman.dir/rest/signature.cc.o" "gcc" "src/CMakeFiles/hotman.dir/rest/signature.cc.o.d"
  "/root/repo/src/rest/token_db.cc" "src/CMakeFiles/hotman.dir/rest/token_db.cc.o" "gcc" "src/CMakeFiles/hotman.dir/rest/token_db.cc.o.d"
  "/root/repo/src/sim/event_loop.cc" "src/CMakeFiles/hotman.dir/sim/event_loop.cc.o" "gcc" "src/CMakeFiles/hotman.dir/sim/event_loop.cc.o.d"
  "/root/repo/src/sim/failure_injector.cc" "src/CMakeFiles/hotman.dir/sim/failure_injector.cc.o" "gcc" "src/CMakeFiles/hotman.dir/sim/failure_injector.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/hotman.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/hotman.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/service_station.cc" "src/CMakeFiles/hotman.dir/sim/service_station.cc.o" "gcc" "src/CMakeFiles/hotman.dir/sim/service_station.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/hotman.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/hotman.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/hotman.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/hotman.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/hotman.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/hotman.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/hotman.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/hotman.dir/workload/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
