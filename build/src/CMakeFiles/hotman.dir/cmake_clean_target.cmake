file(REMOVE_RECURSE
  "libhotman.a"
)
