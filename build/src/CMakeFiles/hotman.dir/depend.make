# Empty dependencies file for hotman.
# This may be replaced when dependencies are built.
