# Empty dependencies file for anti_entropy_test.
# This may be replaced when dependencies are built.
