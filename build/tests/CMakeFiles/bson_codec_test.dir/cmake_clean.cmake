file(REMOVE_RECURSE
  "CMakeFiles/bson_codec_test.dir/bson_codec_test.cc.o"
  "CMakeFiles/bson_codec_test.dir/bson_codec_test.cc.o.d"
  "bson_codec_test"
  "bson_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bson_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
