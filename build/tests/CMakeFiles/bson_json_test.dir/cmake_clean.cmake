file(REMOVE_RECURSE
  "CMakeFiles/bson_json_test.dir/bson_json_test.cc.o"
  "CMakeFiles/bson_json_test.dir/bson_json_test.cc.o.d"
  "bson_json_test"
  "bson_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bson_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
