file(REMOVE_RECURSE
  "CMakeFiles/bson_value_test.dir/bson_value_test.cc.o"
  "CMakeFiles/bson_value_test.dir/bson_value_test.cc.o.d"
  "bson_value_test"
  "bson_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bson_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
