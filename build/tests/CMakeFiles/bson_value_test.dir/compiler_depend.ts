# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bson_value_test.
