# Empty dependencies file for bson_value_test.
# This may be replaced when dependencies are built.
