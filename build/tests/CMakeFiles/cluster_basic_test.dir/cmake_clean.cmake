file(REMOVE_RECURSE
  "CMakeFiles/cluster_basic_test.dir/cluster_basic_test.cc.o"
  "CMakeFiles/cluster_basic_test.dir/cluster_basic_test.cc.o.d"
  "cluster_basic_test"
  "cluster_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
