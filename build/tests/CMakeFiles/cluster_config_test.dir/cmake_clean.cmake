file(REMOVE_RECURSE
  "CMakeFiles/cluster_config_test.dir/cluster_config_test.cc.o"
  "CMakeFiles/cluster_config_test.dir/cluster_config_test.cc.o.d"
  "cluster_config_test"
  "cluster_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
