# Empty dependencies file for cluster_failure_test.
# This may be replaced when dependencies are built.
