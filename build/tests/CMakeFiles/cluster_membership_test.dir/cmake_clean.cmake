file(REMOVE_RECURSE
  "CMakeFiles/cluster_membership_test.dir/cluster_membership_test.cc.o"
  "CMakeFiles/cluster_membership_test.dir/cluster_membership_test.cc.o.d"
  "cluster_membership_test"
  "cluster_membership_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
