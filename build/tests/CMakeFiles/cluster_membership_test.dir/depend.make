# Empty dependencies file for cluster_membership_test.
# This may be replaced when dependencies are built.
