file(REMOVE_RECURSE
  "CMakeFiles/cluster_quorum_test.dir/cluster_quorum_test.cc.o"
  "CMakeFiles/cluster_quorum_test.dir/cluster_quorum_test.cc.o.d"
  "cluster_quorum_test"
  "cluster_quorum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_quorum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
