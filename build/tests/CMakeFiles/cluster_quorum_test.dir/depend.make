# Empty dependencies file for cluster_quorum_test.
# This may be replaced when dependencies are built.
