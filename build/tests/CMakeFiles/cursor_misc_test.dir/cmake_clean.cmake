file(REMOVE_RECURSE
  "CMakeFiles/cursor_misc_test.dir/cursor_misc_test.cc.o"
  "CMakeFiles/cursor_misc_test.dir/cursor_misc_test.cc.o.d"
  "cursor_misc_test"
  "cursor_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cursor_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
