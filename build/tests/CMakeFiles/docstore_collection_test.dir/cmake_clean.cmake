file(REMOVE_RECURSE
  "CMakeFiles/docstore_collection_test.dir/docstore_collection_test.cc.o"
  "CMakeFiles/docstore_collection_test.dir/docstore_collection_test.cc.o.d"
  "docstore_collection_test"
  "docstore_collection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
