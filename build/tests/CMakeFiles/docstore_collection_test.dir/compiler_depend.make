# Empty compiler generated dependencies file for docstore_collection_test.
# This may be replaced when dependencies are built.
