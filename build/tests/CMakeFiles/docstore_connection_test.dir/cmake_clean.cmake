file(REMOVE_RECURSE
  "CMakeFiles/docstore_connection_test.dir/docstore_connection_test.cc.o"
  "CMakeFiles/docstore_connection_test.dir/docstore_connection_test.cc.o.d"
  "docstore_connection_test"
  "docstore_connection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
