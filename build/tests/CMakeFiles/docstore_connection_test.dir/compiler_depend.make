# Empty compiler generated dependencies file for docstore_connection_test.
# This may be replaced when dependencies are built.
