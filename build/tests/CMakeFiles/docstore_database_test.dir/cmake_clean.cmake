file(REMOVE_RECURSE
  "CMakeFiles/docstore_database_test.dir/docstore_database_test.cc.o"
  "CMakeFiles/docstore_database_test.dir/docstore_database_test.cc.o.d"
  "docstore_database_test"
  "docstore_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
