# Empty dependencies file for docstore_database_test.
# This may be replaced when dependencies are built.
