file(REMOVE_RECURSE
  "CMakeFiles/docstore_index_planner_test.dir/docstore_index_planner_test.cc.o"
  "CMakeFiles/docstore_index_planner_test.dir/docstore_index_planner_test.cc.o.d"
  "docstore_index_planner_test"
  "docstore_index_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_index_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
