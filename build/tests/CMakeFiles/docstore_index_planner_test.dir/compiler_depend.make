# Empty compiler generated dependencies file for docstore_index_planner_test.
# This may be replaced when dependencies are built.
