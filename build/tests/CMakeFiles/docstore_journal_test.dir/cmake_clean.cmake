file(REMOVE_RECURSE
  "CMakeFiles/docstore_journal_test.dir/docstore_journal_test.cc.o"
  "CMakeFiles/docstore_journal_test.dir/docstore_journal_test.cc.o.d"
  "docstore_journal_test"
  "docstore_journal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
