# Empty dependencies file for docstore_journal_test.
# This may be replaced when dependencies are built.
