file(REMOVE_RECURSE
  "CMakeFiles/docstore_master_slave_test.dir/docstore_master_slave_test.cc.o"
  "CMakeFiles/docstore_master_slave_test.dir/docstore_master_slave_test.cc.o.d"
  "docstore_master_slave_test"
  "docstore_master_slave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_master_slave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
