# Empty dependencies file for docstore_master_slave_test.
# This may be replaced when dependencies are built.
