file(REMOVE_RECURSE
  "CMakeFiles/failure_detector_test.dir/failure_detector_test.cc.o"
  "CMakeFiles/failure_detector_test.dir/failure_detector_test.cc.o.d"
  "failure_detector_test"
  "failure_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
