file(REMOVE_RECURSE
  "CMakeFiles/gossip_protocol_test.dir/gossip_protocol_test.cc.o"
  "CMakeFiles/gossip_protocol_test.dir/gossip_protocol_test.cc.o.d"
  "gossip_protocol_test"
  "gossip_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
