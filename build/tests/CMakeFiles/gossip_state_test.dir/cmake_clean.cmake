file(REMOVE_RECURSE
  "CMakeFiles/gossip_state_test.dir/gossip_state_test.cc.o"
  "CMakeFiles/gossip_state_test.dir/gossip_state_test.cc.o.d"
  "gossip_state_test"
  "gossip_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
