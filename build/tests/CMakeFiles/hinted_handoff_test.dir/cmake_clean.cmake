file(REMOVE_RECURSE
  "CMakeFiles/hinted_handoff_test.dir/hinted_handoff_test.cc.o"
  "CMakeFiles/hinted_handoff_test.dir/hinted_handoff_test.cc.o.d"
  "hinted_handoff_test"
  "hinted_handoff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinted_handoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
