# Empty dependencies file for hinted_handoff_test.
# This may be replaced when dependencies are built.
