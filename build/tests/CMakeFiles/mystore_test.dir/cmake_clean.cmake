file(REMOVE_RECURSE
  "CMakeFiles/mystore_test.dir/mystore_test.cc.o"
  "CMakeFiles/mystore_test.dir/mystore_test.cc.o.d"
  "mystore_test"
  "mystore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mystore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
