# Empty compiler generated dependencies file for mystore_test.
# This may be replaced when dependencies are built.
