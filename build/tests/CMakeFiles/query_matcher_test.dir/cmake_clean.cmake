file(REMOVE_RECURSE
  "CMakeFiles/query_matcher_test.dir/query_matcher_test.cc.o"
  "CMakeFiles/query_matcher_test.dir/query_matcher_test.cc.o.d"
  "query_matcher_test"
  "query_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
