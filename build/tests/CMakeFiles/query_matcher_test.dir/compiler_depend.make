# Empty compiler generated dependencies file for query_matcher_test.
# This may be replaced when dependencies are built.
