file(REMOVE_RECURSE
  "CMakeFiles/query_projection_sort_test.dir/query_projection_sort_test.cc.o"
  "CMakeFiles/query_projection_sort_test.dir/query_projection_sort_test.cc.o.d"
  "query_projection_sort_test"
  "query_projection_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_projection_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
