# Empty dependencies file for query_projection_sort_test.
# This may be replaced when dependencies are built.
