file(REMOVE_RECURSE
  "CMakeFiles/query_update_test.dir/query_update_test.cc.o"
  "CMakeFiles/query_update_test.dir/query_update_test.cc.o.d"
  "query_update_test"
  "query_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
