# Empty compiler generated dependencies file for query_update_test.
# This may be replaced when dependencies are built.
