file(REMOVE_RECURSE
  "CMakeFiles/rest_test.dir/rest_test.cc.o"
  "CMakeFiles/rest_test.dir/rest_test.cc.o.d"
  "rest_test"
  "rest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
