file(REMOVE_RECURSE
  "CMakeFiles/sim_failure_injector_test.dir/sim_failure_injector_test.cc.o"
  "CMakeFiles/sim_failure_injector_test.dir/sim_failure_injector_test.cc.o.d"
  "sim_failure_injector_test"
  "sim_failure_injector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_failure_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
