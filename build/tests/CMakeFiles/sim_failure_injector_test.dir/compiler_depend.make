# Empty compiler generated dependencies file for sim_failure_injector_test.
# This may be replaced when dependencies are built.
