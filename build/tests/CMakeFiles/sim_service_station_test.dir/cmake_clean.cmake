file(REMOVE_RECURSE
  "CMakeFiles/sim_service_station_test.dir/sim_service_station_test.cc.o"
  "CMakeFiles/sim_service_station_test.dir/sim_service_station_test.cc.o.d"
  "sim_service_station_test"
  "sim_service_station_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_service_station_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
