# Empty compiler generated dependencies file for sim_service_station_test.
# This may be replaced when dependencies are built.
