# Sanitizer presets: configure with -DHOTMAN_SANITIZE=<preset>.
#
#   cmake -B build-asan -S . -DHOTMAN_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DHOTMAN_SANITIZE=thread
#
# Accepted values: address, thread, undefined, or a ;- or ,-separated
# combination (thread cannot be combined with address). Flags propagate to
# every target (library, tests, benches, examples) because they are added
# at directory scope of the top-level CMakeLists before any subdirectory.
#
# Each preset also exports:
#   HOTMAN_SANITIZE_LABEL    - extra ctest label ("asan", "tsan", "ubsan",
#                              combined presets get every matching label),
#                              so `ctest -L tsan` names the suite that must
#                              be report-clean under that preset;
#   HOTMAN_SANITIZER_TEST_ENV - ENVIRONMENT entries for tests: halt on the
#                              first report so sanitizer findings fail the
#                              suite instead of scrolling by. Suppression
#                              files (sanitizers/*.supp) are wired in only
#                              when present; each entry there must carry a
#                              justifying comment.

set(HOTMAN_SANITIZE "" CACHE STRING
    "Sanitizer preset: address, thread, undefined, or combination")
set_property(CACHE HOTMAN_SANITIZE PROPERTY STRINGS
             "" "address" "thread" "undefined" "address;undefined")

set(HOTMAN_SANITIZE_LABEL "")
set(HOTMAN_SANITIZER_TEST_ENV "")

if(HOTMAN_SANITIZE)
  # Allow comma separation so shells need no quoting: address,undefined.
  string(REPLACE "," ";" _hotman_san_list "${HOTMAN_SANITIZE}")

  set(_hotman_san_flags "")
  foreach(_san IN LISTS _hotman_san_list)
    if(_san STREQUAL "address")
      list(APPEND _hotman_san_flags -fsanitize=address)
      list(APPEND HOTMAN_SANITIZE_LABEL asan)
    elseif(_san STREQUAL "thread")
      list(APPEND _hotman_san_flags -fsanitize=thread)
      list(APPEND HOTMAN_SANITIZE_LABEL tsan)
    elseif(_san STREQUAL "undefined")
      # -fno-sanitize-recover turns every UB report into a hard failure.
      list(APPEND _hotman_san_flags -fsanitize=undefined
           -fno-sanitize-recover=all)
      list(APPEND HOTMAN_SANITIZE_LABEL ubsan)
    else()
      message(FATAL_ERROR "Unknown HOTMAN_SANITIZE value '${_san}' "
              "(expected address, thread or undefined)")
    endif()
  endforeach()

  if("tsan" IN_LIST HOTMAN_SANITIZE_LABEL AND
     "asan" IN_LIST HOTMAN_SANITIZE_LABEL)
    message(FATAL_ERROR "thread and address sanitizers cannot be combined")
  endif()

  # Frame pointers + debug info keep sanitizer stacks readable even in
  # optimized configurations.
  list(APPEND _hotman_san_flags -fno-omit-frame-pointer -g)

  add_compile_options(${_hotman_san_flags})
  add_link_options(${_hotman_san_flags})

  if("asan" IN_LIST HOTMAN_SANITIZE_LABEL)
    set(_asan_opts "halt_on_error=1:detect_leaks=1")
    if(EXISTS ${PROJECT_SOURCE_DIR}/sanitizers/lsan.supp)
      list(APPEND HOTMAN_SANITIZER_TEST_ENV
           "LSAN_OPTIONS=suppressions=${PROJECT_SOURCE_DIR}/sanitizers/lsan.supp")
    endif()
    list(APPEND HOTMAN_SANITIZER_TEST_ENV "ASAN_OPTIONS=${_asan_opts}")
  endif()
  if("tsan" IN_LIST HOTMAN_SANITIZE_LABEL)
    set(_tsan_opts "halt_on_error=1:second_deadlock_stack=1")
    if(EXISTS ${PROJECT_SOURCE_DIR}/sanitizers/tsan.supp)
      string(APPEND _tsan_opts
             ":suppressions=${PROJECT_SOURCE_DIR}/sanitizers/tsan.supp")
    endif()
    list(APPEND HOTMAN_SANITIZER_TEST_ENV "TSAN_OPTIONS=${_tsan_opts}")
  endif()
  if("ubsan" IN_LIST HOTMAN_SANITIZE_LABEL)
    list(APPEND HOTMAN_SANITIZER_TEST_ENV "UBSAN_OPTIONS=print_stacktrace=1")
  endif()

  message(STATUS "hotman: sanitizers enabled (${HOTMAN_SANITIZE}), "
          "ctest label(s): ${HOTMAN_SANITIZE_LABEL}")
endif()
