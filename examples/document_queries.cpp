// Document-query tour: the embedded MongoDB-like engine on its own — the
// "complex query functions like relational databases" that distinguish
// MyStore from plain key-value stores (Dynamo/Cassandra, §2). Shows CRUD,
// rich filters, updates, secondary indexes and query plans.

#include <cstdio>

#include "bson/json.h"
#include "common/clock.h"
#include "docstore/database.h"
#include "docstore/journal.h"

using namespace hotman;        // NOLINT: example brevity
using bson::Array;
using bson::Document;
using bson::Value;

namespace {

void Show(const char* label, const Result<std::vector<Document>>& docs) {
  std::printf("%s\n", label);
  if (!docs.ok()) {
    std::printf("  error: %s\n", docs.status().ToString().c_str());
    return;
  }
  for (const Document& doc : *docs) {
    std::printf("  %s\n", bson::ToJson(doc).c_str());
  }
}

}  // namespace

int main() {
  ManualClock clock(1357000000 * kMicrosPerSecond);
  docstore::Database db("veepalms", /*machine_id=*/1, &clock);
  docstore::Collection* components = db.GetCollection("components");

  // --- insert experiment components -----------------------------------------
  const struct {
    const char* name;
    const char* kind;
    int pins;
    double price;
  } catalogue[] = {
      {"Resistor5", "passive", 2, 0.10},   {"Capacitor10", "passive", 2, 0.25},
      {"OpAmp741", "active", 8, 1.20},     {"Battery9V", "source", 2, 2.50},
      {"Voltmeter", "instrument", 2, 9.99}, {"Oscilloscope", "instrument", 4, 89.0},
  };
  for (const auto& item : catalogue) {
    Document doc;
    doc.Append("name", Value(item.name));
    doc.Append("kind", Value(item.kind));
    doc.Append("pins", Value(std::int32_t{item.pins}));
    doc.Append("price", Value(item.price));
    doc.Append("tags", Value(Array{Value("circuit"), Value(item.kind)}));
    (void)components->Insert(std::move(doc));
  }
  std::printf("inserted %zu components\n\n", components->NumDocuments());

  // --- rich filters -----------------------------------------------------------
  Document cheap_passives{{"kind", Value("passive")},
                          {"price", Value(Document{{"$lt", Value(1.0)}})}};
  Show("passive components under $1  {kind:'passive', price:{$lt:1}}:",
       components->Find(cheap_passives));

  Document many_pins{{"pins", Value(Document{{"$gte", Value(std::int32_t{4})}})}};
  docstore::FindOptions by_price_desc;
  by_price_desc.sort = Document{{"price", Value(std::int32_t{-1})}};
  by_price_desc.projection =
      Document{{"name", Value(std::int32_t{1})}, {"price", Value(std::int32_t{1})},
               {"_id", Value(std::int32_t{0})}};
  Show("\n>=4 pins, priciest first, projected {name, price}:",
       components->Find(many_pins, by_price_desc));

  Document regex{{"name", Value(Document{{"$regex", Value("^(Volt|Osc)")}})}};
  Show("\nregex {name: /^(Volt|Osc)/}:", components->Find(regex));

  Document in_list{{"kind", Value(Document{
                       {"$in", Value(Array{Value("source"), Value("active")})}})}};
  Show("\n$in over kinds:", components->Find(in_list));

  // --- updates ----------------------------------------------------------------
  Document raise{{"$mul", Value(Document{{"price", Value(1.1)}})},
                 {"$push", Value(Document{{"tags", Value("price-updated")}})}};
  docstore::UpdateOptions all;
  all.multi = true;
  auto updated = components->Update(Document{{"kind", Value("instrument")}},
                                    raise, all);
  std::printf("\n10%% price bump on instruments: %zu matched, %zu modified\n",
              updated->matched, updated->modified);

  // --- secondary index and query plans ----------------------------------------
  std::printf("\nplan without index on kind : %s\n",
              components->Explain(Document{{"kind", Value("passive")}})->ToString()
                  .c_str());
  (void)components->CreateIndex(docstore::IndexSpec{"kind", false});
  std::printf("plan with index on kind    : %s\n",
              components->Explain(Document{{"kind", Value("passive")}})->ToString()
                  .c_str());
  std::printf("plan for _id point lookup  : %s\n",
              components
                  ->Explain(Document{{"_id", Value(bson::ObjectId())}})
                  ->ToString()
                  .c_str());

  // --- durability: journal + replay --------------------------------------------
  const std::string journal_path = "/tmp/hotman_example_journal.log";
  std::remove(journal_path.c_str());
  {
    auto journal = docstore::Journal::Open(journal_path);
    if (journal.ok()) {
      docstore::Database durable("durable", 2, &clock);
      (void)(*journal)->Replay(&durable);
      durable.AttachJournal(journal->get());
      (void)durable.GetCollection("scenes")
          ->Insert(Document{{"name", Value("circuit-lab")}});
      (void)durable.GetCollection("scenes")
          ->Insert(Document{{"name", Value("optics-bench")}});
      std::printf("\njournal: appended %zu records to %s\n",
                  (*journal)->NumAppended(), journal_path.c_str());
    }
  }
  {
    auto journal = docstore::Journal::Open(journal_path);
    docstore::Database recovered("durable", 2, &clock);
    (void)(*journal)->Replay(&recovered);
    std::printf("journal: replay recovered %zu scenes after 'restart'\n",
                recovered.GetCollection("scenes")->NumDocuments());
  }
  std::remove(journal_path.c_str());
  return 0;
}
