// Failure-handling tour: walks through the paper's §5.2.4 machinery live —
// short failures (hinted handoff + write-back, Fig. 8), long failures (seed
// detection, ring removal, replica supplementation, Fig. 9) and node
// arrival (range migration) — printing the cluster's state at each step.

#include <cstdio>

#include "cluster/cluster.h"
#include "gossip/messages.h"

using namespace hotman;  // NOLINT: example brevity

namespace {

void PrintRings(cluster::Cluster* cluster, const char* label) {
  std::printf("%s\n", label);
  for (cluster::StorageNode* node : cluster->nodes()) {
    if (!node->server()->IsHealthy()) {
      std::printf("  %-10s  [%s]\n", node->id().c_str(),
                  node->server()->CheckAvailable().ToString().c_str());
      continue;
    }
    std::printf("  %-10s  sees %zu members, %zu records, %zu hints pending\n",
                node->id().c_str(), node->ring().NumPhysicalNodes(),
                node->store()->NumRecords(), node->hints()->PendingCount());
  }
}

}  // namespace

int main() {
  cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(5, /*seeds=*/2);
  cluster::Cluster cluster(config, /*seed=*/2026);
  if (!cluster.Start().ok()) return 1;

  // Seed data.
  for (int i = 0; i < 25; ++i) {
    (void)cluster.PutSync("asset" + std::to_string(i), ToBytes("payload"));
  }
  cluster.RunFor(3 * kMicrosPerSecond);
  PrintRings(&cluster, "== steady state ==");

  // --- Short failure: Fig. 8 -------------------------------------------------
  cluster::StorageNode* any = cluster.nodes().front();
  const std::string victim = any->ring().PreferenceList("asset0", 3)[1];
  std::printf("\n== short failure: network exception at %s (Fig. 8) ==\n",
              victim.c_str());
  cluster.injector()->Inject(cluster.node(victim)->server(),
                             docstore::FaultMode::kNetworkException,
                             4 * kMicrosPerSecond);
  Status s = cluster.PutSync("asset0", ToBytes("updated-during-outage"));
  std::printf("write during outage -> %s (quorum masked the outage)\n",
              s.ToString().c_str());
  cluster.RunFor(2 * kMicrosPerSecond);
  PrintRings(&cluster, "-- hints staged on a temporary node --");
  cluster.RunFor(15 * kMicrosPerSecond);
  auto recovered = cluster.node(victim)->store()->GetByKey("asset0");
  std::printf("write-back after recovery: %s\n",
              recovered.ok() ? "data restored on the intended replica"
                             : recovered.status().ToString().c_str());
  std::printf("hints delivered: %zu\n",
              cluster.AggregateStats().hints_delivered);

  // --- Long failure: Fig. 9 --------------------------------------------------
  std::printf("\n== long failure: %s breaks down (Fig. 9) ==\n", "db5:19870");
  (void)cluster.CrashNode("db5:19870");
  std::printf("gossip heartbeats go silent; seeds escalate suspect -> dead...\n");
  cluster.RunFor(30 * kMicrosPerSecond);
  PrintRings(&cluster, "-- after seed-driven removal and re-replication --");
  std::printf("re-replications: %zu\n", cluster.AggregateStats().rereplications);
  int readable = 0;
  for (int i = 0; i < 25; ++i) {
    if (cluster.GetSync("asset" + std::to_string(i)).ok()) ++readable;
  }
  std::printf("all %d/25 assets still readable\n", readable);

  // --- Node arrival -----------------------------------------------------------
  std::printf("\n== node arrival: db6 joins ==\n");
  cluster::NodeSpec fresh;
  fresh.address = "db6:19870";
  fresh.vnodes = 128;
  (void)cluster.AddNode(fresh);
  cluster.RunFor(10 * kMicrosPerSecond);
  PrintRings(&cluster, "-- after migration to the newcomer --");
  std::printf("gossip view from db6:\n");
  cluster::StorageNode* newcomer = cluster.node("db6:19870");
  for (const auto& [endpoint, state] : newcomer->gossiper()->states().states()) {
    std::printf("  %s\n", gossip::FormatStateLine(endpoint, state).c_str());
  }

  std::printf("\nfailover tour complete.\n");
  return readable == 25 ? 0 : 1;
}
