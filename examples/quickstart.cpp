// Quickstart: boot a five-node MyStore cluster, store and query records,
// and survive a node crash — the 60-second tour of the public API.

#include <cstdio>

#include "core/mystore.h"
#include "bson/json.h"

using namespace hotman;  // NOLINT: example brevity

int main() {
  // 1. A paper-shaped deployment: 5 DB nodes (1 seed), (N, W, R) = (3, 2, 1),
  //    4 cache servers, stateless REST front end.
  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  core::MyStore store(config);
  Status started = store.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: %zu nodes, (N,W,R)=(%d,%d,%d)\n",
              store.storage()->nodes().size(),
              config.cluster.replication_factor, config.cluster.write_quorum,
              config.cluster.read_quorum);

  // 2. POST a few unstructured objects (the VeePalms component example).
  Status put = store.Post("Resistor5", ToBytes("this is test data for read"));
  std::printf("POST Resistor5      -> %s\n", put.ToString().c_str());
  put = store.Post("SceneCircuit", ToBytes("<scene><wire/><lamp/></scene>"));
  std::printf("POST SceneCircuit   -> %s\n", put.ToString().c_str());

  // POST without a key: the system mints one and returns it.
  auto minted = store.PostNew(ToBytes("guideline video bytes..."));
  std::printf("POST (new)          -> key=%s\n",
              minted.ok() ? minted->c_str() : minted.status().ToString().c_str());

  // 3. GET through the cache tier.
  auto value = store.Get("Resistor5");
  std::printf("GET Resistor5       -> \"%s\"\n",
              value.ok() ? ToString(*value).c_str()
                         : value.status().ToString().c_str());
  value = store.Get("Resistor5");  // second read: cache hit
  std::printf("cache hit rate      -> %.0f%%\n",
              store.cache_pool()->HitRate() * 100.0);

  // 4. Inspect the stored record through the storage module directly.
  auto* node = store.storage()->CoordinatorFor("Resistor5");
  auto record = node->store()->GetByKey("Resistor5");
  if (record.ok()) {
    std::printf("record              -> %s\n", bson::ToJson(*record).c_str());
  }

  // 5. Crash a replica holder; reads keep working (quorum masks it).
  std::string victim = node->ring().PreferenceList("Resistor5", 3).front();
  (void)store.storage()->CrashNode(victim);
  std::printf("crashed node        -> %s\n", victim.c_str());
  store.cache_pool()->Clear();  // force the read to hit the cluster
  value = store.Get("Resistor5");
  std::printf("GET after crash     -> %s\n",
              value.ok() ? "OK (replicas answered)"
                         : value.status().ToString().c_str());

  // 6. Wait for the seeds to detect the long failure and repair replicas.
  store.RunFor(30 * kMicrosPerSecond);
  std::printf("repair traffic      -> %zu re-replications\n",
              store.storage()->AggregateStats().rereplications);

  // 7. DELETE is logical: the record becomes a tombstone.
  Status del = store.Delete("SceneCircuit");
  std::printf("DELETE SceneCircuit -> %s\n", del.ToString().c_str());
  value = store.Get("SceneCircuit");
  std::printf("GET after delete    -> %s (expected NotFound)\n",
              value.status().ToString().c_str());
  return 0;
}
