// REST interface tour: the stateless user-interface tier of Fig. 1 —
// GET/POST/DELETE semantics, round-robin distribution over logical worker
// processes, and the Fig. 2 URI digital-signature authorization flow.

#include <cstdio>

#include "core/mystore.h"
#include "rest/signature.h"

using namespace hotman;  // NOLINT: example brevity

namespace {

const char* CodeName(rest::StatusCode code) {
  switch (code) {
    case rest::StatusCode::kOk:
      return "200 OK";
    case rest::StatusCode::kCreated:
      return "201 Created";
    case rest::StatusCode::kNoContent:
      return "204 No Content";
    case rest::StatusCode::kBadRequest:
      return "400 Bad Request";
    case rest::StatusCode::kUnauthorized:
      return "401 Unauthorized";
    case rest::StatusCode::kNotFound:
      return "404 Not Found";
    case rest::StatusCode::kServiceUnavailable:
      return "503 Service Unavailable";
  }
  return "?";
}

void Print(const char* line, const rest::Response& response) {
  std::printf("%-34s -> %s%s%s\n", line, CodeName(response.code),
              response.body.empty() ? "" : ", body=",
              response.body.empty() ? "" : ToString(response.body).c_str());
}

}  // namespace

int main() {
  core::MyStore store(core::MyStoreConfig{});
  if (!store.Start().ok()) return 1;

  std::printf("== CRUD over HTTP methods (Sect. 4) ==\n");
  rest::Request request;
  request.method = rest::Method::kPost;
  request.path = "/data/Resistor5";
  request.body = ToBytes("this is test data for read");
  Print("POST /data/Resistor5", store.Handle(request));

  request.method = rest::Method::kGet;
  request.body.clear();
  Print("GET  /data/Resistor5", store.Handle(request));

  request.method = rest::Method::kPost;
  request.path = "/data";
  request.body = ToBytes("anonymous blob");
  rest::Response created = store.Handle(request);
  Print("POST /data  (no key -> minted)", created);
  const std::string minted = ToString(created.body);

  request.method = rest::Method::kDelete;
  request.path = "/data/" + minted;
  request.body.clear();
  Print(("DELETE /data/" + minted.substr(0, 8) + "...").c_str(),
        store.Handle(request));

  request.method = rest::Method::kGet;
  Print("GET  the deleted key", store.Handle(request));

  std::printf("\n== round-robin across spawn-fcgi workers ==\n");
  request.method = rest::Method::kGet;
  request.path = "/data/Resistor5";
  for (int i = 0; i < store.router()->num_workers(); ++i) {
    (void)store.Handle(request);
  }
  std::printf("dispatch counts per logical process:");
  for (std::size_t count : store.router()->dispatch_counts()) {
    std::printf(" %zu", count);
  }
  std::printf("\n");

  std::printf("\n== URI digital signature (Fig. 2) ==\n");
  // Client side: register once, then per request obtain TOKEN, compute
  // signature = MD5(token + uri + secret), append both to the URI.
  const std::string secret = store.token_db()->RegisterUser("student42");
  std::printf("secret key (from web interface): %s...\n", secret.substr(0, 12).c_str());
  auto token = store.token_db()->IssueToken("student42");
  std::printf("TOKEN (from TOKEN DB):           %s...\n",
              token->substr(0, 12).c_str());
  const std::string signed_uri =
      rest::BuildSignedUri("/data/Resistor5", *token, secret);
  std::printf("authorized request URI:          %s\n", signed_uri.c_str());

  rest::Request authed;
  authed.method = rest::Method::kGet;
  std::map<std::string, std::string> query;
  (void)rest::ParseUri(signed_uri, &authed.path, &authed.query);
  Print("GET signed URI", store.HandleSigned("student42", authed));
  Print("GET replayed token (must fail)", store.HandleSigned("student42", authed));

  rest::Request forged = authed;
  forged.query["signature"] = "0123456789abcdef0123456789abcdef";
  auto token2 = store.token_db()->IssueToken("student42");
  forged.query["token"] = *token2;
  Print("GET forged signature (must fail)", store.HandleSigned("student42", forged));
  return 0;
}
