// Ring explorer: a standalone look at the consistent-hashing substrate —
// virtual-node balance, capacity-weighted placement (more powerful node =>
// more virtual nodes), preference lists, and migration volume versus the
// mod-N baseline of Eq. (2).

#include <cstdio>
#include <map>
#include <string>

#include "hashring/ketama.h"
#include "hashring/migration.h"
#include "hashring/ring.h"

using namespace hotman;          // NOLINT: example brevity
using namespace hotman::hashring;  // NOLINT

namespace {

std::map<NodeId, int> CountPrimaries(const Ring& ring, int keys) {
  std::map<NodeId, int> counts;
  for (int i = 0; i < keys; ++i) {
    counts[*ring.PrimaryFor("object" + std::to_string(i))]++;
  }
  return counts;
}

void PrintShare(const Ring& ring, int keys) {
  for (const auto& [node, count] : CountPrimaries(ring, keys)) {
    const double share = 100.0 * count / keys;
    std::printf("  %-8s %5d keys (%5.1f%%)  [vnodes=%d] ", node.c_str(), count,
                share, ring.VnodeCount(node));
    for (int bar = 0; bar < static_cast<int>(share); ++bar) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const int kKeys = 20000;

  std::printf("== 1. virtual nodes fix small-cluster imbalance ==\n");
  for (int vnodes : {1, 8, 64, 256}) {
    Ring ring;
    for (int i = 0; i < 4; ++i) {
      (void)ring.AddNode("db" + std::to_string(i), vnodes);
    }
    auto counts = CountPrimaries(ring, kKeys);
    int min = kKeys, max = 0;
    for (const auto& [node, count] : counts) {
      min = std::min(min, count);
      max = std::max(max, count);
    }
    std::printf("  vnodes=%-4d  min/max key share = %5.1f%% / %5.1f%%\n", vnodes,
                100.0 * min / kKeys, 100.0 * max / kKeys);
  }

  std::printf("\n== 2. capacity-weighted placement ==\n");
  std::printf("  (\"more powerful means more virtual nodes\")\n");
  Ring weighted;
  (void)weighted.AddNode("big-box", 256);
  (void)weighted.AddNode("mid-box", 128);
  (void)weighted.AddNode("old-box", 64);
  PrintShare(weighted, kKeys);

  std::printf("\n== 3. preference list for a key ==\n");
  Ring ring;
  for (int i = 0; i < 5; ++i) (void)ring.AddNode("db" + std::to_string(i), 128);
  const std::string key = "Resistor5";
  std::printf("  key \"%s\" hashes to %#010x\n", key.c_str(), Ring::HashKey(key));
  auto prefs = ring.PreferenceList(key, 3);
  for (std::size_t i = 0; i < prefs.size(); ++i) {
    std::printf("  replica %zu -> %s%s\n", i + 1, prefs[i].c_str(),
                i == 0 ? "  (primary / coordinator)" : "");
  }

  std::printf("\n== 4. migration volume: consistent hashing vs mod-N ==\n");
  Ring before;
  for (int i = 0; i < 5; ++i) (void)before.AddNode("db" + std::to_string(i), 128);
  Ring after;
  for (int i = 0; i < 5; ++i) (void)after.AddNode("db" + std::to_string(i), 128);
  (void)after.AddNode("db5", 128);
  const double ring_fraction = MigratedFraction(PlanMigration(before, after));
  int modn_moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = "object" + std::to_string(i);
    if (ModNPlacement(k, 5) != ModNPlacement(k, 6)) ++modn_moved;
  }
  std::printf("  adding a 6th node:\n");
  std::printf("    consistent hashing (Eq. 1) remaps %5.1f%% of the keyspace\n",
              100.0 * ring_fraction);
  std::printf("    hash mod N        (Eq. 2) remaps %5.1f%% of the keys\n",
              100.0 * modn_moved / kKeys);
  std::printf("    (ideal minimum: 1/6 = 16.7%%)\n");

  std::printf("\n== 5. removal only affects neighbours ==\n");
  auto before_owners = CountPrimaries(ring, kKeys);
  Ring shrunk = ring;
  (void)shrunk.RemoveNode("db2");
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = "object" + std::to_string(i);
    if (*ring.PrimaryFor(k) != *shrunk.PrimaryFor(k)) ++moved;
  }
  std::printf("  removing db2 remapped %d/%d keys (%4.1f%%, exactly db2's share "
              "of %4.1f%%)\n",
              moved, kKeys, 100.0 * moved / kKeys,
              100.0 * before_owners["db2"] / kKeys);
  return 0;
}
