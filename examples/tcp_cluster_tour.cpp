// TCP cluster tour: the failover story of failover_tour.cpp, but over real
// sockets instead of the simulator. Three storage nodes run in-process,
// each on its own net::TcpTransport (own epoll loop thread, own loopback
// port); a net::RemoteClient talks to them exactly the way hotman_ctl talks
// to a hotmand daemon. One node is then stopped to show the sloppy quorum
// absorbing the loss.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/config.h"
#include "cluster/node_server.h"
#include "cluster/storage_node.h"
#include "common/bytes.h"
#include "net/remote_client.h"
#include "net/tcp_transport.h"

using namespace hotman;  // NOLINT: example brevity

namespace {

constexpr std::uint16_t kBasePort = 21870;

struct TourNode {
  std::string name;
  std::uint16_t port = 0;
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<cluster::StorageNode> node;
  std::unique_ptr<cluster::NodeServer> server;
};

/// Runs `fn` on the node's loop thread and waits: StorageNode internals are
/// loop-confined, so inspection must happen there.
template <typename Fn>
void OnLoop(TourNode* tn, Fn fn) {
  std::promise<void> done;
  tn->transport->Post([&] {
    fn();
    done.set_value();
  });
  done.get_future().wait();
}

void PrintNodes(std::vector<TourNode>& nodes, const char* label) {
  std::printf("%s\n", label);
  for (TourNode& tn : nodes) {
    if (tn.node == nullptr) {
      std::printf("  %-10s  [stopped]\n", tn.name.c_str());
      continue;
    }
    std::size_t records = 0, hints = 0, members = 0;
    OnLoop(&tn, [&] {
      records = tn.node->store()->NumRecords();
      hints = tn.node->hints()->PendingCount();
      members = tn.node->ring().NumPhysicalNodes();
    });
    std::printf("  %-10s  sees %zu members, %zu records, %zu hints pending\n",
                tn.name.c_str(), members, records, hints);
  }
}

void StopNode(TourNode* tn) {
  OnLoop(tn, [&] { tn->node->Stop(); });
  tn->transport->Stop();
  tn->node.reset();
  tn->server.reset();
  tn->transport.reset();
}

}  // namespace

int main() {
  // The same NWR shape the daemons use: N=3 W=2 R=1, static membership.
  cluster::ClusterConfig config;
  config.replication_factor = 3;
  config.write_quorum = 2;
  config.read_quorum = 1;
  config.simulate_service_time = false;  // real CPU work, real clocks
  config.gossip.interval = 200 * kMicrosPerMilli;

  std::vector<TourNode> nodes(3);
  for (int i = 0; i < 3; ++i) {
    nodes[i].port = static_cast<std::uint16_t>(kBasePort + i);
    nodes[i].name = "db" + std::to_string(i + 1) + ":" +
                    std::to_string(nodes[i].port);
    cluster::NodeSpec spec;
    spec.address = nodes[i].name;
    spec.is_seed = (i == 0);
    config.nodes.push_back(spec);
  }
  if (Status v = config.Validate(); !v.ok()) {
    std::printf("bad config: %s\n", v.ToString().c_str());
    return 1;
  }

  for (int i = 0; i < 3; ++i) {
    net::TcpTransportConfig tconfig;
    tconfig.listen_host = "127.0.0.1";
    tconfig.listen_port = nodes[i].port;
    for (int j = 0; j < 3; ++j) {
      if (j == i) continue;
      tconfig.peers[nodes[j].name] = net::TcpPeer{"127.0.0.1", nodes[j].port};
    }
    nodes[i].transport = std::make_unique<net::TcpTransport>(tconfig);
    nodes[i].node = std::make_unique<cluster::StorageNode>(
        config.nodes[i], config, nodes[i].transport.get(),
        /*injector=*/nullptr, /*seed=*/2026 + i);
    nodes[i].server = std::make_unique<cluster::NodeServer>(
        nodes[i].node.get(), nodes[i].transport.get());
    nodes[i].server->Start();
    if (Status s = nodes[i].transport->Start(); !s.ok()) {
      std::printf("transport start failed (port %u in use?): %s\n",
                  nodes[i].port, s.ToString().c_str());
      return 1;
    }
    OnLoop(&nodes[i], [&] { nodes[i].node->Start(); });
  }
  std::printf("== three nodes serving on loopback ports %u-%u ==\n",
              kBasePort, kBasePort + 2);

  // A client, exactly as hotman_ctl would connect.
  net::RemoteClientConfig cconfig;
  cconfig.host = "127.0.0.1";
  cconfig.port = nodes[0].port;
  cconfig.name = "tour-client";
  net::RemoteClient client(cconfig);

  // Seed data through db1; any node can coordinate.
  int stored = 0;
  for (int i = 0; i < 25; ++i) {
    if (client.Put(nodes[0].name, "asset" + std::to_string(i),
                   ToBytes("payload"))
            .ok()) {
      ++stored;
    }
  }
  std::printf("stored %d/25 assets via %s\n", stored, nodes[0].name.c_str());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  PrintNodes(nodes, "-- steady state --");

  // Read through a different coordinator: the quorum fans out over TCP.
  net::RemoteClientConfig c2config = cconfig;
  c2config.port = nodes[1].port;
  c2config.name = "tour-client-2";
  net::RemoteClient client2(c2config);
  auto roundtrip = client2.Get(nodes[1].name, "asset7");
  std::printf("read asset7 via %s -> %s\n", nodes[1].name.c_str(),
              roundtrip.ok() ? ToString(*roundtrip).c_str()
                             : roundtrip.status().ToString().c_str());

  // --- Node loss over real sockets -----------------------------------------
  std::printf("\n== stopping %s: connections drop, quorum absorbs it ==\n",
              nodes[2].name.c_str());
  StopNode(&nodes[2]);

  // W=2 of N=3 still holds on the two survivors; early writes may stage
  // hints for the missing replica.
  int survived = 0;
  for (int attempt = 0; survived < 10 && attempt < 200; ++attempt) {
    const std::string key = "after" + std::to_string(survived);
    if (!client.Put(nodes[0].name, key, ToBytes("post-stop")).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    ++survived;
  }
  std::printf("writes after the loss: %d/10 succeeded\n", survived);
  auto still = client2.Get(nodes[1].name, "asset7");
  std::printf("asset7 still readable via %s: %s\n", nodes[1].name.c_str(),
              still.ok() ? "yes" : still.status().ToString().c_str());
  PrintNodes(nodes, "-- after the loss --");

  // Server-side stats over the wire, as hotman_ctl's `stats` command.
  if (auto stats = client.Stats(nodes[0].name); stats.ok()) {
    std::printf("\n%s stats (first 400 bytes):\n%.400s...\n",
                nodes[0].name.c_str(), stats->c_str());
  }

  for (TourNode& tn : nodes) {
    if (tn.node != nullptr) StopNode(&tn);
  }
  std::printf("\ntcp cluster tour complete.\n");
  return (stored == 25 && survived == 10 && still.ok()) ? 0 : 1;
}
