// VeePalms: the paper's production deployment — a multi-discipline virtual
// experiment education platform storing XML components, scenes, guideline
// videos and experiment reports in MyStore. This example mimics a session:
// teachers publish experiment assets, thousands of students fetch them
// (cache-heavy), students submit reports, and the platform keeps serving
// through a node breakdown.

#include <cstdio>
#include <string>

#include "core/mystore.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hotman;  // NOLINT: example brevity

namespace {

Bytes XmlComponent(const std::string& name, int pins) {
  std::string xml = "<component name='" + name + "' pins='" +
                    std::to_string(pins) + "'><model>ideal</model></component>";
  return ToBytes(xml);
}

}  // namespace

int main() {
  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  config.cache_servers = 4;
  core::MyStore store(config);
  if (!store.Start().ok()) return 1;
  std::printf("== VeePalms on MyStore: 5 DB nodes, 4 cache servers ==\n\n");

  // --- 1. Teachers publish the experiment catalogue -------------------------
  const char* components[] = {"Resistor5", "Capacitor10", "Inductor3",
                              "Voltmeter", "Ammeter", "Battery9V"};
  for (int i = 0; i < 6; ++i) {
    Status s = store.Post(components[i], XmlComponent(components[i], 2 + i % 3));
    std::printf("publish %-12s -> %s\n", components[i], s.ToString().c_str());
  }
  Status s = store.Post("scene:circuit-lab",
                        ToBytes("<scene><place ref='Resistor5' x='10' y='20'/>"
                                "<place ref='Battery9V' x='40' y='20'/></scene>"));
  std::printf("publish scene        -> %s\n", s.ToString().c_str());
  s = store.Post("video:ohms-law-guide", Bytes(512 * 1024, 0x3A));  // 512 KB clip
  std::printf("publish video (512K) -> %s\n\n", s.ToString().c_str());

  // --- 2. A wave of students loads the experiment (read-heavy, cache-warm) --
  int fetched = 0;
  for (int student = 0; student < 300; ++student) {
    if (store.Get(components[student % 6]).ok()) ++fetched;
    if (store.Get("scene:circuit-lab").ok()) ++fetched;
  }
  std::printf("student fetches: %d ok, cache hit rate %.1f%%\n", fetched,
              store.cache_pool()->HitRate() * 100.0);

  // --- 3. Students submit experiment reports (writes) -----------------------
  for (int student = 0; student < 40; ++student) {
    const std::string key = "report:student" + std::to_string(student);
    std::string body = "<report student='" + std::to_string(student) +
                       "'><result>U=IR verified</result></report>";
    if (!store.Post(key, ToBytes(body)).ok()) {
      std::printf("report %d failed!\n", student);
    }
  }
  store.RunFor(2 * kMicrosPerSecond);
  std::printf("reports stored: %zu replicas cluster-wide\n\n",
              store.storage()->TotalReplicas());

  // --- 4. A DB node breaks down mid-semester --------------------------------
  std::printf("-- node db2 breaks down --\n");
  (void)store.storage()->CrashNode("db2:19870");
  store.cache_pool()->Clear();  // worst case: cold cache during the outage
  int ok_during_outage = 0;
  for (int student = 0; student < 50; ++student) {
    if (store.Get(components[student % 6]).ok()) ++ok_during_outage;
  }
  std::printf("reads during outage: %d/50 served\n", ok_during_outage);

  // Seeds detect the long failure and re-replicate (Fig. 9).
  store.RunFor(60 * kMicrosPerSecond);
  const auto stats = store.storage()->AggregateStats();
  std::printf("repair: %zu records re-replicated, %zu read-repairs\n",
              stats.rereplications, stats.read_repairs);

  // --- 5. Verify every asset is still intact --------------------------------
  int intact = 0;
  for (int i = 0; i < 6; ++i) {
    if (store.Get(components[i]).ok()) ++intact;
  }
  for (int student = 0; student < 40; ++student) {
    if (store.Get("report:student" + std::to_string(student)).ok()) ++intact;
  }
  std::printf("post-repair integrity: %d/46 assets readable\n", intact);
  std::printf("\nVeePalms session complete.\n");
  return intact == 46 ? 0 : 1;
}
