// Video library: the paper's future-work features in action —
// "segmentation, storage and schedule of large video files" (ChunkedStore)
// and background consistency via anti-entropy synchronization.

#include <cstdio>

#include "core/chunked.h"

using namespace hotman;  // NOLINT: example brevity

namespace {

Bytes FakeVideo(std::size_t size) {
  Bytes video(size);
  for (std::size_t i = 0; i < size; ++i) {
    video[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
  }
  return video;
}

}  // namespace

int main() {
  core::MyStoreConfig config;
  config.cluster = cluster::ClusterConfig::PaperSetup();
  config.cluster.anti_entropy = true;  // background consistency on
  config.cluster.anti_entropy_interval = 5 * kMicrosPerSecond;
  core::MyStore store(config);
  if (!store.Start().ok()) return 1;

  core::ChunkedStore::Options options;
  options.segment_bytes = 256 * 1024;  // 256 KB segments
  core::ChunkedStore library(&store, options);

  // --- 1. Upload a "guideline video" (4 MB) ---------------------------------
  const Bytes video = FakeVideo(4 * 1024 * 1024);
  Status s = library.Put("video:ohms-law", video);
  std::printf("upload 4 MB video          -> %s\n", s.ToString().c_str());
  auto manifest = library.GetManifest("video:ohms-law");
  std::printf("manifest                   -> %zu segments x %zu KB (total %.1f MB)\n",
              manifest->num_segments, manifest->segment_bytes / 1024,
              manifest->total_bytes / (1024.0 * 1024.0));

  // --- 2. Segments spread over the whole ring --------------------------------
  cluster::StorageNode* any = store.storage()->nodes().front();
  std::map<std::string, int> primaries;
  for (std::size_t i = 0; i < manifest->num_segments; ++i) {
    primaries[*any->ring().PrimaryFor(
        core::ChunkedStore::SegmentKey("video:ohms-law", i))]++;
  }
  std::printf("segment primaries          ->");
  for (const auto& [node, count] : primaries) {
    std::printf(" %s:%d", node.substr(0, 3).c_str(), count);
  }
  std::printf("  (load spread, not one hot replica set)\n");

  // --- 3. "Schedule": stream segment by segment ------------------------------
  std::printf("streaming                  -> ");
  Bytes played;
  for (std::size_t i = 0; i < manifest->num_segments; ++i) {
    auto segment = library.GetSegment("video:ohms-law", i);
    if (!segment.ok()) {
      std::printf("segment %zu failed!\n", i);
      return 1;
    }
    played.insert(played.end(), segment->begin(), segment->end());
    std::printf("#");
  }
  std::printf(" %zu segments played\n", manifest->num_segments);
  std::printf("playback integrity         -> %s\n",
              played == video ? "bit-exact" : "CORRUPTED");

  // --- 4. Full download too ---------------------------------------------------
  auto full = library.Get("video:ohms-law");
  std::printf("full download              -> %s (%zu bytes)\n",
              full.ok() && *full == video ? "bit-exact" : "failed",
              full.ok() ? full->size() : 0);

  // --- 5. Anti-entropy repairs a cold, never-read replica ---------------------
  auto prefs = any->ring().PreferenceList(
      core::ChunkedStore::SegmentKey("video:ohms-law", 3), 3);
  cluster::StorageNode* victim = store.storage()->node(prefs[2]);
  (void)victim->store()->Purge(core::ChunkedStore::SegmentKey("video:ohms-law", 3));
  std::printf("\nsimulated replica loss of segment 3 on %s\n", victim->id().c_str());
  store.RunFor(30 * kMicrosPerSecond);  // no reads — background sync only
  const bool repaired =
      victim->store()
          ->GetByKey(core::ChunkedStore::SegmentKey("video:ohms-law", 3))
          .ok();
  const auto stats = store.storage()->AggregateStats();
  std::printf("anti-entropy after 30 s    -> %s (%zu rounds, %zu records pushed)\n",
              repaired ? "replica restored without any read" : "NOT repaired",
              stats.ae_rounds, stats.ae_pushed + stats.ae_requested);

  // --- 6. Cleanup --------------------------------------------------------------
  s = library.Delete("video:ohms-law");
  std::printf("delete video               -> %s\n", s.ToString().c_str());
  return repaired ? 0 : 1;
}
