#!/usr/bin/env bash
# Local mirror of the CI matrix (.github/workflows/ci.yml): the same four
# jobs, runnable one at a time or all together.
#
#   scripts/check.sh            # default job: warnings-as-errors + tier1
#   scripts/check.sh asan       # AddressSanitizer + UBSan suite
#   scripts/check.sh tsan       # ThreadSanitizer suite
#   scripts/check.sh tidy       # clang-tidy (if installed) + repo lint
#   scripts/check.sh chaos      # seeded chaos sweep, both profiles
#   scripts/check.sh coverage   # line coverage (scripts/coverage.sh)
#   scripts/check.sh all        # everything, sequentially
#
# Each job configures its own build tree (build-check-<job>/) so sanitizer
# flags never contaminate the regular build/ directory.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HOTMAN_BUILD_JOBS:-$(nproc)}"

run_suite() {  # run_suite <name> <label> [cmake args...]
  local name="$1" label="$2"
  shift 2
  local dir="build-check-${name}"
  echo "==> [${name}] configure (${*:-default flags})"
  cmake -B "${dir}" -S . -DHOTMAN_WERROR=ON "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "==> [${name}] ctest -L ${label}"
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${JOBS}"
}

job_default() { run_suite default tier1; }
job_asan()    { run_suite asan asan -DHOTMAN_SANITIZE=address,undefined; }
job_tsan()    { run_suite tsan tsan -DHOTMAN_SANITIZE=thread; }

# Chaos: the ctest suite (50 seeds per profile plus the negative controls)
# and a determinism-verified runner sweep, mirroring CI's PR smoke. Seeds
# are virtual-time so the whole job is seconds of wall-clock.
job_chaos() {
  run_suite default chaos
  local seeds="${HOTMAN_CHAOS_SEEDS:-1-50}"
  for profile in quorum convergence; do
    echo "==> [chaos] chaos_runner --seeds=${seeds} --profile=${profile} --verify"
    ./build-check-default/tools/chaos_runner \
      --seeds="${seeds}" --profile="${profile}" --verify --quiet
  done
  echo "==> [chaos] chaos_runner --seeds=${seeds} --profile=quorum --fast-reads --verify"
  ./build-check-default/tools/chaos_runner \
    --seeds="${seeds}" --profile=quorum --fast-reads --verify --quiet
}

job_coverage() { scripts/coverage.sh; }

job_tidy() {
  echo "==> [tidy] repo lint"
  python3 tools/lint_hotman.py
  python3 tools/lint_hotman_test.py
  if command -v run-clang-tidy >/dev/null 2>&1; then
    echo "==> [tidy] clang-tidy"
    cmake -B build-check-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -quiet -p build-check-tidy "src/.*" || exit 1
  else
    echo "==> [tidy] clang-tidy not installed, skipped (CI runs it)"
  fi
}

case "${1:-default}" in
  default)  job_default ;;
  asan)     job_asan ;;
  tsan)     job_tsan ;;
  tidy)     job_tidy ;;
  chaos)    job_chaos ;;
  coverage) job_coverage ;;
  all)      job_default; job_asan; job_tsan; job_tidy; job_chaos ;;
  *) echo "usage: scripts/check.sh [default|asan|tsan|tidy|chaos|coverage|all]" >&2
     exit 2 ;;
esac
echo "==> OK"
