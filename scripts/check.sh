#!/usr/bin/env bash
# Local mirror of the CI matrix (.github/workflows/ci.yml): the same four
# jobs, runnable one at a time or all together.
#
#   scripts/check.sh            # default job: warnings-as-errors + tier1
#   scripts/check.sh asan       # AddressSanitizer + UBSan suite
#   scripts/check.sh ubsan      # UndefinedBehaviorSanitizer alone
#   scripts/check.sh tsan       # ThreadSanitizer suite
#   scripts/check.sh tidy       # repo lint + analyzer + clang-tidy
#   scripts/check.sh chaos      # seeded chaos sweep, all profiles
#   scripts/check.sh coverage   # line coverage (scripts/coverage.sh)
#   scripts/check.sh all        # everything, sequentially
#
# Each job configures its own build tree (build-check-<job>/) so sanitizer
# flags never contaminate the regular build/ directory.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HOTMAN_BUILD_JOBS:-$(nproc)}"

run_suite() {  # run_suite <name> <label> [cmake args...]
  local name="$1" label="$2"
  shift 2
  local dir="build-check-${name}"
  echo "==> [${name}] configure (${*:-default flags})"
  cmake -B "${dir}" -S . -DHOTMAN_WERROR=ON "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "==> [${name}] ctest -L ${label}"
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${JOBS}"
}

job_default() { run_suite default tier1; }
job_asan()    { run_suite asan asan -DHOTMAN_SANITIZE=address,undefined; }
# UBSan alone: catches what the asan pairing can mask (ASan's allocator
# hides some invalid-pointer arithmetic) and matches the CI ubsan job.
job_ubsan()   { run_suite ubsan ubsan -DHOTMAN_SANITIZE=undefined; }
job_tsan()    { run_suite tsan tsan -DHOTMAN_SANITIZE=thread; }

# Chaos: the ctest suite (50 seeds per profile plus the negative controls)
# and a determinism-verified runner sweep, mirroring CI's PR smoke. Seeds
# are virtual-time so the whole job is seconds of wall-clock.
job_chaos() {
  run_suite default chaos
  local seeds="${HOTMAN_CHAOS_SEEDS:-1-50}"
  for profile in quorum convergence membership skew; do
    echo "==> [chaos] chaos_runner --seeds=${seeds} --profile=${profile} --verify"
    ./build-check-default/tools/chaos_runner \
      --seeds="${seeds}" --profile="${profile}" --verify --quiet
  done
  echo "==> [chaos] chaos_runner --seeds=${seeds} --profile=quorum --fast-reads --verify"
  ./build-check-default/tools/chaos_runner \
    --seeds="${seeds}" --profile=quorum --fast-reads --verify --quiet
  echo "==> [chaos] chaos_runner --seeds=${seeds} --profile=convergence --shards=2 --verify"
  ./build-check-default/tools/chaos_runner \
    --seeds="${seeds}" --profile=convergence --shards=2 --verify --quiet
}

job_coverage() { scripts/coverage.sh; }

job_tidy() {
  echo "==> [tidy] repo lint"
  python3 tools/lint_hotman.py
  python3 tools/lint_hotman_test.py
  echo "==> [tidy] whole-program analysis (tools/analyze)"
  python3 tools/analyze/hotman_analyze.py --json ANALYZE_findings.json
  python3 tools/analyze/hotman_analyze_test.py
  echo "==> [tidy] clang-tidy (baseline-aware; skips if not installed)"
  scripts/run_clang_tidy.sh build-check-tidy
}

case "${1:-default}" in
  default)  job_default ;;
  asan)     job_asan ;;
  ubsan)    job_ubsan ;;
  tsan)     job_tsan ;;
  tidy)     job_tidy ;;
  chaos)    job_chaos ;;
  coverage) job_coverage ;;
  all)      job_default; job_asan; job_ubsan; job_tsan; job_tidy; job_chaos ;;
  *) echo "usage: scripts/check.sh [default|asan|ubsan|tsan|tidy|chaos|coverage|all]" >&2
     exit 2 ;;
esac
echo "==> OK"
