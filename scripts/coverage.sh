#!/usr/bin/env bash
# Line-coverage report for the quorum/gossip layer (src/cluster, src/gossip,
# src/chaos — the code the chaos sweeps exist to exercise).
#
#   scripts/coverage.sh                # tier1 + chaos suites, report to stdout
#   scripts/coverage.sh -L chaos       # just the chaos suite
#   HOTMAN_COVERAGE_DIRS="src/docstore" scripts/coverage.sh
#
# Builds an instrumented tree in build-coverage/ (separate from build/ so
# --coverage flags never contaminate normal builds), runs the selected ctest
# suites, then reports with whichever tool exists:
#
#   gcovr     - per-file table + coverage/coverage.xml (Cobertura) for CI
#   gcov only - per-file line percentages parsed from plain `gcov -n`
#               (the container image ships gcc/gcov but not gcovr; the
#               report is coarser but the numbers are the same)
#
# Exit code is the ctest result — a red suite fails the script even though
# the report still prints (partial coverage of failing code is still
# useful when debugging).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HOTMAN_BUILD_JOBS:-$(nproc)}"
DIR=build-coverage
LABELS=("${@:---label-regex}" )
if [[ "${1:-}" == "" ]]; then
  LABELS=(-L "tier1|chaos")
else
  LABELS=("$@")
fi
COVER_DIRS="${HOTMAN_COVERAGE_DIRS:-src/cluster src/gossip src/chaos}"

echo "==> [coverage] configure (${DIR}/)"
cmake -B "${DIR}" -S . -DHOTMAN_COVERAGE=ON >/dev/null
echo "==> [coverage] build"
cmake --build "${DIR}" -j "${JOBS}" >/dev/null

# Stale counters from previous runs inflate numbers; start clean.
find "${DIR}" -name '*.gcda' -delete

echo "==> [coverage] ctest ${LABELS[*]}"
ctest_rc=0
ctest --test-dir "${DIR}" "${LABELS[@]}" --output-on-failure -j "${JOBS}" ||
  ctest_rc=$?

mkdir -p coverage

if command -v gcovr >/dev/null 2>&1; then
  echo "==> [coverage] gcovr report (coverage/coverage.xml)"
  filters=()
  for d in ${COVER_DIRS}; do filters+=(--filter "${d}/"); done
  gcovr --root . "${filters[@]}" \
        --xml coverage/coverage.xml --xml-pretty \
        --print-summary
else
  echo "==> [coverage] gcovr not installed, falling back to plain gcov"
  # One .gcda per object file; gcov -n prints "Lines executed:P% of N"
  # for each source it covers without dropping .gcov files everywhere.
  summary=coverage/coverage.txt
  : > "${summary}"
  total_hit=0
  total_lines=0
  for d in ${COVER_DIRS}; do
    for src in "${d}"/*.cc; do
      [[ -e "${src}" ]] || continue
      obj_dir=$(dirname "${DIR}/src/CMakeFiles/hotman.dir/${src#src/}")
      gcda="${obj_dir}/$(basename "${src}").gcda"
      if [[ ! -e "${gcda}" ]]; then
        printf '%7s  %s (never executed)\n' "0.0%" "${src}" >> "${summary}"
        continue
      fi
      # gcov needs the .gcda itself (CMake names objects <file>.cc.o, which
      # breaks source-based lookup) and prints absolute source paths:
      #   "File '/abs/path/src/...'\nLines executed:93.75% of 160".
      # (awk drains its whole input: an early `exit` would SIGPIPE gcov and
      # trip pipefail.)
      line=$(gcov -n "${gcda}" 2>/dev/null |
             awk -v f="/${src}'" '
               index($0, f) {grab=1; next}
               grab && /Lines executed/ && !done {print; done=1}')
      pct=$(sed -n "s/Lines executed:\([0-9.]*\)% of .*/\1/p" <<< "${line}")
      cnt=$(sed -n "s/.*% of \([0-9]*\)$/\1/p" <<< "${line}")
      if [[ -n "${pct}" && -n "${cnt}" ]]; then
        hit=$(awk -v p="${pct}" -v n="${cnt}" 'BEGIN{printf "%d", p*n/100+0.5}')
        total_hit=$((total_hit + hit))
        total_lines=$((total_lines + cnt))
        printf '%7s  %s\n' "${pct}%" "${src}" >> "${summary}"
      else
        printf '%7s  %s (no data)\n' "?" "${src}" >> "${summary}"
      fi
    done
  done
  if [[ "${total_lines}" -gt 0 ]]; then
    awk -v h="${total_hit}" -v n="${total_lines}" \
        'BEGIN{printf "%7.1f%%  TOTAL (%d/%d lines)\n", 100*h/n, h, n}' \
        >> "${summary}"
  fi
  cat "${summary}"
fi

exit "${ctest_rc}"
