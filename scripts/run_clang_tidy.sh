#!/usr/bin/env bash
# Baseline-aware clang-tidy runner: tidies src/ with the repo .clang-tidy
# config and fails only on warnings NOT in tools/clang_tidy_baseline.txt,
# so pre-existing debt never blocks an unrelated change but new findings
# always do.
#
#   scripts/run_clang_tidy.sh [build-dir]     # default: build-check-tidy
#
# Baseline lines are "file.cc|check-name|message" with line/column numbers
# stripped, so entries survive unrelated edits. To accept a finding, run
# with HOTMAN_TIDY_UPDATE_BASELINE=1 and commit the refreshed baseline
# (add a justification comment above the new lines — '#' lines are
# ignored). Degrades to a skip when clang-tidy is not installed (CI always
# has it; the container may not).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check-tidy}"
BASELINE="tools/clang_tidy_baseline.txt"

if ! command -v run-clang-tidy >/dev/null 2>&1 || \
   ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed, skipped (CI runs it)"
  exit 0
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_CXX_COMPILER=clang++ >/dev/null

raw="$(mktemp)"
current="$(mktemp)"
trap 'rm -f "${raw}" "${current}"' EXIT

# run-clang-tidy exits non-zero on any warning-as-error; the baseline diff
# below is the real gate, so tolerate the exit code and parse the output.
run-clang-tidy -quiet -p "${BUILD_DIR}" "src/.*" >"${raw}" 2>/dev/null || true

# Normalize "path:line:col: warning: message [check]" to
# "file|check|message" (repo-relative path, no line/col).
sed -nE 's|^.*[/ ](src/[^:]+):[0-9]+:[0-9]+: (warning\|error): (.*) \[([A-Za-z0-9.,-]+)\]$|\1\|\4\|\3|p' \
  "${raw}" | sort -u >"${current}"

if [[ "${HOTMAN_TIDY_UPDATE_BASELINE:-0}" == "1" ]]; then
  {
    echo "# clang-tidy baseline: known findings (file|check|message), see"
    echo "# scripts/run_clang_tidy.sh. Shrink it; never grow it silently."
    cat "${current}"
  } >"${BASELINE}"
  echo "run_clang_tidy: baseline updated ($(wc -l <"${current}") finding(s))"
  exit 0
fi

new="$(comm -23 "${current}" <(grep -v '^#' "${BASELINE}" 2>/dev/null | sort -u) || true)"
fixed="$(comm -13 "${current}" <(grep -v '^#' "${BASELINE}" 2>/dev/null | sort -u) || true)"

if [[ -n "${fixed}" ]]; then
  echo "run_clang_tidy: stale baseline entries (fixed? remove them):"
  echo "${fixed}" | sed 's/^/  /'
fi
if [[ -n "${new}" ]]; then
  echo "run_clang_tidy: NEW clang-tidy findings (fix, or justify in ${BASELINE}):"
  echo "${new}" | sed 's/^/  /'
  exit 1
fi
echo "run_clang_tidy: OK ($(wc -l <"${current}") baselined finding(s))"
