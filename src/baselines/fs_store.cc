#include "baselines/fs_store.h"

#include <algorithm>
#include <memory>

namespace hotman::baselines {

FsStore::FsStore(sim::EventLoop* loop, FsStoreConfig config)
    : loop_(loop), station_(loop, config.service) {}

void FsStore::GetAsync(const std::string& key, GetCb cb) {
  // The callback is shared so a shed request can still be answered Busy.
  auto shared_cb = std::make_shared<GetCb>(std::move(cb));
  auto it = index_.find(key);
  if (it == index_.end()) {
    // A miss still costs a directory lookup; charge the base service time.
    const bool admitted = station_.Submit(0, [shared_cb, key](Micros, Micros) {
      (*shared_cb)(Status::NotFound("no file for key " + key));
    });
    if (!admitted) (*shared_cb)(Status::Busy("file server overloaded"));
    return;
  }
  const std::string file = it->second;
  auto file_it = files_.find(file);
  if (file_it == files_.end()) {
    (*shared_cb)(Status::Corruption("index points at missing file (index/data skew)"));
    return;
  }
  const std::size_t size = file_it->second.size();
  const bool admitted =
      station_.Submit(size, [this, file, shared_cb](Micros, Micros) {
        auto inner = files_.find(file);
        if (inner == files_.end()) {
          (*shared_cb)(Status::Corruption("file vanished during read"));
          return;
        }
        (*shared_cb)(inner->second);
      });
  if (!admitted) (*shared_cb)(Status::Busy("file server overloaded"));
}

void FsStore::PutAsync(const std::string& key, Bytes value, MutateCb cb) {
  auto shared_cb = std::make_shared<MutateCb>(std::move(cb));
  const std::size_t size = value.size();
  const bool admitted = station_.Submit(
      size, [this, key, value = std::move(value), shared_cb](Micros,
                                                             Micros) mutable {
        const std::string file = "f" + std::to_string(next_file_++);
        files_[file] = std::move(value);
        auto existing = index_.find(key);
        if (existing != index_.end()) files_.erase(existing->second);
        if (existing == index_.end()) index_order_.push_back(key);
        index_[key] = file;
        (*shared_cb)(Status::OK());
      });
  if (!admitted) (*shared_cb)(Status::Busy("file server overloaded"));
}

void FsStore::DeleteAsync(const std::string& key, MutateCb cb) {
  auto shared_cb = std::make_shared<MutateCb>(std::move(cb));
  const bool admitted = station_.Submit(0, [this, key, shared_cb](Micros, Micros) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      (*shared_cb)(Status::NotFound("no file for key " + key));
      return;
    }
    files_.erase(it->second);
    index_.erase(it);
    (*shared_cb)(Status::OK());
  });
  if (!admitted) (*shared_cb)(Status::Busy("file server overloaded"));
}

void FsStore::CrashIndexTail(std::size_t entries) {
  // The last `entries` index insertions are lost; the files stay on disk.
  while (entries-- > 0 && !index_order_.empty()) {
    index_.erase(index_order_.back());
    index_order_.pop_back();
  }
}

}  // namespace hotman::baselines
