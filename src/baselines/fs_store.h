#ifndef HOTMAN_BASELINES_FS_STORE_H_
#define HOTMAN_BASELINES_FS_STORE_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/event_loop.h"
#include "sim/service_station.h"

namespace hotman::baselines {

/// Service model of a single ext3 file server.
struct FsStoreConfig {
  /// A spinning disk serializes seeks: effectively two concurrent ops.
  sim::ServiceConfig service{
      .workers = 2,
      .base_service_micros = 8000,            // open + seek + close
      .process_bytes_per_sec = 80.0e6,        // sequential read rate
      .max_queue = 100000,
  };
};

/// Baseline 1 (§1, §6.1): "storing unstructured data in a local file
/// system, with maintaining an index table in memory."
///
/// One server, no replication, no cache tier; every request pays file-open
/// and seek costs and the single disk serializes concurrency. The in-memory
/// index maps key -> file, which is exactly the integrity weakness the
/// paper cites (nothing keeps index and files transactionally consistent —
/// Crash() demonstrates it by dropping index entries while keeping files).
class FsStore {
 public:
  using GetCb = std::function<void(const Result<Bytes>&)>;
  using MutateCb = std::function<void(const Status&)>;

  FsStore(sim::EventLoop* loop, FsStoreConfig config = {});

  void GetAsync(const std::string& key, GetCb cb);
  void PutAsync(const std::string& key, Bytes value, MutateCb cb);
  void DeleteAsync(const std::string& key, MutateCb cb);

  /// Simulates a crash between file write and index update: the newest
  /// `entries` index entries are lost while their "files" survive,
  /// leaving orphans (the index/data inconsistency hazard).
  void CrashIndexTail(std::size_t entries);

  std::size_t NumFiles() const { return files_.size(); }
  std::size_t NumIndexed() const { return index_.size(); }
  std::size_t OrphanedFiles() const { return files_.size() - index_.size(); }
  sim::ServiceStation* station() { return &station_; }

 private:
  sim::EventLoop* loop_;
  sim::ServiceStation station_;
  // index: key -> internal file name; files: file name -> contents.
  std::unordered_map<std::string, std::string> index_;
  std::unordered_map<std::string, Bytes> files_;
  std::vector<std::string> index_order_;  // insertion order, for CrashIndexTail
  std::uint64_t next_file_ = 1;
};

}  // namespace hotman::baselines

#endif  // HOTMAN_BASELINES_FS_STORE_H_
