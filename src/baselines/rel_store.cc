#include "baselines/rel_store.h"

#include <memory>

namespace hotman::baselines {

RelStore::RelStore(sim::EventLoop* loop, RelStoreConfig config)
    : loop_(loop), config_(config) {
  stations_.push_back(
      std::make_unique<sim::ServiceStation>(loop, config_.master_service));
  for (int i = 0; i < config_.slaves; ++i) {
    stations_.push_back(
        std::make_unique<sim::ServiceStation>(loop, config_.master_service));
    slave_tables_.emplace_back();
  }
}

RelStore::~RelStore() = default;

void RelStore::GetAsync(const std::string& key, GetCb cb) {
  // The callback is shared so a shed request can still be answered Busy.
  auto shared_cb = std::make_shared<GetCb>(std::move(cb));
  // Round-robin read spreading over master + slaves.
  const std::size_t index = rr_next_++ % stations_.size();
  const Table& table = index == 0 ? master_table_ : slave_tables_[index - 1];
  auto it = table.find(key);
  const std::size_t size = it == table.end() ? 0 : it->second.size();
  const bool admitted =
      SubmitTo(index, size, [this, index, key, shared_cb]() {
        const Table& t = index == 0 ? master_table_ : slave_tables_[index - 1];
        auto inner = t.find(key);
        if (inner == t.end()) {
          (*shared_cb)(Status::NotFound("no row for key " + key));
          return;
        }
        (*shared_cb)(inner->second);
      });
  if (!admitted) (*shared_cb)(Status::Busy("database overloaded"));
}

void RelStore::PutAsync(const std::string& key, Bytes value, MutateCb cb) {
  if (master_down_) {
    cb(Status::Unavailable("MySQL master is down; writes unavailable"));
    return;
  }
  auto shared_cb = std::make_shared<MutateCb>(std::move(cb));
  const std::size_t size = value.size();
  const bool admitted = SubmitTo(
      0, size, [this, key, value = std::move(value), shared_cb]() mutable {
        master_table_[key] = value;
        // Asynchronous replication: each slave applies after the lag.
        for (std::size_t i = 0; i < slave_tables_.size(); ++i) {
          loop_->Schedule(config_.replication_lag * static_cast<Micros>(i + 1),
                          [this, i, key, value]() { slave_tables_[i][key] = value; });
        }
        (*shared_cb)(Status::OK());
      });
  if (!admitted) (*shared_cb)(Status::Busy("database overloaded"));
}

void RelStore::DeleteAsync(const std::string& key, MutateCb cb) {
  if (master_down_) {
    cb(Status::Unavailable("MySQL master is down; writes unavailable"));
    return;
  }
  auto shared_cb = std::make_shared<MutateCb>(std::move(cb));
  const bool admitted = SubmitTo(0, 0, [this, key, shared_cb]() {
    master_table_.erase(key);
    for (std::size_t i = 0; i < slave_tables_.size(); ++i) {
      loop_->Schedule(config_.replication_lag * static_cast<Micros>(i + 1),
                      [this, i, key]() { slave_tables_[i].erase(key); });
    }
    (*shared_cb)(Status::OK());
  });
  if (!admitted) (*shared_cb)(Status::Busy("database overloaded"));
}

bool RelStore::SubmitTo(std::size_t index, std::size_t bytes,
                        std::function<void()> fn) {
  return stations_[index]->Submit(bytes,
                                  [fn = std::move(fn)](Micros, Micros) { fn(); });
}

}  // namespace hotman::baselines
