#ifndef HOTMAN_BASELINES_REL_STORE_H_
#define HOTMAN_BASELINES_REL_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/event_loop.h"
#include "sim/service_station.h"

namespace hotman::baselines {

/// Service model of the relational BLOB server.
struct RelStoreConfig {
  /// The master handles all writes; table-level locking on BLOB roll-in/
  /// roll-out limits effective concurrency.
  sim::ServiceConfig master_service{
      .workers = 4,
      .base_service_micros = 2500,       // parse + plan + B-tree + row assembly
      .process_bytes_per_sec = 45.0e6,   // BLOB (de)serialization rate
      .max_queue = 100000,
  };
  int slaves = 2;
  /// Asynchronous replication delay to each slave.
  Micros replication_lag = 50 * kMicrosPerMilli;
};

/// Baseline 2 (§1, §6.1): "storing unstructured data in a relational
/// database system, always represented as BLOB field" in a master/slave
/// MySQL deployment.
///
/// Reads are spread round-robin across master + slaves (each a station of
/// its own); writes all go to the master and replicate asynchronously, so
/// a slave read inside the replication window returns stale/missing data,
/// and a master outage stops all writes — the availability weaknesses the
/// paper's comparison exposes.
class RelStore {
 public:
  using GetCb = std::function<void(const Result<Bytes>&)>;
  using MutateCb = std::function<void(const Status&)>;

  RelStore(sim::EventLoop* loop, RelStoreConfig config = {});
  ~RelStore();

  void GetAsync(const std::string& key, GetCb cb);
  void PutAsync(const std::string& key, Bytes value, MutateCb cb);
  void DeleteAsync(const std::string& key, MutateCb cb);

  /// Takes the master down / up (writes fail while down).
  void SetMasterDown(bool down) { master_down_ = down; }
  bool master_down() const { return master_down_; }

  std::size_t NumRows() const { return master_table_.size(); }
  sim::ServiceStation* master_station() { return stations_[0].get(); }

 private:
  /// A "table": B-tree (std::map) from key to BLOB.
  using Table = std::map<std::string, Bytes>;

  /// Submits work to station `index`; false when shed.
  bool SubmitTo(std::size_t index, std::size_t bytes, std::function<void()> fn);

  sim::EventLoop* loop_;
  RelStoreConfig config_;
  std::vector<std::unique_ptr<sim::ServiceStation>> stations_;  // [0]=master
  Table master_table_;
  std::vector<Table> slave_tables_;
  std::size_t rr_next_ = 0;
  bool master_down_ = false;
};

}  // namespace hotman::baselines

#endif  // HOTMAN_BASELINES_REL_STORE_H_
