#include "bson/codec.h"

#include <cstring>

#include "common/bytes.h"

namespace hotman::bson {

namespace {

void EncodeValue(const Value& value, std::string* out);

void EncodeDocumentBody(const Document& doc, std::string* out) {
  const std::size_t size_pos = out->size();
  PutFixed32(out, 0);  // placeholder for total size
  for (const Field& f : doc) {
    out->push_back(static_cast<char>(f.value.type()));
    out->append(f.name);
    out->push_back('\0');
    EncodeValue(f.value, out);
  }
  out->push_back('\0');
  const auto total = static_cast<std::uint32_t>(out->size() - size_pos);
  (*out)[size_pos] = static_cast<char>(total & 0xFF);
  (*out)[size_pos + 1] = static_cast<char>((total >> 8) & 0xFF);
  (*out)[size_pos + 2] = static_cast<char>((total >> 16) & 0xFF);
  (*out)[size_pos + 3] = static_cast<char>((total >> 24) & 0xFF);
}

void EncodeArrayBody(const Array& array, std::string* out) {
  // BSON arrays are documents with decimal-string keys "0", "1", ...
  Document doc;
  for (std::size_t i = 0; i < array.size(); ++i) {
    doc.Append(std::to_string(i), array[i]);
  }
  EncodeDocumentBody(doc, out);
}

void EncodeValue(const Value& value, std::string* out) {
  switch (value.type()) {
    case Type::kDouble: {
      double d = value.as_double();
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(out, bits);
      return;
    }
    case Type::kString: {
      const std::string& s = value.as_string();
      PutFixed32(out, static_cast<std::uint32_t>(s.size() + 1));
      out->append(s);
      out->push_back('\0');
      return;
    }
    case Type::kDocument:
      EncodeDocumentBody(value.as_document(), out);
      return;
    case Type::kArray:
      EncodeArrayBody(value.as_array(), out);
      return;
    case Type::kBinary: {
      const Binary& b = value.as_binary();
      PutFixed32(out, static_cast<std::uint32_t>(b.data().size()));
      out->push_back(static_cast<char>(b.subtype()));
      out->append(reinterpret_cast<const char*>(b.data().data()), b.data().size());
      return;
    }
    case Type::kObjectId: {
      const ObjectId id = value.as_object_id();
      out->append(reinterpret_cast<const char*>(id.bytes().data()),
                  id.bytes().size());
      return;
    }
    case Type::kBool:
      out->push_back(value.as_bool() ? '\x01' : '\x00');
      return;
    case Type::kDateTime:
      PutFixed64(out, static_cast<std::uint64_t>(value.as_datetime().millis));
      return;
    case Type::kNull:
      return;  // no payload
    case Type::kInt32:
      PutFixed32(out, static_cast<std::uint32_t>(value.as_int32()));
      return;
    case Type::kInt64:
      PutFixed64(out, static_cast<std::uint64_t>(value.as_int64()));
      return;
  }
}

/// Bounded cursor over the input bytes; every Read* checks remaining size.
class Reader {
 public:
  explicit Reader(std::string_view data)
      : p_(reinterpret_cast<const std::uint8_t*>(data.data())), n_(data.size()) {}

  std::size_t remaining() const { return n_ - pos_; }

  bool ReadByte(std::uint8_t* out) {
    if (remaining() < 1) return false;
    *out = p_[pos_++];
    return true;
  }

  bool ReadFixed32(std::uint32_t* out) {
    if (remaining() < 4) return false;
    *out = GetFixed32(p_ + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadFixed64(std::uint64_t* out) {
    if (remaining() < 8) return false;
    *out = GetFixed64(p_ + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadCString(std::string* out) {
    const std::size_t start = pos_;
    while (pos_ < n_ && p_[pos_] != 0) ++pos_;
    if (pos_ >= n_) return false;  // missing terminator
    out->assign(reinterpret_cast<const char*>(p_ + start), pos_ - start);
    ++pos_;  // skip NUL
    return true;
  }

  bool ReadRaw(std::size_t len, const std::uint8_t** out) {
    if (remaining() < len) return false;
    *out = p_ + pos_;
    pos_ += len;
    return true;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

constexpr int kMaxDepth = 64;

Status DecodeDocumentBody(Reader* r, Document* doc, int depth);

Status DecodeValue(Type type, Reader* r, Value* out, int depth) {
  switch (type) {
    case Type::kDouble: {
      std::uint64_t bits;
      if (!r->ReadFixed64(&bits)) return Status::Corruption("truncated double");
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return Status::OK();
    }
    case Type::kString: {
      std::uint32_t len;
      if (!r->ReadFixed32(&len)) return Status::Corruption("truncated string length");
      if (len == 0 || len > r->remaining()) {
        return Status::Corruption("bad string length");
      }
      const std::uint8_t* raw;
      if (!r->ReadRaw(len, &raw)) return Status::Corruption("truncated string");
      if (raw[len - 1] != 0) return Status::Corruption("string missing terminator");
      *out = Value(std::string(reinterpret_cast<const char*>(raw), len - 1));
      return Status::OK();
    }
    case Type::kDocument: {
      Document nested;
      HOTMAN_RETURN_IF_ERROR(DecodeDocumentBody(r, &nested, depth + 1));
      *out = Value(std::move(nested));
      return Status::OK();
    }
    case Type::kArray: {
      Document nested;
      HOTMAN_RETURN_IF_ERROR(DecodeDocumentBody(r, &nested, depth + 1));
      Array arr;
      arr.reserve(nested.size());
      for (const Field& f : nested) arr.push_back(f.value);
      *out = Value(std::move(arr));
      return Status::OK();
    }
    case Type::kBinary: {
      std::uint32_t len;
      if (!r->ReadFixed32(&len)) return Status::Corruption("truncated binary length");
      std::uint8_t subtype;
      if (!r->ReadByte(&subtype)) return Status::Corruption("truncated binary subtype");
      if (len > r->remaining()) return Status::Corruption("bad binary length");
      const std::uint8_t* raw;
      if (!r->ReadRaw(len, &raw)) return Status::Corruption("truncated binary");
      *out = Value(Binary(Bytes(raw, raw + len), subtype));
      return Status::OK();
    }
    case Type::kObjectId: {
      const std::uint8_t* raw;
      if (!r->ReadRaw(ObjectId::kSize, &raw)) {
        return Status::Corruption("truncated objectId");
      }
      std::array<std::uint8_t, ObjectId::kSize> bytes;
      std::memcpy(bytes.data(), raw, ObjectId::kSize);
      *out = Value(ObjectId(bytes));
      return Status::OK();
    }
    case Type::kBool: {
      std::uint8_t b;
      if (!r->ReadByte(&b)) return Status::Corruption("truncated bool");
      if (b > 1) return Status::Corruption("bad bool byte");
      *out = Value(b == 1);
      return Status::OK();
    }
    case Type::kDateTime: {
      std::uint64_t bits;
      if (!r->ReadFixed64(&bits)) return Status::Corruption("truncated datetime");
      *out = Value(DateTime{static_cast<std::int64_t>(bits)});
      return Status::OK();
    }
    case Type::kNull:
      *out = Value();
      return Status::OK();
    case Type::kInt32: {
      std::uint32_t bits;
      if (!r->ReadFixed32(&bits)) return Status::Corruption("truncated int32");
      *out = Value(static_cast<std::int32_t>(bits));
      return Status::OK();
    }
    case Type::kInt64: {
      std::uint64_t bits;
      if (!r->ReadFixed64(&bits)) return Status::Corruption("truncated int64");
      *out = Value(static_cast<std::int64_t>(bits));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown element type");
}

Status DecodeDocumentBody(Reader* r, Document* doc, int depth) {
  if (depth > kMaxDepth) return Status::Corruption("document nesting too deep");
  std::uint32_t total;
  const std::size_t start = r->pos();
  if (!r->ReadFixed32(&total)) return Status::Corruption("truncated document size");
  // `total` counts the 4 size bytes already consumed; the body must fit in
  // what remains.
  if (total < 5 || static_cast<std::size_t>(total - 4) > r->remaining()) {
    return Status::Corruption("bad document size");
  }
  const std::size_t end = start + total;
  for (;;) {
    if (r->pos() >= end) return Status::Corruption("document ran past its size");
    std::uint8_t tag;
    if (!r->ReadByte(&tag)) return Status::Corruption("truncated element tag");
    if (tag == 0) {
      if (r->pos() != end) return Status::Corruption("document size mismatch");
      return Status::OK();
    }
    switch (tag) {
      case 0x01:
      case 0x02:
      case 0x03:
      case 0x04:
      case 0x05:
      case 0x07:
      case 0x08:
      case 0x09:
      case 0x0A:
      case 0x10:
      case 0x12:
        break;
      default:
        return Status::Corruption("unsupported element type");
    }
    std::string name;
    if (!r->ReadCString(&name)) return Status::Corruption("truncated element name");
    Value value;
    HOTMAN_RETURN_IF_ERROR(DecodeValue(static_cast<Type>(tag), r, &value, depth));
    if (r->pos() > end) return Status::Corruption("element ran past document size");
    doc->Append(name, std::move(value));
  }
}

}  // namespace

void Encode(const Document& doc, std::string* out) { EncodeDocumentBody(doc, out); }

std::string EncodeToString(const Document& doc) {
  std::string out;
  Encode(doc, &out);
  return out;
}

Status Decode(std::string_view data, Document* doc) {
  doc->clear();
  Reader r(data);
  HOTMAN_RETURN_IF_ERROR(DecodeDocumentBody(&r, doc, 0));
  if (r.remaining() != 0) return Status::Corruption("trailing bytes after document");
  return Status::OK();
}

namespace {

std::size_t ValueSize(const Value& value);

std::size_t DocumentBodySize(const Document& doc) {
  std::size_t size = 4 + 1;  // int32 length prefix + trailing NUL
  for (const Field& f : doc) {
    size += 1 + f.name.size() + 1 + ValueSize(f.value);
  }
  return size;
}

std::size_t ValueSize(const Value& value) {
  switch (value.type()) {
    case Type::kDouble:
    case Type::kDateTime:
    case Type::kInt64:
      return 8;
    case Type::kString:
      return 4 + value.as_string().size() + 1;
    case Type::kDocument:
      return DocumentBodySize(value.as_document());
    case Type::kArray: {
      // Arrays encode as documents keyed "0","1",...; compute without
      // materializing the key strings.
      std::size_t size = 4 + 1;
      std::size_t index = 0;
      for (const Value& v : value.as_array()) {
        size += 1 + std::to_string(index++).size() + 1 + ValueSize(v);
      }
      return size;
    }
    case Type::kBinary:
      return 4 + 1 + value.as_binary().data().size();
    case Type::kObjectId:
      return ObjectId::kSize;
    case Type::kBool:
      return 1;
    case Type::kNull:
      return 0;
    case Type::kInt32:
      return 4;
  }
  return 0;
}

}  // namespace

std::size_t EncodedSize(const Document& doc) { return DocumentBodySize(doc); }

}  // namespace hotman::bson
