#ifndef HOTMAN_BSON_CODEC_H_
#define HOTMAN_BSON_CODEC_H_

#include <string>
#include <string_view>

#include "bson/document.h"
#include "common/status.h"

namespace hotman::bson {

/// Serializes `doc` in the BSON wire format (little-endian int32 total size,
/// tagged elements, trailing NUL) and appends it to `*out`.
void Encode(const Document& doc, std::string* out);

/// Convenience: returns the encoded bytes.
std::string EncodeToString(const Document& doc);

/// Parses one BSON document occupying exactly `data`; rejects truncated,
/// oversized, or malformed input with Status::Corruption. The decoder is
/// hardened against hostile bytes (it never reads out of bounds), which the
/// fuzz-style property tests exercise.
Status Decode(std::string_view data, Document* doc);

/// Size in bytes Encode() would produce for `doc`.
std::size_t EncodedSize(const Document& doc);

}  // namespace hotman::bson

#endif  // HOTMAN_BSON_CODEC_H_
