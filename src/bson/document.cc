#include "bson/document.h"

namespace hotman::bson {

namespace {
const Value& SharedNull() {
  static const Value null_value;
  return null_value;
}
}  // namespace

Document::Document(std::initializer_list<Field> fields) {
  fields_.reserve(fields.size());
  for (const Field& f : fields) Set(f.name, f.value);
}

Document& Document::Set(std::string_view name, Value value) {
  for (Field& f : fields_) {
    if (f.name == name) {
      f.value = std::move(value);
      return *this;
    }
  }
  fields_.push_back(Field{std::string(name), std::move(value)});
  return *this;
}

Document& Document::Append(std::string_view name, Value value) {
  fields_.push_back(Field{std::string(name), std::move(value)});
  return *this;
}

const Value* Document::Get(std::string_view name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

Value* Document::GetMutable(std::string_view name) {
  for (Field& f : fields_) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

const Value& Document::GetOrNull(std::string_view name) const {
  const Value* v = Get(name);
  return v != nullptr ? *v : SharedNull();
}

bool Document::Remove(std::string_view name) {
  for (auto it = fields_.begin(); it != fields_.end(); ++it) {
    if (it->name == name) {
      fields_.erase(it);
      return true;
    }
  }
  return false;
}

int Document::Compare(const Document& other) const {
  const std::size_t n = std::min(fields_.size(), other.fields_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (int c = fields_[i].name.compare(other.fields_[i].name); c != 0) {
      return c < 0 ? -1 : 1;
    }
    if (int c = fields_[i].value.Compare(other.fields_[i].value); c != 0) return c;
  }
  if (fields_.size() != other.fields_.size()) {
    return fields_.size() < other.fields_.size() ? -1 : 1;
  }
  return 0;
}

}  // namespace hotman::bson
