#ifndef HOTMAN_BSON_DOCUMENT_H_
#define HOTMAN_BSON_DOCUMENT_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bson/value.h"

namespace hotman::bson {

/// One named element of a document.
struct Field {
  std::string name;
  Value value;
};

/// An ordered BSON document: a sequence of named values. Field order is
/// preserved (it is significant for BSON comparison and encoding); lookups
/// are linear, which is the right trade-off for the small documents the
/// record schema uses ({_id, self-key, val, isData, isDel}).
class Document {
 public:
  Document() = default;

  /// Brace construction: Document{{"a", 1}, {"b", "x"}}.
  Document(std::initializer_list<Field> fields);

  Document(const Document&) = default;
  Document& operator=(const Document&) = default;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;

  /// Appends or replaces the field `name` (replace keeps its position).
  /// Returns *this for fluent building.
  Document& Set(std::string_view name, Value value);

  /// Appends `name` without checking for duplicates (encoder fast path;
  /// callers must guarantee uniqueness).
  Document& Append(std::string_view name, Value value);

  /// Field value, or nullptr when absent.
  const Value* Get(std::string_view name) const;
  Value* GetMutable(std::string_view name);

  /// Field value or a shared null constant when absent (never nullptr).
  const Value& GetOrNull(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name) != nullptr; }

  /// Removes the field; returns true if it was present.
  bool Remove(std::string_view name);

  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  void clear() { fields_.clear(); }

  const Field& field(std::size_t i) const { return fields_[i]; }
  Field& field(std::size_t i) { return fields_[i]; }

  std::vector<Field>::const_iterator begin() const { return fields_.begin(); }
  std::vector<Field>::const_iterator end() const { return fields_.end(); }

  /// Field-order-sensitive comparison: lexicographic over (name, value)
  /// pairs, shorter document first on common prefix.
  int Compare(const Document& other) const;

  friend bool operator==(const Document& a, const Document& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Document& a, const Document& b) {
    return a.Compare(b) != 0;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace hotman::bson

#endif  // HOTMAN_BSON_DOCUMENT_H_
