#include "bson/json.h"

#include <cmath>
#include <cstdio>

#include "common/bytes.h"

namespace hotman::bson {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendValue(const Value& value, std::string* out);

void AppendDocument(const Document& doc, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const Field& f : doc) {
    if (!first) out->append(", ");
    first = false;
    AppendEscaped(f.name, out);
    out->append(" : ");
    AppendValue(f.value, out);
  }
  out->push_back('}');
}

void AppendValue(const Value& value, std::string* out) {
  switch (value.type()) {
    case Type::kDouble: {
      double d = value.as_double();
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out->append(buf);
      } else {
        out->append(std::isnan(d) ? "NaN" : (d > 0 ? "Infinity" : "-Infinity"));
      }
      return;
    }
    case Type::kString:
      AppendEscaped(value.as_string(), out);
      return;
    case Type::kDocument:
      AppendDocument(value.as_document(), out);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : value.as_array()) {
        if (!first) out->append(", ");
        first = false;
        AppendValue(v, out);
      }
      out->push_back(']');
      return;
    }
    case Type::kBinary: {
      const Binary& b = value.as_binary();
      out->append("BinData(");
      out->append(std::to_string(b.subtype()));
      out->append(", \"");
      out->append(Base64Encode(b.data()));
      out->append("\")");
      return;
    }
    case Type::kObjectId:
      out->append("ObjectId(\"");
      out->append(value.as_object_id().ToHex());
      out->append("\")");
      return;
    case Type::kBool:
      out->append(value.as_bool() ? "true" : "false");
      return;
    case Type::kDateTime:
      out->append("Date(");
      out->append(std::to_string(value.as_datetime().millis));
      out->append(")");
      return;
    case Type::kNull:
      out->append("null");
      return;
    case Type::kInt32:
      out->append(std::to_string(value.as_int32()));
      return;
    case Type::kInt64:
      out->append(std::to_string(value.as_int64()));
      return;
  }
}

}  // namespace

std::string ToJson(const Document& doc) {
  std::string out;
  AppendDocument(doc, &out);
  return out;
}

std::string ToJson(const Value& value) {
  std::string out;
  AppendValue(value, &out);
  return out;
}

}  // namespace hotman::bson
