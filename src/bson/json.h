#ifndef HOTMAN_BSON_JSON_H_
#define HOTMAN_BSON_JSON_H_

#include <string>

#include "bson/document.h"

namespace hotman::bson {

/// Renders `doc` in MongoDB extended-JSON style, matching the paper's
/// record example:
///   {"_id" : ObjectId("4ee44627..."), "val" : BinData(0, "dGhpcy..."), ...}
/// Binary payloads are base64-encoded; this is a debugging/printing format,
/// not a parseable interchange format.
std::string ToJson(const Document& doc);

/// Renders a single value in the same style.
std::string ToJson(const Value& value);

}  // namespace hotman::bson

#endif  // HOTMAN_BSON_JSON_H_
