#include "bson/object_id.h"

#include "common/bytes.h"

namespace hotman::bson {

ObjectId ObjectId::FromHex(std::string_view hex, bool* ok) {
  Bytes raw;
  if (hex.size() != kSize * 2 || !HexDecode(hex, &raw)) {
    if (ok != nullptr) *ok = false;
    return ObjectId();
  }
  std::array<std::uint8_t, kSize> bytes{};
  for (std::size_t i = 0; i < kSize; ++i) bytes[i] = raw[i];
  if (ok != nullptr) *ok = true;
  return ObjectId(bytes);
}

std::uint32_t ObjectId::timestamp_seconds() const {
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) |
         static_cast<std::uint32_t>(bytes_[3]);
}

std::string ObjectId::ToHex() const { return HexEncode(bytes_.data(), bytes_.size()); }

bool ObjectId::is_zero() const {
  for (auto b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

ObjectIdGenerator::ObjectIdGenerator(std::uint64_t machine_id, const Clock* clock)
    : clock_(clock) {
  for (int i = 0; i < 5; ++i) {
    machine_[i] = static_cast<std::uint8_t>((machine_id >> (8 * (4 - i))) & 0xFF);
  }
}

ObjectId ObjectIdGenerator::Next() {
  std::array<std::uint8_t, ObjectId::kSize> bytes{};
  const auto seconds =
      static_cast<std::uint32_t>(clock_->NowMicros() / kMicrosPerSecond);
  bytes[0] = static_cast<std::uint8_t>((seconds >> 24) & 0xFF);
  bytes[1] = static_cast<std::uint8_t>((seconds >> 16) & 0xFF);
  bytes[2] = static_cast<std::uint8_t>((seconds >> 8) & 0xFF);
  bytes[3] = static_cast<std::uint8_t>(seconds & 0xFF);
  for (int i = 0; i < 5; ++i) bytes[4 + i] = machine_[i];
  // Relaxed: uniqueness only needs distinct values, not ordering.
  const std::uint32_t c = counter_.fetch_add(1, std::memory_order_relaxed);
  bytes[9] = static_cast<std::uint8_t>((c >> 16) & 0xFF);
  bytes[10] = static_cast<std::uint8_t>((c >> 8) & 0xFF);
  bytes[11] = static_cast<std::uint8_t>(c & 0xFF);
  return ObjectId(bytes);
}

}  // namespace hotman::bson
