#include "bson/value.h"

#include <cstdio>
#include <cstdlib>

#include "bson/document.h"

namespace hotman::bson {

namespace {

[[noreturn]] void DieBadAccess(Type actual, const char* wanted) {
  std::fprintf(stderr, "bson::Value bad access: value is %s, accessor wants %s\n",
               TypeName(actual), wanted);
  std::abort();
}

/// Three-way compare for arithmetic values.
template <typename T>
int Cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

const char* TypeName(Type type) {
  switch (type) {
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "string";
    case Type::kDocument:
      return "document";
    case Type::kArray:
      return "array";
    case Type::kBinary:
      return "binary";
    case Type::kObjectId:
      return "objectId";
    case Type::kBool:
      return "bool";
    case Type::kDateTime:
      return "datetime";
    case Type::kNull:
      return "null";
    case Type::kInt32:
      return "int32";
    case Type::kInt64:
      return "int64";
  }
  return "unknown";
}

Value::Value() : rep_(NullT{}) {}
Value::Value(double v) : rep_(v) {}
Value::Value(std::string v) : rep_(std::move(v)) {}
Value::Value(std::string_view v) : rep_(std::string(v)) {}
Value::Value(const char* v) : rep_(std::string(v)) {}
Value::Value(bool v) : rep_(v) {}
Value::Value(std::int32_t v) : rep_(v) {}
Value::Value(std::int64_t v) : rep_(v) {}
Value::Value(Binary v) : rep_(std::move(v)) {}
Value::Value(ObjectId v) : rep_(v) {}
Value::Value(DateTime v) : rep_(v) {}
Value::Value(Document v) : rep_(std::make_unique<Document>(std::move(v))) {}
Value::Value(Array v) : rep_(std::make_unique<Array>(std::move(v))) {}

Value::Value(const Value& other) { *this = other; }

Value& Value::operator=(const Value& other) {
  if (this == &other) return *this;
  if (auto* doc = std::get_if<std::unique_ptr<Document>>(&other.rep_)) {
    rep_ = std::make_unique<Document>(**doc);
  } else if (auto* arr = std::get_if<std::unique_ptr<Array>>(&other.rep_)) {
    rep_ = std::make_unique<Array>(**arr);
  } else {
    // All remaining alternatives are copyable value types.
    std::visit(
        [this](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (!std::is_same_v<T, std::unique_ptr<Document>> &&
                        !std::is_same_v<T, std::unique_ptr<Array>>) {
            rep_ = v;
          }
        },
        other.rep_);
  }
  return *this;
}

Value::Value(Value&& other) noexcept : rep_(std::move(other.rep_)) {
  other.rep_ = NullT{};
}

Value& Value::operator=(Value&& other) noexcept {
  if (this != &other) {
    rep_ = std::move(other.rep_);
    other.rep_ = NullT{};
  }
  return *this;
}

Value::~Value() = default;

Type Value::type() const {
  switch (rep_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kDouble;
    case 2:
      return Type::kString;
    case 3:
      return Type::kDocument;
    case 4:
      return Type::kArray;
    case 5:
      return Type::kBinary;
    case 6:
      return Type::kObjectId;
    case 7:
      return Type::kBool;
    case 8:
      return Type::kDateTime;
    case 9:
      return Type::kInt32;
    case 10:
      return Type::kInt64;
  }
  return Type::kNull;
}

bool Value::is_number() const {
  Type t = type();
  return t == Type::kDouble || t == Type::kInt32 || t == Type::kInt64;
}

double Value::as_double() const {
  if (auto* v = std::get_if<double>(&rep_)) return *v;
  DieBadAccess(type(), "double");
}

const std::string& Value::as_string() const {
  if (auto* v = std::get_if<std::string>(&rep_)) return *v;
  DieBadAccess(type(), "string");
}

const Document& Value::as_document() const {
  if (auto* v = std::get_if<std::unique_ptr<Document>>(&rep_)) return **v;
  DieBadAccess(type(), "document");
}

Document& Value::as_document() {
  if (auto* v = std::get_if<std::unique_ptr<Document>>(&rep_)) return **v;
  DieBadAccess(type(), "document");
}

const Array& Value::as_array() const {
  if (auto* v = std::get_if<std::unique_ptr<Array>>(&rep_)) return **v;
  DieBadAccess(type(), "array");
}

Array& Value::as_array() {
  if (auto* v = std::get_if<std::unique_ptr<Array>>(&rep_)) return **v;
  DieBadAccess(type(), "array");
}

const Binary& Value::as_binary() const {
  if (auto* v = std::get_if<Binary>(&rep_)) return *v;
  DieBadAccess(type(), "binary");
}

ObjectId Value::as_object_id() const {
  if (auto* v = std::get_if<ObjectId>(&rep_)) return *v;
  DieBadAccess(type(), "objectId");
}

bool Value::as_bool() const {
  if (auto* v = std::get_if<bool>(&rep_)) return *v;
  DieBadAccess(type(), "bool");
}

DateTime Value::as_datetime() const {
  if (auto* v = std::get_if<DateTime>(&rep_)) return *v;
  DieBadAccess(type(), "datetime");
}

std::int32_t Value::as_int32() const {
  if (auto* v = std::get_if<std::int32_t>(&rep_)) return *v;
  DieBadAccess(type(), "int32");
}

std::int64_t Value::as_int64() const {
  if (auto* v = std::get_if<std::int64_t>(&rep_)) return *v;
  DieBadAccess(type(), "int64");
}

double Value::NumberAsDouble() const {
  switch (type()) {
    case Type::kDouble:
      return as_double();
    case Type::kInt32:
      return static_cast<double>(as_int32());
    case Type::kInt64:
      return static_cast<double>(as_int64());
    default:
      DieBadAccess(type(), "number");
  }
}

std::int64_t Value::NumberAsInt64() const {
  switch (type()) {
    case Type::kDouble:
      return static_cast<std::int64_t>(as_double());
    case Type::kInt32:
      return as_int32();
    case Type::kInt64:
      return as_int64();
    default:
      DieBadAccess(type(), "number");
  }
}

int Value::CanonicalRank() const {
  // Mongo-style canonical sort order brackets.
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kDouble:
    case Type::kInt32:
    case Type::kInt64:
      return 1;
    case Type::kString:
      return 2;
    case Type::kDocument:
      return 3;
    case Type::kArray:
      return 4;
    case Type::kBinary:
      return 5;
    case Type::kObjectId:
      return 6;
    case Type::kBool:
      return 7;
    case Type::kDateTime:
      return 8;
  }
  return 99;
}

int Value::Compare(const Value& other) const {
  const int ra = CanonicalRank();
  const int rb = other.CanonicalRank();
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:  // null == null
      return 0;
    case 1: {  // numbers, cross-type numeric comparison
      // Compare as int64 when both sides are integral to avoid precision
      // loss; otherwise widen to double.
      const bool ints = type() != Type::kDouble && other.type() != Type::kDouble;
      if (ints) return Cmp(NumberAsInt64(), other.NumberAsInt64());
      return Cmp(NumberAsDouble(), other.NumberAsDouble());
    }
    case 2:
      return as_string().compare(other.as_string()) < 0
                 ? -1
                 : (as_string() == other.as_string() ? 0 : 1);
    case 3:
      return as_document().Compare(other.as_document());
    case 4: {
      const Array& a = as_array();
      const Array& b = other.as_array();
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp(a.size(), b.size());
    }
    case 5: {
      const Binary& a = as_binary();
      const Binary& b = other.as_binary();
      // BSON orders binary by length, then subtype, then bytes.
      if (int c = Cmp(a.data().size(), b.data().size()); c != 0) return c;
      if (int c = Cmp(a.subtype(), b.subtype()); c != 0) return c;
      if (a.data() < b.data()) return -1;
      if (b.data() < a.data()) return 1;
      return 0;
    }
    case 6: {
      auto c = as_object_id() <=> other.as_object_id();
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case 7:
      return Cmp(static_cast<int>(as_bool()), static_cast<int>(other.as_bool()));
    case 8:
      return Cmp(as_datetime().millis, other.as_datetime().millis);
  }
  return 0;
}

}  // namespace hotman::bson
