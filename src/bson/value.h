#ifndef HOTMAN_BSON_VALUE_H_
#define HOTMAN_BSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bson/object_id.h"
#include "common/bytes.h"

namespace hotman::bson {

class Document;
class Value;

/// BSON element type tags (wire-format byte values).
enum class Type : std::uint8_t {
  kDouble = 0x01,
  kString = 0x02,
  kDocument = 0x03,
  kArray = 0x04,
  kBinary = 0x05,
  kObjectId = 0x07,
  kBool = 0x08,
  kDateTime = 0x09,
  kNull = 0x0A,
  kInt32 = 0x10,
  kInt64 = 0x12,
};

/// Human-readable name of a type tag ("double", "string", ...).
const char* TypeName(Type type);

/// BSON binary element: raw bytes plus a one-byte subtype (0 = generic,
/// matching the paper's `BinData(0, "...")` val field).
///
/// The payload is immutable and shared between copies: record values are
/// the dominant bytes in the system and flow through coordinator -> N
/// replicas -> acknowledgements, so copying Binary must be O(1).
class Binary {
 public:
  Binary() : data_(EmptyBytes()) {}
  /// Takes ownership of `data` (moved into the shared buffer).
  Binary(Bytes data, std::uint8_t subtype = 0)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const Bytes>(std::move(data))), subtype_(subtype) {}

  const Bytes& data() const { return *data_; }
  std::uint8_t subtype() const { return subtype_; }

  friend bool operator==(const Binary& a, const Binary& b) {
    return a.subtype_ == b.subtype_ &&
           (a.data_ == b.data_ || *a.data_ == *b.data_);
  }

 private:
  static std::shared_ptr<const Bytes> EmptyBytes() {
    static const std::shared_ptr<const Bytes>* empty =
        new std::shared_ptr<const Bytes>(std::make_shared<const Bytes>());
    return *empty;
  }

  std::shared_ptr<const Bytes> data_;
  std::uint8_t subtype_ = 0;
};

/// BSON UTC datetime: milliseconds since the Unix epoch.
struct DateTime {
  std::int64_t millis = 0;

  friend bool operator==(const DateTime& a, const DateTime& b) {
    return a.millis == b.millis;
  }
  friend auto operator<=>(const DateTime& a, const DateTime& b) {
    return a.millis <=> b.millis;
  }
};

/// Array of values (BSON encodes arrays as documents keyed "0","1",...).
using Array = std::vector<Value>;

/// One BSON value of any type. Deep-copyable and movable; nested documents
/// and arrays are owned (no aliasing between copies).
class Value {
 public:
  /// Null value.
  Value();
  Value(double v);                 // NOLINT(google-explicit-constructor)
  Value(std::string v);            // NOLINT(google-explicit-constructor)
  Value(std::string_view v);       // NOLINT(google-explicit-constructor)
  Value(const char* v);            // NOLINT(google-explicit-constructor)
  Value(bool v);                   // NOLINT(google-explicit-constructor)
  Value(std::int32_t v);           // NOLINT(google-explicit-constructor)
  Value(std::int64_t v);           // NOLINT(google-explicit-constructor)
  Value(Binary v);                 // NOLINT(google-explicit-constructor)
  Value(ObjectId v);               // NOLINT(google-explicit-constructor)
  Value(DateTime v);               // NOLINT(google-explicit-constructor)
  Value(Document v);               // NOLINT(google-explicit-constructor)
  Value(Array v);                  // NOLINT(google-explicit-constructor)

  Value(const Value& other);
  Value& operator=(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(Value&& other) noexcept;
  ~Value();

  Type type() const;

  bool is_null() const { return type() == Type::kNull; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  bool is_document() const { return type() == Type::kDocument; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_binary() const { return type() == Type::kBinary; }
  bool is_object_id() const { return type() == Type::kObjectId; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_datetime() const { return type() == Type::kDateTime; }
  bool is_int32() const { return type() == Type::kInt32; }
  bool is_int64() const { return type() == Type::kInt64; }
  /// True for int32, int64 and double.
  bool is_number() const;

  /// Typed accessors. Calling the wrong accessor aborts (programming error);
  /// use type() / is_*() first when the type is not statically known.
  double as_double() const;
  const std::string& as_string() const;
  const Document& as_document() const;
  Document& as_document();
  const Array& as_array() const;
  Array& as_array();
  const Binary& as_binary() const;
  ObjectId as_object_id() const;
  bool as_bool() const;
  DateTime as_datetime() const;
  std::int32_t as_int32() const;
  std::int64_t as_int64() const;

  /// Numeric value widened to double (valid for any is_number() value).
  double NumberAsDouble() const;
  /// Numeric value as int64 (truncates doubles toward zero).
  std::int64_t NumberAsInt64() const;

  /// Total order over all BSON values: first by canonical type bracket
  /// (Null < Numbers < String < Document < Array < Binary < ObjectId < Bool
  /// < DateTime), then within the bracket (numbers compare numerically
  /// across int32/int64/double). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Canonical type bracket used by Compare (numbers share one bracket).
  int CanonicalRank() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Compare(b) == 0; }
  friend bool operator!=(const Value& a, const Value& b) { return a.Compare(b) != 0; }
  friend bool operator<(const Value& a, const Value& b) { return a.Compare(b) < 0; }

 private:
  struct NullT {
    friend bool operator==(const NullT&, const NullT&) { return true; }
  };

  // Documents and arrays are held behind unique_ptr so Value can be defined
  // before Document; copy operations deep-copy the pointees.
  using Rep = std::variant<NullT, double, std::string, std::unique_ptr<Document>,
                           std::unique_ptr<Array>, Binary, ObjectId, bool, DateTime,
                           std::int32_t, std::int64_t>;

  Rep rep_;
};

}  // namespace hotman::bson

#endif  // HOTMAN_BSON_VALUE_H_
