#include "cache/cache_pool.h"

#include <algorithm>

#include "hashring/ketama.h"

namespace hotman::cache {

CachePool::CachePool(int servers, std::size_t capacity_bytes_each) {
  servers_.reserve(servers < 1 ? 1 : servers);
  for (int i = 0; i < std::max(1, servers); ++i) {
    servers_.push_back(std::make_unique<ShardedLruCache>(capacity_bytes_each));
  }
}

ShardedLruCache* CachePool::ServerFor(const std::string& key) {
  const std::size_t index = hashring::KetamaHash(key) % servers_.size();
  return servers_[index].get();
}

bool CachePool::Put(const std::string& key, Bytes value) {
  return ServerFor(key)->Put(key, std::move(value));
}

bool CachePool::Get(const std::string& key, Bytes* value) {
  return ServerFor(key)->Get(key, value);
}

bool CachePool::GetShared(const std::string& key,
                          std::shared_ptr<const Bytes>* value) {
  return ServerFor(key)->GetShared(key, value);
}

bool CachePool::Erase(const std::string& key) { return ServerFor(key)->Erase(key); }

bool CachePool::Pin(const std::string& key) { return ServerFor(key)->Pin(key); }

bool CachePool::Unpin(const std::string& key) {
  return ServerFor(key)->Unpin(key);
}

bool CachePool::IsPinned(const std::string& key) {
  return ServerFor(key)->IsPinned(key);
}

std::size_t CachePool::TotalPinned() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->pinned_count();
  return total;
}

void CachePool::Clear() {
  for (auto& server : servers_) server->Clear();
}

std::uint64_t CachePool::TotalHits() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->hits();
  return total;
}

std::uint64_t CachePool::TotalMisses() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->misses();
  return total;
}

double CachePool::HitRate() const {
  const std::uint64_t total = TotalHits() + TotalMisses();
  return total == 0 ? 0.0 : static_cast<double>(TotalHits()) / total;
}

}  // namespace hotman::cache
