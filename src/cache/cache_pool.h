#ifndef HOTMAN_CACHE_CACHE_POOL_H_
#define HOTMAN_CACHE_CACHE_POOL_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/sharded_lru_cache.h"

namespace hotman::cache {

/// The cache module of Fig. 1: "an independent memory cache system
/// consisting of several cache servers, which are responsible for
/// different partitions of data resources. Their load balances are based
/// on the hash of resources' keys."
///
/// Each server is a ShardedLruCache, so hits on different keys within one
/// server also run concurrently (thread-safe, unlike the bare LruCache).
class CachePool {
 public:
  /// `servers` cache servers of `capacity_bytes_each` (the paper deploys
  /// four servers with 1 GB each).
  CachePool(int servers, std::size_t capacity_bytes_each);

  /// The server responsible for `key` (key-hash partitioning).
  ShardedLruCache* ServerFor(const std::string& key);

  /// Pool-wide operations routed to the owning server.
  bool Put(const std::string& key, Bytes value);
  bool Get(const std::string& key, Bytes* value);
  bool GetShared(const std::string& key, std::shared_ptr<const Bytes>* value);
  bool Erase(const std::string& key);

  /// Heat-pinning passthrough: hot entries resist LRU eviction on their
  /// owning server (see LruCache::Pin).
  bool Pin(const std::string& key);
  bool Unpin(const std::string& key);
  bool IsPinned(const std::string& key);

  void Clear();

  int num_servers() const { return static_cast<int>(servers_.size()); }
  ShardedLruCache* server(int i) { return servers_[i].get(); }

  std::uint64_t TotalHits() const;
  std::uint64_t TotalMisses() const;
  double HitRate() const;
  std::size_t TotalPinned() const;

 private:
  std::vector<std::unique_ptr<ShardedLruCache>> servers_;
};

}  // namespace hotman::cache

#endif  // HOTMAN_CACHE_CACHE_POOL_H_
