#include "cache/lru_cache.h"

namespace hotman::cache {

namespace {

std::size_t EntryBytes(const std::string& key, const Bytes& value) {
  return key.size() + value.size();
}

std::size_t EntryBytes(const std::string& key,
                       const std::shared_ptr<const Bytes>& value) {
  return key.size() + value->size();
}

}  // namespace

LruCache::LruCache(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

void LruCache::EvictUntilFits(std::size_t incoming) {
  // First pass: evict unpinned entries only, least-recent first. Pinned
  // (heat-flagged) entries are skipped so a burst of cold inserts cannot
  // wash out the keys carrying most of the traffic.
  auto it = lru_.end();
  while (used_bytes_ + incoming > capacity_bytes_ && it != lru_.begin()) {
    --it;
    if (it->pinned) continue;
    used_bytes_ -= EntryBytes(it->key, it->value);
    items_.erase(it->key);
    it = lru_.erase(it);
    ++evictions_;
  }
  // Pins resist eviction but never deadlock the cache: if the unpinned
  // population alone can't make room, sacrifice pinned entries from the
  // cold end too (counted separately so the heat layer can notice).
  while (!lru_.empty() && used_bytes_ + incoming > capacity_bytes_) {
    const Entry& victim = lru_.back();
    if (victim.pinned) {
      pinned_bytes_ -= EntryBytes(victim.key, victim.value);
      --pinned_count_;
      ++forced_pinned_evictions_;
    }
    used_bytes_ -= EntryBytes(victim.key, victim.value);
    items_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

bool LruCache::Put(const std::string& key, Bytes value) {
  const std::size_t incoming = EntryBytes(key, value);
  if (incoming > capacity_bytes_) return false;
  bool was_pinned = false;
  auto it = items_.find(key);
  if (it != items_.end()) {
    // Refreshing a pinned entry keeps the pin (a hot key stays hot across
    // value updates).
    was_pinned = it->second->pinned;
    if (was_pinned) {
      pinned_bytes_ -= EntryBytes(it->second->key, it->second->value);
      --pinned_count_;
    }
    used_bytes_ -= EntryBytes(it->second->key, it->second->value);
    lru_.erase(it->second);
    items_.erase(it);
  }
  EvictUntilFits(incoming);
  lru_.push_front(Entry{key, std::make_shared<const Bytes>(std::move(value)),
                        was_pinned});
  items_.emplace(key, lru_.begin());
  used_bytes_ += incoming;
  if (was_pinned) {
    pinned_bytes_ += incoming;
    ++pinned_count_;
  }
  return true;
}

bool LruCache::Get(const std::string& key, Bytes* value) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  // Promote to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value != nullptr) *value = *it->second->value;
  return true;
}

bool LruCache::GetShared(const std::string& key,
                         std::shared_ptr<const Bytes>* value) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value != nullptr) *value = it->second->value;
  return true;
}

bool LruCache::Contains(const std::string& key) const {
  return items_.count(key) > 0;
}

bool LruCache::Erase(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return false;
  if (it->second->pinned) {
    pinned_bytes_ -= EntryBytes(it->second->key, it->second->value);
    --pinned_count_;
  }
  used_bytes_ -= EntryBytes(it->second->key, it->second->value);
  lru_.erase(it->second);
  items_.erase(it);
  return true;
}

bool LruCache::Pin(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return false;
  if (it->second->pinned) return true;
  const std::size_t bytes = EntryBytes(it->second->key, it->second->value);
  // Pinned working set is capped at half the capacity so the cold tail
  // always keeps some churn room.
  if (pinned_bytes_ + bytes > capacity_bytes_ / 2) return false;
  it->second->pinned = true;
  pinned_bytes_ += bytes;
  ++pinned_count_;
  return true;
}

bool LruCache::Unpin(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end() || !it->second->pinned) return false;
  it->second->pinned = false;
  pinned_bytes_ -= EntryBytes(it->second->key, it->second->value);
  --pinned_count_;
  return true;
}

bool LruCache::IsPinned(const std::string& key) const {
  const auto it = items_.find(key);
  return it != items_.end() && it->second->pinned;
}

void LruCache::Clear() {
  lru_.clear();
  items_.clear();
  used_bytes_ = 0;
  pinned_bytes_ = 0;
  pinned_count_ = 0;
}

}  // namespace hotman::cache
