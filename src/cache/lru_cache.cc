#include "cache/lru_cache.h"

namespace hotman::cache {

namespace {

std::size_t EntryBytes(const std::string& key, const Bytes& value) {
  return key.size() + value.size();
}

std::size_t EntryBytes(const std::string& key,
                       const std::shared_ptr<const Bytes>& value) {
  return key.size() + value->size();
}

}  // namespace

LruCache::LruCache(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

void LruCache::EvictUntilFits(std::size_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= EntryBytes(victim.key, victim.value);
    items_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

bool LruCache::Put(const std::string& key, Bytes value) {
  const std::size_t incoming = EntryBytes(key, value);
  if (incoming > capacity_bytes_) return false;
  auto it = items_.find(key);
  if (it != items_.end()) {
    used_bytes_ -= EntryBytes(it->second->key, it->second->value);
    lru_.erase(it->second);
    items_.erase(it);
  }
  EvictUntilFits(incoming);
  lru_.push_front(Entry{key, std::make_shared<const Bytes>(std::move(value))});
  items_.emplace(key, lru_.begin());
  used_bytes_ += incoming;
  return true;
}

bool LruCache::Get(const std::string& key, Bytes* value) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  // Promote to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value != nullptr) *value = *it->second->value;
  return true;
}

bool LruCache::GetShared(const std::string& key,
                         std::shared_ptr<const Bytes>* value) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value != nullptr) *value = it->second->value;
  return true;
}

bool LruCache::Contains(const std::string& key) const {
  return items_.count(key) > 0;
}

bool LruCache::Erase(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return false;
  used_bytes_ -= EntryBytes(it->second->key, it->second->value);
  lru_.erase(it->second);
  items_.erase(it);
  return true;
}

void LruCache::Clear() {
  lru_.clear();
  items_.clear();
  used_bytes_ = 0;
}

}  // namespace hotman::cache
