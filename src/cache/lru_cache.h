#ifndef HOTMAN_CACHE_LRU_CACHE_H_
#define HOTMAN_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/bytes.h"

namespace hotman::cache {

/// One cache server: an in-memory {key: value} store with LRU age-out
/// bounded by a byte budget (§4: "unstructured data items in cache are
/// stored in {key: value} format using LRU algorithm for age-out"; the
/// paper's deployment gives each cache server 1 GB).
///
/// Bytes is a bare std::vector with no built-in sharing, so shared
/// ownership happens at the cache boundary: entries hold their value
/// behind shared_ptr<const Bytes>, GetShared hands that pointer out
/// without copying the payload, and Get keeps the historical
/// copy-into-caller-buffer contract for callers that mutate the result.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity_bytes);

  /// Inserts or refreshes `key`. Values larger than the whole cache are
  /// rejected (returns false) rather than evicting everything.
  bool Put(const std::string& key, Bytes value);

  /// Fetches and promotes `key`; false on miss. Copies the value into
  /// `*value` — use GetShared on hot paths that only read.
  bool Get(const std::string& key, Bytes* value);

  /// Fetches and promotes `key` without copying the payload: on hit,
  /// `*value` shares ownership with the cache entry (O(1) in value size).
  /// The bytes stay valid even if the entry is evicted afterwards.
  bool GetShared(const std::string& key, std::shared_ptr<const Bytes>* value);

  /// True without promoting (introspection only).
  bool Contains(const std::string& key) const;

  /// Removes `key` (DELETE invalidation path); false when absent.
  bool Erase(const std::string& key);

  /// Marks `key` as heat-pinned: pinned entries are skipped by normal LRU
  /// eviction (hot-spot taming — a burst of cold inserts must not wash
  /// out the keys serving most of the traffic). False when the key is
  /// absent or pinning it would push pinned bytes past half the capacity
  /// (the cache must stay useful for the cold tail). Idempotent.
  bool Pin(const std::string& key);

  /// Clears the pin; false when the key is absent or wasn't pinned.
  /// Unpinned entries age out normally from their current LRU position.
  bool Unpin(const std::string& key);

  /// True when `key` is present and pinned (introspection only).
  bool IsPinned(const std::string& key) const;

  void Clear();

  std::size_t size_bytes() const { return used_bytes_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t item_count() const { return items_.size(); }
  std::size_t pinned_count() const { return pinned_count_; }
  std::size_t pinned_bytes() const { return pinned_bytes_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Times eviction had to sacrifice a pinned entry because the unpinned
  /// population alone couldn't make room (pins resist, never deadlock).
  std::uint64_t forced_pinned_evictions() const {
    return forced_pinned_evictions_;
  }

  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Bytes> value;
    bool pinned = false;
  };

  void EvictUntilFits(std::size_t incoming);

  std::size_t capacity_bytes_;
  std::size_t used_bytes_ = 0;
  // Most-recently-used at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> items_;
  std::size_t pinned_count_ = 0;
  std::size_t pinned_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t forced_pinned_evictions_ = 0;
};

}  // namespace hotman::cache

#endif  // HOTMAN_CACHE_LRU_CACHE_H_
