#include "cache/sharded_lru_cache.h"

#include <algorithm>

namespace hotman::cache {

namespace {

/// FNV-1a 64-bit — cheap, decent avalanche, and independent of the
/// Ketama hash used for server routing (see class comment).
std::uint64_t ShardHash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShardedLruCache::ShardedLruCache(std::size_t capacity_bytes,
                                 std::size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  const std::size_t n = std::max<std::size_t>(1, num_shards);
  const std::size_t base = capacity_bytes / n;
  const std::size_t remainder = capacity_bytes % n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // First `remainder` shards take one extra byte so the shard budgets
    // sum exactly to capacity_bytes.
    shards_.push_back(std::make_unique<Shard>(base + (i < remainder ? 1 : 0)));
  }
}

std::size_t ShardedLruCache::ShardOf(const std::string& key) const {
  return ShardHash(key) % shards_.size();
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const std::string& key) {
  return *shards_[ShardOf(key)];
}

const ShardedLruCache::Shard& ShardedLruCache::ShardFor(
    const std::string& key) const {
  return *shards_[ShardOf(key)];
}

std::size_t ShardedLruCache::ShardIndexOf(const std::string& key) const {
  return ShardOf(key);
}

std::size_t ShardedLruCache::shard_item_count(std::size_t shard) const {
  const Shard& s = *shards_[shard];
  MutexLock lock(&s.mu);
  return s.cache.item_count();
}

bool ShardedLruCache::Put(const std::string& key, Bytes value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Put(key, std::move(value));
}

bool ShardedLruCache::Get(const std::string& key, Bytes* value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Get(key, value);
}

bool ShardedLruCache::GetShared(const std::string& key,
                                std::shared_ptr<const Bytes>* value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.GetShared(key, value);
}

bool ShardedLruCache::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Contains(key);
}

bool ShardedLruCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Erase(key);
}

bool ShardedLruCache::Pin(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Pin(key);
}

bool ShardedLruCache::Unpin(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.Unpin(key);
}

bool ShardedLruCache::IsPinned(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.cache.IsPinned(key);
}

void ShardedLruCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->cache.Clear();
  }
}

std::size_t ShardedLruCache::size_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.size_bytes();
  }
  return total;
}

std::size_t ShardedLruCache::item_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.item_count();
  }
  return total;
}

std::size_t ShardedLruCache::pinned_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.pinned_count();
  }
  return total;
}

std::size_t ShardedLruCache::pinned_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.pinned_bytes();
  }
  return total;
}

std::uint64_t ShardedLruCache::forced_pinned_evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.forced_pinned_evictions();
  }
  return total;
}

std::uint64_t ShardedLruCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.hits();
  }
  return total;
}

std::uint64_t ShardedLruCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.misses();
  }
  return total;
}

std::uint64_t ShardedLruCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->cache.evictions();
  }
  return total;
}

double ShardedLruCache::HitRate() const {
  const std::uint64_t h = hits();
  const std::uint64_t total = h + misses();
  return total == 0 ? 0.0 : static_cast<double>(h) / total;
}

}  // namespace hotman::cache
