#ifndef HOTMAN_CACHE_SHARDED_LRU_CACHE_H_
#define HOTMAN_CACHE_SHARDED_LRU_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hotman::cache {

/// One cache server presented as N independently locked LruCache shards.
///
/// LruCache itself is unsynchronized; a single lock around it serializes
/// every hit because each Get mutates the recency list. Sharding by key
/// hash gives concurrent hits on different keys disjoint locks, so a
/// cache server scales with cores instead of serializing on one list.
/// The byte budget is split across shards (base + remainder on the first
/// shards), which keeps the aggregate bound exact; per-key capacity is
/// capacity/num_shards, the usual sharded-cache tradeoff.
///
/// Shard selection uses FNV-1a, deliberately distinct from the Ketama
/// hash CachePool uses to pick a server: reusing the server hash would
/// make every key on a given server land in a correlated subset of
/// shards and skew the split.
class ShardedLruCache {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  explicit ShardedLruCache(std::size_t capacity_bytes,
                           std::size_t num_shards = kDefaultShards);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Inserts or refreshes `key` in its shard. Values larger than the
  /// shard's budget are rejected (returns false), mirroring LruCache.
  bool Put(const std::string& key, Bytes value);

  /// Fetches and promotes `key`; false on miss. Copies the value.
  bool Get(const std::string& key, Bytes* value);

  /// Zero-copy hit path: `*value` shares ownership with the cache entry.
  bool GetShared(const std::string& key, std::shared_ptr<const Bytes>* value);

  /// True without promoting (introspection only).
  bool Contains(const std::string& key) const;

  /// Removes `key` (DELETE invalidation path); false when absent.
  bool Erase(const std::string& key);

  /// Heat-pinning passthrough (see LruCache::Pin/Unpin): pinned entries
  /// resist LRU eviction in their shard.
  bool Pin(const std::string& key);
  bool Unpin(const std::string& key);
  bool IsPinned(const std::string& key) const;

  void Clear();

  std::size_t num_shards() const { return shards_.size(); }

  /// Which shard `key` routes to (for tests and introspection).
  std::size_t ShardIndexOf(const std::string& key) const;

  /// Item count of one shard (introspection: lets tests assert the data
  /// path and ShardIndexOf agree on placement).
  std::size_t shard_item_count(std::size_t shard) const;

  /// Aggregate stats merged across shards. Each value is internally
  /// consistent per shard but the merge is not an atomic snapshot.
  std::size_t size_bytes() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t item_count() const;
  std::size_t pinned_count() const;
  std::size_t pinned_bytes() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t forced_pinned_evictions() const;
  double HitRate() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity_bytes) : cache(capacity_bytes) {}
    mutable Mutex mu;
    LruCache cache HOTMAN_GUARDED_BY(mu);
  };

  /// The single place the shard hash is computed. Every routing call
  /// (mutating, const, and ShardIndexOf) funnels through here — the Get
  /// and Put paths used to hash independently, which invited a latent
  /// mis-shard if one callsite ever drifted.
  std::size_t ShardOf(const std::string& key) const;

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  std::size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hotman::cache

#endif  // HOTMAN_CACHE_SHARDED_LRU_CACHE_H_
