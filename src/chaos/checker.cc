#include "chaos/checker.h"

#include <algorithm>
#include <limits>

namespace hotman::chaos {

using workload::HistoryOp;
using workload::OpKind;
using workload::OpStatus;

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kPhantomRead:
      return "phantom-read";
    case ViolationKind::kStaleRead:
      return "stale-read";
    case ViolationKind::kStaleAbsence:
      return "stale-absence";
    case ViolationKind::kReadYourWrites:
      return "read-your-writes";
    case ViolationKind::kLostUpdate:
      return "lost-update";
    case ViolationKind::kDivergence:
      return "divergence";
    case ViolationKind::kOrphanReplica:
      return "orphan-replica";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = ViolationKindName(kind);
  out += " key=" + key;
  if (op != 0) out += " op=" + std::to_string(op);
  if (evidence != 0) out += " evidence=" + std::to_string(evidence);
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

std::string CheckReport::Summary() const {
  std::string out = "checked " + std::to_string(keys_checked) + " keys, " +
                    std::to_string(reads_checked) + " reads, " +
                    std::to_string(writes_acked) + " acked writes (" +
                    std::to_string(indeterminate_writes) +
                    " indeterminate): ";
  if (violations.empty()) return out + "consistent";
  out += std::to_string(violations.size()) + " violation(s)";
  for (const Violation& v : violations) out += "\n  " + v.ToString();
  return out;
}

namespace {

/// Per-key view of the history the rules run against.
struct KeyOps {
  std::vector<const HistoryOp*> writes;  // puts + deletes, invocation order
  std::vector<const HistoryOp*> reads;   // completed gets
};

bool IsWrite(const HistoryOp& op) {
  return op.kind == OpKind::kPut || op.kind == OpKind::kDelete;
}

bool Acked(const HistoryOp* op) {
  return op->completed && op->status == OpStatus::kOk;
}

/// Strict real-time precedence: `a` finished before `b` began.
bool Precedes(const HistoryOp* a, const HistoryOp* b) {
  return a->completed && a->completed_at < b->invoked_at;
}

/// A delete that could linearize *after* `put` (it did not provably finish
/// before the put began) and take effect before `horizon` justifies
/// absence. Indeterminate deletes count: they may have landed.
bool AbsenceJustified(const KeyOps& ops, const HistoryOp* put,
                      Micros horizon) {
  for (const HistoryOp* w : ops.writes) {
    if (w->kind != OpKind::kDelete) continue;
    if (w->invoked_at >= horizon) continue;  // cannot have hit yet
    if (Precedes(w, put)) continue;          // provably before the put
    return true;
  }
  return false;
}

/// The acked put with the latest completion that fully precedes `horizon`
/// (the state a read invoked at `horizon` must minimally see).
const HistoryOp* LatestSettledPut(const KeyOps& ops, Micros horizon) {
  const HistoryOp* best = nullptr;
  for (const HistoryOp* w : ops.writes) {
    if (w->kind != OpKind::kPut || !Acked(w)) continue;
    if (w->completed_at >= horizon) continue;
    if (best == nullptr || w->completed_at > best->completed_at) best = w;
  }
  return best;
}

}  // namespace

CheckReport CheckHistory(const workload::History& history,
                         const std::map<std::string, FinalKeyState>& final_state,
                         const CheckOptions& options) {
  CheckReport report;

  // Index ops per key; map every written value back to its put.
  std::map<std::string, KeyOps> keys;
  std::map<std::string, const HistoryOp*> value_writer;  // value is unique
  for (const HistoryOp& op : history.ops()) {
    if (IsWrite(op)) {
      keys[op.key].writes.push_back(&op);
      if (op.kind == OpKind::kPut && !op.value.empty()) {
        value_writer.emplace(op.value, &op);
      }
      if (Acked(&op)) {
        ++report.writes_acked;
      } else {
        ++report.indeterminate_writes;
      }
    } else if (op.completed && op.status != OpStatus::kFailed) {
      keys[op.key].reads.push_back(&op);
      ++report.reads_checked;
    }
  }
  report.keys_checked = keys.size();

  auto flag = [&report](ViolationKind kind, const std::string& key,
                        std::uint64_t op, std::uint64_t evidence,
                        std::string detail) {
    report.violations.push_back(
        Violation{kind, key, op, evidence, std::move(detail)});
  };

  for (const auto& [key, ops] : keys) {
    // --- real-time read rules -------------------------------------------
    for (const HistoryOp* r : ops.reads) {
      const bool absent = r->status == OpStatus::kNotFound || r->value.empty();
      if (absent) {
        if (!options.check_stale_reads) continue;
        const HistoryOp* settled = LatestSettledPut(ops, r->invoked_at);
        if (settled != nullptr &&
            !AbsenceJustified(ops, settled, r->completed_at)) {
          flag(ViolationKind::kStaleAbsence, key, r->id, settled->id,
               "nothing read although put v=" + settled->value +
                   " was acked before the read began");
        }
        continue;
      }

      auto writer = value_writer.find(r->value);
      if (writer == value_writer.end() || writer->second->key != key) {
        flag(ViolationKind::kPhantomRead, key, r->id, 0,
             "value " + r->value + " was never written to this key");
        continue;
      }
      const HistoryOp* w = writer->second;
      if (!options.check_stale_reads || !Acked(w)) continue;
      // Stale iff some acked write fits strictly between w and the read.
      for (const HistoryOp* w2 : ops.writes) {
        if (w2 == w || !Acked(w2)) continue;
        if (Precedes(w, w2) && Precedes(w2, r)) {
          flag(ViolationKind::kStaleRead, key, r->id, w2->id,
               "read v=" + r->value + " although write op " +
                   std::to_string(w2->id) + " finished before the read began");
          break;
        }
      }
    }

    // --- read-your-writes (per sequential client session) ----------------
    if (options.check_read_your_writes) {
      // Ops of one client are non-overlapping, so scanning in invocation
      // order walks each session chronologically.
      std::map<int, const HistoryOp*> last_acked_write;  // client -> op
      std::vector<const HistoryOp*> session;
      session.insert(session.end(), ops.writes.begin(), ops.writes.end());
      session.insert(session.end(), ops.reads.begin(), ops.reads.end());
      std::sort(session.begin(), session.end(),
                [](const HistoryOp* a, const HistoryOp* b) {
                  return a->id < b->id;
                });
      for (const HistoryOp* op : session) {
        if (IsWrite(*op)) {
          if (Acked(op)) last_acked_write[op->client] = op;
          continue;
        }
        auto own = last_acked_write.find(op->client);
        if (own == last_acked_write.end()) continue;
        const HistoryOp* mine = own->second;
        const bool absent =
            op->status == OpStatus::kNotFound || op->value.empty();
        if (absent) {
          if (mine->kind == OpKind::kPut &&
              !AbsenceJustified(ops, mine, op->completed_at)) {
            flag(ViolationKind::kReadYourWrites, key, op->id, mine->id,
                 "client " + std::to_string(op->client) +
                     " lost sight of its own acked put v=" + mine->value);
          }
          continue;
        }
        auto writer = value_writer.find(op->value);
        if (writer == value_writer.end()) continue;  // phantom, flagged above
        const HistoryOp* w = writer->second;
        if (Acked(w) && Precedes(w, mine)) {
          flag(ViolationKind::kReadYourWrites, key, op->id, mine->id,
               "client " + std::to_string(op->client) +
                   " read v=" + op->value +
                   ", older than its own acked write op " +
                   std::to_string(mine->id));
        }
      }
    }

    // --- final-state rules (lost updates) --------------------------------
    if (!options.check_lost_updates) continue;
    auto fin = final_state.find(key);
    const bool final_present = fin != final_state.end() && fin->second.present;
    if (final_present) {
      auto writer = value_writer.find(fin->second.value);
      if (writer == value_writer.end() || writer->second->key != key) {
        flag(ViolationKind::kLostUpdate, key, 0, 0,
             "final value " + fin->second.value + " was never written");
        continue;
      }
      const HistoryOp* w = writer->second;
      for (const HistoryOp* w2 : ops.writes) {
        if (w2 == w || !Acked(w2)) continue;
        if (Precedes(w, w2)) {
          flag(ViolationKind::kLostUpdate, key, w->id, w2->id,
               "final value v=" + fin->second.value + " predates acked write op " +
                   std::to_string(w2->id));
          break;
        }
      }
    } else {
      // Key ended absent: every settled acked put must be deletable.
      const HistoryOp* settled =
          LatestSettledPut(ops, std::numeric_limits<Micros>::max());
      if (settled != nullptr &&
          !AbsenceJustified(ops, settled,
                            std::numeric_limits<Micros>::max())) {
        flag(ViolationKind::kLostUpdate, key, 0, settled->id,
             "acked put v=" + settled->value +
                 " vanished without any delete that could explain it");
      }
    }
  }

  return report;
}

}  // namespace hotman::chaos
