#ifndef HOTMAN_CHAOS_CHECKER_H_
#define HOTMAN_CHAOS_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workload/history.h"

namespace hotman::chaos {

/// Consistency violations the offline checker can report.
enum class ViolationKind {
  kPhantomRead,     ///< read returned a value no write ever produced
  kStaleRead,       ///< read returned a value an acked write had superseded
  kStaleAbsence,    ///< read returned absence despite a preceding acked put
  kReadYourWrites,  ///< session read older state than its own acked write
  kLostUpdate,      ///< final state misses an acked write entirely
  kDivergence,      ///< replicas disagree after the cluster quiesced
  kOrphanReplica,   ///< a non-owner still holds a key after quiesce
};

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string key;
  std::uint64_t op = 0;        ///< the offending operation, 0 if none
  std::uint64_t evidence = 0;  ///< the write proving the violation, 0 if none
  std::string detail;

  std::string ToString() const;
};

/// What the checker may assume about the run. The harness derives these
/// from the cluster profile: real-time read rules need a strict
/// intersecting quorum (R+W>N, hinted handoff off), and final-state rules
/// need honest clocks (last-write-wins reorders under skew by design).
struct CheckOptions {
  bool check_stale_reads = true;
  bool check_read_your_writes = true;
  bool check_lost_updates = true;
};

/// The last-write-wins winner for one key after the run quiesced, as
/// observed on the live replicas (the harness extracts this from the
/// stores; `present` is false when every replica agrees the key is absent
/// or tombstoned).
struct FinalKeyState {
  bool present = false;
  std::string value;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::size_t reads_checked = 0;
  std::size_t writes_acked = 0;
  std::size_t indeterminate_writes = 0;
  std::size_t keys_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Replays a completed history against the NWR consistency model
/// (Wing–Gong style per-key real-time ordering, conservative about
/// indeterminate operations):
///
///  - *Phantom read*: a read's value was never written for that key.
///  - *Stale read*: a read returned acked write `w` although another acked
///    write finished strictly between `w`'s completion and the read's
///    invocation. Only acked `w` counts: an indeterminate write may
///    legitimately take effect at any point after its invocation.
///  - *Stale absence*: a read saw nothing although an acked put fully
///    preceded it and no delete in the history could be ordered after that
///    put.
///  - *Read-your-writes*: within one sequential client session, a read
///    observed state strictly older than the session's own acked write.
///  - *Lost update*: the final converged value belongs to a write that
///    strictly precedes some acked write (the later write vanished), or
///    the key is absent although an acked put could not have been deleted.
///
/// All rules use strict real-time precedence (a.completed < b.invoked), so
/// concurrent operations never produce violations — the checker only
/// reports what *no* correct NWR execution could explain.
CheckReport CheckHistory(const workload::History& history,
                         const std::map<std::string, FinalKeyState>& final_state,
                         const CheckOptions& options);

}  // namespace hotman::chaos

#endif  // HOTMAN_CHAOS_CHECKER_H_
