#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "bson/codec.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "core/record.h"
#include "workload/skew.h"

namespace hotman::chaos {

using workload::History;
using workload::OpKind;
using workload::OpStatus;

ChaosOptions ChaosOptions::QuorumProfile(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.read_quorum = 2;  // R+W = 4 > N = 3: every read meets every write
  options.hinted_handoff = false;  // substitute acks would break intersection
  options.nemesis.clock_skew = false;  // LWW ordering must stay real-time
  options.nemesis.state_loss = false;  // durability is assumed, not checked
  return options;
}

ChaosOptions ChaosOptions::MembershipProfile(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.read_quorum = 2;         // R+W > N, like the quorum profile
  options.hinted_handoff = false;  // foreign-key hints would fail ownership
  options.nemesis.clock_skew = false;
  options.nemesis.state_loss = false;
  options.nemesis.membership = true;
  // A ring mid-migration makes real-time read staleness legitimate (the
  // newcomer answers for arcs it is still receiving); the checked core is
  // phantoms, lost updates, convergence and ownership.
  options.check.check_stale_reads = false;
  options.check.check_read_your_writes = false;
  options.check_ownership = true;
  return options;
}

ChaosOptions ChaosOptions::SkewProfile(std::uint64_t seed) {
  ChaosOptions options = QuorumProfile(seed);
  options.zipf_theta = 0.99;  // YCSB-default skew: rank 0 takes ~35% of ops
  options.fast_reads = true;
  options.hot_reads = true;
  // Chaos traffic runs at a few ops/sec of virtual time; the production
  // thresholds (hundreds of qps) would never flag anything. These flag the
  // Zipf head within the warmup without flagging the uniform tail.
  options.heat.hot_qps = 1.0;
  options.heat.min_hits = 6.0;
  options.heat.half_life = 4 * kMicrosPerSecond;
  return options;
}

ChaosOptions ChaosOptions::ConvergenceProfile(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  // Sloppy quorum (paper defaults) under the full menu: reads may be stale
  // by design, so only phantom values, convergence and provenance are
  // checked.
  options.check.check_stale_reads = false;
  options.check.check_read_your_writes = false;
  options.check.check_lost_updates = false;
  return options;
}

namespace {

/// One sequential client session issuing ops against round-robin
/// coordinators, recording everything into the shared history.
class ClientSession {
 public:
  ClientSession(int id, cluster::Cluster* cluster, History* history,
                const ChaosOptions& options, Rng rng)
      : id_(id),
        cluster_(cluster),
        history_(history),
        options_(options),
        rng_(rng) {
    if (options_.zipf_theta > 0.0) {
      zipf_.emplace(static_cast<std::size_t>(options_.keys),
                    options_.zipf_theta);
    }
  }

  void Start() { ScheduleNext(); }
  bool Done() const { return issued_ >= options_.ops_per_client && !in_flight_; }

 private:
  void ScheduleNext() {
    if (issued_ >= options_.ops_per_client) return;
    const Micros think =
        rng_.UniformRange(options_.think_min, options_.think_max);
    cluster_->loop()->Schedule(think, [this]() { IssueOne(); });
  }

  void IssueOne() {
    // Both draws consume exactly one Rng value, so flipping the skew on
    // never perturbs the think-time/mix stream of a given seed.
    const std::uint64_t rank =
        zipf_ ? zipf_->Next(&rng_) : rng_.Uniform(options_.keys);
    const std::string key = "k" + std::to_string(rank);
    const double mix = rng_.NextDouble();
    ++issued_;
    in_flight_ = true;
    cluster::StorageNode* coordinator = cluster_->AnyCoordinator();
    const std::string coordinator_id = coordinator->id();
    const Micros now = cluster_->loop()->Now();

    if (mix < options_.put_fraction) {
      const std::string value =
          "c" + std::to_string(id_) + "-" + std::to_string(issued_);
      const std::uint64_t op =
          history_->Invoke(id_, OpKind::kPut, key, value, now);
      coordinator->CoordinatePut(
          key, Bytes(value.begin(), value.end()),
          [this, op, coordinator_id](const Status& s) {
            history_->Complete(op, s.ok() ? OpStatus::kOk : OpStatus::kFailed,
                               "", coordinator_id, cluster_->loop()->Now());
            OpDone();
          });
    } else if (mix < options_.put_fraction + options_.delete_fraction) {
      const std::uint64_t op =
          history_->Invoke(id_, OpKind::kDelete, key, "", now);
      coordinator->CoordinateDelete(
          key, [this, op, coordinator_id](const Status& s) {
            history_->Complete(op, s.ok() ? OpStatus::kOk : OpStatus::kFailed,
                               "", coordinator_id, cluster_->loop()->Now());
            OpDone();
          });
    } else {
      const std::uint64_t op =
          history_->Invoke(id_, OpKind::kGet, key, "", now);
      coordinator->CoordinateGet(
          key, [this, op, coordinator_id](const Result<bson::Document>& r) {
            OpStatus status = OpStatus::kFailed;
            std::string value;
            if (r.ok() && !core::RecordIsDeleted(*r)) {
              status = OpStatus::kOk;
              const Bytes& bytes = core::RecordValue(*r);
              value.assign(bytes.begin(), bytes.end());
            } else if (r.ok() || r.status().IsNotFound()) {
              status = OpStatus::kNotFound;  // tombstone or authoritative miss
            }
            history_->Complete(op, status, value, coordinator_id,
                               cluster_->loop()->Now());
            OpDone();
          });
    }
  }

  void OpDone() {
    in_flight_ = false;
    ScheduleNext();
  }

  int id_;
  cluster::Cluster* cluster_;
  History* history_;
  const ChaosOptions& options_;
  Rng rng_;
  std::optional<workload::ZipfGenerator> zipf_;  ///< engaged when theta > 0
  int issued_ = 0;
  bool in_flight_ = false;
};

/// Normalized wire form of a record for byte-compare across replicas: the
/// coordinator's original differs from copies only in the isData flag, so
/// everything is compared as a copy.
std::string NormalizedBytes(const bson::Document& record) {
  return bson::EncodeToString(core::AsReplicaCopy(record));
}

}  // namespace

ChaosResult RunChaos(const ChaosOptions& options) {
  ChaosResult result;

  cluster::ClusterConfig config = cluster::ClusterConfig::Uniform(
      options.nodes, /*seeds=*/options.nodes >= 3 ? 2 : 1);
  config.replication_factor = options.replication;
  config.write_quorum = options.write_quorum;
  config.read_quorum = options.read_quorum;
  config.hinted_handoff = options.hinted_handoff;
  config.read_repair = options.read_repair;
  config.fast_reads = options.fast_reads;
  config.hot_reads = options.hot_reads;
  config.heat = options.heat;
  config.shards = options.shards;
  config.anti_entropy = options.anti_entropy;
  config.anti_entropy_interval = 2 * kMicrosPerSecond;
  config.chaos_lying_replica = options.lying_replica;
  config.chaos_skip_ownership_purge = options.chaos_skip_ownership_purge;

  cluster::Cluster cluster(config, options.seed);
  Status started = cluster.Start();
  if (!started.ok()) {
    result.report.violations.push_back(Violation{
        ViolationKind::kDivergence, "", 0, 0,
        "cluster failed to start: " + started.ToString()});
    return result;
  }

  Nemesis nemesis(&cluster, options.nemesis, options.seed);

  Rng master(options.seed ^ 0xc11e7f5ca1ab1e5ull);
  std::vector<std::unique_ptr<ClientSession>> clients;
  clients.reserve(options.clients);
  for (int c = 0; c < options.clients; ++c) {
    clients.push_back(std::make_unique<ClientSession>(
        c, &cluster, &result.history, options, master.Fork()));
  }
  for (auto& client : clients) client->Start();

  // Warmup traffic on a healthy cluster, then release the nemesis.
  cluster.RunFor(options.warmup);
  nemesis.Start();

  const Micros drain_deadline = cluster.loop()->Now() + options.drain_budget;
  auto all_done = [&clients]() {
    for (const auto& client : clients) {
      if (!client->Done()) return false;
    }
    return true;
  };
  while (!all_done() && cluster.loop()->Now() < drain_deadline) {
    cluster.RunFor(200 * kMicrosPerMilli);
  }
  result.drained = all_done();

  // Heal the world and let background repair quiesce: gossip re-learns the
  // membership, hints deliver, anti-entropy reconciles. The explicit
  // pair-wise rounds make convergence independent of the random peer
  // choice of the periodic timer.
  nemesis.Stop();
  nemesis.HealAll();
  cluster.RunFor(3 * kMicrosPerSecond);

  // A decommission drawn late in the run may still be streaming its data
  // out; on the healed network it finishes quickly, so wait for the ring
  // to stop moving before measuring.
  const Micros leave_deadline =
      cluster.loop()->Now() + 60 * kMicrosPerSecond;
  auto any_leaving = [&cluster]() {
    for (cluster::StorageNode* node : cluster.nodes()) {
      if (node->decommissioning() && node->running()) return true;
    }
    return false;
  };
  while (any_leaving() && cluster.loop()->Now() < leave_deadline) {
    cluster.RunFor(500 * kMicrosPerMilli);
  }
  // Decommissioned nodes have left the system: their (stopped) stores are
  // no longer part of the replicated state, so every post-run pass walks
  // only the running membership.
  std::vector<cluster::StorageNode*> nodes;
  for (cluster::StorageNode* node : cluster.nodes()) {
    if (node->running()) nodes.push_back(node);
  }
  if (nodes.empty()) {
    result.report.violations.push_back(Violation{
        ViolationKind::kDivergence, "", 0, 0,
        "no node left running after the run"});
    return result;
  }
  for (int pass = 0; pass < options.ae_passes; ++pass) {
    for (cluster::StorageNode* node : nodes) {
      for (cluster::StorageNode* peer : nodes) {
        if (node != peer) node->RunAntiEntropyRound(peer->id());
      }
      cluster.RunFor(300 * kMicrosPerMilli);
    }
  }
  cluster.RunFor(options.quiesce);

  // --- final state + convergence --------------------------------------
  std::map<std::string, std::vector<std::pair<std::string, bson::Document>>>
      holders;
  for (cluster::StorageNode* node : nodes) {
    for (int shard = 0; shard < node->num_shards(); ++shard) {
      auto records = node->StoreOfShard(shard)->AllRecords();  // NOLINT(hotman-shard-affinity) post-run snapshot; the simulated loop is idle
      if (!records.ok()) continue;
      for (bson::Document& record : *records) {
        holders[core::RecordSelfKey(record)].emplace_back(node->id(),
                                                          std::move(record));
      }
    }
  }

  for (const auto& [key, copies] : holders) {
    const bson::Document* winner = nullptr;
    for (const auto& [node_id, record] : copies) {
      if (winner == nullptr || core::SupersedesLww(record, *winner)) {
        winner = &record;
      }
    }
    FinalKeyState state;
    state.present = winner != nullptr && !core::RecordIsDeleted(*winner);
    if (state.present) {
      const Bytes& bytes = core::RecordValue(*winner);
      state.value.assign(bytes.begin(), bytes.end());
    }
    result.final_state.emplace(key, std::move(state));
  }

  if (options.check_convergence) {
    for (const auto& [key, copies] : holders) {
      const std::string reference = NormalizedBytes(copies.front().second);
      std::string mismatched;
      for (const auto& [node_id, record] : copies) {
        if (NormalizedBytes(record) != reference) {
          mismatched += (mismatched.empty() ? "" : ",") + node_id;
        }
      }
      if (!mismatched.empty()) {
        result.report.violations.push_back(Violation{
            ViolationKind::kDivergence, key, 0, 0,
            "replicas disagree after quiesce (holders " +
                std::to_string(copies.size()) + ", diverged: " + mismatched +
                ")"});
        continue;
      }
      // Every current preference member must hold the converged record.
      const std::vector<std::string> prefs =
          nodes.front()->ring().PreferenceList(
              key, static_cast<std::size_t>(options.replication));
      for (const std::string& member : prefs) {
        bool holds = false;
        for (const auto& [node_id, record] : copies) {
          if (node_id == member) holds = true;
        }
        if (!holds) {
          result.report.violations.push_back(Violation{
              ViolationKind::kDivergence, key, 0, 0,
              "preference member " + member +
                  " is missing the record after quiesce"});
        }
      }
    }
  }

  if (options.check_ownership) {
    // Every running node must agree on who the members are...
    const std::vector<std::string> reference_members =
        nodes.front()->ring().Nodes();
    for (cluster::StorageNode* node : nodes) {
      if (node->ring().Nodes() != reference_members) {
        std::string detail = "ring membership disagrees: " +
                             nodes.front()->id() + " vs " + node->id();
        result.report.violations.push_back(
            Violation{ViolationKind::kDivergence, "", 0, 0, detail});
      }
    }
    // ...and nobody may still hold a key it no longer owns: join and
    // decommission moved arcs, and the ownership sweep purges the stale
    // source copies once the stream is acked.
    for (const auto& [key, copies] : holders) {
      const std::vector<std::string> prefs =
          nodes.front()->ring().PreferenceList(
              key, static_cast<std::size_t>(options.replication));
      for (const auto& [node_id, record] : copies) {
        bool owner = false;
        for (const std::string& member : prefs) {
          if (member == node_id) owner = true;
        }
        if (!owner) {
          result.report.violations.push_back(Violation{
              ViolationKind::kOrphanReplica, key, 0, 0,
              node_id + " still holds the key; owners are " +
                  [&prefs] {
                    std::string joined;
                    for (const std::string& p : prefs) {
                      joined += (joined.empty() ? "" : ",") + p;
                    }
                    return joined;
                  }()});
        }
      }
    }
  }

  CheckReport checked =
      CheckHistory(result.history, result.final_state, options.check);
  checked.violations.insert(checked.violations.end(),
                            result.report.violations.begin(),
                            result.report.violations.end());
  result.report = std::move(checked);

  result.history_hash = result.history.HexHash();
  result.nemesis_log = nemesis.log();
  result.faults_injected = nemesis.faults_injected();
  const cluster::NodeStats totals = cluster.AggregateStats();
  result.hot_gets_fanned = totals.hot_gets_fanned;
  result.hot_read_hits = totals.hot_read_hits;
  result.hot_read_demotions = totals.hot_read_demotions;
  return result;
}

}  // namespace hotman::chaos
