#ifndef HOTMAN_CHAOS_HARNESS_H_
#define HOTMAN_CHAOS_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/checker.h"
#include "chaos/nemesis.h"
#include "cluster/heat_tracker.h"
#include "common/clock.h"
#include "workload/history.h"

namespace hotman::chaos {

/// One deterministic chaos run: cluster profile + workload shape + nemesis
/// menu + checker assumptions. Everything derives from `seed`; two runs
/// with equal options produce byte-identical histories (hash-checked).
struct ChaosOptions {
  std::uint64_t seed = 1;

  // --- cluster profile ---
  int nodes = 5;
  int replication = 3;   ///< N
  int write_quorum = 2;  ///< W
  int read_quorum = 1;   ///< R
  bool hinted_handoff = true;
  bool read_repair = true;
  bool anti_entropy = true;
  /// Dirty-set fast read path (primary-anchored single-replica reads of
  /// clean keys). Only engages when hinted_handoff is off; the checker's
  /// full real-time rule set is exactly what proves it safe.
  bool fast_reads = false;
  /// Shards per node (ClusterConfig::shards). The deterministic runtime
  /// multiplexes every shard onto the node's simulated transport, so a
  /// multi-shard sweep replays bit-identically per seed — this exists to
  /// prove the shard-per-core partitioning preserves every consistency
  /// property, not to model speedup.
  int shards = 1;
  /// Hot-key read fan-out (ClusterConfig::hot_reads): reads of hot clean
  /// keys rotate across replicas, digest-verified against the primary.
  /// Implies nothing about the checker — the same real-time rules that
  /// prove fast reads safe must stay green with the rotation on.
  bool hot_reads = false;
  /// Heat-sketch thresholds for the hot path. The defaults flag nothing at
  /// chaos traffic rates (a few ops/sec); SkewProfile lowers them so the
  /// Zipf head actually trips the fan-out under the nemesis.
  cluster::HeatConfig heat;
  /// Negative control: this replica acks writes without applying them
  /// (see ClusterConfig::chaos_lying_replica). Empty = honest cluster.
  std::string lying_replica;
  /// Negative control: old owners keep their copies of migrated-away arcs
  /// (see ClusterConfig::chaos_skip_ownership_purge), so a membership run
  /// with a join must trip the orphan-replica check.
  bool chaos_skip_ownership_purge = false;

  // --- workload shape ---
  int clients = 4;
  int ops_per_client = 50;
  int keys = 8;
  /// Key-popularity skew: 0 keeps the historical uniform draw; theta > 0
  /// draws key ranks from Zipf(theta) over `keys` (rank 0 hottest), so the
  /// head keys see most of the contention the nemesis races against.
  double zipf_theta = 0.0;
  Micros think_min = 20 * kMicrosPerMilli;
  Micros think_max = 200 * kMicrosPerMilli;
  double put_fraction = 0.5;
  double delete_fraction = 0.1;  ///< rest are gets

  // --- schedule ---
  Micros warmup = kMicrosPerSecond;            ///< traffic before faults
  Micros drain_budget = 120 * kMicrosPerSecond;  ///< cap on the whole run
  Micros quiesce = 20 * kMicrosPerSecond;      ///< heal-to-measure window
  /// Deterministic pair-wise anti-entropy passes during quiesce (belt and
  /// suspenders on top of the random-peer timer, so convergence never
  /// depends on lucky peer draws).
  int ae_passes = 3;

  NemesisOptions nemesis;
  CheckOptions check;
  bool check_convergence = true;
  /// After quiesce, assert elastic-membership safety: every running node's
  /// ring agrees on the member set, and nobody holds a key outside its
  /// preference list (the ownership sweep must have purged migrated-away
  /// arcs). Only sound with hinted handoff off — substitutes legitimately
  /// hold foreign keys until their hints deliver.
  bool check_ownership = false;

  /// Strict-quorum profile: R+W>N with hinted handoff off, so every read
  /// quorum intersects every write quorum and the full real-time rule set
  /// applies. Clock skew and state loss stay off — last-write-wins and
  /// replica durability are assumptions of those rules, not guarantees the
  /// strict quorum adds.
  static ChaosOptions QuorumProfile(std::uint64_t seed);

  /// Sloppy-quorum profile: the paper's (N,W,R)=(3,2,1) with hinted
  /// handoff, plus the whole nemesis menu (clock skew, blank-disk
  /// restarts). Staleness is expected and not checked; phantom values and
  /// post-heal divergence still are.
  static ChaosOptions ConvergenceProfile(std::uint64_t seed);

  /// Elastic-membership profile: strict quorum base (R+W>N, handoff off,
  /// honest clocks, durable disks) with the nemesis additionally joining
  /// fresh nodes and decommissioning members mid-run. Reads may observe a
  /// newcomer that has not finished streaming its arcs, so the real-time
  /// read rules are off; what must hold is the data-safety core: no
  /// phantoms, no lost updates, full convergence, and clean ownership
  /// (every key on exactly its preference members once the dust settles).
  static ChaosOptions MembershipProfile(std::uint64_t seed);

  /// Skewed-workload profile: the strict-quorum base with Zipf(0.99) key
  /// popularity, fast reads on and the hot-key rotation armed at
  /// test-scale heat thresholds. The head key stays dirty-prone (half the
  /// ops are writes) while its reads fan across replicas mid-partition —
  /// exactly the window where a digest bug would surface as a stale read.
  static ChaosOptions SkewProfile(std::uint64_t seed);
};

struct ChaosResult {
  workload::History history;
  std::string history_hash;  ///< MD5 of the canonical history
  CheckReport report;        ///< checker verdicts + divergence findings
  std::map<std::string, FinalKeyState> final_state;
  std::vector<std::string> nemesis_log;
  std::size_t faults_injected = 0;
  bool drained = false;  ///< every client op completed within budget

  /// Hot-read counters aggregated over the cluster after quiesce, so skew
  /// sweeps can assert the rotation actually engaged (a hot path that
  /// silently never fires would make its checker pass vacuous).
  std::uint64_t hot_gets_fanned = 0;
  std::uint64_t hot_read_hits = 0;
  std::uint64_t hot_read_demotions = 0;

  bool ok() const { return report.ok(); }
};

/// Runs one seeded chaos experiment end to end: boots the cluster on the
/// simulated transport, drives sequential client sessions that record
/// every operation into the history, lets the nemesis inject faults, heals
/// everything, quiesces anti-entropy and hint delivery, extracts the final
/// replica state, and replays the history through the offline checker.
ChaosResult RunChaos(const ChaosOptions& options);

}  // namespace hotman::chaos

#endif  // HOTMAN_CHAOS_HARNESS_H_
