#include "chaos/nemesis.h"

#include <algorithm>
#include <utility>

#include "net/sim_transport.h"
#include "sim/network_config.h"

namespace hotman::chaos {

namespace {

Micros DrawDuration(Rng* rng, Micros lo, Micros hi) {
  if (hi <= lo) return lo;
  return rng->UniformRange(lo, hi);
}

}  // namespace

Nemesis::Nemesis(cluster::Cluster* cluster, NemesisOptions options,
                 std::uint64_t seed)
    : cluster_(cluster), options_(options), rng_(seed ^ 0xbadfa117c0ffeeull) {
  for (const cluster::NodeSpec& spec : cluster_->config().nodes) {
    node_names_.push_back(spec.address);
    if (spec.is_seed) seed_names_.push_back(spec.address);
  }
}

void Nemesis::Start() {
  if (running_) return;
  running_ = true;
  ScheduleNext();
}

void Nemesis::Stop() { running_ = false; }

void Nemesis::HealAll() {
  running_ = false;
  // Heal in injection order; crashes restart last so the rejoin happens on
  // a connected network.
  std::stable_sort(active_.begin(), active_.end(),
                   [](const ActiveFault& a, const ActiveFault& b) {
                     return (a.kind != FaultKind::kCrash) &&
                            (b.kind == FaultKind::kCrash);
                   });
  for (const ActiveFault& fault : active_) Heal(fault);
  active_.clear();
  cluster_->network()->ClearAllChaos();
}

void Nemesis::ScheduleNext() {
  const Micros quiet =
      DrawDuration(&rng_, options_.quiet_min, options_.quiet_max);
  cluster_->loop()->Schedule(quiet, [this]() {
    if (!running_) return;
    InjectOne();
    ScheduleNext();
  });
}

std::string Nemesis::PickNode() {
  return node_names_[rng_.Uniform(node_names_.size())];
}

std::vector<std::string> Nemesis::DecommissionCandidates() const {
  // Keep every seed (survivors need them to detect failures), anything
  // currently crashed (decommission needs a running node), and enough
  // members that N replicas and one spare remain after the departure.
  const int replication = cluster_->config().replication_factor;
  int live = 0;
  for (const std::string& name : node_names_) {
    cluster::StorageNode* node = cluster_->node(name);
    if (node != nullptr && node->running()) ++live;
  }
  if (live - 1 < replication + 1) return {};
  std::vector<std::string> candidates;
  for (const std::string& name : node_names_) {
    bool excluded = false;
    for (const std::string& seed : seed_names_) {
      if (seed == name) excluded = true;
    }
    for (const ActiveFault& fault : active_) {
      if (fault.kind == FaultKind::kCrash && fault.node == name) {
        excluded = true;
      }
    }
    cluster::StorageNode* node = cluster_->node(name);
    if (node == nullptr || !node->running() || node->decommissioning()) {
      excluded = true;
    }
    if (!excluded) candidates.push_back(name);
  }
  return candidates;
}

void Nemesis::Note(const std::string& what) {
  log_.push_back("t=" + std::to_string(cluster_->loop()->Now()) + " " + what);
}

void Nemesis::InjectOne() {
  if (static_cast<int>(active_.size()) >= options_.max_concurrent_faults) {
    return;  // keep the draw cadence; this slot stays quiet
  }

  // Build the enabled menu, then draw from it. The menu is rebuilt each
  // time so disabled families never consume random draws differently
  // between profiles with the same seed *within* one profile.
  std::vector<FaultKind> menu;
  if (options_.partitions && node_names_.size() >= 2) {
    menu.push_back(FaultKind::kPartition);
  }
  if (options_.link_faults && node_names_.size() >= 2) {
    menu.push_back(FaultKind::kLinkDrop);
  }
  if (options_.link_noise) menu.push_back(FaultKind::kLinkNoise);
  if (options_.crashes && crashed_ < options_.max_crashed_nodes) {
    menu.push_back(FaultKind::kCrash);
  }
  if (options_.clock_skew) menu.push_back(FaultKind::kClockSkew);
  if (options_.slow_nodes) menu.push_back(FaultKind::kSlowNode);
  if (options_.membership &&
      membership_faults_ < options_.max_membership_faults) {
    menu.push_back(FaultKind::kJoin);
    if (!DecommissionCandidates().empty()) {
      menu.push_back(FaultKind::kDecommission);
    }
  }
  if (menu.empty()) return;

  ActiveFault fault;
  fault.kind = menu[rng_.Uniform(menu.size())];
  net::SimTransport* net = cluster_->network();

  switch (fault.kind) {
    case FaultKind::kPartition: {
      // Random bisection: shuffle, split at 1..n-1, cut every cross link.
      std::vector<std::string> order = node_names_;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng_.Uniform(i)]);
      }
      const std::size_t split = 1 + rng_.Uniform(order.size() - 1);
      std::string left, right;
      for (std::size_t i = 0; i < split; ++i) {
        if (i > 0) left += ",";
        left += order[i];
        for (std::size_t j = split; j < order.size(); ++j) {
          net->PartitionLink(order[i], order[j]);
          fault.links.emplace_back(order[i], order[j]);
        }
      }
      for (std::size_t j = split; j < order.size(); ++j) {
        if (j > split) right += ",";
        right += order[j];
      }
      Note("partition " + left + " | " + right);
      break;
    }
    case FaultKind::kLinkDrop: {
      const std::string from = PickNode();
      std::string to = PickNode();
      while (to == from) to = PickNode();
      sim::LinkChaos chaos;
      chaos.drop_probability =
          0.2 + rng_.NextDouble() * (options_.max_drop_probability - 0.2);
      net->SetLinkChaos(from, to, chaos);
      fault.links.emplace_back(from, to);
      Note("linkdrop " + from + "->" + to + " p=" +
           std::to_string(chaos.drop_probability));
      break;
    }
    case FaultKind::kLinkNoise: {
      fault.node = PickNode();
      sim::LinkChaos chaos;
      chaos.duplicate_probability = 0.1 + rng_.NextDouble() * 0.4;
      chaos.extra_delay_min = 0;
      chaos.extra_delay_max = 20 * kMicrosPerMilli;
      net->SetEndpointChaos(fault.node, chaos);
      Note("linknoise " + fault.node + " dup=" +
           std::to_string(chaos.duplicate_probability));
      break;
    }
    case FaultKind::kCrash: {
      // Pick a node not already crashed.
      std::string victim = PickNode();
      bool clear = false;
      for (int tries = 0; tries < 8 && !clear; ++tries) {
        clear = true;
        for (const ActiveFault& a : active_) {
          if (a.kind == FaultKind::kCrash && a.node == victim) clear = false;
        }
        if (!clear) victim = PickNode();
      }
      if (!clear) return;
      fault.node = victim;
      fault.lose_state = options_.state_loss && rng_.Chance(0.5);
      Status crashed = cluster_->CrashNode(victim);
      (void)crashed;
      ++crashed_;
      Note(std::string("crash ") + victim +
           (fault.lose_state ? " (state loss on restart)" : ""));
      break;
    }
    case FaultKind::kClockSkew: {
      fault.node = PickNode();
      const Micros skew =
          rng_.UniformRange(-options_.max_clock_skew, options_.max_clock_skew);
      cluster_->node(fault.node)->SetClockSkew(skew);
      Note("clockskew " + fault.node + " " + std::to_string(skew) + "us");
      break;
    }
    case FaultKind::kSlowNode: {
      fault.node = PickNode();
      sim::LinkChaos chaos;
      chaos.extra_delay_min = 5 * kMicrosPerMilli;
      chaos.extra_delay_max = 60 * kMicrosPerMilli;
      net->SetEndpointChaos(fault.node, chaos);
      Note("slownode " + fault.node);
      break;
    }
    case FaultKind::kJoin: {
      // A brand-new, capacity-weighted node enters mid-chaos; the ring
      // announcement races whatever partitions are up, and gossip has to
      // deliver it to the members the broadcast missed.
      cluster::NodeSpec spec;
      spec.address = "db" + std::to_string(101 + joins_) + ":19870";
      spec.capacity = 0.5 + rng_.NextDouble() * 0.5;
      Status added = cluster_->AddNodeAsync(spec);
      if (!added.ok()) return;
      ++joins_;
      ++membership_faults_;
      ++faults_injected_;
      node_names_.push_back(spec.address);
      Note("join " + spec.address +
           " capacity=" + std::to_string(spec.capacity));
      return;  // permanent: nothing to heal, no TTL
    }
    case FaultKind::kDecommission: {
      const std::vector<std::string> candidates = DecommissionCandidates();
      if (candidates.empty()) return;
      const std::string victim = candidates[rng_.Uniform(candidates.size())];
      // Stop targeting the leaver immediately: crashing or re-partitioning
      // a node mid-departure is covered by faults drawn *before* this one.
      node_names_.erase(
          std::remove(node_names_.begin(), node_names_.end(), victim),
          node_names_.end());
      ++membership_faults_;
      ++faults_injected_;
      Note("decommission " + victim);
      Status started = cluster_->DecommissionNodeAsync(
          victim, [this, victim](const Status& s) {
            Note("decommission " + victim +
                 (s.ok() ? " complete" : " failed: " + s.ToString()));
          });
      if (!started.ok()) {
        Note("decommission " + victim + " rejected: " + started.ToString());
      }
      return;  // permanent: nothing to heal, no TTL
    }
  }

  ++faults_injected_;
  const Micros ttl = DrawDuration(&rng_, options_.fault_min, options_.fault_max);
  active_.push_back(fault);
  const ActiveFault scheduled = fault;
  cluster_->loop()->Schedule(ttl, [this, scheduled]() {
    // Still active? (HealAll may have cleared it already.)
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->kind == scheduled.kind && it->node == scheduled.node &&
          it->links == scheduled.links) {
        Heal(*it);
        active_.erase(it);
        return;
      }
    }
  });
}

void Nemesis::Heal(const ActiveFault& fault) {
  net::SimTransport* net = cluster_->network();
  switch (fault.kind) {
    case FaultKind::kPartition:
      for (const auto& [a, b] : fault.links) net->HealLink(a, b);
      Note("heal partition");
      break;
    case FaultKind::kLinkDrop:
      for (const auto& [a, b] : fault.links) net->ClearLinkChaos(a, b);
      Note("heal linkdrop");
      break;
    case FaultKind::kLinkNoise:
    case FaultKind::kSlowNode:
      net->ClearEndpointChaos(fault.node);
      Note("heal endpoint chaos " + fault.node);
      break;
    case FaultKind::kCrash: {
      Status restarted = cluster_->RestartNode(fault.node, fault.lose_state);
      (void)restarted;
      --crashed_;
      Note("restart " + fault.node +
           (fault.lose_state ? " (blank disk)" : ""));
      break;
    }
    case FaultKind::kClockSkew:
      cluster_->node(fault.node)->SetClockSkew(0);
      Note("heal clockskew " + fault.node);
      break;
    case FaultKind::kJoin:
    case FaultKind::kDecommission:
      break;  // permanent by design; never queued for healing
  }
}

}  // namespace hotman::chaos
