#ifndef HOTMAN_CHAOS_NEMESIS_H_
#define HOTMAN_CHAOS_NEMESIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/random.h"

namespace hotman::chaos {

/// Which fault families the nemesis may draw from. The quorum-property
/// profile disables the ones the checked invariants cannot survive (clock
/// skew breaks last-write-wins ordering; state loss without anti-entropy
/// breaks durability) — see harness.h for the two standard profiles.
struct NemesisOptions {
  bool partitions = true;   ///< two-sided network splits
  bool link_faults = true;  ///< asymmetric per-link drop probability
  bool link_noise = true;   ///< duplication + extra delay on an endpoint
  bool crashes = true;      ///< node crash, later restart
  bool state_loss = true;   ///< a restart may come back with a blank disk
  bool clock_skew = true;   ///< coordinator stamps drift by a fixed offset
  bool slow_nodes = true;   ///< heavy extra delay on every frame of a node
  /// Elastic membership churn: brand-new nodes join (capacity-weighted)
  /// and non-seed members gracefully decommission while the other fault
  /// families are active. Unlike every other fault these are permanent —
  /// a joined node stays, a decommissioned node never comes back.
  bool membership = false;

  /// Quiet gap between consecutive injections, and how long each fault
  /// lives before the nemesis heals it (uniform draws in [min, max]).
  Micros quiet_min = 300 * kMicrosPerMilli;
  Micros quiet_max = 2 * kMicrosPerSecond;
  Micros fault_min = 500 * kMicrosPerMilli;
  Micros fault_max = 4 * kMicrosPerSecond;

  int max_concurrent_faults = 2;  ///< injections outstanding at once
  int max_crashed_nodes = 1;      ///< never silence a write quorum outright
  int max_membership_faults = 3;  ///< joins + decommissions per run

  Micros max_clock_skew = 2 * kMicrosPerSecond;
  double max_drop_probability = 0.8;
};

/// Seed-driven fault scheduler: composes the simulator's failure primitives
/// (partitions, per-link chaos rules, crash/revive, clock skew) into a
/// timed schedule on the cluster's event loop. Fully deterministic: the
/// same (cluster seed, nemesis seed, options) triple replays the same
/// faults at the same virtual times.
///
/// Lifecycle: Start() schedules the first injection; Stop() stops new
/// injections; HealAll() reverses everything still active (call it before
/// measuring convergence). All three are safe from driver code; heals also
/// run from loop events, so none of them may pump the loop re-entrantly.
class Nemesis {
 public:
  Nemesis(cluster::Cluster* cluster, NemesisOptions options,
          std::uint64_t seed);

  void Start();
  void Stop();
  void HealAll();

  /// Human-readable fault schedule ("t=1200000 partition db1,db3 | db2...")
  /// in injection order — deterministic, so it doubles as a debug trace for
  /// a failing seed.
  const std::vector<std::string>& log() const { return log_; }
  std::size_t faults_injected() const { return faults_injected_; }

 private:
  enum class FaultKind {
    kPartition,
    kLinkDrop,
    kLinkNoise,
    kCrash,
    kClockSkew,
    kSlowNode,
    kJoin,          ///< permanent: a fresh node enters the ring
    kDecommission,  ///< permanent: a member streams out and leaves
  };

  struct ActiveFault {
    FaultKind kind;
    /// Enough state to reverse the fault: partition edges, chaos endpoints,
    /// the crashed/skewed node.
    std::vector<std::pair<std::string, std::string>> links;
    std::string node;
    bool lose_state = false;
  };

  void ScheduleNext();
  void InjectOne();
  void Heal(const ActiveFault& fault);
  std::string PickNode();
  void Note(const std::string& what);
  /// Members that may decommission right now: running non-seeds with no
  /// active crash, and enough survivors left to place N replicas.
  std::vector<std::string> DecommissionCandidates() const;

  cluster::Cluster* cluster_;
  NemesisOptions options_;
  Rng rng_;
  std::vector<std::string> node_names_;
  std::vector<std::string> seed_names_;
  std::vector<ActiveFault> active_;
  std::vector<std::string> log_;
  std::size_t faults_injected_ = 0;
  int crashed_ = 0;
  int joins_ = 0;
  int membership_faults_ = 0;
  bool running_ = false;
};

}  // namespace hotman::chaos

#endif  // HOTMAN_CHAOS_NEMESIS_H_
