// Anti-entropy replica synchronization (StorageNode methods).
//
// The paper's future work includes "solving problems on data's
// consistency": read repair only fixes replicas of keys that are read, so
// divergence on cold keys persists indefinitely. This background protocol
// closes that gap — every node periodically picks a random ring peer,
// sends a digest of the records both should hold, pushes versions it has
// that the peer lacks (or holds stale), and requests the ones the peer is
// ahead on. Last-write-wins at the replica store keeps the exchange
// idempotent and convergent (a flat digest here; Merkle trees would be the
// production-scale summary).
//
// The whole protocol is shard-0 (system shard) work: it reads the master
// ring and failure detector directly, and it scans the per-shard store
// partitions without a mailbox hop — safe because the docstore serializes
// collection access internally and anti-entropy only needs point-in-time
// snapshots, never the owning shard's coordinator state.

#include "cluster/storage_node.h"

namespace hotman::cluster {

void StorageNode::StartAntiEntropyTimer() {
  ae_timer_ = transport_->ScheduleTimer(config_.anti_entropy_interval, [this]() {
    if (!running_) return;
    std::vector<std::string> peers;
    for (const std::string& member : ring_.Nodes()) {
      if (member != id_ &&
          detector_->StatusOf(member) == gossip::Liveness::kAlive) {
        peers.push_back(member);
      }
    }
    if (!peers.empty()) {
      RunAntiEntropyRound(peers[ae_rng_.Uniform(peers.size())]);
    }
    StartAntiEntropyTimer();
  });
}

std::vector<bson::Document> StorageNode::SharedRecords(const std::string& peer) {
  std::vector<bson::Document> shared;
  for (bson::Document& record : AllShardRecords()) {
    const std::string key = core::RecordSelfKey(record);
    bool self_in = false, peer_in = false;
    for (const std::string& member :
         ring_.PreferenceList(key, config_.replication_factor)) {
      self_in = self_in || member == id_;
      peer_in = peer_in || member == peer;
    }
    if (self_in && peer_in) shared.push_back(std::move(record));
  }
  return shared;
}

void StorageNode::RunAntiEntropyRound(const std::string& peer) {
  ++shards_[0]->stats.ae_rounds;
  AeDigestMsg digest;
  for (const bson::Document& record : SharedRecords(peer)) {
    digest.entries.push_back(AeDigestEntry{core::RecordSelfKey(record),
                                           core::RecordTimestamp(record),
                                           core::RecordOrigin(record)});
  }
  SendToNode(peer, kMsgAeDigest, EncodeAeDigest(digest));
}

void StorageNode::HandleAeDigest(const net::Message& msg) {
  auto digest = DecodeAeDigest(msg.body);
  if (!digest.ok()) return;
  if (!server_->CheckAvailable().ok()) return;

  AeRequestMsg request;
  std::set<std::string> mentioned;
  for (const AeDigestEntry& entry : digest->entries) {
    mentioned.insert(entry.key);
    auto local = StoreForKey(entry.key)->GetByKey(entry.key);  // NOLINT(hotman-shard-affinity) docstore-locked snapshot read from the system shard
    if (!local.ok()) {
      // We are missing the record entirely: pull it.
      request.keys.push_back(entry.key);
      continue;
    }
    const Micros local_ts = core::RecordTimestamp(*local);
    const std::string local_origin = core::RecordOrigin(*local);
    const bool remote_newer =
        entry.timestamp > local_ts ||
        (entry.timestamp == local_ts && entry.origin > local_origin);
    const bool local_newer =
        local_ts > entry.timestamp ||
        (local_ts == entry.timestamp && local_origin > entry.origin);
    if (remote_newer) {
      request.keys.push_back(entry.key);
    } else if (local_newer) {
      PutReplicaMsg push;
      push.req = 0;
      push.record = core::AsReplicaCopy(*local);
      SendToNode(msg.from, kMsgPutReplica, EncodePutReplica(push));
      ++shards_[0]->stats.ae_pushed;
    }
  }
  // Records we hold that the digest never mentioned (the sender lost or
  // never received them): push proactively.
  for (const bson::Document& record : SharedRecords(msg.from)) {
    if (mentioned.count(core::RecordSelfKey(record)) > 0) continue;
    PutReplicaMsg push;
    push.req = 0;
    push.record = core::AsReplicaCopy(record);
    SendToNode(msg.from, kMsgPutReplica, EncodePutReplica(push));
    ++shards_[0]->stats.ae_pushed;
  }
  if (!request.keys.empty()) {
    SendToNode(msg.from, kMsgAeRequest, EncodeAeRequest(request));
  }
}

void StorageNode::HandleAeRequest(const net::Message& msg) {
  auto request = DecodeAeRequest(msg.body);
  if (!request.ok()) return;
  if (!server_->CheckAvailable().ok()) return;
  for (const std::string& key : request->keys) {
    auto record = StoreForKey(key)->GetByKey(key);  // NOLINT(hotman-shard-affinity) docstore-locked snapshot read from the system shard
    if (!record.ok()) continue;
    PutReplicaMsg push;
    push.req = 0;
    push.record = core::AsReplicaCopy(*record);
    SendToNode(msg.from, kMsgPutReplica, EncodePutReplica(push));
    ++shards_[0]->stats.ae_requested;
  }
}

}  // namespace hotman::cluster
