#include "cluster/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "core/record.h"
#include "hashring/ketama.h"

namespace hotman::cluster {

namespace {

/// Virtual time granted for a blocking operation before giving up.
constexpr Micros kSyncOpBudget = 30 * kMicrosPerSecond;

/// Virtual time granted for a graceful decommission's throttled stream-out
/// before RemoveNode gives up waiting (the streams keep going regardless).
constexpr Micros kDecommissionBudget = 120 * kMicrosPerSecond;

}  // namespace

Cluster::Cluster(ClusterConfig config, std::uint64_t seed,
                 sim::FailureConfig failure_config)
    : config_(std::move(config)),
      loop_(),
      transport_(&loop_, config_.network, seed ^ 0x9e3779b97f4a7c15ull),
      injector_(&loop_, transport_.sim_network(), failure_config,
                seed ^ 0x5851f42d4c957f2dull),
      seed_(seed) {}

Cluster::~Cluster() = default;

Status Cluster::Start() {
  if (started_) return Status::OK();
  HOTMAN_RETURN_IF_ERROR(config_.Validate());
  injector_.SetRejoinHandler([this](docstore::DocStoreServer* server) {
    RejoinNode(server->address());
  });
  std::uint64_t node_seed = seed_;
  for (const NodeSpec& spec : config_.nodes) {
    auto node = std::make_unique<StorageNode>(spec, config_, &transport_,
                                              &injector_, ++node_seed);
    node->Start();
    injector_.RegisterServer(node->server());
    node_order_.push_back(spec.address);
    nodes_.emplace(spec.address, std::move(node));
  }
  started_ = true;
  // Let gossip converge before traffic arrives.
  loop_.RunFor(3 * config_.gossip.interval);
  return Status::OK();
}

StorageNode* Cluster::AnyCoordinator() {
  // Skip nodes that are currently faulted or stopped (e.g. decommissioned):
  // a real client's connection attempt to a dead front door fails fast and
  // it redials elsewhere.
  for (std::size_t attempts = 0; attempts < node_order_.size(); ++attempts) {
    StorageNode* candidate = nodes_[node_order_[rr_next_++ % node_order_.size()]].get();
    if (candidate->running() && candidate->server()->IsHealthy()) {
      return candidate;
    }
  }
  for (std::size_t attempts = 0; attempts < node_order_.size(); ++attempts) {
    StorageNode* candidate = nodes_[node_order_[rr_next_++ % node_order_.size()]].get();
    if (candidate->running()) return candidate;
  }
  return nodes_[node_order_[rr_next_++ % node_order_.size()]].get();
}

StorageNode* Cluster::CoordinatorFor(const std::string& key) {
  StorageNode* any = AnyCoordinator();
  auto primary = any->ring().PrimaryFor(key);
  if (!primary.ok()) return any;
  auto it = nodes_.find(*primary);
  if (it == nodes_.end() || !it->second->server()->IsHealthy()) return any;
  return it->second.get();
}

namespace {

/// Client-side retry budget: "the system cannot tolerate writing failure
/// ... try to write several times to guarantee the success of writing."
constexpr int kWriteAttempts = 3;
constexpr Micros kWriteRetryBackoff = 150 * kMicrosPerMilli;

}  // namespace

void Cluster::Put(const std::string& key, Bytes value, PutCallback cb) {
  // Each attempt re-picks a coordinator, so an attempt doomed by its own
  // coordinator's outage is retried through a healthy front door. The
  // stored closure holds itself only weakly — strong references travel
  // with the in-flight callbacks — so the final completion releases the
  // closure instead of leaking a shared_ptr cycle.
  auto attempt = std::make_shared<std::function<void(int)>>();
  auto shared_value = std::make_shared<Bytes>(std::move(value));
  std::weak_ptr<std::function<void(int)>> weak = attempt;
  *attempt = [this, key, shared_value, cb = std::move(cb), weak](int tries) {
    auto self = weak.lock();  // pins the closure across the async op
    AnyCoordinator()->CoordinatePut(
        key, *shared_value,
        [this, key, cb, self, tries](const Status& s) {
          if (s.ok() || tries + 1 >= kWriteAttempts) {
            cb(s);
            return;
          }
          loop_.Schedule(kWriteRetryBackoff,
                         [self, tries]() { (*self)(tries + 1); });
        });
  };
  (*attempt)(0);
}

void Cluster::Get(const std::string& key, GetCallback cb) {
  // Reads retry like writes: a coordinator that went silent mid-request
  // (Timeout) or stopped (Unavailable) should not surface to the client
  // while another front door could still serve the read. NotFound and
  // other authoritative answers return immediately.
  auto attempt = std::make_shared<std::function<void(int)>>();
  std::weak_ptr<std::function<void(int)>> weak = attempt;
  *attempt = [this, key, cb = std::move(cb), weak](int tries) {
    auto self = weak.lock();
    AnyCoordinator()->CoordinateGet(
        key, [this, cb, self, tries](const Result<bson::Document>& r) {
          const bool retryable =
              !r.ok() && (r.status().IsTimeout() || r.status().IsUnavailable());
          if (!retryable || tries + 1 >= kWriteAttempts) {
            cb(r);
            return;
          }
          loop_.Schedule(kWriteRetryBackoff,
                         [self, tries]() { (*self)(tries + 1); });
        });
  };
  (*attempt)(0);
}

void Cluster::Delete(const std::string& key, PutCallback cb) {
  auto attempt = std::make_shared<std::function<void(int)>>();
  std::weak_ptr<std::function<void(int)>> weak = attempt;
  *attempt = [this, key, cb = std::move(cb), weak](int tries) {
    auto self = weak.lock();
    AnyCoordinator()->CoordinateDelete(
        key, [this, cb, self, tries](const Status& s) {
          if (s.ok() || tries + 1 >= kWriteAttempts) {
            cb(s);
            return;
          }
          loop_.Schedule(kWriteRetryBackoff,
                         [self, tries]() { (*self)(tries + 1); });
        });
  };
  (*attempt)(0);
}

Status Cluster::PutSync(const std::string& key, Bytes value) {
  Status result = Status::Timeout("put never completed");
  bool done = false;
  Put(key, std::move(value), [&result, &done](const Status& s) {
    result = s;
    done = true;
  });
  const Micros deadline = loop_.Now() + kSyncOpBudget;
  while (!done && loop_.Now() < deadline && loop_.PendingEvents() > 0) {
    loop_.RunUntil(loop_.Now() + kMicrosPerMilli);
  }
  return result;
}

Result<Bytes> Cluster::GetSync(const std::string& key) {
  Result<Bytes> result = Status::Timeout("get never completed");
  bool done = false;
  Get(key, [&result, &done](const Result<bson::Document>& record) {
    if (!record.ok()) {
      result = record.status();
    } else if (core::RecordIsDeleted(*record)) {
      result = Status::NotFound("key deleted");
    } else {
      result = core::RecordValue(*record);
    }
    done = true;
  });
  const Micros deadline = loop_.Now() + kSyncOpBudget;
  while (!done && loop_.Now() < deadline && loop_.PendingEvents() > 0) {
    loop_.RunUntil(loop_.Now() + kMicrosPerMilli);
  }
  return result;
}

Status Cluster::DeleteSync(const std::string& key) {
  Status result = Status::Timeout("delete never completed");
  bool done = false;
  Delete(key, [&result, &done](const Status& s) {
    result = s;
    done = true;
  });
  const Micros deadline = loop_.Now() + kSyncOpBudget;
  while (!done && loop_.Now() < deadline && loop_.PendingEvents() > 0) {
    loop_.RunUntil(loop_.Now() + kMicrosPerMilli);
  }
  return result;
}

Status Cluster::AddNode(const NodeSpec& spec) {
  HOTMAN_RETURN_IF_ERROR(AddNodeAsync(spec));
  loop_.RunFor(3 * config_.gossip.interval);
  return Status::OK();
}

Status Cluster::AddNodeAsync(const NodeSpec& spec) {
  if (nodes_.count(spec.address) > 0) {
    return Status::AlreadyExists("node exists: " + spec.address);
  }
  if (!(spec.capacity > 0.0)) {
    return Status::InvalidArgument("node capacity must be > 0");
  }
  // The new node bootstraps from the *current* static config plus itself.
  ClusterConfig node_config = config_;
  node_config.nodes.push_back(spec);
  auto node = std::make_unique<StorageNode>(spec, node_config, &transport_,
                                            &injector_, seed_ ^ (nodes_.size() + 17));
  StorageNode* raw = node.get();
  node_order_.push_back(spec.address);
  nodes_.emplace(spec.address, std::move(node));
  config_.nodes.push_back(spec);
  raw->Start();
  injector_.RegisterServer(raw->server());
  // Announce the arrival explicitly so migration starts promptly (gossip
  // would also spread it, but the admin notice mirrors the paper's
  // synchronization messages). The announced weight is capacity-scaled.
  for (auto& [address, other] : nodes_) {
    if (address != spec.address) {
      other->OnNodeAdded(spec.address, EffectiveVnodes(spec));
    }
  }
  return Status::OK();
}

Status Cluster::CrashNode(const std::string& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return Status::NotFound("no node: " + address);
  injector_.Inject(it->second->server(), docstore::FaultMode::kDown, 0);
  return Status::OK();
}

Status Cluster::RestartNode(const std::string& address, bool lose_state) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return Status::NotFound("no node: " + address);
  StorageNode* node = it->second.get();
  if (lose_state) {
    // The replacement machine boots with an empty disk: every replica it
    // held and every hint it owed other nodes are gone — across every
    // shard partition.
    for (int shard = 0; shard < node->num_shards(); ++shard) {
      ReplicaStore* store = node->StoreOfShard(shard);  // NOLINT(hotman-shard-affinity) docstore-locked wipe of a stopped node's partitions
      auto records = store->AllRecords();
      if (records.ok()) {
        for (const bson::Document& record : *records) {
          Status purged = store->Purge(core::RecordSelfKey(record));
          (void)purged;
        }
      }
      node->HintsOfShard(shard)->Clear();  // NOLINT(hotman-shard-affinity) same stopped-node wipe as the store above
    }
    // A wiped node also lost its rebalance cursors: sources must re-stream
    // from zero rather than resume past records the disk no longer holds.
    node->rebalancer()->OnStateLoss();  // NOLINT(hotman-shard-affinity) same stopped-node wipe as the stores above
  }
  injector_.Revive(node->server());
  RejoinNode(address);
  // No RunFor here: the chaos nemesis restarts nodes from inside loop
  // events, where re-entrant pumping is illegal. Callers keep driving the
  // loop; gossip and migration settle as virtual time advances.
  return Status::OK();
}

Status Cluster::RemoveNode(const std::string& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return Status::NotFound("no node: " + address);
  StorageNode* leaving = it->second.get();
  if (!config_.rebalance.enabled || !leaving->running()) {
    // No rebalancer (or nothing left to stream): the only departure on
    // offer is the abrupt one.
    return RemoveNodeAbrupt(address);
  }
  // Graceful decommission: the node streams out everything it holds, then
  // announces its own removal and stops — it never leaves the ring while
  // it still has data nobody else holds.
  auto result = std::make_shared<Status>(
      Status::Timeout("decommission never completed: " + address));
  auto done = std::make_shared<bool>(false);
  leaving->StartDecommission([result, done](const Status& s) {
    *result = s;
    *done = true;
  });
  const Micros deadline = loop_.Now() + kDecommissionBudget;
  while (!*done && loop_.Now() < deadline && loop_.PendingEvents() > 0) {
    loop_.RunUntil(loop_.Now() + 10 * kMicrosPerMilli);
  }
  if (*done && result->ok()) loop_.RunFor(3 * config_.gossip.interval);
  return *result;
}

Status Cluster::RemoveNodeAbrupt(const std::string& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return Status::NotFound("no node: " + address);
  // Stop first, then announce: explicitly crash-shaped. Survivors recreate
  // the lost replicas from their own copies (Fig. 9), so any write that
  // only ever reached the departed node is gone — that is the semantics
  // this path models. Use RemoveNode for the lossless exit.
  StorageNode* announcer = nullptr;
  for (auto& [addr, node] : nodes_) {
    if (addr != address && node->is_seed() && node->running()) {
      announcer = node.get();
      break;
    }
  }
  it->second->Stop();
  if (announcer != nullptr) {
    announcer->AnnounceRemoval(address);
  } else {
    for (auto& [addr, node] : nodes_) {
      if (addr != address) node->OnNodeRemoved(address);
    }
  }
  loop_.RunFor(3 * config_.gossip.interval);
  return Status::OK();
}

Status Cluster::DecommissionNodeAsync(const std::string& address,
                                      std::function<void(const Status&)> done) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return Status::NotFound("no node: " + address);
  if (!config_.rebalance.enabled) {
    return Status::InvalidArgument("rebalancer disabled; use RemoveNodeAbrupt");
  }
  if (done == nullptr) done = [](const Status&) {};
  it->second->StartDecommission(std::move(done));
  return Status::OK();
}

void Cluster::RejoinNode(const std::string& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return;
  // The rejoiner's own ring view is authoritative for its weight — it
  // carries the capacity-scaled (and possibly autonomically shed) vnode
  // count through the crash. Fall back to the config entry only when the
  // node somehow lost itself; a node in neither is an error, not a silent
  // default weight.
  int vnodes = it->second->ring().VnodeCount(address);
  if (vnodes < 1) {
    const NodeSpec* spec = nullptr;
    for (const NodeSpec& candidate : config_.nodes) {
      if (candidate.address == address) spec = &candidate;
    }
    if (spec == nullptr) {
      HOTMAN_LOG(kError) << "rejoin of " << address  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                         << ": absent from its own ring and from the cluster "
                            "config; cannot infer ring weight, skipping rejoin";
      return;
    }
    vnodes = EffectiveVnodes(*spec);
  }
  // The repaired node rejoins every member's ring; holders stream the arcs
  // it owns back to it, and LWW reconciles whatever stale data it kept.
  for (auto& [addr, node] : nodes_) {
    if (addr != address) node->OnNodeAdded(address, vnodes);
  }
  // The rejoiner may be the only holder of a write accepted just before the
  // crash: push those records to their current preference holders before
  // purging what it no longer owns.
  it->second->ScheduleOwnershipSweep(/*push_before_purge=*/true,
                                     3 * config_.gossip.interval);
}

StorageNode* Cluster::node(const std::string& address) {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<StorageNode*> Cluster::nodes() {
  std::vector<StorageNode*> out;
  out.reserve(node_order_.size());
  for (const std::string& address : node_order_) {
    out.push_back(nodes_[address].get());
  }
  return out;
}

std::size_t Cluster::TotalReplicas() {
  std::size_t total = 0;
  for (auto& [address, node] : nodes_) {
    for (int shard = 0; shard < node->num_shards(); ++shard) {
      total += node->StoreOfShard(shard)->NumRecords();  // NOLINT(hotman-shard-affinity) docstore-locked count; test/verification observer
    }
  }
  return total;
}

NodeStats Cluster::AggregateStats() {
  NodeStats total;
  for (auto& [address, node] : nodes_) total.MergeFrom(node->stats());
  return total;
}

rebalance::RebalanceStats Cluster::AggregateRebalanceStats() {
  rebalance::RebalanceStats total;
  for (auto& [address, node] : nodes_) total.MergeFrom(node->rebalance_stats());
  return total;
}

std::string Cluster::StatsJson() {
  metrics::Registry registry;
  const NodeStats total = AggregateStats();
  registry.counter("puts_coordinated")->Increment(total.puts_coordinated);
  registry.counter("puts_succeeded")->Increment(total.puts_succeeded);
  registry.counter("puts_failed")->Increment(total.puts_failed);
  registry.counter("gets_coordinated")->Increment(total.gets_coordinated);
  registry.counter("gets_succeeded")->Increment(total.gets_succeeded);
  registry.counter("gets_failed")->Increment(total.gets_failed);
  registry.counter("replica_puts_applied")->Increment(total.replica_puts_applied);
  registry.counter("replica_gets_served")->Increment(total.replica_gets_served);
  registry.counter("handoff_writes")->Increment(total.handoff_writes);
  registry.counter("hints_delivered")->Increment(total.hints_delivered);
  registry.counter("read_repairs")->Increment(total.read_repairs);
  registry.counter("read_repairs_skipped_dead")
      ->Increment(total.read_repairs_skipped_dead);
  registry.counter("fast_read_hits")->Increment(total.fast_read_hits);
  registry.counter("fast_read_fallbacks")->Increment(total.fast_read_fallbacks);
  registry.counter("fast_read_demotions")->Increment(total.fast_read_demotions);
  registry.counter("hot_gets_fanned")->Increment(total.hot_gets_fanned);
  registry.counter("hot_read_hits")->Increment(total.hot_read_hits);
  registry.counter("hot_read_demotions")->Increment(total.hot_read_demotions);
  registry.counter("replica_digests_served")
      ->Increment(total.replica_digests_served);
  registry.counter("get_acks_corrupt")->Increment(total.get_acks_corrupt);
  registry.counter("rereplications")->Increment(total.rereplications);
  registry.counter("rebalance_purges")->Increment(total.rebalance_purges);
  registry.counter("ae_rounds")->Increment(total.ae_rounds);
  const rebalance::RebalanceStats reb = AggregateRebalanceStats();
  registry.counter("rebalance.transfers_started")->Increment(reb.transfers_started);
  registry.counter("rebalance.transfers_completed")
      ->Increment(reb.transfers_completed);
  registry.counter("rebalance.transfers_aborted")->Increment(reb.transfers_aborted);
  registry.counter("rebalance.arcs_planned")->Increment(reb.arcs_planned);
  registry.counter("rebalance.arcs_completed")->Increment(reb.arcs_completed);
  registry.counter("rebalance.records_streamed")->Increment(reb.records_streamed);
  registry.counter("rebalance.bytes_streamed")->Increment(reb.bytes_streamed);
  registry.counter("rebalance.records_received")->Increment(reb.records_received);
  registry.counter("rebalance.records_skipped")->Increment(reb.records_skipped);
  registry.counter("rebalance.throttle_stalls")->Increment(reb.throttle_stalls);
  registry.counter("rebalance.resumes")->Increment(reb.resumes);
  registry.counter("rebalance.retries")->Increment(reb.retries);
  registry.counter("rebalance.autonomic_reweights")
      ->Increment(reb.autonomic_reweights);
  transport_.ExportStats(&registry);
  registry.gauge("nodes")->Set(static_cast<std::int64_t>(nodes_.size()));
  registry.gauge("virtual_now_us")->Set(loop_.Now());
  // heat.*: per-key heat merged across every node's shards. Gauges are
  // int64, so the fractional skew coefficient exports in milli-units.
  HeatSnapshot heat;
  for (auto& [address, node] : nodes_) {
    heat.MergeFrom(node->heat_snapshot(), node->config().heat.capacity);
  }
  registry.counter("heat.tracked_ops")
      ->Increment(static_cast<std::int64_t>(heat.ops));
  registry.gauge("heat.tracked_keys")
      ->Set(static_cast<std::int64_t>(heat.top.size()));
  registry.gauge("heat.top1_qps")
      ->Set(static_cast<std::int64_t>(heat.top.empty() ? 0.0 : heat.top.front().qps));
  registry.gauge("heat.total_qps")->Set(static_cast<std::int64_t>(heat.total_qps));
  registry.gauge("heat.skew_coeff_milli")
      ->Set(static_cast<std::int64_t>(heat.skew_coefficient * 1000.0));
  metrics::Histogram* put_lat = registry.histogram("put_latency_us");
  metrics::Histogram* get_lat = registry.histogram("get_latency_us");
  metrics::Histogram* fast_get_lat = registry.histogram("fast_get_latency_us");
  metrics::Histogram* quorum_get_lat =
      registry.histogram("quorum_get_latency_us");
  metrics::Histogram* queue_wait = registry.histogram("replica_queue_wait_us");
  metrics::Histogram* service = registry.histogram("replica_service_us");
  for (auto& [address, node] : nodes_) {
    put_lat->MergeFrom(node->put_latency_histogram());
    get_lat->MergeFrom(node->get_latency_histogram());
    fast_get_lat->MergeFrom(node->fast_get_latency_histogram());
    quorum_get_lat->MergeFrom(node->quorum_get_latency_histogram());
    if (node->station() != nullptr) {
      queue_wait->MergeFrom(node->station()->queue_wait_histogram());
      service->MergeFrom(node->station()->service_histogram());
    }
  }
  return registry.ToJson();
}

std::vector<metrics::TraceRecord> Cluster::RecentTraces(std::size_t limit) {
  std::vector<metrics::TraceRecord> all;
  for (auto& [address, node] : nodes_) {
    for (metrics::TraceRecord& trace : node->TraceSnapshot()) {
      all.push_back(std::move(trace));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const metrics::TraceRecord& a, const metrics::TraceRecord& b) {
              return a.finished_at < b.finished_at;
            });
  if (all.size() > limit) all.erase(all.begin(), all.end() - limit);
  return all;
}

}  // namespace hotman::cluster
