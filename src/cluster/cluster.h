#ifndef HOTMAN_CLUSTER_CLUSTER_H_
#define HOTMAN_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/storage_node.h"
#include "net/sim_transport.h"
#include "sim/event_loop.h"
#include "sim/failure_injector.h"

namespace hotman::cluster {

/// The whole MyStore data storage module: an event loop, a simulated LAN
/// (behind the net::Transport seam), a failure injector and one StorageNode
/// per configured server.
///
/// This is the top-level object experiments and examples instantiate. It
/// offers both the asynchronous client API (callbacks, for workload
/// drivers that multiplex thousands of clients) and blocking convenience
/// wrappers that pump the event loop until completion (for examples and
/// tests).
class Cluster {
 public:
  /// `failure_config` defaults to no injected faults.
  Cluster(ClusterConfig config, std::uint64_t seed,
          sim::FailureConfig failure_config = sim::FailureConfig::None());
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Boots every node and runs the loop briefly so gossip stabilizes.
  Status Start();

  // --- client API -----------------------------------------------------------

  /// Any node can coordinate; this picks one round-robin ("clients can
  /// connect to any node in the system").
  StorageNode* AnyCoordinator();

  /// The node owning `key` (closest coordinator for the read path).
  StorageNode* CoordinatorFor(const std::string& key);

  /// Async operations through a round-robin coordinator.
  void Put(const std::string& key, Bytes value, PutCallback cb);
  void Get(const std::string& key, GetCallback cb);
  void Delete(const std::string& key, PutCallback cb);

  /// Blocking wrappers: drive the event loop until the callback fires.
  Status PutSync(const std::string& key, Bytes value);
  Result<Bytes> GetSync(const std::string& key);  ///< NotFound on tombstones
  Status DeleteSync(const std::string& key);

  // --- membership ------------------------------------------------------------

  /// Boots a brand-new node and lets the membership protocol integrate it;
  /// keys migrate to it automatically (streamed by the rebalancer), and the
  /// loop is pumped briefly so gossip settles.
  Status AddNode(const NodeSpec& spec);

  /// AddNode without pumping the loop — for callers already inside a loop
  /// event (the chaos nemesis), where re-entrant pumping is illegal.
  Status AddNodeAsync(const NodeSpec& spec);

  /// Hard-crashes `address` (long failure): the node goes silent until the
  /// seeds detect it and trigger repair.
  Status CrashNode(const std::string& address);

  /// Brings a crashed node back. With `lose_state` the node returns as a
  /// blank replacement — its replica store and hint ledger are wiped first
  /// (the disk died with the process); otherwise it resumes with whatever
  /// it held at crash time. Either way it is re-integrated into every
  /// member's ring so migration and anti-entropy bring it up to date.
  /// The chaos nemesis drives repeated crash/restart cycles through this.
  Status RestartNode(const std::string& address, bool lose_state);

  /// Graceful removal: decommissions the node — it streams every arc it
  /// holds to the members that inherit it *before* announcing departure and
  /// stopping, so no key drops below N replicas at any point. Pumps the
  /// loop until the decommission completes (or a generous virtual-time
  /// budget runs out). Falls back to the abrupt path when the rebalancer is
  /// disabled or the node is not running.
  Status RemoveNode(const std::string& address);

  /// The pre-rebalancer removal: stop the node first, then announce its
  /// departure — explicitly *crash* semantics (survivors re-replicate from
  /// their own copies; any write only the departed node held is lost).
  Status RemoveNodeAbrupt(const std::string& address);

  /// Starts a graceful decommission without pumping the loop — for callers
  /// already inside a loop event (the chaos nemesis). `done` (optional)
  /// fires when the node has left the ring.
  Status DecommissionNodeAsync(const std::string& address,
                               std::function<void(const Status&)> done = nullptr);

  // --- plumbing ---------------------------------------------------------------

  sim::EventLoop* loop() { return &loop_; }
  /// The simulated transport, exposing the fault-injection surface
  /// (PartitionLink/Disconnect/...) experiments drive.
  net::SimTransport* network() { return &transport_; }
  sim::FailureInjector* injector() { return &injector_; }
  const ClusterConfig& config() const { return config_; }

  StorageNode* node(const std::string& address);
  std::vector<StorageNode*> nodes();

  /// Runs the loop for `duration` of virtual time (convenience).
  void RunFor(Micros duration) { loop_.RunFor(duration); }

  /// Total records stored across all nodes (replicas included).
  std::size_t TotalReplicas();

  /// Aggregated stats over all nodes.
  NodeStats AggregateStats();

  /// Aggregated rebalancer counters over all nodes (the /stats
  /// "rebalance.*" section).
  rebalance::RebalanceStats AggregateRebalanceStats();

  /// Cluster-wide metrics snapshot as JSON: the AggregateStats counters,
  /// merged put/get latency histograms, replica queue-wait/service
  /// histograms and network delivery histogram (the /stats "cluster"
  /// section).
  std::string StatsJson();

  /// The most recent `limit` trace records across all coordinators,
  /// ordered by finish time (oldest first).
  std::vector<metrics::TraceRecord> RecentTraces(std::size_t limit = 32);

 private:
  /// Re-integrates a node whose breakdown was repaired (the injector's
  /// rejoin path): every member re-adds it to their ring and migration
  /// brings its data back up to date.
  void RejoinNode(const std::string& address);

  ClusterConfig config_;
  sim::EventLoop loop_;
  net::SimTransport transport_;
  sim::FailureInjector injector_;
  std::map<std::string, std::unique_ptr<StorageNode>> nodes_;
  std::vector<std::string> node_order_;
  std::size_t rr_next_ = 0;
  std::uint64_t seed_;
  bool started_ = false;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_CLUSTER_H_
