#include "cluster/config.h"

#include <algorithm>
#include <cmath>

namespace hotman::cluster {

int EffectiveVnodes(const NodeSpec& spec) {
  const double scaled = static_cast<double>(spec.vnodes) * spec.capacity;
  return std::max(1, static_cast<int>(std::lround(scaled)));
}

Status ClusterConfig::Validate() const {
  if (nodes.empty()) return Status::InvalidArgument("cluster needs >= 1 node");
  if (replication_factor < 1) {
    return Status::InvalidArgument("replication factor N must be >= 1");
  }
  if (write_quorum < 1 || write_quorum > replication_factor) {
    return Status::InvalidArgument("write quorum W must satisfy 1 <= W <= N");
  }
  if (read_quorum < 1 || read_quorum > replication_factor) {
    return Status::InvalidArgument("read quorum R must satisfy 1 <= R <= N");
  }
  if (shards < 1 || shards > 64) {
    return Status::InvalidArgument("shards per node must satisfy 1 <= shards <= 64");
  }
  bool has_seed = false;
  for (const NodeSpec& node : nodes) {
    if (node.address.empty()) return Status::InvalidArgument("empty node address");
    if (node.vnodes < 1) return Status::InvalidArgument("vnodes must be >= 1");
    if (!(node.capacity > 0.0)) {
      return Status::InvalidArgument("node capacity must be > 0");
    }
    has_seed = has_seed || node.is_seed;
  }
  if (!has_seed && nodes.size() > 1) {
    return Status::InvalidArgument("multi-node cluster needs >= 1 seed node");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i].address == nodes[j].address) {
        return Status::InvalidArgument("duplicate node address: " + nodes[i].address);
      }
    }
  }
  return Status::OK();
}

ClusterConfig ClusterConfig::Uniform(int count, int seeds, int vnodes) {
  ClusterConfig config;
  config.nodes.reserve(count);
  for (int i = 0; i < count; ++i) {
    NodeSpec spec;
    spec.address = "db" + std::to_string(i + 1) + ":19870";
    spec.vnodes = vnodes;
    spec.is_seed = i < seeds;
    config.nodes.push_back(std::move(spec));
  }
  return config;
}

}  // namespace hotman::cluster
