#ifndef HOTMAN_CLUSTER_CONFIG_H_
#define HOTMAN_CLUSTER_CONFIG_H_

#include <string>
#include <vector>

#include "cluster/heat_tracker.h"
#include "common/status.h"
#include "gossip/failure_detector.h"
#include "gossip/gossiper.h"
#include "rebalance/rebalancer.h"
#include "sim/network_config.h"
#include "sim/service_station.h"

namespace hotman::cluster {

/// Declaration of one physical storage node.
struct NodeSpec {
  std::string address;  ///< e.g. "db1:19870"
  int vnodes = 128;     ///< virtual nodes ∝ node capability (§5.2.1)
  bool is_seed = false;
  /// Capacity weight (DynoStore-style heterogeneous placement): the node
  /// takes `vnodes * capacity` ring points, so a half-size box owns half
  /// the keyspace share. 1.0 keeps the homogeneous default.
  double capacity = 1.0;
};

/// Ring points `spec` contributes: its vnode base scaled by its capacity
/// weight (at least 1 so every node owns something).
int EffectiveVnodes(const NodeSpec& spec);

/// Whole-cluster configuration. Defaults mirror the paper's evaluation
/// setup: (N, W, R) = (3, 2, 1) on five DB nodes (§6.2), Netty-port-style
/// addresses, and Table 1's software parameters where they are meaningful
/// to the model.
struct ClusterConfig {
  // --- NWR replication (§5.2.2) ---
  int replication_factor = 3;  ///< N
  int write_quorum = 2;        ///< W
  int read_quorum = 1;         ///< R

  // --- membership ---
  std::vector<NodeSpec> nodes;
  std::string collection = "records";

  // --- shard-per-core runtime ---
  /// Internal shards per node (net::ShardedExecutor). Each shard owns a
  /// contiguous arc of the hash-point space and all coordinator/replica
  /// state for its keys; 1 keeps the classic single-reactor node. Capped
  /// at 64 by the request-id shard tag (StorageNode::kShardBits).
  int shards = 1;

  // --- timeouts ---
  Micros put_timeout = 800 * kMicrosPerMilli;
  Micros get_timeout = 800 * kMicrosPerMilli;

  // --- failure handling ---
  bool hinted_handoff = true;       ///< short-failure handling (Fig. 8)
  bool read_repair = true;          ///< replica supplementation on Get
  Micros hint_retry_interval = 2 * kMicrosPerSecond;

  // --- fast consistent reads (Harmonia-style dirty-set read path) ---
  /// Serve reads of *clean* keys (no write in flight or recently unsettled
  /// at this coordinator) with a single replica read at the key's primary
  /// holder instead of the full R-quorum fan-out. To keep the quorum
  /// intersection, writes are then primary-anchored: in strict mode
  /// (hinted_handoff off) a write only succeeds once the primary acked, so
  /// every completed write set contains the primary and the one-replica
  /// read set {primary} intersects it. Dirty keys, a suspected/missing
  /// primary, and single-replica misses/errors/timeouts all fall back to
  /// the R-quorum path.
  bool fast_reads = false;
  /// How long a key stays dirty after a write that did not settle on all N
  /// holders (some holder may still be catching up via read repair or
  /// anti-entropy; quorum reads keep repair pressure on it meanwhile).
  Micros fast_read_quiescence = 3 * kMicrosPerSecond;

  // --- hot-spot taming under skew (AutoShard-style heat tracking) ---
  /// Track per-key operation heat in a shard-local space-saving sketch
  /// (cluster/heat_tracker.h), merged across shards into /stats `heat.*`.
  /// Cheap (bounded counters, no allocation on the steady path), so on by
  /// default.
  bool heat_tracking = true;
  /// Sketch shape and hot thresholds (capacity, decay half-life, qps bar).
  HeatConfig heat;
  /// Act on heat in the read path: reads of *hot, clean* keys rotate their
  /// payload read across the key's non-primary replicas (round-robin)
  /// instead of anchoring the primary, verified by a version digest probe
  /// to the primary — the coordinator serves the replica's value only when
  /// its (_ts, _origin) exactly matches the primary's current version, and
  /// demotes to the R-quorum path otherwise. The served version is
  /// therefore always the primary's version, so the PR 6 intersection
  /// argument is untouched; the payload service load spreads across N
  /// nodes while the primary only answers tiny metadata probes. Requires
  /// fast_reads (the hot path is a refinement of the clean-key fast path)
  /// and heat_tracking.
  bool hot_reads = false;

  // --- chaos negative controls (test-only; see src/chaos/) ---
  /// Address of a replica that acknowledges put_replica traffic *without
  /// applying it* — a deliberately broken node that makes write quorums
  /// lie. Used by the negative-control chaos tests to prove the offline
  /// consistency checker detects lost updates and stale reads; must stay
  /// empty everywhere else.
  std::string chaos_lying_replica;
  /// Disables the ownership sweep's purge of migrated-away records (the
  /// push-before-purge half still runs). Negative control proving the
  /// chaos orphan-replica check has teeth; must stay false everywhere else.
  bool chaos_skip_ownership_purge = false;

  // --- anti-entropy (future-work extension: background consistency) ---
  /// When enabled, every node periodically exchanges record digests with a
  /// random ring peer and pushes/pulls whatever last-write-wins says the
  /// other side is missing — repairing divergence without waiting for reads.
  bool anti_entropy = false;
  Micros anti_entropy_interval = 10 * kMicrosPerSecond;

  // --- elastic membership (src/rebalance/) ---
  /// Live data movement on join/decommission/reweight: throttle, resume
  /// and autonomic-trigger policy shared by every node.
  rebalance::RebalanceConfig rebalance;

  // --- substrates ---
  gossip::GossipConfig gossip;
  gossip::FailureDetector::Config detector;
  sim::NetworkConfig network;
  sim::ServiceConfig service;
  /// Model replica-side queueing/service time with a ServiceStation. On by
  /// default for simulation fidelity; the real daemon disables it (actual
  /// CPU time is spent instead of modeled).
  bool simulate_service_time = true;

  /// Validates quorum arithmetic and membership (W <= N, R <= N, at least
  /// one node, N >= 1, at least one seed when >1 node).
  Status Validate() const;

  /// Convenience: `count` uniform nodes "db1".."dbN", first `seeds` of them
  /// seeds, with the paper's default parameters.
  static ClusterConfig Uniform(int count, int seeds = 1, int vnodes = 128);

  /// The paper's five-node evaluation topology: one seed DB node plus four
  /// normal DB nodes, (N,W,R)=(3,2,1).
  static ClusterConfig PaperSetup() { return Uniform(5, /*seeds=*/1); }
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_CONFIG_H_
