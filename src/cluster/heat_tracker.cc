#include "cluster/heat_tracker.h"

#include <algorithm>
#include <cmath>

namespace hotman::cluster {
namespace {

constexpr double kLn2 = 0.6931471805599453;

/// Counters below this are indistinguishable from fully decayed noise and
/// are dropped at rescale/snapshot time so the sketch frees capacity.
constexpr double kNoiseFloor = 0.05;

double RateFromCount(double count, Micros half_life) {
  if (half_life <= 0) return 0.0;
  return count * kLn2 * kMicrosPerSecond / static_cast<double>(half_life);
}

bool RankBefore(const HeatEntry& a, const HeatEntry& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;  // deterministic tie-break for seeded replays
}

}  // namespace

double HeatSnapshot::FitSkew(const std::vector<HeatEntry>& top) {
  // Least squares of ln(count) against ln(rank): Zipf(theta) gives a line
  // of slope -theta, so theta-hat = -slope.
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (top[i].count <= 0.0) break;
    xs.push_back(std::log(static_cast<double>(i + 1)));
    ys.push_back(std::log(top[i].count));
  }
  if (xs.size() < 3) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(xs.size());
  my /= static_cast<double>(xs.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += (xs[i] - mx) * (ys[i] - my);
    den += (xs[i] - mx) * (xs[i] - mx);
  }
  if (den <= 0.0) return 0.0;
  return std::max(0.0, -num / den);
}

void HeatSnapshot::MergeFrom(const HeatSnapshot& other, std::size_t capacity) {
  std::map<std::string, HeatEntry> merged;
  for (const HeatEntry& e : top) merged[e.key] = e;
  for (const HeatEntry& e : other.top) {
    HeatEntry& slot = merged[e.key];
    slot.key = e.key;
    slot.count += e.count;
    slot.error += e.error;
    slot.qps += e.qps;
  }
  top.clear();
  top.reserve(merged.size());
  for (auto& [key, entry] : merged) top.push_back(std::move(entry));
  std::sort(top.begin(), top.end(), RankBefore);
  if (capacity > 0 && top.size() > capacity) top.resize(capacity);
  total_qps += other.total_qps;
  ops += other.ops;
  skew_coefficient = FitSkew(top);
}

HeatTracker::HeatTracker(HeatConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
}

double HeatTracker::DecayTo(Micros now) const {
  if (config_.half_life <= 0 || now <= anchor_) return 1.0;
  return std::exp2(-static_cast<double>(now - anchor_) /
                   static_cast<double>(config_.half_life));
}

void HeatTracker::MaybeRescale(Micros now) {
  if (entries_.empty()) {
    anchor_ = now;
    return;
  }
  if (now - anchor_ < config_.half_life / 8) return;
  const double factor = DecayTo(now);
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second.count *= factor;
    it->second.error *= factor;
    if (it->second.count < kNoiseFloor) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  anchor_ = now;
}

void HeatTracker::Record(const std::string& key, Micros now) {
  ++ops_;
  MaybeRescale(now);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.count += 1.0;
    return;
  }
  if (entries_.size() < config_.capacity) {
    entries_[key] = Slot{1.0, 0.0, 0};
    return;
  }
  // Space-saving eviction: the new key inherits the minimum counter as its
  // error bound, preserving the count >= true-hits >= count - error
  // invariant.
  auto min_it = entries_.begin();
  for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
    if (cand->second.count < min_it->second.count) min_it = cand;
  }
  const double floor = min_it->second.count;
  entries_.erase(min_it);
  entries_[key] = Slot{floor + 1.0, floor, 0};
}

double HeatTracker::EstimatedQps(const std::string& key, Micros now) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return 0.0;
  const double guaranteed =
      std::max(0.0, it->second.count - it->second.error) * DecayTo(now);
  return RateFromCount(guaranteed, config_.half_life);
}

bool HeatTracker::IsHot(const std::string& key, Micros now) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  const double guaranteed =
      std::max(0.0, it->second.count - it->second.error) * DecayTo(now);
  if (guaranteed < config_.min_hits) return false;
  return RateFromCount(guaranteed, config_.half_life) >= config_.hot_qps;
}

std::uint64_t HeatTracker::NextRotation(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.rotation++;
}

HeatSnapshot HeatTracker::Snapshot(Micros now) const {
  HeatSnapshot snap;
  snap.ops = ops_;
  const double factor = DecayTo(now);
  for (const auto& [key, slot] : entries_) {
    const double count = slot.count * factor;
    if (count < kNoiseFloor) continue;
    HeatEntry entry;
    entry.key = key;
    entry.count = count;
    entry.error = slot.error * factor;
    entry.qps = RateFromCount(count, config_.half_life);
    snap.total_qps += entry.qps;
    snap.top.push_back(std::move(entry));
  }
  std::sort(snap.top.begin(), snap.top.end(), RankBefore);
  snap.skew_coefficient = HeatSnapshot::FitSkew(snap.top);
  return snap;
}

}  // namespace hotman::cluster
