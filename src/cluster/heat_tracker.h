#ifndef HOTMAN_CLUSTER_HEAT_TRACKER_H_
#define HOTMAN_CLUSTER_HEAT_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hotman::cluster {

/// Tuning for per-key heat tracking (AutoShard-style hot-spot detection).
struct HeatConfig {
  /// Distinct keys the sketch tracks; also the /stats top-k length. Small
  /// on purpose — hot spots are by definition few.
  std::size_t capacity = 64;

  /// Exponential decay half-life of the hit counters. A flash crowd that
  /// ends stops looking hot after a few half-lives.
  Micros half_life = 2 * kMicrosPerSecond;

  /// Estimated per-key ops/sec above which a key is flagged hot (computed
  /// from the sketch's *guaranteed* count, i.e. net of the space-saving
  /// overestimation bound).
  double hot_qps = 200.0;

  /// Guaranteed-count floor before a key may be flagged, so a brand-new
  /// tracker with one lucky hit never fans out.
  double min_hits = 16.0;
};

/// One tracked key in a heat snapshot.
struct HeatEntry {
  std::string key;
  double count = 0.0;  ///< decayed hit count (space-saving upper bound)
  double error = 0.0;  ///< decayed overestimation bound from evictions
  double qps = 0.0;    ///< steady-state rate estimate: count * ln2 / half_life
};

/// Point-in-time view of a tracker, mergeable across shards and nodes for
/// the /stats `heat.*` rollup.
struct HeatSnapshot {
  std::vector<HeatEntry> top;    ///< descending by count
  double total_qps = 0.0;        ///< sum of tracked-key qps estimates
  double skew_coefficient = 0.0; ///< fitted Zipf theta-hat over the top-k
  std::uint64_t ops = 0;         ///< lifetime ops recorded (not decayed)

  /// Union-sum merge: counts/errors/qps for the same key add, the result
  /// is re-ranked and truncated to `capacity`, and the skew coefficient is
  /// refitted. Exactly associative while the union of tracked keys fits in
  /// `capacity` (truncation can drop different tails under different merge
  /// orders beyond that — acceptable for a stats rollup).
  void MergeFrom(const HeatSnapshot& other, std::size_t capacity);

  /// Least-squares fit of -d ln(count) / d ln(rank) over entries (rank 1 =
  /// hottest); 0 when fewer than three usable points. Under a Zipf(theta)
  /// workload this recovers roughly theta.
  static double FitSkew(const std::vector<HeatEntry>& top);
};

/// Shard-local space-saving top-k sketch with exponential decay.
///
/// Space-saving (Metwally et al.) keeps at most `capacity` counters; a hit
/// on an untracked key evicts the minimum counter and inherits its count
/// as the new entry's error bound, so `count - error` is a guaranteed
/// lower bound on the key's true hits. Counts decay exponentially with
/// `half_life` (applied lazily in batches), which turns the counter into a
/// rate estimator: a key receiving lambda ops/sec equilibrates at
/// lambda * half_life / ln2, so qps-hat = count * ln2 / half_life.
///
/// Single-threaded by design: lives inside a shard's reactor state (one
/// tracker per ShardState) and on the MyStore front side; no locking, no
/// allocation beyond the bounded key map, deterministic iteration
/// (std::map) so seeded replays stay bit-identical.
class HeatTracker {
 public:
  explicit HeatTracker(HeatConfig config = {});

  /// Counts one operation against `key` at time `now`.
  void Record(const std::string& key, Micros now);

  /// True when `key`'s guaranteed decayed rate clears `hot_qps` (and the
  /// `min_hits` floor). Untracked keys are never hot.
  bool IsHot(const std::string& key, Micros now) const;

  /// Guaranteed-rate estimate for `key` (0 when untracked).
  double EstimatedQps(const std::string& key, Micros now) const;

  /// Per-key round-robin ticket for fanned-out hot reads: returns 0, 1,
  /// 2, ... on successive calls for a tracked key (always 0 untracked).
  std::uint64_t NextRotation(const std::string& key);

  /// Ranked view at `now` (decay applied, entries below noise dropped).
  HeatSnapshot Snapshot(Micros now) const;

  std::uint64_t ops() const { return ops_; }
  std::size_t tracked() const { return entries_.size(); }
  const HeatConfig& config() const { return config_; }

 private:
  struct Slot {
    double count = 0.0;
    double error = 0.0;
    std::uint64_t rotation = 0;
  };

  /// Rescales every counter to `now` once enough time has accumulated
  /// (half_life / 8) so Record stays O(1) amortized at capacity 64.
  void MaybeRescale(Micros now);

  /// Decay factor from the last rescale anchor to `now`.
  double DecayTo(Micros now) const;

  HeatConfig config_;
  std::map<std::string, Slot> entries_;
  Micros anchor_ = 0;        ///< time the counters were last rescaled to
  std::uint64_t ops_ = 0;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_HEAT_TRACKER_H_
