#include "cluster/hinted_handoff.h"

#include "core/record.h"

namespace hotman::cluster {

std::uint64_t HintStore::Add(const std::string& target, bson::Document record,
                             std::int64_t now) {
  const std::uint64_t id = next_id_;
  next_id_ += stride_;
  hints_.emplace(id, Hint{id, target, std::move(record), now});
  ++total_added_;
  return id;
}

std::vector<Hint> HintStore::ForTarget(const std::string& target) const {
  std::vector<Hint> out;
  for (const auto& [id, hint] : hints_) {
    if (hint.target == target) out.push_back(hint);
  }
  return out;
}

std::vector<std::string> HintStore::Targets() const {
  std::vector<std::string> out;
  for (const auto& [id, hint] : hints_) {
    bool seen = false;
    for (const std::string& t : out) {
      if (t == hint.target) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(hint.target);
  }
  return out;
}

bool HintStore::Remove(std::uint64_t id) {
  if (hints_.erase(id) == 0) return false;
  ++total_delivered_;
  return true;
}

const Hint* HintStore::Find(std::uint64_t id) const {
  auto it = hints_.find(id);
  return it == hints_.end() ? nullptr : &it->second;
}

bool HintStore::HasHintForKey(const std::string& self_key) const {
  for (const auto& [id, hint] : hints_) {
    if (core::RecordSelfKey(hint.record) == self_key) return true;
  }
  return false;
}

}  // namespace hotman::cluster
