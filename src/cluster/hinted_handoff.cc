#include "cluster/hinted_handoff.h"

namespace hotman::cluster {

std::uint64_t HintStore::Add(const std::string& target, bson::Document record,
                             std::int64_t now) {
  const std::uint64_t id = next_id_++;
  hints_.emplace(id, Hint{id, target, std::move(record), now});
  ++total_added_;
  return id;
}

std::vector<Hint> HintStore::ForTarget(const std::string& target) const {
  std::vector<Hint> out;
  for (const auto& [id, hint] : hints_) {
    if (hint.target == target) out.push_back(hint);
  }
  return out;
}

std::vector<std::string> HintStore::Targets() const {
  std::vector<std::string> out;
  for (const auto& [id, hint] : hints_) {
    bool seen = false;
    for (const std::string& t : out) {
      if (t == hint.target) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(hint.target);
  }
  return out;
}

bool HintStore::Remove(std::uint64_t id) {
  if (hints_.erase(id) == 0) return false;
  ++total_delivered_;
  return true;
}

}  // namespace hotman::cluster
