#ifndef HOTMAN_CLUSTER_HINTED_HANDOFF_H_
#define HOTMAN_CLUSTER_HINTED_HANDOFF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bson/document.h"

namespace hotman::cluster {

/// One write held for an unreachable replica (Fig. 8: node C "creates an
/// index for the replication" while B is offline).
struct Hint {
  std::uint64_t id = 0;
  std::string target;       ///< the node this write belongs to (B)
  bson::Document record;
  std::int64_t stored_at = 0;
};

/// The temporary node's hint ledger for short-failure handling.
///
/// When the coordinator cannot reach replica B it hands the write to a
/// temporary node C together with B's identifier; C stores the hint and
/// "detects the node B periodically by heartbeat service. When it finds
/// that the B node is on-line again, the node C would write the data back
/// to B."
class HintStore {
 public:
  /// Ids count 1, 2, 3, ...
  HintStore() = default;

  /// Ids count first_id, first_id + stride, ... — a sharded node gives
  /// shard k the arithmetic progression with `id % shards == k`, so a
  /// handoff ack routes straight back to the ledger that issued the hint.
  HintStore(std::uint64_t first_id, std::uint64_t stride)
      : next_id_(first_id), stride_(stride == 0 ? 1 : stride) {}

  /// Records a hint; returns its id.
  std::uint64_t Add(const std::string& target, bson::Document record,
                    std::int64_t now);

  /// Hints waiting for `target` (delivery attempts do not remove them —
  /// removal happens on acknowledged write-back).
  std::vector<Hint> ForTarget(const std::string& target) const;

  /// Distinct targets with pending hints.
  std::vector<std::string> Targets() const;

  /// Drops a hint after its write-back was acknowledged.
  bool Remove(std::uint64_t id);

  /// The hint with `id`, or nullptr (the write-back ack path inspects the
  /// record before dropping it).
  const Hint* Find(std::uint64_t id) const;

  /// Whether any pending hint carries a record for `self_key` (the holder
  /// must keep its local stand-in copy alive while one does).
  bool HasHintForKey(const std::string& self_key) const;

  /// Drops every hint — a node restart that lost its durable state.
  void Clear() { hints_.clear(); }

  std::size_t PendingCount() const { return hints_.size(); }
  std::size_t total_added() const { return total_added_; }
  std::size_t total_delivered() const { return total_delivered_; }

 private:
  std::map<std::uint64_t, Hint> hints_;
  std::uint64_t next_id_ = 1;
  std::uint64_t stride_ = 1;
  std::size_t total_added_ = 0;
  std::size_t total_delivered_ = 0;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_HINTED_HANDOFF_H_
