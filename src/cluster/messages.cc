#include "cluster/messages.h"

namespace hotman::cluster {

namespace {

using bson::Document;
using bson::Value;

Result<std::uint64_t> GetU64(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_int64()) {
    return Status::Corruption(std::string("missing int64 field: ") + name);
  }
  return static_cast<std::uint64_t>(v->as_int64());
}

Result<std::string> GetStr(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_string()) {
    return Status::Corruption(std::string("missing string field: ") + name);
  }
  return v->as_string();
}

Result<bool> GetBool(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_bool()) {
    return Status::Corruption(std::string("missing bool field: ") + name);
  }
  return v->as_bool();
}

Result<Document> GetDoc(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_document()) {
    return Status::Corruption(std::string("missing document field: ") + name);
  }
  return v->as_document();
}

std::int64_t AsI64(std::uint64_t v) { return static_cast<std::int64_t>(v); }

/// Optional int64 field: absent (older encoder / fire-and-forget path)
/// decodes as 0 rather than an error.
Micros GetMicrosOr0(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_number()) return 0;
  return v->NumberAsInt64();
}

/// Optional bool field (newer wire extensions): absent decodes as false.
bool GetBoolOrFalse(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  return v != nullptr && v->is_bool() && v->as_bool();
}

/// Optional string field: absent decodes as empty.
std::string GetStrOrEmpty(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_string()) return std::string();
  return v->as_string();
}

}  // namespace

bson::Document EncodePutReplica(const PutReplicaMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("doc", Value(msg.record));
  return doc;
}

Result<PutReplicaMsg> DecodePutReplica(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto record = GetDoc(doc, "doc");
  if (!record.ok()) return record.status();
  PutReplicaMsg out;
  out.req = *req;
  out.record = std::move(*record);
  return out;
}

bson::Document EncodePutAck(const PutAckMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("ok", Value(msg.ok));
  doc.Append("err", Value(msg.error));
  doc.Append("q_us", Value(msg.queue_micros));
  doc.Append("s_us", Value(msg.service_micros));
  return doc;
}

Result<PutAckMsg> DecodePutAck(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto ok = GetBool(doc, "ok");
  if (!ok.ok()) return ok.status();
  auto err = GetStr(doc, "err");
  if (!err.ok()) return err.status();
  PutAckMsg out;
  out.req = *req;
  out.ok = *ok;
  out.error = std::move(*err);
  out.queue_micros = GetMicrosOr0(doc, "q_us");
  out.service_micros = GetMicrosOr0(doc, "s_us");
  return out;
}

bson::Document EncodeGetReplica(const GetReplicaMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("key", Value(msg.key));
  // Only encoded when set, so pre-digest decoders never see the field.
  if (msg.digest_only) doc.Append("dig", Value(true));
  return doc;
}

Result<GetReplicaMsg> DecodeGetReplica(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto key = GetStr(doc, "key");
  if (!key.ok()) return key.status();
  GetReplicaMsg out;
  out.req = *req;
  out.key = std::move(*key);
  out.digest_only = GetBoolOrFalse(doc, "dig");
  return out;
}

bson::Document EncodeGetAck(const GetAckMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("ok", Value(msg.ok));
  doc.Append("found", Value(msg.found));
  if (msg.found && !msg.digest) doc.Append("doc", Value(msg.record));
  doc.Append("err", Value(msg.error));
  doc.Append("q_us", Value(msg.queue_micros));
  doc.Append("s_us", Value(msg.service_micros));
  if (msg.digest) {
    doc.Append("dig", Value(true));
    doc.Append("dts", Value(msg.digest_ts));
    doc.Append("dor", Value(msg.digest_origin));
  }
  return doc;
}

Result<GetAckMsg> DecodeGetAck(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto ok = GetBool(doc, "ok");
  if (!ok.ok()) return ok.status();
  auto found = GetBool(doc, "found");
  if (!found.ok()) return found.status();
  auto err = GetStr(doc, "err");
  if (!err.ok()) return err.status();
  GetAckMsg out;
  out.req = *req;
  out.ok = *ok;
  out.found = *found;
  out.error = std::move(*err);
  out.queue_micros = GetMicrosOr0(doc, "q_us");
  out.service_micros = GetMicrosOr0(doc, "s_us");
  out.digest = GetBoolOrFalse(doc, "dig");
  if (out.digest) {
    out.digest_ts = GetMicrosOr0(doc, "dts");
    out.digest_origin = GetStrOrEmpty(doc, "dor");
  } else if (out.found) {
    auto record = GetDoc(doc, "doc");
    if (!record.ok()) return record.status();
    out.record = std::move(*record);
  }
  return out;
}

bson::Document EncodeHintStore(const HintStoreMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("target", Value(msg.target));
  doc.Append("doc", Value(msg.record));
  return doc;
}

Result<HintStoreMsg> DecodeHintStore(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto target = GetStr(doc, "target");
  if (!target.ok()) return target.status();
  auto record = GetDoc(doc, "doc");
  if (!record.ok()) return record.status();
  HintStoreMsg out;
  out.req = *req;
  out.target = std::move(*target);
  out.record = std::move(*record);
  return out;
}

bson::Document EncodeHandoffDeliver(std::uint64_t hint_id, const bson::Document& rec) {
  Document doc;
  doc.Append("hint", Value(AsI64(hint_id)));
  doc.Append("doc", Value(rec));
  return doc;
}

Result<std::pair<std::uint64_t, bson::Document>> DecodeHandoffDeliver(
    const bson::Document& doc) {
  auto hint = GetU64(doc, "hint");
  if (!hint.ok()) return hint.status();
  auto record = GetDoc(doc, "doc");
  if (!record.ok()) return record.status();
  return std::make_pair(*hint, std::move(*record));
}

bson::Document EncodeHandoffAck(const HandoffAckMsg& msg) {
  Document doc;
  doc.Append("hint", Value(AsI64(msg.hint_id)));
  doc.Append("ok", Value(msg.ok));
  return doc;
}

Result<HandoffAckMsg> DecodeHandoffAck(const bson::Document& doc) {
  auto hint = GetU64(doc, "hint");
  if (!hint.ok()) return hint.status();
  auto ok = GetBool(doc, "ok");
  if (!ok.ok()) return ok.status();
  HandoffAckMsg out;
  out.hint_id = *hint;
  out.ok = *ok;
  return out;
}

bson::Document EncodeMembership(const MembershipMsg& msg) {
  Document doc;
  doc.Append("node", Value(msg.node));
  doc.Append("vnodes", Value(static_cast<std::int32_t>(msg.vnodes)));
  return doc;
}

Result<MembershipMsg> DecodeMembership(const bson::Document& doc) {
  auto node = GetStr(doc, "node");
  if (!node.ok()) return node.status();
  MembershipMsg out;
  out.node = std::move(*node);
  const Value* vnodes = doc.Get("vnodes");
  if (vnodes != nullptr && vnodes->is_number()) {
    out.vnodes = static_cast<int>(vnodes->NumberAsInt64());
  }
  return out;
}

bson::Document EncodeAeDigest(const AeDigestMsg& msg) {
  Document doc;
  bson::Array entries;
  entries.reserve(msg.entries.size());
  for (const AeDigestEntry& e : msg.entries) {
    Document item;
    item.Append("k", Value(e.key));
    item.Append("ts", Value(e.timestamp));
    item.Append("o", Value(e.origin));
    entries.emplace_back(std::move(item));
  }
  doc.Append("entries", Value(std::move(entries)));
  return doc;
}

Result<AeDigestMsg> DecodeAeDigest(const bson::Document& doc) {
  const Value* entries = doc.Get("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::Corruption("ae_digest missing entries");
  }
  AeDigestMsg out;
  for (const Value& ev : entries->as_array()) {
    if (!ev.is_document()) return Status::Corruption("malformed digest entry");
    const Document& item = ev.as_document();
    const Value* k = item.Get("k");
    const Value* ts = item.Get("ts");
    const Value* o = item.Get("o");
    if (k == nullptr || !k->is_string() || ts == nullptr || !ts->is_int64() ||
        o == nullptr || !o->is_string()) {
      return Status::Corruption("malformed digest entry");
    }
    out.entries.push_back(AeDigestEntry{k->as_string(), ts->as_int64(),
                                        o->as_string()});
  }
  return out;
}

bson::Document EncodeAeRequest(const AeRequestMsg& msg) {
  Document doc;
  bson::Array keys;
  keys.reserve(msg.keys.size());
  for (const std::string& key : msg.keys) keys.emplace_back(Value(key));
  doc.Append("keys", Value(std::move(keys)));
  return doc;
}

Result<AeRequestMsg> DecodeAeRequest(const bson::Document& doc) {
  const Value* keys = doc.Get("keys");
  if (keys == nullptr || !keys->is_array()) {
    return Status::Corruption("ae_request missing keys");
  }
  AeRequestMsg out;
  for (const Value& kv : keys->as_array()) {
    if (!kv.is_string()) return Status::Corruption("malformed ae_request key");
    out.keys.push_back(kv.as_string());
  }
  return out;
}

}  // namespace hotman::cluster
