#ifndef HOTMAN_CLUSTER_MESSAGES_H_
#define HOTMAN_CLUSTER_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/clock.h"
#include "common/status.h"

namespace hotman::cluster {

/// Data-path and administrative message types exchanged between storage
/// nodes (the "normal message handling process" and "synchronization
/// message process" of §5.1's middle layer).
inline constexpr const char* kMsgPutReplica = "put_replica";
inline constexpr const char* kMsgPutAck = "put_ack";
inline constexpr const char* kMsgGetReplica = "get_replica";
inline constexpr const char* kMsgGetAck = "get_ack";
inline constexpr const char* kMsgHintStore = "hint_store";
inline constexpr const char* kMsgHandoffDeliver = "handoff_deliver";
inline constexpr const char* kMsgHandoffAck = "handoff_ack";
inline constexpr const char* kMsgNodeRemoved = "node_removed";
inline constexpr const char* kMsgNodeAdded = "node_added";
inline constexpr const char* kMsgAeDigest = "ae_digest";
inline constexpr const char* kMsgAeRequest = "ae_request";

/// put_replica / handoff_deliver payload.
struct PutReplicaMsg {
  std::uint64_t req = 0;
  bson::Document record;
};

/// put_ack payload. queue/service report the replica-side time breakdown
/// (its ServiceStation's admission decomposition) so the coordinator can
/// attribute request latency to queueing vs. service vs. network.
struct PutAckMsg {
  std::uint64_t req = 0;
  bool ok = false;
  std::string error;
  Micros queue_micros = 0;
  Micros service_micros = 0;
};

/// get_replica payload. With `digest_only` the replica answers with just
/// the stored version's (_ts, _origin) instead of the record — the cheap
/// probe the hot-read fan-out sends to the primary to verify the value it
/// fetched from a rotated replica.
struct GetReplicaMsg {
  std::uint64_t req = 0;
  std::string key;
  bool digest_only = false;
};

/// get_ack payload.
struct GetAckMsg {
  std::uint64_t req = 0;
  bool ok = false;      ///< the replica served the read (even if not found)
  bool found = false;
  bson::Document record;  ///< valid when found and not a digest reply
  std::string error;
  Micros queue_micros = 0;    ///< replica-side queue wait (see PutAckMsg)
  Micros service_micros = 0;  ///< replica-side service time
  // Digest replies (answering a digest_only probe) carry the version
  // instead of the payload.
  bool digest = false;
  std::int64_t digest_ts = 0;
  std::string digest_origin;
};

/// hint_store payload: the write plus the identity of the node it is for.
struct HintStoreMsg {
  std::uint64_t req = 0;
  std::string target;
  bson::Document record;
};

/// handoff_deliver/ack correlation.
struct HandoffAckMsg {
  std::uint64_t hint_id = 0;
  bool ok = false;
};

/// Membership change notice (synchronization messages from seed nodes).
struct MembershipMsg {
  std::string node;
  int vnodes = 0;  ///< for node_added
};

/// One entry of an anti-entropy digest: enough to decide which side holds
/// the newer version without shipping the payload.
struct AeDigestEntry {
  std::string key;
  std::int64_t timestamp = 0;
  std::string origin;
};

/// ae_digest payload: the keys (with versions) the sender holds that the
/// receiver should also hold. A production system would summarize these
/// with Merkle trees; at laptop scale the flat digest keeps the protocol
/// transparent and testable.
struct AeDigestMsg {
  std::vector<AeDigestEntry> entries;
};

/// ae_request payload: keys the requester wants pushed (the sender's
/// version is newer or the requester lacks them entirely).
struct AeRequestMsg {
  std::vector<std::string> keys;
};

bson::Document EncodePutReplica(const PutReplicaMsg& msg);
Result<PutReplicaMsg> DecodePutReplica(const bson::Document& doc);
bson::Document EncodePutAck(const PutAckMsg& msg);
Result<PutAckMsg> DecodePutAck(const bson::Document& doc);
bson::Document EncodeGetReplica(const GetReplicaMsg& msg);
Result<GetReplicaMsg> DecodeGetReplica(const bson::Document& doc);
bson::Document EncodeGetAck(const GetAckMsg& msg);
Result<GetAckMsg> DecodeGetAck(const bson::Document& doc);
bson::Document EncodeHintStore(const HintStoreMsg& msg);
Result<HintStoreMsg> DecodeHintStore(const bson::Document& doc);
bson::Document EncodeHandoffDeliver(std::uint64_t hint_id, const bson::Document& rec);
Result<std::pair<std::uint64_t, bson::Document>> DecodeHandoffDeliver(
    const bson::Document& doc);
bson::Document EncodeHandoffAck(const HandoffAckMsg& msg);
Result<HandoffAckMsg> DecodeHandoffAck(const bson::Document& doc);
bson::Document EncodeMembership(const MembershipMsg& msg);
Result<MembershipMsg> DecodeMembership(const bson::Document& doc);
bson::Document EncodeAeDigest(const AeDigestMsg& msg);
Result<AeDigestMsg> DecodeAeDigest(const bson::Document& doc);
bson::Document EncodeAeRequest(const AeRequestMsg& msg);
Result<AeRequestMsg> DecodeAeRequest(const bson::Document& doc);

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_MESSAGES_H_
