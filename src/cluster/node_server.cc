#include "cluster/node_server.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/record.h"

namespace hotman::cluster {

NodeServer::NodeServer(StorageNode* node, net::Transport* transport)
    : node_(node), transport_(transport) {}

void NodeServer::Start() {
  net::Dispatcher* d = node_->dispatcher();
  d->On(net::kMsgClientPut,
        [this](const net::Message& msg) { HandleClientPut(msg); });
  d->On(net::kMsgClientGet,
        [this](const net::Message& msg) { HandleClientGet(msg); });
  d->On(net::kMsgClientDelete,
        [this](const net::Message& msg) { HandleClientDelete(msg); });
  d->On(net::kMsgClientStats,
        [this](const net::Message& msg) { HandleClientStats(msg); });
  d->On(net::kMsgClientJoin,
        [this](const net::Message& msg) { HandleClientJoin(msg); });
  d->On(net::kMsgClientDecommission,
        [this](const net::Message& msg) { HandleClientDecommission(msg); });
  d->On(net::kMsgClientRebalanceStatus,
        [this](const net::Message& msg) { HandleClientRebalanceStatus(msg); });
}

void NodeServer::Reply(const std::string& to, const char* type,
                       bson::Document body) {
  net::Message reply;
  reply.from = node_->id();
  reply.to = to;
  reply.type = type;
  reply.body = std::move(body);
  transport_->Send(std::move(reply));
}

void NodeServer::HandleClientPut(const net::Message& msg) {
  auto put = net::DecodeClientPut(msg.body);
  if (!put.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_put from " << msg.from  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << ": " << put.status().ToString();
    return;
  }
  ++client_puts_;
  const std::uint64_t req = put->req;
  const std::string client = msg.from;
  node_->CoordinatePut(put->key, std::move(put->value),
                       [this, req, client](const Status& s) {
                         net::ClientAckMsg ack;
                         ack.req = req;
                         ack.ok = s.ok();
                         if (!s.ok()) ack.error = s.ToString();
                         Reply(client, net::kMsgClientPutAck,
                               net::EncodeClientAck(ack));
                       });
}

void NodeServer::HandleClientGet(const net::Message& msg) {
  auto get = net::DecodeClientGet(msg.body);
  if (!get.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_get from " << msg.from  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << ": " << get.status().ToString();
    return;
  }
  ++client_gets_;
  const std::uint64_t req = get->req;
  const std::string client = msg.from;
  node_->CoordinateGet(
      get->key, [this, req, client](const Result<bson::Document>& r) {
        net::ClientGetAckMsg ack;
        ack.req = req;
        if (!r.ok()) {
          // NotFound is an authoritative quorum answer, not a failure.
          ack.ok = r.status().IsNotFound();
          if (!ack.ok) ack.error = r.status().ToString();
        } else if (core::RecordIsDeleted(*r)) {
          ack.ok = true;  // tombstone: a successful read of "gone"
        } else {
          ack.ok = true;
          ack.found = true;
          ack.value = core::RecordValue(*r);
        }
        Reply(client, net::kMsgClientGetAck, net::EncodeClientGetAck(ack));
      });
}

void NodeServer::HandleClientDelete(const net::Message& msg) {
  auto del = net::DecodeClientGet(msg.body);
  if (!del.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_delete from " << msg.from  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << ": " << del.status().ToString();
    return;
  }
  ++client_deletes_;
  const std::uint64_t req = del->req;
  const std::string client = msg.from;
  node_->CoordinateDelete(del->key, [this, req, client](const Status& s) {
    net::ClientAckMsg ack;
    ack.req = req;
    ack.ok = s.ok();
    if (!s.ok()) ack.error = s.ToString();
    Reply(client, net::kMsgClientDeleteAck, net::EncodeClientAck(ack));
  });
}

void NodeServer::HandleClientStats(const net::Message& msg) {
  auto stats = net::DecodeClientGet(msg.body);
  if (!stats.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_stats from " << msg.from  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << ": " << stats.status().ToString();
    return;
  }
  net::ClientStatsAckMsg ack;
  ack.req = stats->req;
  ack.json = StatsJson();
  Reply(msg.from, net::kMsgClientStatsAck, net::EncodeClientStatsAck(ack));
}

void NodeServer::HandleClientJoin(const net::Message& msg) {
  auto join = net::DecodeClientJoin(msg.body);
  if (!join.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_join from " << msg.from  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << ": " << join.status().ToString();
    return;
  }
  net::ClientAckMsg ack;
  ack.req = join->req;
  if (join->node.empty() || join->capacity <= 0.0) {
    ack.error = "join needs a node endpoint and capacity > 0";
  } else {
    // The joining hotmand must already be up and listening on `node`;
    // announcing it here pulls it into every member's ring and the
    // rebalancer streams it its share of the data.
    NodeSpec spec;
    spec.address = join->node;
    if (join->vnodes > 0) spec.vnodes = static_cast<int>(join->vnodes);
    spec.capacity = join->capacity;
    node_->AnnounceAddition(spec.address, EffectiveVnodes(spec));
    ack.ok = true;
  }
  Reply(msg.from, net::kMsgClientJoinAck, net::EncodeClientAck(ack));
}

void NodeServer::HandleClientDecommission(const net::Message& msg) {
  auto dec = net::DecodeClientGet(msg.body);
  if (!dec.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_decommission from "  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << msg.from << ": " << dec.status().ToString();
    return;
  }
  const std::uint64_t req = dec->req;
  const std::string client = msg.from;
  // The ack races the shutdown: once the decommission completes this node
  // has left the ring and stopped, so a completion-time reply could never
  // be delivered. Reply "started" as soon as the guards pass and let the
  // operator watch progress through rebalance-status on the survivors;
  // only a synchronous rejection (already decommissioning, last node, ...)
  // reports an error.
  auto replied = std::make_shared<bool>(false);
  node_->StartDecommission([this, req, client, replied](const Status& s) {
    if (*replied || s.ok()) return;
    *replied = true;
    net::ClientAckMsg ack;
    ack.req = req;
    ack.error = s.ToString();
    Reply(client, net::kMsgClientDecommissionAck, net::EncodeClientAck(ack));
  });
  if (!*replied) {
    *replied = true;
    net::ClientAckMsg ack;
    ack.req = req;
    ack.ok = true;
    Reply(client, net::kMsgClientDecommissionAck, net::EncodeClientAck(ack));
  }
}

void NodeServer::HandleClientRebalanceStatus(const net::Message& msg) {
  auto status = net::DecodeClientGet(msg.body);
  if (!status.ok()) {
    HOTMAN_LOG(kWarn) << node_->id() << ": bad client_rebalance_status from "  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                      << msg.from << ": " << status.status().ToString();
    return;
  }
  net::ClientStatsAckMsg ack;
  ack.req = status->req;
  ack.json = node_->rebalancer()->StatusJson();
  Reply(msg.from, net::kMsgClientRebalanceStatusAck,
        net::EncodeClientStatsAck(ack));
}

std::string NodeServer::StatsJson() const {
  metrics::Registry registry;
  // Merged across shards: stats() gathers each shard's counters in that
  // shard's own execution context, so this is one coherent node-wide view.
  const NodeStats s = node_->stats();
  registry.counter("puts_coordinated")->Increment(s.puts_coordinated);
  registry.counter("puts_succeeded")->Increment(s.puts_succeeded);
  registry.counter("puts_failed")->Increment(s.puts_failed);
  registry.counter("gets_coordinated")->Increment(s.gets_coordinated);
  registry.counter("gets_succeeded")->Increment(s.gets_succeeded);
  registry.counter("gets_failed")->Increment(s.gets_failed);
  registry.counter("replica_puts_applied")->Increment(s.replica_puts_applied);
  registry.counter("replica_gets_served")->Increment(s.replica_gets_served);
  registry.counter("handoff_writes")->Increment(s.handoff_writes);
  registry.counter("hints_delivered")->Increment(s.hints_delivered);
  registry.counter("read_repairs")->Increment(s.read_repairs);
  registry.counter("read_repairs_skipped_dead")
      ->Increment(s.read_repairs_skipped_dead);
  registry.counter("fast_read_hits")->Increment(s.fast_read_hits);
  registry.counter("fast_read_fallbacks")->Increment(s.fast_read_fallbacks);
  registry.counter("fast_read_demotions")->Increment(s.fast_read_demotions);
  registry.counter("hot_gets_fanned")->Increment(s.hot_gets_fanned);
  registry.counter("hot_read_hits")->Increment(s.hot_read_hits);
  registry.counter("hot_read_demotions")->Increment(s.hot_read_demotions);
  registry.counter("replica_digests_served")
      ->Increment(s.replica_digests_served);
  registry.counter("get_acks_corrupt")->Increment(s.get_acks_corrupt);
  registry.counter("rereplications")->Increment(s.rereplications);
  registry.counter("rebalance_purges")->Increment(s.rebalance_purges);
  registry.counter("ae_rounds")->Increment(s.ae_rounds);
  const rebalance::RebalanceStats rb = node_->rebalance_stats();
  registry.counter("rebalance.transfers_started")
      ->Increment(rb.transfers_started);
  registry.counter("rebalance.transfers_completed")
      ->Increment(rb.transfers_completed);
  registry.counter("rebalance.transfers_aborted")
      ->Increment(rb.transfers_aborted);
  registry.counter("rebalance.arcs_planned")->Increment(rb.arcs_planned);
  registry.counter("rebalance.arcs_completed")->Increment(rb.arcs_completed);
  registry.counter("rebalance.records_streamed")
      ->Increment(rb.records_streamed);
  registry.counter("rebalance.bytes_streamed")->Increment(rb.bytes_streamed);
  registry.counter("rebalance.records_received")
      ->Increment(rb.records_received);
  registry.counter("rebalance.records_skipped")
      ->Increment(rb.records_skipped);
  registry.counter("rebalance.throttle_stalls")
      ->Increment(rb.throttle_stalls);
  registry.counter("rebalance.resumes")->Increment(rb.resumes);
  registry.counter("rebalance.retries")->Increment(rb.retries);
  registry.counter("rebalance.autonomic_reweights")
      ->Increment(rb.autonomic_reweights);
  registry.counter("client_puts")->Increment(client_puts_);
  registry.counter("client_gets")->Increment(client_gets_);
  registry.counter("client_deletes")->Increment(client_deletes_);
  registry.histogram("put_latency_us")->MergeFrom(node_->put_latency_histogram());
  registry.histogram("get_latency_us")->MergeFrom(node_->get_latency_histogram());
  registry.histogram("fast_get_latency_us")
      ->MergeFrom(node_->fast_get_latency_histogram());
  registry.histogram("quorum_get_latency_us")
      ->MergeFrom(node_->quorum_get_latency_histogram());
  if (node_->station() != nullptr) {
    registry.histogram("replica_queue_wait_us")
        ->MergeFrom(node_->station()->queue_wait_histogram());
    registry.histogram("replica_service_us")
        ->MergeFrom(node_->station()->service_histogram());
  }
  // heat.*: this node's per-key heat, merged across its shards (the skew
  // coefficient exports in milli-units: gauges are int64).
  const HeatSnapshot heat = node_->heat_snapshot();
  registry.counter("heat.tracked_ops")
      ->Increment(static_cast<std::int64_t>(heat.ops));
  registry.gauge("heat.tracked_keys")
      ->Set(static_cast<std::int64_t>(heat.top.size()));
  registry.gauge("heat.top1_qps")
      ->Set(static_cast<std::int64_t>(heat.top.empty() ? 0.0 : heat.top.front().qps));
  registry.gauge("heat.total_qps")->Set(static_cast<std::int64_t>(heat.total_qps));
  registry.gauge("heat.skew_coeff_milli")
      ->Set(static_cast<std::int64_t>(heat.skew_coefficient * 1000.0));
  transport_->ExportStats(&registry);
  node_->sharded()->ExportStats(&registry);  // sharded.* (shards, hops, drops)
  return registry.ToJson();
}

}  // namespace hotman::cluster
