#ifndef HOTMAN_CLUSTER_NODE_SERVER_H_
#define HOTMAN_CLUSTER_NODE_SERVER_H_

#include <string>

#include "cluster/storage_node.h"
#include "net/client_proto.h"
#include "net/transport.h"

namespace hotman::cluster {

/// Client-facing request surface of one hosted StorageNode: decodes
/// client_put/get/delete/stats frames, drives the node's coordinator API
/// and routes the ack back to the requesting endpoint (`msg.from`).
///
/// This is the piece that turns a StorageNode into a *server*: `hotmand`
/// instantiates one per process over a TcpTransport, and the loopback
/// integration test talks to it with net::RemoteClient. It works over any
/// Transport, so tests can also exercise it in simulation.
///
/// Handlers run on the transport's event thread, like every other node
/// handler; attach (Start) before traffic arrives.
class NodeServer {
 public:
  NodeServer(StorageNode* node, net::Transport* transport);

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Registers the client_* handlers on the node's dispatcher.
  void Start();

  std::size_t client_puts() const { return client_puts_; }
  std::size_t client_gets() const { return client_gets_; }
  std::size_t client_deletes() const { return client_deletes_; }

 private:
  void HandleClientPut(const net::Message& msg);
  void HandleClientGet(const net::Message& msg);
  void HandleClientDelete(const net::Message& msg);
  void HandleClientStats(const net::Message& msg);
  void HandleClientJoin(const net::Message& msg);
  void HandleClientDecommission(const net::Message& msg);
  void HandleClientRebalanceStatus(const net::Message& msg);

  /// The node's single-node metrics snapshot (the /stats JSON): operation
  /// counters, latency histograms and the transport's net.* counters.
  std::string StatsJson() const;

  void Reply(const std::string& to, const char* type, bson::Document body);

  StorageNode* node_;
  net::Transport* transport_;
  std::size_t client_puts_ = 0;
  std::size_t client_gets_ = 0;
  std::size_t client_deletes_ = 0;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_NODE_SERVER_H_
