#include "cluster/replica_store.h"

namespace hotman::cluster {

namespace {

bson::Document KeyFilter(const std::string& self_key) {
  bson::Document filter;
  filter.Append(core::kFieldSelfKey, bson::Value(self_key));
  return filter;
}

}  // namespace

ReplicaStore::ReplicaStore(docstore::Database* db, std::string collection)
    : collection_(db->GetCollection(collection)) {}

Status ReplicaStore::Init() {
  docstore::IndexSpec spec;
  spec.path = core::kFieldSelfKey;
  spec.unique = true;
  Status s = collection_->CreateIndex(spec);
  if (s.IsAlreadyExists()) return Status::OK();
  return s;
}

Result<bool> ReplicaStore::Apply(const bson::Document& record) {
  HOTMAN_RETURN_IF_ERROR(core::ValidateRecord(record));
  const std::string self_key = core::RecordSelfKey(record);
  auto existing = collection_->FindOne(KeyFilter(self_key));
  if (!existing.ok()) return existing.status();
  if (existing->has_value()) {
    const bson::Document& current = **existing;
    if (!core::SupersedesLww(record, current)) {
      return false;  // stored version wins
    }
    // Replace: the superseding record carries its own _id.
    HOTMAN_RETURN_IF_ERROR(
        collection_->RemoveById(*current.Get(core::kFieldId)));
  }
  HOTMAN_RETURN_IF_ERROR(collection_->PutDocument(record));
  return true;
}

Result<bson::Document> ReplicaStore::GetByKey(const std::string& self_key) const {
  auto found = collection_->FindOne(KeyFilter(self_key));
  if (!found.ok()) return found.status();
  if (!found->has_value()) return Status::NotFound("no record for key " + self_key);
  return **found;
}

Result<std::vector<bson::Document>> ReplicaStore::AllRecords() const {
  return collection_->Find(bson::Document{});
}

Result<std::size_t> ReplicaStore::NumLiveRecords() const {
  bson::Document filter;
  filter.Append(core::kFieldIsDel, bson::Value("0"));
  return collection_->Count(filter);
}

std::size_t ReplicaStore::NumRecords() const { return collection_->NumDocuments(); }

Status ReplicaStore::Purge(const std::string& self_key) {
  auto removed = collection_->Remove(KeyFilter(self_key));
  if (!removed.ok()) return removed.status();
  return Status::OK();
}

}  // namespace hotman::cluster
