#ifndef HOTMAN_CLUSTER_REPLICA_STORE_H_
#define HOTMAN_CLUSTER_REPLICA_STORE_H_

#include <string>
#include <vector>

#include "core/record.h"
#include "docstore/database.h"

namespace hotman::cluster {

/// The per-node record store: a docstore collection holding the paper's
/// record schema with a unique index on `self-key` and last-write-wins
/// upsert semantics.
class ReplicaStore {
 public:
  ReplicaStore(docstore::Database* db, std::string collection);

  /// Creates the self-key unique index (idempotent).
  Status Init();

  /// LWW upsert: applies `record` unless the stored version for the same
  /// self-key supersedes it. Returns true when the incoming record was
  /// applied, false when the existing version won.
  Result<bool> Apply(const bson::Document& record);

  /// Current record for `self_key` — including tombstones (callers decide
  /// whether a tombstone means NotFound).
  Result<bson::Document> GetByKey(const std::string& self_key) const;

  /// Snapshot of every record (used by rebalancing scans).
  Result<std::vector<bson::Document>> AllRecords() const;

  /// Records excluding tombstones.
  Result<std::size_t> NumLiveRecords() const;

  /// Total records including tombstones.
  std::size_t NumRecords() const;

  /// Physically removes `self_key` (maintenance/purge path; normal deletes
  /// are logical isDel=1 updates).
  Status Purge(const std::string& self_key);

  docstore::Collection* collection() { return collection_; }

 private:
  docstore::Collection* collection_;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_REPLICA_STORE_H_
