#include "cluster/storage_node.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "bson/codec.h"
#include "common/logging.h"
#include "hashring/ketama.h"

namespace hotman::cluster {

namespace {

/// Extra ring successors examined when picking hinted-handoff substitutes.
constexpr std::size_t kHandoffCandidateSlack = 4;

/// Collection name of shard `index`'s replica-store partition. Shard 0
/// keeps the configured name so a single-shard node is byte-identical to
/// the pre-sharding layout (and existing tools keep finding "records").
std::string ShardCollection(const std::string& base, int index) {
  if (index == 0) return base;
  return base + "_s" + std::to_string(index);
}

}  // namespace

void NodeStats::MergeFrom(const NodeStats& other) {
  puts_coordinated += other.puts_coordinated;
  puts_succeeded += other.puts_succeeded;
  puts_failed += other.puts_failed;
  gets_coordinated += other.gets_coordinated;
  gets_succeeded += other.gets_succeeded;
  gets_failed += other.gets_failed;
  replica_puts_applied += other.replica_puts_applied;
  replica_gets_served += other.replica_gets_served;
  handoff_writes += other.handoff_writes;
  hints_delivered += other.hints_delivered;
  read_repairs += other.read_repairs;
  read_repairs_skipped_dead += other.read_repairs_skipped_dead;
  fast_read_hits += other.fast_read_hits;
  fast_read_fallbacks += other.fast_read_fallbacks;
  fast_read_demotions += other.fast_read_demotions;
  hot_gets_fanned += other.hot_gets_fanned;
  hot_read_hits += other.hot_read_hits;
  hot_read_demotions += other.hot_read_demotions;
  replica_digests_served += other.replica_digests_served;
  get_acks_corrupt += other.get_acks_corrupt;
  rereplications += other.rereplications;
  rebalance_purges += other.rebalance_purges;
  ae_rounds += other.ae_rounds;
  ae_pushed += other.ae_pushed;
  ae_requested += other.ae_requested;
}

StorageNode::StorageNode(const NodeSpec& spec, const ClusterConfig& config,
                         net::Transport* transport,
                         sim::FailureInjector* injector, std::uint64_t rng_seed,
                         net::ShardedExecutor* sharded)
    : spec_(spec),
      config_(config),
      id_(spec.address),
      transport_(transport),
      injector_(injector) {
  if (sharded != nullptr) {
    sharded_ = sharded;
  } else {
    // Deterministic runtime: every shard multiplexes onto the node's
    // transport, cross-shard hops are zero-delay events in schedule order.
    net::ShardedExecutorConfig shard_config;
    shard_config.shards = config_.shards;
    shard_config.threaded = false;
    owned_sharded_ =
        std::make_unique<net::ShardedExecutor>(transport_, shard_config);
    sharded_ = owned_sharded_.get();
  }
  server_ = std::make_unique<docstore::DocStoreServer>(
      id_, hashring::KetamaHash(id_), transport_->clock());
  if (config_.simulate_service_time && !sharded_->threaded()) {
    // The ServiceStation is a node-level queueing model of the simulator;
    // a threaded (real) runtime measures genuine service time instead.
    station_ = std::make_unique<sim::ServiceStation>(transport_, config_.service);
  }

  const int num_shards = sharded_->num_shards();
  shards_.reserve(num_shards);
  for (int index = 0; index < num_shards; ++index) {
    auto ss = std::make_unique<ShardState>();
    ss->index = index;
    ss->executor = sharded_->executor(index);
    ss->heat = HeatTracker(config_.heat);
    ss->store = std::make_unique<ReplicaStore>(
        server_->db(), ShardCollection(config_.collection, index));
    Status init = ss->store->Init();
    if (!init.ok()) {
      HOTMAN_LOG(kError) << id_ << ": replica store init failed (shard " << index << "): " << init.ToString();  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
    }
    if (num_shards == 1) {
      // Single shard: hint ids count 1, 2, 3, ... exactly as before
      // sharding (id & kShardMask == 0 still routes home).
      ss->hints = std::make_unique<HintStore>();
    } else {
      // Hint ids carry their shard in the low bits: shard k issues
      // (64 + k), (128 + k), ... so a handoff ack routes home lock-free.
      ss->hints = std::make_unique<HintStore>(
          (1u << kShardBits) | static_cast<unsigned>(index), 1u << kShardBits);
    }
    shards_.push_back(std::move(ss));
  }

  std::vector<std::string> seeds;
  for (const NodeSpec& node : config_.nodes) {
    if (node.is_seed) seeds.push_back(node.address);
  }
  gossiper_ = std::make_unique<gossip::Gossiper>(
      id_, seeds, spec_.is_seed, transport_, config_.gossip, rng_seed,
      [this](const std::string& to, const std::string& type, bson::Document body) {
        SendToNode(to, type, std::move(body));
      });
  detector_ = std::make_unique<gossip::FailureDetector>(
      id_, transport_, &gossiper_->states(), config_.detector);
  SetupRebalancer();
  RegisterHandlers();
}

StorageNode::~StorageNode() { Stop(); }

void StorageNode::Start() {
  if (running_) return;
  running_ = true;
  transport_->RegisterEndpoint(id_, dispatcher_.AsTransportHandler());  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
  // Static bootstrap: the configured membership seeds the local ring view.
  // Ring weight is the capacity-scaled vnode count, so a half-size box owns
  // a proportionally smaller keyspace share.
  for (const NodeSpec& node : config_.nodes) {
    Status s = ring_.AddNode(node.address, EffectiveVnodes(node));
    (void)s;  // AlreadyExists is fine on restart
    if (node.address != id_) gossiper_->AddPeer(node.address);
  }
  SyncShardRings();
  gossiper_->Boot(transport_->NowMicros() / kMicrosPerSecond + 1);
  gossiper_->SetLocalState(gossip::kStateVnodes,
                           std::to_string(EffectiveVnodes(spec_)));
  gossiper_->SetLocalState(gossip::kStateLoad, "0");
  gossiper_->SetStateChangeListener(
      [this](const std::string& endpoint, const std::string& key,
             const std::string& value) {
        if (key != gossip::kStateVnodes || removed_nodes_.count(endpoint) != 0) {
          return;
        }
        const int vnodes = std::max(1, std::atoi(value.c_str()));
        if (!ring_.HasNode(endpoint)) {
          // Learned of a new member through gossip.
          OnNodeAdded(endpoint, vnodes);
        } else if (endpoint != id_ && ring_.VnodeCount(endpoint) != vnodes) {
          // A member changed its ring weight (autonomic shed or operator
          // reweight): rebuild its points and stream the released arcs.
          ApplyReweight(endpoint, vnodes);
        }
      });
  gossiper_->Start();
  detector_->Start([this](const std::string& endpoint, gossip::Liveness from,
                          gossip::Liveness to) {
    OnDetectorTransition(endpoint, from, to);
  });
  for (const auto& shard : shards_) {
    ShardState* ss = shard.get();
    RunOnShard(ss->index, [this, ss] { StartHintTimer(*ss); });
  }
  if (config_.anti_entropy) StartAntiEntropyTimer();
  rebalancer_->Start();
  if (config_.rebalance.autonomic) StartAutonomicTimer();
}

void StorageNode::Stop() {
  if (!running_) return;
  running_ = false;
  gossiper_->Stop();
  detector_->Stop();
  rebalancer_->Stop();
  transport_->CancelTimer(ae_timer_);
  transport_->CancelTimer(autonomic_timer_);
  autonomic_timer_ = 0;
  transport_->CancelTimer(sweep_timer_);
  sweep_timer_ = 0;
  sweep_push_pending_ = false;
  // Per-request events must not outlive the node: a timeout firing after
  // Stop would touch freed state, and an undone operation would otherwise
  // strand its caller forever. Each shard fails its own pending work in its
  // own context (PostSync: synchronous, so Stop() returning means no shard
  // touches this node again). Move the maps out first so callbacks that
  // re-enter this node see empty pending state.
  for (const auto& shard : shards_) {
    ShardState* ss = shard.get();
    sharded_->PostSync(ss->index, [this, ss] {
      ss->executor->CancelTimer(ss->hint_timer);
      auto puts = std::move(ss->pending_puts);
      ss->pending_puts.clear();
      for (auto& [req, put] : puts) {
        ss->executor->CancelTimer(put.timeout_event);
        ss->executor->CancelTimer(put.cleanup_event);
        if (!put.done) {
          put.done = true;
          ++ss->stats.puts_failed;
          RecordPutOutcome(*ss, put, req, /*ok=*/false);
          put.cb(Status::Unavailable("coordinator stopped: " + id_));
        }
      }
      auto gets = std::move(ss->pending_gets);
      ss->pending_gets.clear();
      for (auto& [req, get] : gets) {
        ss->executor->CancelTimer(get.timeout_event);
        if (!get.done) {
          get.done = true;
          ++ss->stats.gets_failed;
          RecordGetOutcome(*ss, get, req, /*ok=*/false);
          get.cb(Status::Unavailable("coordinator stopped: " + id_));
        }
      }
      ss->dirty_keys.clear();
    });
  }
  transport_->UnregisterEndpoint(id_);
}

// --- plumbing ---------------------------------------------------------------

void StorageNode::SendToNode(const std::string& to, const std::string& type,
                             bson::Document body) {
  net::Message msg;
  msg.from = id_;
  msg.to = to;
  msg.type = type;
  msg.body = std::move(body);
  transport_->Send(std::move(msg));
}

void StorageNode::RunOnShard(int shard, std::function<void()> fn) {
  sharded_->Post(shard, std::move(fn));
}

void StorageNode::RegisterHandlers() {
  // System traffic (gossip, membership, anti-entropy) is pinned to shard 0
  // — the dispatcher already runs there (the transport's event thread), so
  // these handlers call straight through. Keyed traffic decodes on shard 0
  // and hops to the owning shard: put/get replicas and hint stores by the
  // record's key, acks by the home shard carried in the request id's low
  // kShardBits.
  dispatcher_.On(gossip::kMsgGossipSyn, [this](const net::Message& msg) {
    gossiper_->HandleSyn(msg.from, msg.body);
  });
  dispatcher_.On(gossip::kMsgGossipAck1, [this](const net::Message& msg) {
    gossiper_->HandleAck1(msg.from, msg.body);
  });
  dispatcher_.On(gossip::kMsgGossipAck2, [this](const net::Message& msg) {
    gossiper_->HandleAck2(msg.from, msg.body);
  });
  dispatcher_.On(kMsgPutReplica, [this](const net::Message& msg) {
    auto decoded = DecodePutReplica(msg.body);
    if (!decoded.ok()) return;
    const int shard = ShardOfKey(core::RecordSelfKey(decoded->record));
    RunOnShard(shard, [this, shard, from = msg.from,
                       d = std::move(*decoded)]() mutable {
      HandlePutReplica(*shards_[shard], from, std::move(d));
    });
  });
  dispatcher_.On(kMsgGetReplica, [this](const net::Message& msg) {
    auto decoded = DecodeGetReplica(msg.body);
    if (!decoded.ok()) return;
    const int shard = ShardOfKey(decoded->key);
    RunOnShard(shard, [this, shard, from = msg.from,
                       d = std::move(*decoded)]() mutable {
      HandleGetReplica(*shards_[shard], from, std::move(d));
    });
  });
  dispatcher_.On(kMsgPutAck, [this](const net::Message& msg) {
    auto ack = DecodePutAck(msg.body);
    if (!ack.ok()) return;
    const int shard = ShardOfReq(ack->req);
    RunOnShard(shard, [this, shard, from = msg.from,
                       a = std::move(*ack)]() mutable {
      HandlePutAck(*shards_[shard], from, std::move(a));
    });
  });
  dispatcher_.On(kMsgGetAck, [this](const net::Message& msg) {
    auto ack = DecodeGetAck(msg.body);
    if (!ack.ok()) {
      // No request id to route by: every shard checks its own pending
      // reads against the sender (see HandleCorruptGetAck). Counted once
      // per message, on the system shard (this handler runs there).
      ++shards_[0]->stats.get_acks_corrupt;
      for (const auto& shard : shards_) {
        ShardState* ss = shard.get();
        RunOnShard(ss->index, [this, ss, from = msg.from] {
          HandleCorruptGetAck(*ss, from);
        });
      }
      return;
    }
    const int shard = ShardOfReq(ack->req);
    RunOnShard(shard, [this, shard, from = msg.from,
                       a = std::move(*ack)]() mutable {
      HandleGetAck(*shards_[shard], from, std::move(a));
    });
  });
  dispatcher_.On(kMsgHintStore, [this](const net::Message& msg) {
    auto decoded = DecodeHintStore(msg.body);
    if (!decoded.ok()) return;
    const int shard = ShardOfKey(core::RecordSelfKey(decoded->record));
    RunOnShard(shard, [this, shard, from = msg.from,
                       d = std::move(*decoded)]() mutable {
      HandleHintStore(*shards_[shard], from, std::move(d));
    });
  });
  dispatcher_.On(kMsgHandoffDeliver, [this](const net::Message& msg) {
    auto decoded = DecodeHandoffDeliver(msg.body);
    if (!decoded.ok()) return;
    const int shard = ShardOfKey(core::RecordSelfKey(decoded->second));
    RunOnShard(shard, [this, shard, from = msg.from, hint_id = decoded->first,
                       record = std::move(decoded->second)]() mutable {
      HandleHandoffDeliver(*shards_[shard], from, hint_id, std::move(record));
    });
  });
  dispatcher_.On(kMsgHandoffAck, [this](const net::Message& msg) {
    auto ack = DecodeHandoffAck(msg.body);
    if (!ack.ok()) return;
    const int shard = ShardOfReq(ack->hint_id);
    RunOnShard(shard, [this, shard, a = std::move(*ack)]() mutable {
      HandleHandoffAck(*shards_[shard], std::move(a));
    });
  });
  dispatcher_.On(kMsgAeDigest,
                 [this](const net::Message& msg) { HandleAeDigest(msg); });
  dispatcher_.On(kMsgAeRequest,
                 [this](const net::Message& msg) { HandleAeRequest(msg); });
  // Elastic membership (src/rebalance/): system-shard traffic like
  // anti-entropy; the rebalancer hops keyed applies to the owning shard
  // itself (through the env.apply hook).
  dispatcher_.On(rebalance::kMsgRangeDigest, [this](const net::Message& msg) {
    rebalancer_->HandleRangeDigest(msg.from, msg.body);  // NOLINT(hotman-shard-affinity) the dispatcher delivers on shard 0, the rebalancer's home shard
  });
  dispatcher_.On(rebalance::kMsgRangeAck, [this](const net::Message& msg) {
    rebalancer_->HandleRangeAck(msg.from, msg.body);  // NOLINT(hotman-shard-affinity) the dispatcher delivers on shard 0, the rebalancer's home shard
  });
  dispatcher_.On(rebalance::kMsgRangePush, [this](const net::Message& msg) {
    rebalancer_->HandleRangePush(msg.from, msg.body);  // NOLINT(hotman-shard-affinity) the dispatcher delivers on shard 0, the rebalancer's home shard
  });
  dispatcher_.On(rebalance::kMsgTransferDone, [this](const net::Message& msg) {
    rebalancer_->HandleTransferDone(msg.from, msg.body);  // NOLINT(hotman-shard-affinity) the dispatcher delivers on shard 0, the rebalancer's home shard
  });
  dispatcher_.On(kMsgNodeRemoved, [this](const net::Message& msg) {
    auto notice = DecodeMembership(msg.body);
    if (notice.ok()) OnNodeRemoved(notice->node);
  });
  dispatcher_.On(kMsgNodeAdded, [this](const net::Message& msg) {
    auto notice = DecodeMembership(msg.body);
    if (notice.ok()) OnNodeAdded(notice->node, std::max(1, notice->vnodes));
  });
}

bool StorageNode::SubmitWork(std::size_t payload_bytes,
                             sim::ServiceStation::Done done) {
  if (station_ != nullptr) return station_->Submit(payload_bytes, std::move(done));
  done(0, 0);  // real deployment: the actual work *is* the service time
  return true;
}

// --- shard-local membership views -------------------------------------------

const hashring::Ring& StorageNode::RingOf(const ShardState& ss) const {
  if (ss.index == 0 || !sharded_->threaded()) return ring_;
  return ss.ring;
}

gossip::Liveness StorageNode::LivenessOf(const ShardState& ss,
                                         const std::string& node) const {
  if (ss.index == 0 || !sharded_->threaded()) return detector_->StatusOf(node);
  auto it = ss.liveness.find(node);
  // Absent means never heard a transition — kAlive, like the detector.
  return it == ss.liveness.end() ? gossip::Liveness::kAlive : it->second;
}

void StorageNode::SyncShardRings() {
  if (!sharded_->threaded()) return;  // every shard reads the master directly
  for (const auto& shard : shards_) {
    ShardState* ss = shard.get();
    if (ss->index == 0) continue;
    RunOnShard(ss->index, [ss, ring = ring_] { ss->ring = ring; });
  }
}

void StorageNode::SyncShardLiveness(const std::string& endpoint,
                                    gossip::Liveness to) {
  if (!sharded_->threaded()) return;
  for (const auto& shard : shards_) {
    ShardState* ss = shard.get();
    if (ss->index == 0) continue;
    RunOnShard(ss->index, [ss, endpoint, to] { ss->liveness[endpoint] = to; });
  }
}

std::vector<std::string> StorageNode::PreferenceNodes(
    const ShardState& ss, const std::string& key) const {
  return RingOf(ss).PreferenceList(key, config_.replication_factor);
}

// --- replica side -----------------------------------------------------------

void StorageNode::HandlePutReplica(ShardState& ss, const std::string& from,
                                   PutReplicaMsg msg) {
  const std::size_t bytes = bson::EncodedSize(msg.record);
  const std::uint64_t req = msg.req;
  bson::Document record = std::move(msg.record);
  const bool admitted = SubmitWork(
      bytes, [this, &ss, req, from, record = std::move(record)](
                 Micros queued, Micros serviced) mutable {
        RunOnShard(ss.index, [this, &ss, req, from, record = std::move(record),
                              queued, serviced] {
          PutAckMsg ack;
          ack.req = req;
          ack.queue_micros = queued;
          ack.service_micros = serviced;
          Status available = server_->CheckAvailable();
          if (!available.ok()) {
            ack.ok = false;
            ack.error = available.ToString();
          } else if (config_.chaos_lying_replica == id_) {
            // Negative-control harness: acknowledge without applying, so the
            // coordinator's quorum count overstates durability. The offline
            // checker must catch the resulting lost updates / stale reads.
            ack.ok = true;
          } else {
            auto applied = ss.store->Apply(record);
            if (applied.ok()) {
              ack.ok = true;
              ++ss.stats.replica_puts_applied;
            } else {
              ack.ok = false;
              ack.error = applied.status().ToString();
            }
          }
          if (req != 0) SendToNode(from, kMsgPutAck, EncodePutAck(ack));
        });
      });
  if (!admitted && req != 0) {
    PutAckMsg ack;
    ack.req = req;
    ack.ok = false;
    ack.error = "Busy: request shed";
    SendToNode(from, kMsgPutAck, EncodePutAck(ack));
  }
}

void StorageNode::HandleGetReplica(ShardState& ss, const std::string& from,
                                   GetReplicaMsg msg) {
  if (msg.digest_only) {
    // Version probes bypass the ServiceStation: they serve a bounded
    // (_ts, _origin) pair off the store's index, not a record payload —
    // that asymmetry is the point of the hot fan-out (the primary answers
    // cheap metadata probes while payload service rotates across the
    // other holders). A production engine would back this with an
    // in-memory version index; the docstore lookup plays that role here.
    GetAckMsg ack;
    ack.req = msg.req;
    ack.digest = true;
    Status available = server_->CheckAvailable();
    if (!available.ok()) {
      ack.ok = false;
      ack.error = available.ToString();
    } else {
      auto record = ss.store->GetByKey(msg.key);
      ack.ok = true;
      if (record.ok()) {
        ack.found = true;
        ack.digest_ts = core::RecordTimestamp(*record);
        ack.digest_origin = core::RecordOrigin(*record);
      } else if (!record.status().IsNotFound()) {
        ack.ok = false;
        ack.error = record.status().ToString();
      }
      if (ack.ok) ++ss.stats.replica_digests_served;
    }
    SendToNode(from, kMsgGetAck, EncodeGetAck(ack));
    return;
  }
  const std::uint64_t req = msg.req;
  const std::string key = msg.key;
  const bool admitted = SubmitWork(
      256, [this, &ss, req, from, key](Micros queued, Micros serviced) {
        RunOnShard(ss.index, [this, &ss, req, from, key, queued, serviced] {
          GetAckMsg ack;
          ack.req = req;
          ack.queue_micros = queued;
          ack.service_micros = serviced;
          Status available = server_->CheckAvailable();
          if (!available.ok()) {
            ack.ok = false;
            ack.error = available.ToString();
          } else {
            auto record = ss.store->GetByKey(key);
            ack.ok = true;
            if (record.ok()) {
              ack.found = true;
              ack.record = std::move(*record);
            } else if (!record.status().IsNotFound()) {
              ack.ok = false;
              ack.error = record.status().ToString();
            }
            if (ack.ok) ++ss.stats.replica_gets_served;
          }
          SendToNode(from, kMsgGetAck, EncodeGetAck(ack));
        });
      });
  if (!admitted) {
    GetAckMsg ack;
    ack.req = req;
    ack.ok = false;
    ack.error = "Busy: request shed";
    SendToNode(from, kMsgGetAck, EncodeGetAck(ack));
  }
}

void StorageNode::HandleHintStore(ShardState& ss, const std::string& from,
                                  HintStoreMsg msg) {
  PutAckMsg ack;
  ack.req = msg.req;
  Status available = server_->CheckAvailable();
  if (!available.ok()) {
    ack.ok = false;
    ack.error = available.ToString();
  } else {
    // Store the hint (Fig. 8: "creates an index for the replication") and
    // keep a durable local copy so reads during the outage can be repaired.
    ss.hints->Add(msg.target, msg.record, transport_->NowMicros());
    auto applied = ss.store->Apply(msg.record);
    ack.ok = applied.ok();
    if (!applied.ok()) ack.error = applied.status().ToString();
    ++ss.stats.handoff_writes;
  }
  SendToNode(from, kMsgPutAck, EncodePutAck(ack));
}

void StorageNode::HandleHandoffDeliver(ShardState& ss, const std::string& from,
                                       std::uint64_t hint_id,
                                       bson::Document record) {
  HandoffAckMsg ack;
  ack.hint_id = hint_id;
  Status available = server_->CheckAvailable();
  if (available.ok()) {
    auto applied = ss.store->Apply(record);
    ack.ok = applied.ok();
  } else {
    ack.ok = false;
  }
  SendToNode(from, kMsgHandoffAck, EncodeHandoffAck(ack));
}

// --- coordinator: Put -------------------------------------------------------

void StorageNode::CoordinatePut(const std::string& key, Bytes value,
                                PutCallback cb) {
  const int shard = ShardOfKey(key);
  RunOnShard(shard, [this, shard, key, value = std::move(value),
                     cb = std::move(cb)]() mutable {
    bson::Document record = core::MakeRecord(
        server_->db()->id_generator()->Next(), key, std::move(value),
        /*is_copy=*/false, /*deleted=*/false,
        transport_->NowMicros() + clock_skew_, id_);
    StartPut(*shards_[shard], std::move(record), std::move(cb));
  });
}

void StorageNode::CoordinateDelete(const std::string& key, PutCallback cb) {
  const int shard = ShardOfKey(key);
  RunOnShard(shard, [this, shard, key, cb = std::move(cb)]() mutable {
    bson::Document tombstone = core::MakeTombstone(
        server_->db()->id_generator()->Next(), key,
        transport_->NowMicros() + clock_skew_, id_);
    StartPut(*shards_[shard], std::move(tombstone), std::move(cb));
  });
}

void StorageNode::StartPut(ShardState& ss, bson::Document record,
                           PutCallback cb) {
  ++ss.stats.puts_coordinated;
  // Table 2's probabilities are per operation on the test system: each
  // client operation may trip one failure at a random node.
  if (injector_ != nullptr) injector_->MaybeInjectAnywhere();
  const std::string key = core::RecordSelfKey(record);
  if (config_.heat_tracking) ss.heat.Record(key, transport_->NowMicros());
  std::vector<std::string> targets = PreferenceNodes(ss, key);
  if (targets.empty()) {
    ++ss.stats.puts_failed;
    cb(Status::Unavailable("ring is empty"));
    return;
  }
  const std::uint64_t req = (ss.next_seq++ << kShardBits) |
                            static_cast<std::uint64_t>(ss.index);
  PendingPut put;
  put.key = key;
  put.primary = targets.front();
  put.record = record;
  put.cb = std::move(cb);
  put.started_at = transport_->NowMicros();
  put.needed = std::min<int>(config_.write_quorum, static_cast<int>(targets.size()));
  put.pref_targets = targets;
  for (const std::string& target : targets) {
    put.responded.emplace(target, false);
    put.used.insert(target);
  }
  put.timeout_event = ss.executor->ScheduleTimer(
      config_.put_timeout, [this, &ss, req]() { OnPutTimeout(ss, req); });
  put.cleanup_event = ss.executor->ScheduleTimer(
      4 * config_.put_timeout, [this, &ss, req]() { OnPutCleanup(ss, req); });
  ss.pending_puts.emplace(req, std::move(put));
  MarkKeyDirty(ss, key);

  // The primary stores the original record (isData=1) and the other N-1
  // preference nodes store copies; all replications run concurrently.
  // Targets the heartbeat detector already classified as dead skip the
  // doomed attempt: the write goes straight to a temporary node with a
  // hint ("another temporary node C that is detected and found by
  // heartbeat mechanism" — Fig. 8).
  std::vector<std::string> known_dead;
  known_dead.reserve(targets.size());
  // Every non-primary target receives the identical replica-copy message,
  // so it is encoded at most once (lazily: all-dead fan-outs skip it) and
  // the Document copy per send shares the encoded Binary payload instead
  // of re-running EncodePutReplica N-1 times.
  std::optional<bson::Document> replica_body;
  for (const std::string& target : targets) {
    if (LivenessOf(ss, target) == gossip::Liveness::kDead) {
      known_dead.push_back(target);
      continue;
    }
    if (target == targets.front()) {
      PutReplicaMsg msg;
      msg.req = req;
      msg.record = record;
      SendToNode(target, kMsgPutReplica, EncodePutReplica(msg));
      continue;
    }
    if (!replica_body.has_value()) {
      PutReplicaMsg msg;
      msg.req = req;
      msg.record = core::AsReplicaCopy(record);
      replica_body = EncodePutReplica(msg);
    }
    SendToNode(target, kMsgPutReplica, *replica_body);
  }
  if (!known_dead.empty()) {
    PendingPut& pending = ss.pending_puts.find(req)->second;
    for (const std::string& target : known_dead) {
      pending.responded[target] = true;
      TryHandoff(ss, req, &pending, target);
    }
    // With handoff disabled every known-dead target counts as answered, so
    // an unreachable quorum can already be decided here (fast fail).
    MaybeFinishPut(ss, req, &pending);
  }
}

void StorageNode::HandlePutAck(ShardState& ss, const std::string& from,
                               PutAckMsg ack) {
  auto it = ss.pending_puts.find(ack.req);
  if (it == ss.pending_puts.end()) return;  // late or fire-and-forget ack
  PendingPut& put = it->second;
  auto responded_it = put.responded.find(from);
  if (responded_it != put.responded.end()) {
    if (responded_it->second) return;  // duplicate
    responded_it->second = true;
  }
  if (ack.ok) {
    // Latency attribution only from successful replies: a nack's
    // queue/service numbers describe a replica that did *not* serve the
    // write, and tracing them would blame the wrong node.
    put.last_queue = ack.queue_micros;
    put.last_service = ack.service_micros;
    put.last_replica = from;
    if (from == put.primary) put.primary_ok = true;
    if (std::find(put.pref_targets.begin(), put.pref_targets.end(), from) !=
        put.pref_targets.end()) {
      put.ok_acks.insert(from);
    }
    ++put.acks;
  } else {
    // Abnormal event: "the system must find other storage node, and try to
    // write several times to guarantee the success of writing."
    TryHandoff(ss, ack.req, &put, from);
  }
  MaybeFinishPut(ss, ack.req, &put);
}

void StorageNode::TryHandoff(ShardState& ss, std::uint64_t req, PendingPut* put,
                             const std::string& failed) {
  if (!config_.hinted_handoff) return;
  const std::size_t want =
      config_.replication_factor + kHandoffCandidateSlack + put->used.size();
  std::vector<std::string> candidates = RingOf(ss).PreferenceList(put->key, want);
  for (const std::string& candidate : candidates) {
    if (put->used.count(candidate) > 0) continue;
    put->used.insert(candidate);
    put->responded.emplace(candidate, false);
    HintStoreMsg msg;
    msg.req = req;
    msg.target = failed;
    msg.record = core::AsReplicaCopy(put->record);
    SendToNode(candidate, kMsgHintStore, EncodeHintStore(msg));
    return;
  }
}

void StorageNode::MaybeFinishPut(ShardState& ss, std::uint64_t req,
                                 PendingPut* put) {
  // With fast reads in strict mode the write is primary-anchored: W acks
  // alone are not enough, the primary must be among them. That keeps the
  // single-replica read set {primary} inside every completed write set.
  if (!put->done && put->acks >= put->needed &&
      (!RequirePrimaryAck() || put->primary_ok)) {
    put->done = true;
    ++ss.stats.puts_succeeded;
    RecordPutOutcome(ss, *put, req, /*ok=*/true);
    put->cb(Status::OK());
  }
  bool all_responded = true;
  for (const auto& [target, answered] : put->responded) {
    if (!answered) {
      all_responded = false;
      break;
    }
  }
  if (!all_responded) return;
  // Everyone answered (handoff substitutes included). If the quorum is
  // still short, no outstanding ack can ever close the gap — fail fast
  // instead of parking the client until the 4x cleanup timer.
  if (!put->done) {
    put->done = true;
    ++ss.stats.puts_failed;
    RecordPutOutcome(ss, *put, req, /*ok=*/false);
    put->cb(Status::QuorumFailed("write quorum not reached for key " + put->key));
  }
  ss.executor->CancelTimer(put->timeout_event);
  ss.executor->CancelTimer(put->cleanup_event);
  RetireDirtyKey(ss, put->key,
                 /*settled_all_n=*/put->ok_acks.size() == put->pref_targets.size());
  ss.pending_puts.erase(req);
}

void StorageNode::OnPutTimeout(ShardState& ss, std::uint64_t req) {
  auto it = ss.pending_puts.find(req);
  if (it == ss.pending_puts.end()) return;
  PendingPut& put = it->second;
  std::vector<std::string> silent;
  for (const auto& [target, answered] : put.responded) {
    if (!answered) silent.push_back(target);
  }
  ++put.timeout_wave;
  if (put.timeout_wave == 1) {
    // First wave: "try to write several times to guarantee the success of
    // writing" — resend to the silent replicas (the outage may have been a
    // dropped message or a short failure that already healed)...
    // Same encode-once sharing as the StartPut fan-out.
    std::optional<bson::Document> replica_body;
    for (const std::string& target : silent) {
      if (target == put.primary) {
        PutReplicaMsg msg;
        msg.req = req;
        // The primary stores the original (isData=1), mirroring StartPut; a
        // copy here would silently demote the record on a retried primary.
        msg.record = put.record;
        SendToNode(target, kMsgPutReplica, EncodePutReplica(msg));
        continue;
      }
      if (!replica_body.has_value()) {
        PutReplicaMsg msg;
        msg.req = req;
        msg.record = core::AsReplicaCopy(put.record);
        replica_body = EncodePutReplica(msg);
      }
      SendToNode(target, kMsgPutReplica, *replica_body);
    }
    put.timeout_event = ss.executor->ScheduleTimer(
        config_.put_timeout / 2, [this, &ss, req]() { OnPutTimeout(ss, req); });
    return;
  }
  // ...then give up on still-silent replicas and redirect each write to a
  // temporary node — even when the quorum already succeeded, so the
  // intended replica's data survives the outage (Fig. 8). A further wave
  // covers substitutes that were themselves unreachable.
  for (const std::string& target : silent) {
    put.responded[target] = true;
    TryHandoff(ss, req, &put, target);
  }
  // Giving up on the silent replicas may have settled the outcome (all
  // responded, quorum unreachable): decide now rather than waiting for the
  // cleanup timer. MaybeFinishPut can erase the entry, so re-find it.
  MaybeFinishPut(ss, req, &put);
  auto still = ss.pending_puts.find(req);
  if (still != ss.pending_puts.end() && still->second.timeout_wave < 4 &&
      !still->second.done) {
    still->second.timeout_event = ss.executor->ScheduleTimer(
        config_.put_timeout / 2, [this, &ss, req]() { OnPutTimeout(ss, req); });
  }
}

void StorageNode::OnPutCleanup(ShardState& ss, std::uint64_t req) {
  auto it = ss.pending_puts.find(req);
  if (it == ss.pending_puts.end()) return;
  PendingPut& put = it->second;
  if (!put.done) {
    put.done = true;
    ++ss.stats.puts_failed;
    RecordPutOutcome(ss, put, req, /*ok=*/false);
    put.cb(Status::QuorumFailed("write quorum not reached for key " + put.key));
  }
  ss.executor->CancelTimer(put.timeout_event);
  RetireDirtyKey(ss, put.key,
                 /*settled_all_n=*/put.ok_acks.size() == put.pref_targets.size());
  ss.pending_puts.erase(it);
}

// --- coordinator: Get -------------------------------------------------------

void StorageNode::CoordinateGet(const std::string& key, GetCallback cb) {
  const int shard = ShardOfKey(key);
  RunOnShard(shard, [this, shard, key, cb = std::move(cb)]() mutable {
    ShardState& ss = *shards_[shard];
    ++ss.stats.gets_coordinated;
    if (injector_ != nullptr) injector_->MaybeInjectAnywhere();
    const Micros started_at = transport_->NowMicros();
    if (config_.heat_tracking) ss.heat.Record(key, started_at);
    if (config_.fast_reads) {
      // Harmonia-style fast path: a key with no write in flight (and nothing
      // recently unsettled) can be answered by the primary holder alone —
      // primary-anchored writes guarantee the primary saw every completed
      // write, so the one-replica read still intersects every write quorum.
      // Anchoring only holds in strict mode (hinted handoff off): with
      // substitutes taking writes for absent holders, a completed write may
      // bypass the primary entirely, so the fast path must stand down.
      if (RequirePrimaryAck() && KeyIsCleanOnShard(ss, key)) {
        const std::vector<std::string> targets = PreferenceNodes(ss, key);
        if (!targets.empty() &&
            LivenessOf(ss, targets.front()) == gossip::Liveness::kAlive) {
          // Hot refinement: a clean key the heat sketch flags hot rotates
          // its payload read across the preference holders instead of
          // always charging the primary. Ticket 0 (and any turn landing on
          // the primary or a suspect replica) is a plain primary fast
          // read, so the rotation degrades gracefully to the fast path.
          if (config_.hot_reads && config_.heat_tracking &&
              targets.size() >= 2 && ss.heat.IsHot(key, started_at)) {
            const std::uint64_t ticket = ss.heat.NextRotation(key);
            const std::size_t pick = ticket % targets.size();
            if (pick != 0 &&
                LivenessOf(ss, targets[pick]) == gossip::Liveness::kAlive) {
              ++ss.stats.hot_gets_fanned;
              StartHotGet(ss, key, std::move(cb), started_at, targets[pick],
                          targets.front());
              return;
            }
          }
          StartGet(ss, key, std::move(cb), started_at, /*fast_path=*/true);
          return;
        }
      }
      ++ss.stats.fast_read_fallbacks;
    }
    StartGet(ss, key, std::move(cb), started_at, /*fast_path=*/false);
  });
}

void StorageNode::StartGet(ShardState& ss, const std::string& key,
                           GetCallback cb, Micros started_at, bool fast_path) {
  std::vector<std::string> targets = PreferenceNodes(ss, key);
  if (fast_path) {
    // Single-replica read at the primary; any miss, error or timeout
    // demotes to the quorum path instead of concluding.
    if (!targets.empty()) targets.resize(1);
  } else {
    // Skip replicas the detector knows are dead (they cannot answer and
    // would stall the all-replied miss path) — but never below the read
    // quorum: the detector can be wrong during asymmetric partitions, and
    // shrinking the contact list under R would let the read complete
    // without the R confirmations the R+W>N intersection is built on.
    // When fewer than R targets look alive, contact the full preference
    // list and let the timeout decide.
    std::vector<std::string> alive;
    alive.reserve(targets.size());
    for (const std::string& target : targets) {
      if (LivenessOf(ss, target) != gossip::Liveness::kDead) {
        alive.push_back(target);
      }
    }
    if (static_cast<int>(alive.size()) >= config_.read_quorum) {
      targets = std::move(alive);
    }
  }
  if (targets.empty()) {
    ++ss.stats.gets_failed;
    cb(Status::Unavailable("ring is empty"));
    return;
  }
  const std::uint64_t req = (ss.next_seq++ << kShardBits) |
                            static_cast<std::uint64_t>(ss.index);
  PendingGet get;
  get.key = key;
  get.cb = std::move(cb);
  get.started_at = started_at;
  get.fast_path = fast_path;
  // Never degrade below R, even when the ring currently offers fewer
  // preference nodes: a read that cannot gather R confirmations must fail
  // rather than silently weaken the quorum. (The fast path's R of 1 is
  // safe because its write quorums are primary-anchored.)
  get.needed = fast_path ? 1 : config_.read_quorum;
  get.targets = targets;
  // Fast attempts keep half the budget so a demoted read can still finish
  // a full quorum round inside the caller's patience window.
  const Micros timeout =
      fast_path ? config_.get_timeout / 2 : config_.get_timeout;
  get.timeout_event = ss.executor->ScheduleTimer(
      timeout, [this, &ss, req]() { OnGetTimeout(ss, req); });
  ss.pending_gets.emplace(req, std::move(get));

  GetReplicaMsg msg;
  msg.req = req;
  msg.key = key;
  const bson::Document body = EncodeGetReplica(msg);
  for (const std::string& target : targets) {
    SendToNode(target, kMsgGetReplica, body);
  }
}

void StorageNode::StartHotGet(ShardState& ss, const std::string& key,
                              GetCallback cb, Micros started_at,
                              const std::string& replica,
                              const std::string& primary) {
  // Safety: the fanned read still serves *the primary's version*. The
  // payload comes from `replica`, but it is only handed to the caller when
  // its (_ts, _origin) exactly equals what the primary reports via the
  // digest probe — so the answer is indistinguishable from a primary fast
  // read and the PR 6 primary-anchored intersection argument carries over
  // unchanged. Any mismatch, miss, error or timeout demotes to the
  // R-quorum path via the fast-path machinery (fast_path is set for
  // exactly that reason).
  const std::uint64_t req = (ss.next_seq++ << kShardBits) |
                            static_cast<std::uint64_t>(ss.index);
  PendingGet get;
  get.key = key;
  get.cb = std::move(cb);
  get.started_at = started_at;
  get.fast_path = true;
  get.hot_path = true;
  get.hot_replica = replica;
  get.needed = 1;
  get.targets = {replica, primary};
  get.timeout_event = ss.executor->ScheduleTimer(
      config_.get_timeout / 2, [this, &ss, req]() { OnGetTimeout(ss, req); });
  ss.pending_gets.emplace(req, std::move(get));

  GetReplicaMsg payload;
  payload.req = req;
  payload.key = key;
  SendToNode(replica, kMsgGetReplica, EncodeGetReplica(payload));
  GetReplicaMsg probe;
  probe.req = req;
  probe.key = key;
  probe.digest_only = true;
  SendToNode(primary, kMsgGetReplica, EncodeGetReplica(probe));
}

void StorageNode::MaybeFinishHotGet(ShardState& ss, std::uint64_t req,
                                    PendingGet* get) {
  const GetReply* payload = nullptr;  // from the rotated replica
  const GetReply* digest = nullptr;   // from the primary
  auto payload_it = get->replies.find(get->hot_replica);
  if (payload_it != get->replies.end()) payload = &payload_it->second;
  auto digest_it = get->replies.find(get->targets.back());
  if (digest_it != get->replies.end()) digest = &digest_it->second;
  // Either half failing or missing its key demotes: a fanned read never
  // concludes a miss on its own and never serves an unverified value.
  if ((payload != nullptr && (!payload->ok || !payload->found)) ||
      (digest != nullptr && (!digest->ok || !digest->found))) {
    DemoteGet(ss, req, get);
    return;
  }
  if (payload == nullptr || digest == nullptr) return;  // wait for the other half
  const bool version_matches =
      core::RecordTimestamp(payload->record) == digest->digest_ts &&
      core::RecordOrigin(payload->record) == digest->digest_origin;
  if (!version_matches) {
    // The replica lags (or leads) the primary — e.g. a read repair or
    // anti-entropy push still in flight. Serving its copy could return a
    // version the primary-anchored write quorum never confirmed; demote.
    DemoteGet(ss, req, get);
    return;
  }
  get->done = true;
  ++ss.stats.gets_succeeded;
  ++ss.stats.fast_read_hits;
  ++ss.stats.hot_read_hits;
  RecordGetOutcome(ss, *get, req, /*ok=*/true);
  get->cb(payload->record);
  FinalizeGet(ss, req, get);
}

void StorageNode::DemoteGet(ShardState& ss, std::uint64_t req,
                            PendingGet* get) {
  ++ss.stats.fast_read_demotions;
  if (get->hot_path) ++ss.stats.hot_read_demotions;
  ss.executor->CancelTimer(get->timeout_event);
  const std::string key = get->key;
  GetCallback cb = std::move(get->cb);
  const Micros started_at = get->started_at;
  ss.pending_gets.erase(req);
  StartGet(ss, key, std::move(cb), started_at, /*fast_path=*/false);
}

void StorageNode::HandleCorruptGetAck(ShardState& ss, const std::string& from) {
  // An undecodable ack carries no request id, but it still came from a
  // node some read is waiting on. Treat it as a failed reply for every
  // pending read that is missing an answer from the sender, so the
  // all-responded miss path can conclude early instead of stalling until
  // get_timeout. A spurious match (two reads waiting on the same node)
  // only costs a fallback, never a wrong answer: failed replies can't
  // satisfy R.
  std::vector<std::uint64_t> affected;
  for (const auto& [req, get] : ss.pending_gets) {
    if (get.replies.count(from) > 0) continue;
    if (std::find(get.targets.begin(), get.targets.end(), from) !=
        get.targets.end()) {
      affected.push_back(req);
    }
  }
  for (std::uint64_t req : affected) {
    auto it = ss.pending_gets.find(req);
    if (it == ss.pending_gets.end()) continue;  // concluded by a prior turn
    PendingGet& get = it->second;
    if (get.fast_path && !get.done) {
      DemoteGet(ss, req, &get);
      continue;
    }
    GetReply failed;
    failed.ok = false;
    get.replies.emplace(from, std::move(failed));
    MaybeFinishGet(ss, req, &get);
  }
}

void StorageNode::HandleGetAck(ShardState& ss, const std::string& from,
                               GetAckMsg ack) {
  auto it = ss.pending_gets.find(ack.req);
  if (it == ss.pending_gets.end()) return;
  PendingGet& get = it->second;
  if (get.replies.count(from) > 0) return;  // duplicate
  if (ack.ok && !ack.digest) {
    // Attribution must come from a reply that can actually explain the
    // outcome's latency: recording queue/service numbers from failed
    // replies too would let the trace blame a replica that only ever
    // returned an error. Digest probes carry no payload service either.
    get.last_queue = ack.queue_micros;
    get.last_service = ack.service_micros;
    get.last_replica = from;
  }
  GetReply reply;
  reply.ok = ack.ok;
  reply.found = ack.found;
  reply.record = std::move(ack.record);
  reply.digest = ack.digest;
  reply.digest_ts = ack.digest_ts;
  reply.digest_origin = std::move(ack.digest_origin);
  if (get.hot_path) {
    // The hot fan-out has its own conclusion logic (payload + digest must
    // agree); the single-replica retry rule below does not apply.
    get.replies.emplace(from, std::move(reply));
    if (!get.done) MaybeFinishHotGet(ss, ack.req, &get);
    return;
  }
  const bool fast_retry = get.fast_path && (!reply.ok || !reply.found);
  get.replies.emplace(from, std::move(reply));
  if (fast_retry && !get.done) {
    // The single-replica attempt could not answer. A one-replica miss is
    // never authoritative (the primary may still be catching up from a
    // crash) and an error says nothing either way — re-run as a quorum
    // read before concluding anything.
    DemoteGet(ss, ack.req, &get);
    return;
  }
  MaybeFinishGet(ss, ack.req, &get);
}

void StorageNode::MaybeFinishGet(ShardState& ss, std::uint64_t req,
                                 PendingGet* get) {
  int successes = 0;
  const bson::Document* winner = nullptr;
  for (const auto& [from, reply] : get->replies) {
    if (!reply.ok) continue;
    ++successes;
    if (reply.found &&
        (winner == nullptr || core::SupersedesLww(reply.record, *winner))) {
      winner = &reply.record;
    }
  }
  const bool all_responded = get->replies.size() == get->targets.size();
  if (!get->done) {
    if (winner != nullptr && successes >= get->needed) {
      // A found record plus R successful reads (R = 1 on the fast path).
      get->done = true;
      ++ss.stats.gets_succeeded;
      if (get->fast_path) ++ss.stats.fast_read_hits;
      RecordGetOutcome(ss, *get, req, /*ok=*/true);
      get->cb(*winner);
    } else if (all_responded) {
      // "The Get operation gets all replications of the specified key":
      // a miss is only authoritative once every replica has answered.
      // Either way the answer needs R successful reads — a value (or a
      // miss) confirmed by fewer replicas than the read quorum must not
      // be served as authoritative.
      get->done = true;
      if (successes >= get->needed) {
        if (winner != nullptr) {
          ++ss.stats.gets_succeeded;
          RecordGetOutcome(ss, *get, req, /*ok=*/true);
          get->cb(*winner);
        } else {
          ++ss.stats.gets_failed;
          RecordGetOutcome(ss, *get, req, /*ok=*/false);
          get->cb(Status::NotFound("no replica has key " + get->key));
        }
      } else {
        ++ss.stats.gets_failed;
        RecordGetOutcome(ss, *get, req, /*ok=*/false);
        get->cb(Status::Unavailable("read quorum unreachable for " + get->key));
      }
    }
  }
  if (all_responded) FinalizeGet(ss, req, get);
}

void StorageNode::FinalizeGet(ShardState& ss, std::uint64_t req,
                              PendingGet* get) {
  // Read repair (§5.2.2): "the Get operation gets all replications of the
  // specified key, and checks the number of replication. If replications
  // are less than N ... some more replications are supplemented."
  // The fast path contacted a single replica, so there is no second reply
  // to compare against — repair stays a quorum-path concern (dirty keys and
  // demoted reads keep taking that path, so divergent keys still heal).
  if (config_.read_repair && !get->fast_path) {
    const bson::Document* winner = nullptr;
    for (const auto& [from, reply] : get->replies) {
      if (!reply.ok || !reply.found) continue;
      if (winner == nullptr || core::SupersedesLww(reply.record, *winner)) {
        winner = &reply.record;
      }
    }
    if (winner != nullptr) {
      for (const std::string& target : get->targets) {
        auto reply_it = get->replies.find(target);
        const bool needs_repair =
            reply_it == get->replies.end() || !reply_it->second.ok ||
            !reply_it->second.found ||
            core::SupersedesLww(*winner, reply_it->second.record);
        if (!needs_repair) continue;
        if (LivenessOf(ss, target) == gossip::Liveness::kDead) {
          // A dead node cannot take the repair; the message would sit in
          // the transport's bounded outbound queue until dropped. Park it
          // as a hint instead (when handoff is on) so the write-back timer
          // delivers it once the node returns.
          ++ss.stats.read_repairs_skipped_dead;
          if (config_.hinted_handoff) {
            ss.hints->Add(target, core::AsReplicaCopy(*winner),
                          transport_->NowMicros());
          }
          continue;
        }
        PutReplicaMsg repair;
        repair.req = 0;  // fire-and-forget
        repair.record = core::AsReplicaCopy(*winner);
        SendToNode(target, kMsgPutReplica, EncodePutReplica(repair));
        ++ss.stats.read_repairs;
      }
    }
  }
  ss.executor->CancelTimer(get->timeout_event);
  ss.pending_gets.erase(req);
}

void StorageNode::OnGetTimeout(ShardState& ss, std::uint64_t req) {
  auto it = ss.pending_gets.find(req);
  if (it == ss.pending_gets.end()) return;
  PendingGet& get = it->second;
  if (get.fast_path && !get.done) {
    // The single-replica attempt ran out of its half of the budget; spend
    // the remainder on a full quorum round.
    DemoteGet(ss, req, &get);
    return;
  }
  if (!get.done) {
    get.done = true;
    // Best effort with whatever arrived before the deadline — but never
    // with fewer than R successful reads: serving a value one straggling
    // replica returned would bypass the quorum intersection exactly when
    // it matters most (partitions and slow links). A read that cannot
    // reach R confirmations fails and lets the client retry elsewhere.
    int successes = 0;
    const bson::Document* winner = nullptr;
    for (const auto& [from, reply] : get.replies) {
      if (!reply.ok) continue;
      ++successes;
      if (reply.found &&
          (winner == nullptr || core::SupersedesLww(reply.record, *winner))) {
        winner = &reply.record;
      }
    }
    if (winner != nullptr && successes >= get.needed) {
      ++ss.stats.gets_succeeded;
      RecordGetOutcome(ss, get, req, /*ok=*/true);
      get.cb(*winner);
    } else if (successes >= get.needed) {
      ++ss.stats.gets_failed;
      RecordGetOutcome(ss, get, req, /*ok=*/false);
      get.cb(Status::NotFound("no replica has key " + get.key));
    } else {
      ++ss.stats.gets_failed;
      RecordGetOutcome(ss, get, req, /*ok=*/false);
      get.cb(Status::Timeout("read quorum not reached for key " + get.key));
    }
  }
  FinalizeGet(ss, req, &get);
}

// --- dirty-set bookkeeping (fast consistent reads) --------------------------

void StorageNode::MarkKeyDirty(ShardState& ss, const std::string& key) {
  if (!config_.fast_reads) return;
  DirtyEntry& entry = ss.dirty_keys[key];
  ++entry.inflight;
  entry.last_write = transport_->NowMicros();
  // Amortized sweep: retire entries whose quiescence window lapsed so the
  // map tracks the recently-written working set, not every key ever
  // written through this coordinator.
  if (ss.dirty_sweep_countdown == 0) {
    ss.dirty_sweep_countdown = 256;
    const Micros now = transport_->NowMicros();
    for (auto it = ss.dirty_keys.begin(); it != ss.dirty_keys.end();) {
      const DirtyEntry& aged = it->second;
      if (aged.inflight == 0 &&
          now - aged.last_write >= config_.fast_read_quiescence) {
        it = ss.dirty_keys.erase(it);
      } else {
        ++it;
      }
    }
  }
  --ss.dirty_sweep_countdown;
}

void StorageNode::RetireDirtyKey(ShardState& ss, const std::string& key,
                                 bool settled_all_n) {
  auto it = ss.dirty_keys.find(key);
  if (it == ss.dirty_keys.end()) return;
  DirtyEntry& entry = it->second;
  entry.inflight = std::max(0, entry.inflight - 1);
  entry.last_write = transport_->NowMicros();
  // Last decided write wins the verdict: a write that settled on all N
  // holders left every replica with its (newer by LWW) value, so whatever
  // an earlier write missed no longer matters for freshness.
  entry.unsettled = !settled_all_n;
  if (entry.inflight == 0 && !entry.unsettled) ss.dirty_keys.erase(it);
}

bool StorageNode::KeyIsCleanOnShard(ShardState& ss, const std::string& key) {
  auto it = ss.dirty_keys.find(key);
  if (it == ss.dirty_keys.end()) return true;
  const DirtyEntry& entry = it->second;
  if (entry.inflight > 0) return false;
  if (transport_->NowMicros() - entry.last_write <
      config_.fast_read_quiescence) {
    return false;
  }
  // Aged out: the quiescence window lapsed with nothing in flight, giving
  // read repair and anti-entropy time to settle whatever the write missed.
  ss.dirty_keys.erase(it);
  return true;
}

bool StorageNode::KeyIsClean(const std::string& key) {
  const int shard = ShardOfKey(key);
  bool clean = false;
  sharded_->PostSync(shard, [this, shard, &key, &clean] {
    clean = KeyIsCleanOnShard(*shards_[shard], key);
  });
  return clean;
}

std::size_t StorageNode::DirtyKeyCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index,
                       [ss, &total] { total += ss->dirty_keys.size(); });
  }
  return total;
}

// --- observability ----------------------------------------------------------

void StorageNode::RecordPutOutcome(ShardState& ss, const PendingPut& put,
                                   std::uint64_t req, bool ok) {
  const Micros total = transport_->NowMicros() - put.started_at;
  ss.put_latency_hist.Record(total);
  metrics::TraceRecord trace;
  trace.req = req;
  trace.op = metrics::TraceOp::kPut;
  trace.key = put.key;
  trace.coordinator = id_;
  trace.replica = put.last_replica;
  trace.started_at = put.started_at;
  trace.finished_at = transport_->NowMicros();
  trace.queue_micros = put.last_queue;
  trace.service_micros = put.last_service;
  trace.network_micros =
      std::max<Micros>(0, total - put.last_queue - put.last_service);
  trace.ok = ok;
  ss.traces.Add(std::move(trace));
}

void StorageNode::RecordGetOutcome(ShardState& ss, const PendingGet& get,
                                   std::uint64_t req, bool ok) {
  const Micros total = transport_->NowMicros() - get.started_at;
  ss.get_latency_hist.Record(total);
  // Demoted reads record on the quorum histogram under their *original*
  // start time: the fast detour they took is part of the latency the
  // caller observed, not a separate measurement.
  (get.fast_path ? ss.fast_get_latency_hist : ss.quorum_get_latency_hist)
      .Record(total);
  metrics::TraceRecord trace;
  trace.req = req;
  trace.op = metrics::TraceOp::kGet;
  trace.key = get.key;
  trace.coordinator = id_;
  trace.replica = get.last_replica;
  trace.started_at = get.started_at;
  trace.finished_at = transport_->NowMicros();
  trace.queue_micros = get.last_queue;
  trace.service_micros = get.last_service;
  trace.network_micros =
      std::max<Micros>(0, total - get.last_queue - get.last_service);
  trace.ok = ok;
  ss.traces.Add(std::move(trace));
}

NodeStats StorageNode::stats() const {
  NodeStats merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index,
                       [ss, &merged] { merged.MergeFrom(ss->stats); });
  }
  return merged;
}

HeatSnapshot StorageNode::heat_snapshot() const {
  HeatSnapshot merged;
  const Micros now = transport_->NowMicros();
  const std::size_t capacity = config_.heat.capacity;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index, [ss, &merged, now, capacity] {
      merged.MergeFrom(ss->heat.Snapshot(now), capacity);
    });
  }
  return merged;
}

metrics::Histogram StorageNode::put_latency_histogram() const {
  metrics::Histogram merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index,
                       [ss, &merged] { merged.MergeFrom(ss->put_latency_hist); });
  }
  return merged;
}

metrics::Histogram StorageNode::get_latency_histogram() const {
  metrics::Histogram merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index,
                       [ss, &merged] { merged.MergeFrom(ss->get_latency_hist); });
  }
  return merged;
}

metrics::Histogram StorageNode::fast_get_latency_histogram() const {
  metrics::Histogram merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index, [ss, &merged] {
      merged.MergeFrom(ss->fast_get_latency_hist);
    });
  }
  return merged;
}

metrics::Histogram StorageNode::quorum_get_latency_histogram() const {
  metrics::Histogram merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index, [ss, &merged] {
      merged.MergeFrom(ss->quorum_get_latency_hist);
    });
  }
  return merged;
}

std::vector<metrics::TraceRecord> StorageNode::TraceSnapshot() const {
  std::vector<metrics::TraceRecord> merged;
  for (const auto& shard : shards_) {
    const ShardState* ss = shard.get();
    sharded_->PostSync(ss->index, [ss, &merged] {
      std::vector<metrics::TraceRecord> snap = ss->traces.Snapshot();
      merged.insert(merged.end(), std::make_move_iterator(snap.begin()),
                    std::make_move_iterator(snap.end()));
    });
  }
  return merged;
}

// --- hinted handoff write-back ----------------------------------------------

void StorageNode::StartHintTimer(ShardState& ss) {
  ss.hint_timer = ss.executor->ScheduleTimer(
      config_.hint_retry_interval, [this, &ss]() {
        if (!running_) return;
        DeliverHints(ss);
        StartHintTimer(ss);
      });
}

void StorageNode::DeliverHints(ShardState& ss) {
  for (const std::string& target : ss.hints->Targets()) {
    // "It detects the node B periodically by heartbeat service. When it
    // finds that the B node is on-line again, ... write the data back."
    if (LivenessOf(ss, target) != gossip::Liveness::kAlive) continue;
    if (!RingOf(ss).HasNode(target)) {
      // The target was permanently removed; drop its hints (the data was
      // re-replicated by long-failure repair).
      for (const Hint& hint : ss.hints->ForTarget(target)) {
        ss.hints->Remove(hint.id);
      }
      continue;
    }
    for (const Hint& hint : ss.hints->ForTarget(target)) {
      SendToNode(target, kMsgHandoffDeliver,
                 EncodeHandoffDeliver(hint.id, hint.record));
    }
  }
}

void StorageNode::HandleHandoffAck(ShardState& ss, HandoffAckMsg ack) {
  if (!ack.ok) return;
  const Hint* hint = ss.hints->Find(ack.hint_id);
  if (hint == nullptr) return;  // already acked by an earlier retry
  const std::string key = core::RecordSelfKey(hint->record);
  ss.hints->Remove(ack.hint_id);
  ++ss.stats.hints_delivered;
  // The write-back is done: drop the temporary local copy unless this node
  // is a preference member for the key (then the copy is a real replica)
  // or other hints still reference it. Without this purge the substitute
  // keeps an unowned replica forever — anti-entropy only reconciles
  // preference members, so that orphan goes stale on the next write and
  // the replica set never converges back to byte-identical.
  if (ss.hints->HasHintForKey(key)) return;
  std::vector<std::string> prefs = PreferenceNodes(ss, key);
  if (std::find(prefs.begin(), prefs.end(), id_) == prefs.end()) {
    Status purged = ss.store->Purge(key);
    (void)purged;
  }
}

// --- membership and long-failure repair --------------------------------------

void StorageNode::OnDetectorTransition(const std::string& endpoint,
                                       gossip::Liveness /*from*/,
                                       gossip::Liveness to) {
  SyncShardLiveness(endpoint, to);
  if (to == gossip::Liveness::kDead && spec_.is_seed) {
    // "The seed nodes are responsible for detecting 'long failure' nodes."
    HOTMAN_LOG(kInfo) << id_ << ": seed detected long failure of " << endpoint;  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
    AnnounceRemoval(endpoint);
  }
}

void StorageNode::AnnounceRemoval(const std::string& node) {
  MembershipMsg notice;
  notice.node = node;
  const bson::Document body = EncodeMembership(notice);
  for (const std::string& member : ring_.Nodes()) {
    if (member == id_ || member == node) continue;
    SendToNode(member, kMsgNodeRemoved, body);
  }
  OnNodeRemoved(node);
}

void StorageNode::OnNodeRemoved(const std::string& node) {
  if (!ring_.HasNode(node)) return;  // already applied
  if (node == id_) {
    // Our own graceful departure coming back around: the decommission path
    // already streamed everything out, so just drop ourselves from the
    // local view — no repair against our own removal.
    Status s = ring_.RemoveNode(node);
    (void)s;
    SyncShardRings();
    return;
  }
  const hashring::Ring before = ring_;
  Status s = ring_.RemoveNode(node);
  (void)s;
  removed_nodes_.insert(node);
  SyncShardRings();
  // Fig. 9: "node removing will cause the number of the replications of
  // data decreasing. So some new replicas should be created and distributed
  // to other nodes." With the rebalancer on, only the designated source per
  // arc streams (throttled, resumable) instead of every holder re-pushing.
  if (config_.rebalance.enabled) {
    StartPlannedTransfers(before);
  } else {
    ReplicateLocalData(/*purge_unowned=*/false);
  }
}

void StorageNode::OnNodeAdded(const std::string& node, int vnodes) {
  if (node == id_ || ring_.HasNode(node)) return;
  removed_nodes_.erase(node);
  const hashring::Ring before = ring_;
  Status s = ring_.AddNode(node, vnodes);
  if (!s.ok()) return;
  gossiper_->AddPeer(node);
  SyncShardRings();
  // "The mapping and migrating operation are executed by the next physical
  // node on the ring": stream the arcs the newcomer now owns to it and drop
  // what this node no longer holds a preference slot for.
  if (config_.rebalance.enabled) {
    StartPlannedTransfers(before);
  } else {
    ReplicateLocalData(/*purge_unowned=*/true);
  }
}

void StorageNode::AnnounceAddition(const std::string& node, int vnodes) {
  MembershipMsg notice;
  notice.node = node;
  notice.vnodes = vnodes;
  const bson::Document body = EncodeMembership(notice);
  for (const std::string& member : ring_.Nodes()) {
    if (member == id_ || member == node) continue;
    SendToNode(member, kMsgNodeAdded, body);
  }
  OnNodeAdded(node, vnodes);
}

std::vector<bson::Document> StorageNode::AllShardRecords() {
  // Shard-0 / rebalance path: reads every shard's store partition directly.
  // Safe without a mailbox hop because the docstore serializes access
  // internally (SharedMutex per collection) and rebalancing only needs a
  // point-in-time snapshot, not the owning shard's view.
  std::vector<bson::Document> all;
  for (const auto& shard : shards_) {
    auto records = StoreOfShard(shard->index)->AllRecords();  // NOLINT(hotman-shard-affinity) docstore-locked snapshot read from the rebalance path
    if (!records.ok()) continue;
    all.insert(all.end(), std::make_move_iterator(records->begin()),
               std::make_move_iterator(records->end()));
  }
  return all;
}

void StorageNode::ReplicateLocalData(bool purge_unowned) {
  ShardState& system = *shards_[0];
  for (const bson::Document& record : AllShardRecords()) {
    const std::string key = core::RecordSelfKey(record);
    std::vector<std::string> prefs = ring_.PreferenceList(
        key, config_.replication_factor);
    bool self_owns = false;
    for (const std::string& target : prefs) {
      if (target == id_) {
        self_owns = true;
        continue;
      }
      PutReplicaMsg msg;
      msg.req = 0;  // fire-and-forget; LWW makes it idempotent
      msg.record = core::AsReplicaCopy(record);
      SendToNode(target, kMsgPutReplica, EncodePutReplica(msg));
      ++system.stats.rereplications;
    }
    if (purge_unowned && !self_owns && !config_.chaos_skip_ownership_purge) {
      Status s = StoreForKey(key)->Purge(key);  // NOLINT(hotman-shard-affinity) docstore-locked purge from the rebalance path
      (void)s;
    }
  }
}

// --- elastic membership (src/rebalance/) -------------------------------------

void StorageNode::SetupRebalancer() {
  rebalance::RebalancerEnv env;
  env.self = id_;
  env.send_msg = [this](const hashring::NodeId& to, const std::string& type,
                    bson::Document body) {
    SendToNode(to, type, std::move(body));
  };
  env.snapshot = [this] { return AllShardRecords(); };
  env.lookup = [this](const std::string& key) {
    return StoreForKey(key)->GetByKey(key);  // NOLINT(hotman-shard-affinity) docstore-locked point read from the rebalance path
  };
  // Target-side apply: route the pushed record through the service station
  // and the key's shard exactly like foreground replica traffic (that
  // contention is what the throttle bounds), then hop home to shard 0 so
  // the rebalancer's watermark bookkeeping stays system-shard-affine.
  env.apply = [this](const bson::Document& record,
                     std::function<void(bool ok)> done) {
    const std::size_t bytes = bson::EncodedSize(record);
    const int shard = ShardOfKey(core::RecordSelfKey(record));
    auto settle = [this, done = std::move(done)](bool ok) {
      RunOnShard(0, [done, ok] { done(ok); });
    };
    const bool admitted = SubmitWork(
        bytes, [this, shard, record, settle](Micros, Micros) {
          RunOnShard(shard, [this, shard, record, settle] {
            if (!running_ || !server_->CheckAvailable().ok()) {
              settle(false);
              return;
            }
            auto applied = shards_[shard]->store->Apply(record);
            if (applied.ok()) ++shards_[shard]->stats.replica_puts_applied;
            settle(applied.ok());
          });
        });
    if (!admitted) settle(false);
  };
  env.available = [this] { return running_ && server_->CheckAvailable().ok(); };
  env.peer_known = [this](const hashring::NodeId& peer) {
    return ring_.HasNode(peer);
  };
  env.executor = transport_;
  rebalancer_ =
      std::make_unique<rebalance::Rebalancer>(config_.rebalance, std::move(env));
}

void StorageNode::StartPlannedTransfers(const hashring::Ring& before) {
  std::vector<hashring::ReplicaMigrationStep> steps =
      hashring::PlanReplicaMigration(
          before, ring_, static_cast<std::size_t>(config_.replication_factor));
  bool self_sources = false;
  for (const hashring::ReplicaMigrationStep& step : steps) {
    if (step.source == id_) {
      self_sources = true;
      break;
    }
  }
  if (self_sources) {
    // Sweep again once our own streams land: keys deferred by SourcingKey
    // (arcs this node both loses and sources, e.g. N=1 or a self-reweight)
    // become purgeable exactly then.
    rebalancer_->StartTransfers(steps, [this] {  // NOLINT(hotman-shard-affinity) membership handlers run on shard 0, the rebalancer's home shard
      if (running_) RunOwnershipSweep(/*push_before_purge=*/false);
    });
  }
  // Ownership can shift away even when this node streams nothing (another
  // holder sources the displaced arc); sweep after the transfers have had a
  // chance to land. Purge-only is safe: on any membership change at N >= 2
  // the other N-1 before-holders keep their preference slots.
  ScheduleOwnershipSweep(/*push_before_purge=*/false,
                         2 * config_.rebalance.retry_interval);
}

void StorageNode::StartDecommission(std::function<void(const Status&)> done) {
  if (!running_) {
    done(Status::Unavailable("node not running: " + id_));
    return;
  }
  if (decommissioning_) {
    done(Status::InvalidArgument("decommission already in progress: " + id_));
    return;
  }
  if (ring_.NumPhysicalNodes() < 2) {
    done(Status::InvalidArgument(
        "cannot decommission the last ring member: " + id_));
    return;
  }
  decommissioning_ = true;
  // Peers that gossip with us meanwhile see LEAVING; the authoritative exit
  // is the node_removed broadcast below.
  gossiper_->SetLocalState(gossip::kStateStatus, "LEAVING");
  HOTMAN_LOG(kInfo) << id_ << ": decommission started, streaming data out";  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
  std::vector<hashring::ReplicaMigrationStep> steps = hashring::PlanDecommission(
      ring_, id_, static_cast<std::size_t>(config_.replication_factor));
  auto finish = [this, done = std::move(done)] {
    if (!running_) {
      // Crashed (or was stopped) mid-decommission: departure becomes abrupt
      // crash semantics; survivors repair via long-failure handling.
      decommissioning_ = false;
      done(Status::Unavailable("node stopped mid-decommission: " + id_));
      return;
    }
    HOTMAN_LOG(kInfo) << id_ << ": decommission streams complete, leaving ring";  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
    decommissioned_ = true;
    AnnounceRemoval(id_);
    Stop();
    done(Status::OK());
  };
  // PlanDecommission sources every lost arc here (survivors re-plan the
  // same diff on the announce; the overlap is idempotent under LWW).
  rebalancer_->StartTransfers(steps, std::move(finish));  // NOLINT(hotman-shard-affinity) decommission starts on shard 0, the rebalancer's home shard
}

void StorageNode::RunOwnershipSweep(bool push_before_purge) {
  if (!running_) return;
  ShardState& system = *shards_[0];
  for (const bson::Document& record : AllShardRecords()) {
    const std::string key = core::RecordSelfKey(record);
    std::vector<std::string> prefs =
        ring_.PreferenceList(key, config_.replication_factor);
    if (std::find(prefs.begin(), prefs.end(), id_) != prefs.end()) continue;
    if (rebalancer_->SourcingKey(key)) continue;  // purge at stream completion  // NOLINT(hotman-shard-affinity) the ownership sweep runs on shard 0, the rebalancer's home shard
    if (push_before_purge) {
      // Rejoin path: this node may be the sole holder of a pre-crash write,
      // so hand the record to its preference holders before dropping it.
      for (const std::string& target : prefs) {
        PutReplicaMsg msg;
        msg.req = 0;  // fire-and-forget; LWW makes it idempotent
        msg.record = core::AsReplicaCopy(record);
        SendToNode(target, kMsgPutReplica, EncodePutReplica(msg));
        ++system.stats.rereplications;
      }
    }
    if (config_.chaos_skip_ownership_purge) continue;
    Status s = StoreForKey(key)->Purge(key);  // NOLINT(hotman-shard-affinity) docstore-locked purge from the rebalance path
    (void)s;
    ++system.stats.rebalance_purges;
  }
}

void StorageNode::ScheduleOwnershipSweep(bool push_before_purge, Micros delay) {
  sweep_push_pending_ = sweep_push_pending_ || push_before_purge;
  if (sweep_timer_ != 0) return;  // coalesced; the pending sweep reads the flag
  sweep_timer_ = transport_->ScheduleTimer(delay, [this] {
    sweep_timer_ = 0;
    const bool push = sweep_push_pending_;
    sweep_push_pending_ = false;
    if (running_) RunOwnershipSweep(push);
  });
}

void StorageNode::ApplyReweight(const std::string& node, int vnodes) {
  if (vnodes < 1 || !ring_.HasNode(node)) return;
  if (ring_.VnodeCount(node) == vnodes) return;
  const hashring::Ring before = ring_;
  Status removed = ring_.RemoveNode(node);
  (void)removed;
  Status added = ring_.AddNode(node, vnodes);
  (void)added;
  SyncShardRings();
  if (config_.rebalance.enabled) {
    StartPlannedTransfers(before);
  } else {
    ReplicateLocalData(/*purge_unowned=*/true);
  }
}

void StorageNode::StartAutonomicTimer() {
  autonomic_timer_ = transport_->ScheduleTimer(
      config_.rebalance.autonomic_interval, [this] {
        if (!running_) return;
        RunAutonomicCheck();
        StartAutonomicTimer();
      });
}

void StorageNode::RunAutonomicCheck() {
  // H2O-style autonomic trigger: publish our load (record count) through
  // gossip, and when it exceeds `imbalance_threshold` times the cluster
  // mean, shed a quarter of our ring weight — the reweight streams the
  // released arcs out and peers learn the new weight via kStateVnodes.
  std::size_t local = 0;
  for (const auto& shard : shards_) {
    local += StoreOfShard(shard->index)->NumRecords();  // NOLINT(hotman-shard-affinity) docstore-locked count from the rebalance path
  }
  gossiper_->SetLocalState(gossip::kStateLoad, std::to_string(local));
  if (decommissioning_) return;

  double total = static_cast<double>(local);
  int members = 1;
  for (const auto& [endpoint, state] : gossiper_->states().states()) {
    if (endpoint == id_ || !ring_.HasNode(endpoint)) continue;
    const gossip::VersionedEntry* entry = state.GetEntry(gossip::kStateLoad);
    if (entry == nullptr) continue;
    total += std::atof(entry->value.c_str());
    ++members;
  }
  if (members < 2) return;
  const double mean = total / members;
  if (mean <= 0.0 ||
      static_cast<double>(local) <= config_.rebalance.imbalance_threshold * mean) {
    return;
  }
  const int current = ring_.VnodeCount(id_);
  const int target = std::max(config_.rebalance.autonomic_min_vnodes,
                              current - std::max(1, current / 4));
  if (target >= current) return;
  HOTMAN_LOG(kInfo) << id_ << ": autonomic reweight " << current << " -> "  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                    << target << " vnodes (load " << local << " vs mean "
                    << mean << ")";
  rebalancer_->CountAutonomicReweight();
  gossiper_->SetLocalState(gossip::kStateVnodes, std::to_string(target));
  ApplyReweight(id_, target);
}

}  // namespace hotman::cluster
