#ifndef HOTMAN_CLUSTER_STORAGE_NODE_H_
#define HOTMAN_CLUSTER_STORAGE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/hinted_handoff.h"
#include "cluster/messages.h"
#include "cluster/replica_store.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/record.h"
#include "docstore/server.h"
#include "gossip/failure_detector.h"
#include "gossip/gossiper.h"
#include "hashring/ring.h"
#include "net/transport.h"
#include "sim/failure_injector.h"
#include "sim/service_station.h"

namespace hotman::cluster {

/// Completion callback of a coordinated write (Put or logical Delete).
using PutCallback = std::function<void(const Status&)>;
/// Completion callback of a coordinated read; on success carries the full
/// record document (callers check the isDel tombstone flag).
using GetCallback = std::function<void(const Result<bson::Document>&)>;

/// Operation counters exposed for experiments.
struct NodeStats {
  std::size_t puts_coordinated = 0;
  std::size_t puts_succeeded = 0;
  std::size_t puts_failed = 0;
  std::size_t gets_coordinated = 0;
  std::size_t gets_succeeded = 0;
  std::size_t gets_failed = 0;
  std::size_t replica_puts_applied = 0;
  std::size_t replica_gets_served = 0;
  std::size_t handoff_writes = 0;       ///< writes redirected to a temp node
  std::size_t hints_delivered = 0;      ///< write-backs acknowledged
  std::size_t read_repairs = 0;         ///< replicas supplemented after Get
  std::size_t read_repairs_skipped_dead = 0;  ///< repairs withheld from dead nodes
  std::size_t fast_read_hits = 0;       ///< reads served by a single replica
  std::size_t fast_read_fallbacks = 0;  ///< fast path refused at issue time
  std::size_t fast_read_demotions = 0;  ///< fast attempt failed, re-ran as quorum
  std::size_t get_acks_corrupt = 0;     ///< undecodable get acks from known targets
  std::size_t rereplications = 0;       ///< records re-pushed on ring change
  std::size_t ae_rounds = 0;            ///< anti-entropy exchanges initiated
  std::size_t ae_pushed = 0;            ///< records pushed by anti-entropy
  std::size_t ae_requested = 0;         ///< records pulled by anti-entropy
};

/// One storage node of the MyStore data storage module (§5.1):
///  - the *lower layer* is the embedded MongoDB-like engine
///    (docstore::DocStoreServer + ReplicaStore with the record schema);
///  - the *middle layer* is this class: the normal message handling process
///    (put/get replica traffic), the abnormal event handling process
///    (nacks, timeouts, hinted handoff, long-failure repair) and the
///    synchronization message process (gossip + membership notices);
///  - the *upper layer* is any net::Transport: the deterministic simulator
///    in experiments, real TCP in the `hotmand` daemon (the paper's Netty
///    role).
///
/// Every node can coordinate client requests ("clients can connect to any
/// node in the system to get/put data").
class StorageNode {
 public:
  /// `transport` carries messages and timers; `injector` may be null
  /// (no fault injection — the real daemon).
  StorageNode(const NodeSpec& spec, const ClusterConfig& config,
              net::Transport* transport, sim::FailureInjector* injector,
              std::uint64_t rng_seed);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Registers with the transport, builds the initial ring from the static
  /// configuration, boots gossip + the failure detector + the hint
  /// write-back timer.
  void Start();

  /// Graceful stop: unregisters from the network and stops timers.
  void Stop();

  // --- client (coordinator) API -------------------------------------------

  /// Coordinates a write of (key, value): builds the record, replicates to
  /// the N preference nodes, succeeds at W acks (§5.2.2).
  void CoordinatePut(const std::string& key, Bytes value, PutCallback cb);

  /// Logical delete: a tombstone write (isDel=1) through the same quorum.
  void CoordinateDelete(const std::string& key, PutCallback cb);

  /// Coordinates a read: queries the N preference nodes, succeeds at R
  /// responses, reconciles last-write-wins, then supplements stale or
  /// missing replicas (read repair).
  void CoordinateGet(const std::string& key, GetCallback cb);

  // --- membership ----------------------------------------------------------

  /// Applies a node-removed notice: drops the node from the ring and
  /// re-replicates local data so every record regains N replicas (Fig. 9).
  void OnNodeRemoved(const std::string& node);

  /// Applies a node-added notice: adds the node to the ring and migrates
  /// the keys that now belong to it.
  void OnNodeAdded(const std::string& node, int vnodes);

  /// Seed-side: broadcasts a node_removed notice to every known endpoint
  /// and applies it locally.
  void AnnounceRemoval(const std::string& node);

  // --- anti-entropy (background consistency, future-work extension) ------

  /// One synchronization round with `peer`: sends a digest of every local
  /// record the peer should also hold; the peer pushes back newer versions
  /// and requests the ones it is missing. Normally driven by the periodic
  /// timer (config.anti_entropy); exposed for tests and ablations.
  void RunAntiEntropyRound(const std::string& peer);

  // --- introspection --------------------------------------------------------

  const std::string& id() const { return id_; }
  bool is_seed() const { return spec_.is_seed; }
  const hashring::Ring& ring() const { return ring_; }
  ReplicaStore* store() { return store_.get(); }
  HintStore* hints() { return &hints_; }
  gossip::Gossiper* gossiper() { return gossiper_.get(); }
  gossip::FailureDetector* detector() { return detector_.get(); }
  docstore::DocStoreServer* server() { return server_.get(); }
  /// Null when the config disables service-time modeling.
  sim::ServiceStation* station() { return station_.get(); }
  /// The node's message dispatcher. NodeServer attaches the client-facing
  /// handlers (client_put/get/...) here so one endpoint serves both cluster
  /// and client traffic.
  net::Dispatcher* dispatcher() { return &dispatcher_; }
  const NodeStats& stats() const { return stats_; }

  /// Coordinated-operation latency (enqueue -> outcome callback), success
  /// and failure combined; the cluster layer merges these for /stats.
  const metrics::Histogram& put_latency_histogram() const { return put_latency_hist_; }
  const metrics::Histogram& get_latency_histogram() const { return get_latency_hist_; }
  /// Per-path read latency: reads decided by the single-replica fast path
  /// vs. reads that went through (or demoted to) the R-quorum fan-out.
  const metrics::Histogram& fast_get_latency_histogram() const {
    return fast_get_latency_hist_;
  }
  const metrics::Histogram& quorum_get_latency_histogram() const {
    return quorum_get_latency_hist_;
  }

  /// Dirty-set introspection (tests + /stats): true when a read of `key`
  /// issued now would be eligible for the single-replica fast path as far
  /// as the dirty set is concerned. Lazily retires aged-out entries.
  bool KeyIsClean(const std::string& key);
  std::size_t DirtyKeyCount() const { return dirty_keys_.size(); }

  /// Recent per-request trace records coordinated by this node.
  const metrics::TraceBuffer& traces() const { return traces_; }

  /// Nodes this node believes are cluster members (on its ring).
  std::vector<std::string> KnownMembers() const { return ring_.Nodes(); }

  /// Chaos hook: offsets the timestamps this coordinator stamps into new
  /// records by `skew` (positive = clock runs fast). Models a node whose
  /// wall clock drifted — under last-write-wins that can reorder writes,
  /// which is exactly what the chaos convergence runs exercise. Zero
  /// restores an honest clock.
  void SetClockSkew(Micros skew) { clock_skew_ = skew; }
  Micros clock_skew() const { return clock_skew_; }

 private:
  struct PendingPut {
    std::string key;
    std::string primary;  ///< first preference node (stores the original)
    bson::Document record;
    PutCallback cb;
    bool done = false;
    int needed = 0;
    int acks = 0;
    int timeout_wave = 0;
    bool primary_ok = false;  ///< the primary holder acked the write
    std::map<std::string, bool> responded;  // target -> answered?
    std::set<std::string> used;             // every node contacted
    std::vector<std::string> pref_targets;  // original preference holders
    std::set<std::string> ok_acks;          // preference holders that acked ok
    net::TimerId timeout_event = 0;
    net::TimerId cleanup_event = 0;
    Micros started_at = 0;
    // Breakdown carried by the most recent ack (the decisive one when the
    // operation completes), for the trace record.
    Micros last_queue = 0;
    Micros last_service = 0;
    std::string last_replica;
  };

  struct GetReply {
    bool ok = false;
    bool found = false;
    bson::Document record;
  };

  struct PendingGet {
    std::string key;
    GetCallback cb;
    bool done = false;
    bool fast_path = false;  ///< single-replica attempt; failures demote
    int needed = 0;
    std::vector<std::string> targets;
    std::map<std::string, GetReply> replies;
    net::TimerId timeout_event = 0;
    Micros started_at = 0;
    Micros last_queue = 0;
    Micros last_service = 0;
    std::string last_replica;
  };

  /// Per-key write-activity entry backing the fast-read decision. A key is
  /// *clean* (single-replica readable) when it has no entry, and an entry
  /// is retired when its last write settled on every preference holder or
  /// the quiescence window elapsed with no further write.
  struct DirtyEntry {
    int inflight = 0;       ///< coordinated writes not yet fully decided
    Micros last_write = 0;  ///< most recent write activity on this key
    bool unsettled = false; ///< a decided write missed >= 1 preference holder
  };

  // Message plumbing. Handlers are registered per type on dispatcher_;
  // the transport invokes them on its event thread.
  void RegisterHandlers();
  void SendToNode(const std::string& to, const std::string& type,
                  bson::Document body);
  /// Runs replica-side work through the ServiceStation when service-time
  /// modeling is on, or inline (zero modeled delay) when off. Returns
  /// false when the station shed the request.
  bool SubmitWork(std::size_t payload_bytes, sim::ServiceStation::Done done);

  // Replica-side handlers (the normal message handling process).
  void HandlePutReplica(const net::Message& msg);
  void HandleGetReplica(const net::Message& msg);
  void HandleHintStore(const net::Message& msg);
  void HandleHandoffDeliver(const net::Message& msg);

  // Coordinator-side handlers.
  void HandlePutAck(const net::Message& msg);
  void HandleGetAck(const net::Message& msg);
  void HandleHandoffAck(const net::Message& msg);

  // Put state machine.
  void StartPut(bson::Document record, PutCallback cb);
  void TryHandoff(std::uint64_t req, PendingPut* put, const std::string& failed);
  void OnPutTimeout(std::uint64_t req);
  void OnPutCleanup(std::uint64_t req);
  void MaybeFinishPut(std::uint64_t req, PendingPut* put);

  // Get state machine. CoordinateGet picks the path; StartGet issues the
  // actual fan-out (single primary read or R-quorum spread); DemoteGet
  // re-runs a failed fast attempt through the quorum path.
  void StartGet(const std::string& key, GetCallback cb, Micros started_at,
                bool fast_path);
  void DemoteGet(std::uint64_t req, PendingGet* get);
  void OnGetTimeout(std::uint64_t req);
  void MaybeFinishGet(std::uint64_t req, PendingGet* get);
  void FinalizeGet(std::uint64_t req, PendingGet* get);

  // Dirty-set bookkeeping for the fast read path.
  void MarkKeyDirty(const std::string& key);
  /// Called exactly once per decided put, when its pending entry retires.
  void RetireDirtyKey(const std::string& key, bool settled_all_n);
  /// Whether writes must be primary-anchored for fast reads to stay
  /// consistent (strict mode; sloppy handoff already trades staleness).
  bool RequirePrimaryAck() const {
    return config_.fast_reads && !config_.hinted_handoff;
  }

  // Observability: latency histogram sample + trace record for a decided
  // coordinated operation (call exactly once, when `done` flips).
  void RecordPutOutcome(const PendingPut& put, std::uint64_t req, bool ok);
  void RecordGetOutcome(const PendingGet& get, std::uint64_t req, bool ok);

  // Anti-entropy plumbing.
  void StartAntiEntropyTimer();
  void HandleAeDigest(const net::Message& msg);
  void HandleAeRequest(const net::Message& msg);
  /// Records for which both `self` and `peer` are preference members.
  std::vector<bson::Document> SharedRecords(const std::string& peer);

  // Failure handling.
  void StartHintTimer();
  void DeliverHints();
  void OnDetectorTransition(const std::string& endpoint, gossip::Liveness from,
                            gossip::Liveness to);

  // Rebalancing (long failure / node arrival).
  void ReplicateLocalData(bool purge_unowned);

  /// The N distinct physical preference nodes for `key`.
  std::vector<std::string> PreferenceNodes(const std::string& key) const;

  NodeSpec spec_;
  ClusterConfig config_;
  std::string id_;
  net::Transport* transport_;
  sim::FailureInjector* injector_;
  net::Dispatcher dispatcher_;

  hashring::Ring ring_;
  std::set<std::string> removed_nodes_;
  std::unique_ptr<docstore::DocStoreServer> server_;
  std::unique_ptr<ReplicaStore> store_;
  std::unique_ptr<sim::ServiceStation> station_;
  std::unique_ptr<gossip::Gossiper> gossiper_;
  std::unique_ptr<gossip::FailureDetector> detector_;
  HintStore hints_;

  std::uint64_t next_req_ = 1;
  std::map<std::uint64_t, PendingPut> pending_puts_;
  std::map<std::uint64_t, PendingGet> pending_gets_;
  std::map<std::string, DirtyEntry> dirty_keys_;
  std::uint64_t dirty_sweep_countdown_ = 0;  ///< periodic expired-entry sweep

  bool running_ = false;
  Micros clock_skew_ = 0;
  net::TimerId hint_timer_ = 0;
  net::TimerId ae_timer_ = 0;
  Rng ae_rng_{0x5eedae};
  NodeStats stats_;
  metrics::Histogram put_latency_hist_;
  metrics::Histogram get_latency_hist_;
  metrics::Histogram fast_get_latency_hist_;
  metrics::Histogram quorum_get_latency_hist_;
  metrics::TraceBuffer traces_{256};
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_STORAGE_NODE_H_
