#ifndef HOTMAN_CLUSTER_STORAGE_NODE_H_
#define HOTMAN_CLUSTER_STORAGE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/hinted_handoff.h"
#include "cluster/messages.h"
#include "cluster/replica_store.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "core/record.h"
#include "docstore/server.h"
#include "gossip/failure_detector.h"
#include "gossip/gossiper.h"
#include "hashring/ketama.h"
#include "hashring/ring.h"
#include "net/sharded_executor.h"
#include "net/transport.h"
#include "rebalance/rebalancer.h"
#include "sim/failure_injector.h"
#include "sim/service_station.h"

namespace hotman::cluster {

/// Completion callback of a coordinated write (Put or logical Delete).
using PutCallback = std::function<void(const Status&)>;
/// Completion callback of a coordinated read; on success carries the full
/// record document (callers check the isDel tombstone flag).
using GetCallback = std::function<void(const Result<bson::Document>&)>;

/// Operation counters exposed for experiments.
struct NodeStats {
  std::size_t puts_coordinated = 0;
  std::size_t puts_succeeded = 0;
  std::size_t puts_failed = 0;
  std::size_t gets_coordinated = 0;
  std::size_t gets_succeeded = 0;
  std::size_t gets_failed = 0;
  std::size_t replica_puts_applied = 0;
  std::size_t replica_gets_served = 0;
  std::size_t handoff_writes = 0;       ///< writes redirected to a temp node
  std::size_t hints_delivered = 0;      ///< write-backs acknowledged
  std::size_t read_repairs = 0;         ///< replicas supplemented after Get
  std::size_t read_repairs_skipped_dead = 0;  ///< repairs withheld from dead nodes
  std::size_t fast_read_hits = 0;       ///< reads served by a single replica
  std::size_t fast_read_fallbacks = 0;  ///< fast path refused at issue time
  std::size_t fast_read_demotions = 0;  ///< fast attempt failed, re-ran as quorum
  std::size_t hot_gets_fanned = 0;      ///< hot-key reads sent to a rotated replica
  std::size_t hot_read_hits = 0;        ///< fanned reads served digest-verified
  std::size_t hot_read_demotions = 0;   ///< fanned reads demoted to the quorum path
  std::size_t replica_digests_served = 0;  ///< digest_only probes answered
  std::size_t get_acks_corrupt = 0;     ///< undecodable get acks from known targets
  std::size_t rereplications = 0;       ///< records re-pushed on ring change
  std::size_t rebalance_purges = 0;     ///< unowned records dropped by the sweep
  std::size_t ae_rounds = 0;            ///< anti-entropy exchanges initiated
  std::size_t ae_pushed = 0;            ///< records pushed by anti-entropy
  std::size_t ae_requested = 0;         ///< records pulled by anti-entropy

  /// Field-wise sum (merging per-shard counters for /stats).
  void MergeFrom(const NodeStats& other);
};

/// One storage node of the MyStore data storage module (§5.1):
///  - the *lower layer* is the embedded MongoDB-like engine
///    (docstore::DocStoreServer + ReplicaStore with the record schema);
///  - the *middle layer* is this class: the normal message handling process
///    (put/get replica traffic), the abnormal event handling process
///    (nacks, timeouts, hinted handoff, long-failure repair) and the
///    synchronization message process (gossip + membership notices);
///  - the *upper layer* is any net::Transport: the deterministic simulator
///    in experiments, real TCP in the `hotmand` daemon (the paper's Netty
///    role).
///
/// Every node can coordinate client requests ("clients can connect to any
/// node in the system to get/put data").
///
/// ### Shard-per-core runtime
///
/// The node is internally partitioned into `config.shards` shards, each
/// owning a contiguous arc of the consistent-hash point space
/// (net::ShardedExecutor::ShardForPoint). All *keyed* coordinator and
/// replica state — the pending put/get tables, the dirty set, the hint
/// ledger, the replica store partition, per-op timers, stats, histograms
/// and traces — is shard-local and only ever touched in that shard's
/// execution context (net::ShardContext). Requests hop between shards via
/// RunOnShard (SPSC mailboxes when threaded, deterministic zero-delay
/// events in simulation); request ids carry their home shard in the low
/// kShardBits so acks route back without any shared lookup. Shard 0 is the
/// system shard: gossip, the failure detector, membership and anti-entropy
/// stay there, and it broadcasts ring/liveness snapshots to the other
/// shards on every change.
class StorageNode {
 public:
  /// Bits of a request id reserved for the originating shard (so acks
  /// route home without shared state). Caps shards at 64 per node.
  static constexpr int kShardBits = 6;
  static constexpr std::uint64_t kShardMask = (1u << kShardBits) - 1;

  /// `transport` carries messages and timers; `injector` may be null
  /// (no fault injection — the real daemon). `sharded` may be null: the
  /// node then builds its own non-threaded (deterministic) shard runtime
  /// over `transport` with `config.shards` shards. The real daemon passes
  /// a started threaded ShardedExecutor instead.
  StorageNode(const NodeSpec& spec, const ClusterConfig& config,
              net::Transport* transport, sim::FailureInjector* injector,
              std::uint64_t rng_seed, net::ShardedExecutor* sharded = nullptr);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Registers with the transport, builds the initial ring from the static
  /// configuration, boots gossip + the failure detector + the hint
  /// write-back timer.
  void Start();

  /// Graceful stop: unregisters from the network and stops timers.
  void Stop();

  // --- client (coordinator) API -------------------------------------------

  /// Coordinates a write of (key, value): builds the record, replicates to
  /// the N preference nodes, succeeds at W acks (§5.2.2). Runs on the
  /// key's shard; `cb` fires in that shard's context.
  void CoordinatePut(const std::string& key, Bytes value, PutCallback cb);

  /// Logical delete: a tombstone write (isDel=1) through the same quorum.
  void CoordinateDelete(const std::string& key, PutCallback cb);

  /// Coordinates a read: queries the N preference nodes, succeeds at R
  /// responses, reconciles last-write-wins, then supplements stale or
  /// missing replicas (read repair).
  void CoordinateGet(const std::string& key, GetCallback cb);

  // --- membership ----------------------------------------------------------

  /// Applies a node-removed notice: drops the node from the ring and
  /// re-replicates local data so every record regains N replicas (Fig. 9).
  void OnNodeRemoved(const std::string& node);

  /// Applies a node-added notice: adds the node to the ring and migrates
  /// the keys that now belong to it.
  void OnNodeAdded(const std::string& node, int vnodes);

  /// Seed-side: broadcasts a node_removed notice to every known endpoint
  /// and applies it locally.
  void AnnounceRemoval(const std::string& node);

  /// Admin-side (hotman_ctl join): broadcasts a node_added notice to every
  /// ring member and applies it locally, so an operator can introduce a
  /// node through any coordinator instead of waiting for gossip.
  void AnnounceAddition(const std::string& node, int vnodes);

  // --- elastic membership (src/rebalance/) --------------------------------

  /// Graceful leave: marks this node LEAVING in gossip, streams every arc
  /// it holds to the nodes that inherit it (throttled, resumable), then
  /// announces its own removal and stops. `done` fires once the node has
  /// left the ring (Status::OK) or the decommission could not start.
  /// Abrupt departure — just Stop()/crash — remains available as explicit
  /// crash semantics: survivors then re-replicate from their own copies.
  void StartDecommission(std::function<void(const Status&)> done);

  /// Drops every local record this node no longer owns under the current
  /// ring (keys inside arcs still being streamed out are deferred to the
  /// transfer's completion). With `push_before_purge` each dropped record
  /// is first re-pushed to its preference holders — the rejoin path uses
  /// that to hand back writes it alone may hold.
  void RunOwnershipSweep(bool push_before_purge);

  /// Schedules RunOwnershipSweep after `delay` (coalesced: at most one
  /// pending sweep; a push-before-purge request wins over a purge-only one).
  void ScheduleOwnershipSweep(bool push_before_purge, Micros delay);

  bool running() const { return running_; }
  /// True from StartDecommission until the node leaves the ring.
  bool decommissioning() const { return decommissioning_; }
  /// True once a graceful decommission completed and the node stopped.
  bool decommissioned() const { return decommissioned_; }

  /// The cluster configuration this node was booted with (defaults for
  /// operator-driven joins: vnode count, rebalance throttle, ...).
  const ClusterConfig& config() const { return config_; }

  rebalance::Rebalancer* rebalancer() { return rebalancer_.get(); }
  /// Counters of the node's rebalancer (merged into /stats as rebalance.*).
  rebalance::RebalanceStats rebalance_stats() const {
    return rebalancer_ != nullptr ? rebalancer_->stats()
                                  : rebalance::RebalanceStats{};
  }

  // --- anti-entropy (background consistency, future-work extension) ------

  /// One synchronization round with `peer`: sends a digest of every local
  /// record the peer should also hold; the peer pushes back newer versions
  /// and requests the ones it is missing. Normally driven by the periodic
  /// timer (config.anti_entropy); exposed for tests and ablations.
  void RunAntiEntropyRound(const std::string& peer);

  // --- introspection --------------------------------------------------------

  const std::string& id() const { return id_; }
  bool is_seed() const { return spec_.is_seed; }
  const hashring::Ring& ring() const { return ring_; }
  /// Shard partitioning of this node's key space.
  int num_shards() const { return sharded_->num_shards(); }
  /// Shard owning `key`: its ketama ring position, mapped onto the shard
  /// arcs (net/ stays hash-agnostic, so the hash happens here).
  int ShardOfKey(const std::string& key) const {
    return net::ShardedExecutor::ShardForPoint(hashring::KetamaHash(key),
                                               sharded_->num_shards());
  }
  /// Shard 0's replica store (the only one at shards = 1; multi-shard
  /// callers scan every shard via StoreOfShard).
  ReplicaStore* store() { return shards_[0]->store.get(); }
  /// The replica store partition of shard `shard`. Affine: the partition
  /// belongs to that shard's context; off-shard callers need a mailbox
  /// hop or a docstore-locked snapshot justification.
  ReplicaStore* StoreOfShard(int shard) HOTMAN_SHARD_AFFINE {
    return shards_[shard]->store.get();
  }
  /// The replica store partition owning `key` (affine, as above).
  ReplicaStore* StoreForKey(const std::string& key) HOTMAN_SHARD_AFFINE {
    return shards_[ShardOfKey(key)]->store.get();
  }
  /// Shard 0's hint ledger (the only one at shards = 1).
  HintStore* hints() { return shards_[0]->hints.get(); }
  HintStore* HintsOfShard(int shard) HOTMAN_SHARD_AFFINE {
    return shards_[shard]->hints.get();
  }
  gossip::Gossiper* gossiper() { return gossiper_.get(); }
  gossip::FailureDetector* detector() { return detector_.get(); }
  docstore::DocStoreServer* server() { return server_.get(); }
  /// Null when the config disables service-time modeling.
  sim::ServiceStation* station() { return station_.get(); }
  /// The node's message dispatcher. NodeServer attaches the client-facing
  /// handlers (client_put/get/...) here so one endpoint serves both cluster
  /// and client traffic.
  net::Dispatcher* dispatcher() { return &dispatcher_; }
  /// Merged per-shard operation counters (safe from any thread: shard
  /// counters are gathered in each shard's own context).
  NodeStats stats() const;

  /// Merged per-shard heat snapshot (top-k keys, qps, skew coefficient) at
  /// the transport's current time. Same cross-shard gather discipline as
  /// stats().
  HeatSnapshot heat_snapshot() const;

  /// Coordinated-operation latency (enqueue -> outcome callback), success
  /// and failure combined, merged across shards; the cluster layer merges
  /// these for /stats.
  metrics::Histogram put_latency_histogram() const;
  metrics::Histogram get_latency_histogram() const;
  /// Per-path read latency: reads decided by the single-replica fast path
  /// vs. reads that went through (or demoted to) the R-quorum fan-out.
  metrics::Histogram fast_get_latency_histogram() const;
  metrics::Histogram quorum_get_latency_histogram() const;

  /// Dirty-set introspection (tests + /stats): true when a read of `key`
  /// issued now would be eligible for the single-replica fast path as far
  /// as the dirty set is concerned. Lazily retires aged-out entries.
  /// Synchronizes with the key's shard.
  bool KeyIsClean(const std::string& key);
  std::size_t DirtyKeyCount() const;

  /// Recent per-request trace records coordinated by this node, merged
  /// across shards.
  std::vector<metrics::TraceRecord> TraceSnapshot() const;

  /// Nodes this node believes are cluster members (on its ring).
  std::vector<std::string> KnownMembers() const { return ring_.Nodes(); }

  /// Chaos hook: offsets the timestamps this coordinator stamps into new
  /// records by `skew` (positive = clock runs fast). Models a node whose
  /// wall clock drifted — under last-write-wins that can reorder writes,
  /// which is exactly what the chaos convergence runs exercise. Zero
  /// restores an honest clock.
  void SetClockSkew(Micros skew) { clock_skew_ = skew; }
  Micros clock_skew() const { return clock_skew_; }

  /// The shard runtime in use (owned or injected).
  net::ShardedExecutor* sharded() { return sharded_; }

 private:
  struct PendingPut {
    std::string key;
    std::string primary;  ///< first preference node (stores the original)
    bson::Document record;
    PutCallback cb;
    bool done = false;
    int needed = 0;
    int acks = 0;
    int timeout_wave = 0;
    bool primary_ok = false;  ///< the primary holder acked the write
    std::map<std::string, bool> responded;  // target -> answered?
    std::set<std::string> used;             // every node contacted
    std::vector<std::string> pref_targets;  // original preference holders
    std::set<std::string> ok_acks;          // preference holders that acked ok
    net::TimerId timeout_event = 0;
    net::TimerId cleanup_event = 0;
    Micros started_at = 0;
    // Breakdown carried by the most recent ack (the decisive one when the
    // operation completes), for the trace record.
    Micros last_queue = 0;
    Micros last_service = 0;
    std::string last_replica;
  };

  struct GetReply {
    bool ok = false;
    bool found = false;
    bson::Document record;
    // Digest probe replies carry the version only.
    bool digest = false;
    std::int64_t digest_ts = 0;
    std::string digest_origin;
  };

  struct PendingGet {
    std::string key;
    GetCallback cb;
    bool done = false;
    bool fast_path = false;  ///< single-replica attempt; failures demote
    bool hot_path = false;   ///< hot fan-out: replica payload + primary digest
    std::string hot_replica; ///< the rotated replica serving the payload
    int needed = 0;
    std::vector<std::string> targets;
    std::map<std::string, GetReply> replies;
    net::TimerId timeout_event = 0;
    Micros started_at = 0;
    Micros last_queue = 0;
    Micros last_service = 0;
    std::string last_replica;
  };

  /// Per-key write-activity entry backing the fast-read decision. A key is
  /// *clean* (single-replica readable) when it has no entry, and an entry
  /// is retired when its last write settled on every preference holder or
  /// the quiescence window elapsed with no further write.
  struct DirtyEntry {
    int inflight = 0;       ///< coordinated writes not yet fully decided
    Micros last_write = 0;  ///< most recent write activity on this key
    bool unsettled = false; ///< a decided write missed >= 1 preference holder
  };

  /// One shard's slice of the node: everything keyed work touches. Only
  /// ever accessed in the shard's execution context (its reactor thread in
  /// the real daemon; its ShardContext scope in simulation) — no locks.
  struct ShardState {
    int index = 0;
    /// The executor this shard's timers run on (the shard's reactor when
    /// threaded; the node's base transport otherwise).
    net::Executor* executor = nullptr;
    std::unique_ptr<ReplicaStore> store;
    std::unique_ptr<HintStore> hints;
    /// Shard-local membership view. Threaded shards > 0 work from ring /
    /// liveness snapshots broadcast by shard 0 on every change; shard 0
    /// (and every shard of the single-threaded runtime) reads the masters
    /// directly. An endpoint absent from `liveness` is kAlive, matching
    /// the failure detector's default for never-heard-of peers.
    hashring::Ring ring;
    std::map<std::string, gossip::Liveness> liveness;
    std::uint64_t next_seq = 1;  ///< request ids: (next_seq << kShardBits) | index
    std::map<std::uint64_t, PendingPut> pending_puts;
    std::map<std::uint64_t, PendingGet> pending_gets;
    std::map<std::string, DirtyEntry> dirty_keys;
    std::uint64_t dirty_sweep_countdown = 0;  ///< periodic expired-entry sweep
    /// Per-key operation heat of this shard's arc (space-saving sketch with
    /// exponential decay); feeds the hot-read rotation and /stats heat.*.
    HeatTracker heat;
    net::TimerId hint_timer = 0;
    NodeStats stats;
    metrics::Histogram put_latency_hist;
    metrics::Histogram get_latency_hist;
    metrics::Histogram fast_get_latency_hist;
    metrics::Histogram quorum_get_latency_hist;
    metrics::TraceBuffer traces{256};
  };

  // Message plumbing. Handlers are registered per type on dispatcher_;
  // the transport invokes them on its event thread (= shard 0), and keyed
  // handlers immediately hop to the owning shard.
  void RegisterHandlers();
  void SendToNode(const std::string& to, const std::string& type,
                  bson::Document body);
  /// Runs `fn` in shard `shard`'s context (inline when already there).
  void RunOnShard(int shard, std::function<void()> fn);
  /// Shard that owns request id `req` (its low kShardBits).
  int ShardOfReq(std::uint64_t req) const {
    return static_cast<int>(req & kShardMask) % sharded_->num_shards();
  }
  /// Runs replica-side work through the ServiceStation when service-time
  /// modeling is on, or inline (zero modeled delay) when off. Returns
  /// false when the station shed the request.
  bool SubmitWork(std::size_t payload_bytes, sim::ServiceStation::Done done);

  /// Shard-local membership accessors (the snapshot story above).
  const hashring::Ring& RingOf(const ShardState& ss) const;
  gossip::Liveness LivenessOf(const ShardState& ss,
                              const std::string& node) const;
  /// Broadcasts the master ring / a liveness transition to threaded
  /// shards > 0. Shard-0 context only.
  void SyncShardRings();
  void SyncShardLiveness(const std::string& endpoint, gossip::Liveness to);

  // Replica-side handlers (the normal message handling process). Run on
  // the key's shard.
  void HandlePutReplica(ShardState& ss, const std::string& from,
                        PutReplicaMsg msg) HOTMAN_SHARD_AFFINE;
  void HandleGetReplica(ShardState& ss, const std::string& from,
                        GetReplicaMsg msg) HOTMAN_SHARD_AFFINE;
  void HandleHintStore(ShardState& ss, const std::string& from,
                       HintStoreMsg msg) HOTMAN_SHARD_AFFINE;
  void HandleHandoffDeliver(ShardState& ss, const std::string& from,
                            std::uint64_t hint_id,
                            bson::Document record) HOTMAN_SHARD_AFFINE;

  // Coordinator-side handlers. Run on the request id's home shard.
  void HandlePutAck(ShardState& ss, const std::string& from,
                    PutAckMsg ack) HOTMAN_SHARD_AFFINE;
  void HandleGetAck(ShardState& ss, const std::string& from,
                    GetAckMsg ack) HOTMAN_SHARD_AFFINE;
  /// An undecodable get ack carries no request id, so every shard checks
  /// its own pending reads against the sender.
  void HandleCorruptGetAck(ShardState& ss,
                           const std::string& from) HOTMAN_SHARD_AFFINE;
  void HandleHandoffAck(ShardState& ss, HandoffAckMsg ack) HOTMAN_SHARD_AFFINE;

  // Put state machine (all on the key's shard).
  void StartPut(ShardState& ss, bson::Document record,
                PutCallback cb) HOTMAN_SHARD_AFFINE;
  void TryHandoff(ShardState& ss, std::uint64_t req, PendingPut* put,
                  const std::string& failed) HOTMAN_SHARD_AFFINE;
  void OnPutTimeout(ShardState& ss, std::uint64_t req) HOTMAN_SHARD_AFFINE;
  void OnPutCleanup(ShardState& ss, std::uint64_t req) HOTMAN_SHARD_AFFINE;
  void MaybeFinishPut(ShardState& ss, std::uint64_t req,
                      PendingPut* put) HOTMAN_SHARD_AFFINE;

  // Get state machine. CoordinateGet picks the path; StartGet issues the
  // actual fan-out (single primary read or R-quorum spread); DemoteGet
  // re-runs a failed fast attempt through the quorum path.
  void StartGet(ShardState& ss, const std::string& key, GetCallback cb,
                Micros started_at, bool fast_path) HOTMAN_SHARD_AFFINE;
  /// Hot-key fan-out: payload read at `replica` (a rotated non-primary
  /// holder) plus a digest_only version probe at the primary. The value is
  /// served only when the replica's version equals the primary's digest;
  /// any other outcome demotes to the quorum path.
  void StartHotGet(ShardState& ss, const std::string& key, GetCallback cb,
                   Micros started_at, const std::string& replica,
                   const std::string& primary) HOTMAN_SHARD_AFFINE;
  void MaybeFinishHotGet(ShardState& ss, std::uint64_t req,
                         PendingGet* get) HOTMAN_SHARD_AFFINE;
  void DemoteGet(ShardState& ss, std::uint64_t req,
                 PendingGet* get) HOTMAN_SHARD_AFFINE;
  void OnGetTimeout(ShardState& ss, std::uint64_t req) HOTMAN_SHARD_AFFINE;
  void MaybeFinishGet(ShardState& ss, std::uint64_t req,
                      PendingGet* get) HOTMAN_SHARD_AFFINE;
  void FinalizeGet(ShardState& ss, std::uint64_t req,
                   PendingGet* get) HOTMAN_SHARD_AFFINE;

  // Dirty-set bookkeeping for the fast read path (on the key's shard).
  void MarkKeyDirty(ShardState& ss, const std::string& key) HOTMAN_SHARD_AFFINE;
  /// Called exactly once per decided put, when its pending entry retires.
  void RetireDirtyKey(ShardState& ss, const std::string& key,
                      bool settled_all_n) HOTMAN_SHARD_AFFINE;
  bool KeyIsCleanOnShard(ShardState& ss,
                         const std::string& key) HOTMAN_SHARD_AFFINE;
  /// Whether writes must be primary-anchored for fast reads to stay
  /// consistent (strict mode; sloppy handoff already trades staleness).
  bool RequirePrimaryAck() const {
    return config_.fast_reads && !config_.hinted_handoff;
  }

  // Observability: latency histogram sample + trace record for a decided
  // coordinated operation (call exactly once, when `done` flips).
  void RecordPutOutcome(ShardState& ss, const PendingPut& put,
                        std::uint64_t req, bool ok) HOTMAN_SHARD_AFFINE;
  void RecordGetOutcome(ShardState& ss, const PendingGet& get,
                        std::uint64_t req, bool ok) HOTMAN_SHARD_AFFINE;

  // Anti-entropy plumbing (shard 0; scans every shard's store partition).
  void StartAntiEntropyTimer();
  void HandleAeDigest(const net::Message& msg);
  void HandleAeRequest(const net::Message& msg);
  /// Records for which both `self` and `peer` are preference members,
  /// across all shard partitions.
  std::vector<bson::Document> SharedRecords(const std::string& peer);
  /// Every record on this node (all shard partitions).
  std::vector<bson::Document> AllShardRecords();

  // Failure handling.
  void StartHintTimer(ShardState& ss) HOTMAN_SHARD_AFFINE;
  void DeliverHints(ShardState& ss) HOTMAN_SHARD_AFFINE;
  void OnDetectorTransition(const std::string& endpoint, gossip::Liveness from,
                            gossip::Liveness to);

  // Rebalancing (long failure / node arrival). Shard 0.
  void ReplicateLocalData(bool purge_unowned);

  // Elastic-membership plumbing (shard 0).
  /// Builds the Rebalancer and registers its wire handlers.
  void SetupRebalancer();
  /// Streams the replica-aware diff `before` -> current ring: this node
  /// executes the plan steps it is the designated source for, then sweeps
  /// the arcs it streamed out.
  void StartPlannedTransfers(const hashring::Ring& before);
  /// Applies a vnode-weight change for `node` (autonomic trigger or a
  /// gossiped reweight) and streams the released arcs.
  void ApplyReweight(const std::string& node, int vnodes);
  void StartAutonomicTimer();
  void RunAutonomicCheck();

  /// The N distinct physical preference nodes for `key`, from `ss`'s
  /// membership view.
  std::vector<std::string> PreferenceNodes(const ShardState& ss,
                                           const std::string& key) const;

  NodeSpec spec_;
  ClusterConfig config_;
  std::string id_;
  net::Transport* transport_;
  sim::FailureInjector* injector_;
  net::Dispatcher dispatcher_;

  /// The shard runtime: injected (real daemon) or owned (simulation, where
  /// a non-threaded runtime over the node's transport is built here).
  std::unique_ptr<net::ShardedExecutor> owned_sharded_;
  net::ShardedExecutor* sharded_ = nullptr;

  hashring::Ring ring_;
  std::set<std::string> removed_nodes_;
  std::unique_ptr<docstore::DocStoreServer> server_;
  std::unique_ptr<sim::ServiceStation> station_;
  std::unique_ptr<gossip::Gossiper> gossiper_;
  std::unique_ptr<gossip::FailureDetector> detector_;

  std::vector<std::unique_ptr<ShardState>> shards_;

  bool running_ = false;
  Micros clock_skew_ = 0;
  net::TimerId ae_timer_ = 0;
  Rng ae_rng_{0x5eedae};

  std::unique_ptr<rebalance::Rebalancer> rebalancer_;
  bool decommissioning_ = false;
  bool decommissioned_ = false;
  net::TimerId autonomic_timer_ = 0;
  net::TimerId sweep_timer_ = 0;
  bool sweep_push_pending_ = false;
};

}  // namespace hotman::cluster

#endif  // HOTMAN_CLUSTER_STORAGE_NODE_H_
