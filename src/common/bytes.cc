#include "common/bytes.h"

#include <array>

namespace hotman {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

constexpr char kBase64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string HexEncode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string HexEncode(const Bytes& data) { return HexEncode(data.data(), data.size()); }

std::string HexEncode(std::string_view data) {
  return HexEncode(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

bool HexDecode(std::string_view hex, Bytes* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string Base64Encode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve((len + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= len; i += 3) {
    std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out.push_back(kBase64Digits[(n >> 18) & 63]);
    out.push_back(kBase64Digits[(n >> 12) & 63]);
    out.push_back(kBase64Digits[(n >> 6) & 63]);
    out.push_back(kBase64Digits[n & 63]);
  }
  std::size_t rem = len - i;
  if (rem == 1) {
    std::uint32_t n = data[i] << 16;
    out.push_back(kBase64Digits[(n >> 18) & 63]);
    out.push_back(kBase64Digits[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8);
    out.push_back(kBase64Digits[(n >> 18) & 63]);
    out.push_back(kBase64Digits[(n >> 12) & 63]);
    out.push_back(kBase64Digits[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string Base64Encode(const Bytes& data) {
  return Base64Encode(data.data(), data.size());
}

bool Base64Decode(std::string_view text, Bytes* out) {
  if (text.size() % 4 != 0) return false;
  out->clear();
  out->reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::array<int, 4> v{};
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // '=' is only valid in the final two positions of the final group.
        if (i + 4 != text.size() || j < 2) return false;
        v[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return false;  // data after padding
        v[j] = Base64Value(c);
        if (v[j] < 0) return false;
      }
    }
    std::uint32_t n = (v[0] << 18) | (v[1] << 12) | (v[2] << 6) | v[3];
    out->push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
    if (pad < 2) out->push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
    if (pad < 1) out->push_back(static_cast<std::uint8_t>(n & 0xFF));
  }
  return true;
}

Bytes ToBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

std::string ToString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void PutFixed32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutFixed64(std::string* out, std::uint64_t v) {
  PutFixed32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetFixed32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetFixed64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(GetFixed32(p)) |
         (static_cast<std::uint64_t>(GetFixed32(p + 4)) << 32);
}

}  // namespace hotman
