#ifndef HOTMAN_COMMON_BYTES_H_
#define HOTMAN_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hotman {

/// Raw byte payload (unstructured data entity stored in the `val` field).
using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of `data` ("deadbeef").
std::string HexEncode(const std::uint8_t* data, std::size_t len);
std::string HexEncode(const Bytes& data);
std::string HexEncode(std::string_view data);

/// Inverse of HexEncode; returns false on odd length or non-hex characters.
bool HexDecode(std::string_view hex, Bytes* out);

/// Standard base64 (RFC 4648) used when printing BSON BinData as JSON.
std::string Base64Encode(const std::uint8_t* data, std::size_t len);
std::string Base64Encode(const Bytes& data);

/// Inverse of Base64Encode; returns false on malformed input.
bool Base64Decode(std::string_view text, Bytes* out);

/// Converts a string to a byte vector (no copy avoidance; small helper).
Bytes ToBytes(std::string_view s);

/// Converts bytes to a std::string (binary-safe).
std::string ToString(const Bytes& b);

/// Appends a little-endian fixed-width integer to `out` (BSON wire order).
void PutFixed32(std::string* out, std::uint32_t v);
void PutFixed64(std::string* out, std::uint64_t v);

/// Reads a little-endian integer from `p` (caller guarantees bounds).
std::uint32_t GetFixed32(const std::uint8_t* p);
std::uint64_t GetFixed64(const std::uint8_t* p);

}  // namespace hotman

#endif  // HOTMAN_COMMON_BYTES_H_
