#include "common/clock.h"

#include <chrono>

namespace hotman {

Micros SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Default() {
  static SystemClock instance;
  return &instance;
}

}  // namespace hotman
