#ifndef HOTMAN_COMMON_CLOCK_H_
#define HOTMAN_COMMON_CLOCK_H_

#include <cstdint>

namespace hotman {

/// Microseconds since an arbitrary epoch. All timestamps in hotman use this
/// unit; the distributed experiments run on a virtual clock (sim::EventLoop)
/// while the embedded docstore can run on the real system clock.
using Micros = std::int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Time source abstraction so the same code runs under real time and under
/// the deterministic discrete-event simulator.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual Micros NowMicros() const = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  Micros NowMicros() const override;

  /// Process-wide instance (trivially destructible is not required for a
  /// function-local static reference per the style guide pattern).
  static SystemClock* Default();
};

/// Manually advanced clock for unit tests and as the simulator's time base.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_; }

  /// Moves time forward by `delta` microseconds (delta >= 0).
  void Advance(Micros delta) { now_ += delta; }

  /// Jumps directly to `t` (monotonicity is the caller's responsibility).
  void SetTime(Micros t) { now_ = t; }

 private:
  Micros now_;
};

}  // namespace hotman

#endif  // HOTMAN_COMMON_CLOCK_H_
