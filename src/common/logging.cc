#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hotman {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

// constinit: zero runtime initialization, so the mutex is usable from any
// static initializer and its (trivial) destruction cannot race exit-time
// logging. Serializes sink swaps against every emission.
constinit Mutex g_sink_mutex;

LogSink& SinkStorage() HOTMAN_REQUIRES(g_sink_mutex) {
  static LogSink sink;
  return sink;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetSink(LogSink sink) {
  MutexLock lock(&g_sink_mutex);
  SinkStorage() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Copy the sink under the mutex, emit outside it: holding a lock across
  // user code or a write(2) is exactly the blocking-under-lock shape the
  // hotman-transitive-blocking analysis flags, and a sink that logs
  // re-entrantly must not self-deadlock. The copy keeps a sink alive even
  // if SetSink swaps it out mid-line.
  LogSink sink;
  {
    MutexLock lock(&g_sink_mutex);
    sink = SinkStorage();
  }
  if (sink) {
    sink(level_, stream_.str());
  } else {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal

}  // namespace hotman
