#ifndef HOTMAN_COMMON_LOGGING_H_
#define HOTMAN_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace hotman {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Benchmarks set this
/// to kOff so log formatting never perturbs measurements.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives each formatted log line (no trailing newline). Called OUTSIDE
/// the sink mutex (each emission works on its own copy of the sink), so a
/// sink may log re-entrantly; concurrent emissions may interleave calls,
/// so sinks must be internally thread-safe.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Redirects log output (tests capture lines this way); nullptr restores
/// the default stderr sink. Safe to call while other threads are logging:
/// the swap holds the sink mutex, and in-flight lines finish against their
/// own copy of the previous sink.
void SetSink(LogSink sink);

namespace internal {

/// Stream-style log line; emits on destruction. Use via the HOTMAN_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: HOTMAN_LOG(kInfo) << "node " << id << " joined";
#define HOTMAN_LOG(severity)                                                     \
  if (::hotman::LogLevel::severity < ::hotman::GetLogLevel()) {                  \
  } else                                                                         \
    ::hotman::internal::LogMessage(::hotman::LogLevel::severity, __FILE__,       \
                                   __LINE__)                                     \
        .stream()

}  // namespace hotman

#endif  // HOTMAN_COMMON_LOGGING_H_
