#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hotman::metrics {

namespace {

/// Geometric bucket bounds: +1 steps at the bottom for exact small-value
/// resolution, then ×1.2 growth. Built once; lookups never allocate.
const std::array<Micros, Histogram::kNumBuckets>& Bounds() {
  static const std::array<Micros, Histogram::kNumBuckets> bounds = [] {
    std::array<Micros, Histogram::kNumBuckets> b{};
    Micros cur = 1;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      b[i] = cur;
      cur = std::max(cur + 1, cur + cur / 5);
    }
    return b;
  }();
  return bounds;
}

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string I64(std::int64_t v) { return std::to_string(v); }

}  // namespace

// --- Histogram ---------------------------------------------------------------

Micros Histogram::BucketUpperBound(std::size_t i) {
  return Bounds()[std::min(i, kNumBuckets - 1)];
}

std::size_t Histogram::BucketFor(Micros value) {
  const auto& bounds = Bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  if (it == bounds.end()) return kNumBuckets - 1;  // clamp the far tail
  return static_cast<std::size_t>(it - bounds.begin());
}

void Histogram::Record(Micros value) {
  if (value < 0) value = 0;
  ++buckets_[BucketFor(value)];
  sum_ += static_cast<std::uint64_t>(value);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  sum_ += other.sum_;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

Micros Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      // The bucket bound is an over-estimate of up to one bucket width;
      // the exact extrema tighten the edges.
      return std::clamp(Bounds()[i], min_, max_);
    }
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = Percentile(50);
  snap.p95 = Percentile(95);
  snap.p99 = Percentile(99);
  return snap;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"count\":" + std::to_string(count);
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.1f", Mean());
  out += ",\"mean_us\":";
  out += mean;
  out += ",\"min_us\":" + I64(min);
  out += ",\"p50_us\":" + I64(p50);
  out += ",\"p95_us\":" + I64(p95);
  out += ",\"p99_us\":" + I64(p99);
  out += ",\"max_us\":" + I64(max);
  out += "}";
  return out;
}

// --- TraceBuffer -------------------------------------------------------------

std::string TraceRecord::ToJson() const {
  std::string out = "{";
  out += "\"req\":" + std::to_string(req);
  out += std::string(",\"op\":\"") + (op == TraceOp::kPut ? "put" : "get") + "\"";
  out += ",\"key\":\"" + EscapeJson(key) + "\"";
  out += ",\"coordinator\":\"" + EscapeJson(coordinator) + "\"";
  out += ",\"replica\":\"" + EscapeJson(replica) + "\"";
  out += ",\"start_us\":" + I64(started_at);
  out += ",\"total_us\":" + I64(TotalMicros());
  out += ",\"queue_us\":" + I64(queue_micros);
  out += ",\"service_us\":" + I64(service_micros);
  out += ",\"network_us\":" + I64(network_micros);
  out += std::string(",\"ok\":") + (ok ? "true" : "false");
  out += "}";
  return out;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Add(TraceRecord record) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Once full, `next_` points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceBuffer::ToJson(std::size_t limit) const {
  std::vector<TraceRecord> all = Snapshot();
  const std::size_t start = all.size() > limit ? all.size() - limit : 0;
  std::string out = "[";
  for (std::size_t i = start; i < all.size(); ++i) {
    if (i > start) out += ",";
    out += all[i].ToJson();
  }
  out += "]";
  return out;
}

// --- Registry ----------------------------------------------------------------

Counter* Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out.append("\"").append(EscapeJson(name)).append("\":");
    out.append(std::to_string(counter->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out.append("\"").append(EscapeJson(name)).append("\":");
    out.append(std::to_string(gauge->value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    out.append("\"").append(EscapeJson(name)).append("\":");
    out.append(histogram->Snapshot().ToJson());
  }
  out += "}}";
  return out;
}

Registry* Registry::Default() {
  static Registry instance;
  return &instance;
}

}  // namespace hotman::metrics
