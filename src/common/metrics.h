#ifndef HOTMAN_COMMON_METRICS_H_
#define HOTMAN_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hotman::metrics {

/// Monotonic event counter (operations, bytes, faults).
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (queue depth, live nodes, in-flight requests).
class Gauge {
 public:
  void Set(std::int64_t value) { value_ = value; }
  void Add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Immutable view of a histogram at snapshot time. All values are in the
/// histogram's native unit (microseconds for every latency histogram).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  Micros min = 0;
  Micros max = 0;
  Micros p50 = 0;
  Micros p95 = 0;
  Micros p99 = 0;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// {"count":N,"mean_us":..,"min_us":..,"p50_us":..,"p95_us":..,
  ///  "p99_us":..,"max_us":..}
  std::string ToJson() const;
};

/// Fixed-bucket latency histogram: geometric bucket bounds covering
/// 1 us .. ~50 s at ~20% relative resolution. Recording is allocation-free
/// and O(log buckets); percentile extraction walks the bucket array at
/// snapshot time. min/max/sum/count are tracked exactly, so Mean() is exact
/// and percentiles are exact at the distribution's edges.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 100;

  Histogram() = default;

  /// Records one sample (negative samples are clamped to zero).
  void Record(Micros value);

  /// Adds every sample of `other` into this histogram (cluster-wide
  /// aggregation). Percentiles of the merge are bucket-resolution accurate.
  void MergeFrom(const Histogram& other);

  HistogramSnapshot Snapshot() const;

  std::uint64_t count() const { return count_; }
  Micros Percentile(double p) const;  ///< p in [0, 100]
  void Reset();

  /// Inclusive upper bound of bucket `i` (exposed for tests).
  static Micros BucketUpperBound(std::size_t i);

 private:
  static std::size_t BucketFor(Micros value);

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  Micros min_ = 0;
  Micros max_ = 0;
};

/// Operation kind of a trace record.
enum class TraceOp : std::uint8_t { kPut, kGet };

/// One coordinated request's lifecycle, decomposed with the sim clock:
/// coordinator enqueue (started_at) -> replica service -> decisive ack
/// (finished_at). queue/service come from the replica's ServiceStation and
/// ride back on the ack; network is everything else (two wire hops plus
/// coordinator-side waiting for the quorum).
struct TraceRecord {
  std::uint64_t req = 0;
  TraceOp op = TraceOp::kPut;
  std::string key;
  std::string coordinator;
  std::string replica;  ///< the replica whose ack decided the outcome
  Micros started_at = 0;
  Micros finished_at = 0;
  Micros queue_micros = 0;    ///< replica-side queue wait
  Micros service_micros = 0;  ///< replica-side service time
  Micros network_micros = 0;  ///< total - queue - service
  bool ok = false;

  Micros TotalMicros() const { return finished_at - started_at; }
  std::string ToJson() const;
};

/// Fixed-capacity ring of the most recent trace records. Adding never
/// allocates once the ring is full; older records are overwritten.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 256);

  void Add(TraceRecord record);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_added() const { return total_; }

  /// Retained records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  /// JSON array of the newest `limit` records (oldest of those first).
  std::string ToJson(std::size_t limit = 32) const;

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;  ///< overwrite cursor once full
  std::uint64_t total_ = 0;
};

/// Named metric registry. Metric objects are owned by the registry and
/// their addresses are stable for its lifetime, so hot paths look a metric
/// up once and keep the pointer. ToJson() renders a deterministic (sorted
/// by name) snapshot of everything registered — the payload of the /stats
/// endpoint and of bench JSON artifacts.
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  std::string ToJson() const;

  /// Process-wide default instance (for components with no injection path).
  static Registry* Default();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hotman::metrics

#endif  // HOTMAN_COMMON_METRICS_H_
