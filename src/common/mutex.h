#ifndef HOTMAN_COMMON_MUTEX_H_
#define HOTMAN_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace hotman {

/// std::mutex wrapped as an annotated capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
/// -Wthread-safety cannot check code that locks it directly. Every class in
/// the threaded layers (docstore/, rest/, workload/, common/) declares its
/// lock as hotman::Mutex and takes it with hotman::MutexLock, which makes
/// HOTMAN_GUARDED_BY / HOTMAN_REQUIRES contracts compiler-enforced.
class HOTMAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HOTMAN_ACQUIRE() { mu_.lock(); }
  void Unlock() HOTMAN_RELEASE() { mu_.unlock(); }
  bool TryLock() HOTMAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for hotman::Mutex (std::lock_guard shape, annotated).
class HOTMAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HOTMAN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HOTMAN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace hotman

#endif  // HOTMAN_COMMON_MUTEX_H_
