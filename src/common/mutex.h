#ifndef HOTMAN_COMMON_MUTEX_H_
#define HOTMAN_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hotman {

/// std::mutex wrapped as an annotated capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
/// -Wthread-safety cannot check code that locks it directly. Every class in
/// the threaded layers (docstore/, rest/, workload/, common/) declares its
/// lock as hotman::Mutex and takes it with hotman::MutexLock, which makes
/// HOTMAN_GUARDED_BY / HOTMAN_REQUIRES contracts compiler-enforced.
class HOTMAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HOTMAN_ACQUIRE() { mu_.lock(); }
  void Unlock() HOTMAN_RELEASE() { mu_.unlock(); }
  bool TryLock() HOTMAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for hotman::Mutex (std::lock_guard shape, annotated).
class HOTMAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HOTMAN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HOTMAN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// std::shared_mutex wrapped as an annotated reader-writer capability.
///
/// Read-mostly classes (Collection, Journal stats, ConnectionPool counters)
/// declare their lock as SharedMutex so const accessors can run concurrently
/// under LockShared while mutations still serialize under Lock. Writer
/// progress under sustained reader load is the platform's policy (glibc
/// pthread_rwlock prefers readers by default), so hot write paths should not
/// assume FIFO fairness.
class HOTMAN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() HOTMAN_ACQUIRE() { mu_.lock(); }
  void Unlock() HOTMAN_RELEASE() { mu_.unlock(); }
  bool TryLock() HOTMAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() HOTMAN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() HOTMAN_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() HOTMAN_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock for hotman::SharedMutex.
class HOTMAN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) HOTMAN_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() HOTMAN_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock for hotman::SharedMutex.
class HOTMAN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) HOTMAN_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  // Scoped capabilities use the generic release form in their destructor:
  // the analysis pairs it with whichever mode the constructor acquired.
  ~ReaderMutexLock() HOTMAN_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace hotman

#endif  // HOTMAN_COMMON_MUTEX_H_
