#include "common/random.h"

#include <cmath>

namespace hotman {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformRange(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace hotman
