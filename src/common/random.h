#ifndef HOTMAN_COMMON_RANDOM_H_
#define HOTMAN_COMMON_RANDOM_H_

#include <cstdint>

namespace hotman {

/// Deterministic pseudo-random generator (xoshiro256**, SplitMix64-seeded).
///
/// Every experiment in this repository runs from a fixed seed so that each
/// figure is reproducible bit-for-bit; std::mt19937 is avoided because its
/// distributions are not specified identically across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  std::uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t Uniform(std::uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p);

  /// Standard normal via Box-Muller (no cached second value: deterministic
  /// call count keeps interleaved streams reproducible).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double NextExponential(double mean);

  /// Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace hotman

#endif  // HOTMAN_COMMON_RANDOM_H_
