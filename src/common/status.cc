#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace hotman {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kNetworkError:
      return "NetworkError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotConnected:
      return "NotConnected";
    case Status::Code::kQuorumFailed:
      return "QuorumFailed";
    case Status::Code::kUnauthorized:
      return "Unauthorized";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace hotman
