#ifndef HOTMAN_COMMON_STATUS_H_
#define HOTMAN_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hotman {

/// Outcome of an operation that can fail without exceptional control flow.
///
/// hotman never throws on hot paths; every fallible operation returns a
/// `Status` (or a `Result<T>`, see below). The set of codes mirrors what the
/// storage stack actually needs: local engine errors (NotFound, Corruption,
/// IOError), distributed-layer errors (Timeout, Unavailable, NetworkError,
/// QuorumFailed) and interface errors (InvalidArgument, Unauthorized).
class [[nodiscard]] Status {
 public:
  /// Error category. `kOk` is the unique success value.
  enum class Code : std::uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kTimeout = 5,
    kUnavailable = 6,
    kNetworkError = 7,
    kBusy = 8,
    kAlreadyExists = 9,
    kNotConnected = 10,
    kQuorumFailed = 11,
    kUnauthorized = 12,
    kNotSupported = 13,
    kAborted = 14,
  };

  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers; prefer these over the raw constructor.
  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") { return Status(Code::kNotFound, msg); }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") { return Status(Code::kIOError, msg); }
  static Status Timeout(std::string_view msg = "") { return Status(Code::kTimeout, msg); }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }
  static Status NetworkError(std::string_view msg = "") {
    return Status(Code::kNetworkError, msg);
  }
  static Status Busy(std::string_view msg = "") { return Status(Code::kBusy, msg); }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status NotConnected(std::string_view msg = "") {
    return Status(Code::kNotConnected, msg);
  }
  static Status QuorumFailed(std::string_view msg = "") {
    return Status(Code::kQuorumFailed, msg);
  }
  static Status Unauthorized(std::string_view msg = "") {
    return Status(Code::kUnauthorized, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg = "") { return Status(Code::kAborted, msg); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsNetworkError() const { return code_ == Code::kNetworkError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotConnected() const { return code_ == Code::kNotConnected; }
  bool IsQuorumFailed() const { return code_ == Code::kQuorumFailed; }
  bool IsUnauthorized() const { return code_ == Code::kUnauthorized; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, e.g. "NotFound: key x".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value-or-error holder: either a `T` (status().ok()) or a failed Status.
///
/// Accessing the value of an error Result is a programming bug and aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: allows `return value;` from Result-returning code.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status: allows `return Status::NotFound();`.
  Result(Status status) : status_(std::move(status)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (value_.has_value()) return *value_;
    return fallback;
  }

 private:
  void CheckHasValue() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts the process with `what` (used by Result on misuse).
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckHasValue() const {
  if (!value_.has_value()) internal::DieBadResultAccess(status_);
}

/// Propagates errors to the caller, RocksDB/absl style:
///   HOTMAN_RETURN_IF_ERROR(DoThing());
#define HOTMAN_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::hotman::Status _hotman_status = (expr);         \
    if (!_hotman_status.ok()) return _hotman_status;  \
  } while (0)

}  // namespace hotman

#endif  // HOTMAN_COMMON_STATUS_H_
