#ifndef HOTMAN_COMMON_THREAD_ANNOTATIONS_H_
#define HOTMAN_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety).
///
/// These make lock contracts machine-checked: a member guarded with
/// HOTMAN_GUARDED_BY(mu_) cannot be touched without holding mu_, and a
/// method marked HOTMAN_REQUIRES(mu_) cannot be called without it. Under
/// GCC (which lacks the analysis) every macro expands to nothing, so the
/// annotations are pure documentation there and contracts are enforced by
/// the clang-tidy/thread-safety CI job instead.
///
/// Concurrency model (see DESIGN.md "Concurrency model"):
///  - docstore/, rest/, workload/ and common/ may use real threads and must
///    annotate every mutex-protected class with these macros;
///  - sim/, cluster/ and gossip/ are deterministic single-threaded
///    event-loop code and must not use mutexes or threads at all
///    (enforced by tools/lint_hotman.py).

#if defined(__clang__) && (!defined(SWIG))
#define HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a type as a lockable capability (std::mutex already is one).
#define HOTMAN_CAPABILITY(x) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Data member readable/writable only while holding the given mutex.
#define HOTMAN_GUARDED_BY(x) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define HOTMAN_PT_GUARDED_BY(x) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held.
#define HOTMAN_REQUIRES(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that must be called with at least shared (reader) access to the
/// given mutex(es); exclusive access satisfies it too.
#define HOTMAN_REQUIRES_SHARED(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) NOT held
/// (it acquires them itself; calling under the lock would deadlock).
#define HOTMAN_EXCLUDES(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function that acquires the given mutex(es) and does not release them.
#define HOTMAN_ACQUIRE(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that acquires shared (reader) access and does not release it.
#define HOTMAN_ACQUIRE_SHARED(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function that releases mutex(es) acquired earlier.
#define HOTMAN_RELEASE(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that releases shared (reader) access acquired earlier.
#define HOTMAN_RELEASE_SHARED(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function that acquires the mutex only when it returns `value`.
#define HOTMAN_TRY_ACQUIRE(value, ...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(value, __VA_ARGS__))

/// Function that acquires shared access only when it returns `value`.
#define HOTMAN_TRY_ACQUIRE_SHARED(value, ...)     \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(             \
      try_acquire_shared_capability(value, __VA_ARGS__))

/// RAII type that acquires in its constructor and releases in its
/// destructor (std::lock_guard / std::scoped_lock shape).
#define HOTMAN_SCOPED_CAPABILITY \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares a global lock order: this mutex must be acquired before the
/// listed ones. tools/analyze/hotman_analyze.py folds these edges into its
/// lock-order graph and reports any cycle (potential deadlock).
#define HOTMAN_ACQUIRED_BEFORE(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

/// Declares a global lock order: this mutex must be acquired after the
/// listed ones (the mirror of HOTMAN_ACQUIRED_BEFORE).
#define HOTMAN_ACQUIRED_AFTER(...) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function whose lock usage is deliberately invisible to the analysis
/// (use sparingly; every use needs a comment saying why).
#define HOTMAN_NO_THREAD_SAFETY_ANALYSIS \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Function returning a reference to the mutex that guards its class.
#define HOTMAN_RETURN_CAPABILITY(x) \
  HOTMAN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Marks a function as *shard-affine*: it touches state owned by one shard
/// of a sharded component (net::ShardedExecutor) and must only run in that
/// shard's execution context. The compiler cannot check this (the
/// capability is a thread identity, not a lock), so the contract is
/// enforced by tools/analyze/hotman_analyze.py's `shard-affinity` pass: a
/// call from non-affine code into an affine function is flagged unless the
/// call site sits inside a routing closure (an argument of Post / PostSync
/// / RunOnShard / ScheduleTimer). Expands to nothing for the compiler.
#define HOTMAN_SHARD_AFFINE

#endif  // HOTMAN_COMMON_THREAD_ANNOTATIONS_H_
