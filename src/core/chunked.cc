#include "core/chunked.h"

#include <algorithm>

#include "bson/codec.h"

namespace hotman::core {

namespace {

/// Manifests are marked with a magic prefix so IsChunked can distinguish
/// them from raw values that merely look structured.
constexpr char kManifestMagic[] = "hotman.manifest.v1";

}  // namespace

ChunkedStore::ChunkedStore(MyStore* store, Options options)
    : store_(store), options_(options) {
  if (options_.segment_bytes == 0) options_.segment_bytes = 512 * 1024;
}

std::string ChunkedStore::SegmentKey(const std::string& key, std::size_t index) {
  return key + "#" + std::to_string(index);
}

Bytes ChunkedStore::EncodeManifest(const Manifest& manifest) {
  bson::Document doc;
  doc.Append("magic", bson::Value(kManifestMagic));
  doc.Append("total", bson::Value(static_cast<std::int64_t>(manifest.total_bytes)));
  doc.Append("segment",
             bson::Value(static_cast<std::int64_t>(manifest.segment_bytes)));
  doc.Append("count",
             bson::Value(static_cast<std::int64_t>(manifest.num_segments)));
  return ToBytes(bson::EncodeToString(doc));
}

Result<ChunkedStore::Manifest> ChunkedStore::DecodeManifest(const Bytes& bytes) {
  bson::Document doc;
  HOTMAN_RETURN_IF_ERROR(bson::Decode(ToString(bytes), &doc));
  const bson::Value* magic = doc.Get("magic");
  if (magic == nullptr || !magic->is_string() ||
      magic->as_string() != kManifestMagic) {
    return Status::InvalidArgument("not a chunked-object manifest");
  }
  const bson::Value* total = doc.Get("total");
  const bson::Value* segment = doc.Get("segment");
  const bson::Value* count = doc.Get("count");
  if (total == nullptr || !total->is_int64() || segment == nullptr ||
      !segment->is_int64() || count == nullptr || !count->is_int64()) {
    return Status::Corruption("malformed manifest");
  }
  Manifest manifest;
  manifest.total_bytes = static_cast<std::size_t>(total->as_int64());
  manifest.segment_bytes = static_cast<std::size_t>(segment->as_int64());
  manifest.num_segments = static_cast<std::size_t>(count->as_int64());
  if (manifest.segment_bytes == 0) {
    return Status::Corruption("inconsistent manifest geometry");
  }
  const std::size_t expected_segments =
      manifest.total_bytes == 0
          ? 1  // empty objects still carry one (empty) segment
          : (manifest.total_bytes + manifest.segment_bytes - 1) /
                manifest.segment_bytes;
  if (manifest.num_segments != expected_segments) {
    return Status::Corruption("inconsistent manifest geometry");
  }
  return manifest;
}

Status ChunkedStore::Put(const std::string& key, const Bytes& value) {
  Manifest manifest;
  manifest.total_bytes = value.size();
  manifest.segment_bytes = options_.segment_bytes;
  manifest.num_segments =
      (value.size() + options_.segment_bytes - 1) / options_.segment_bytes;
  if (manifest.num_segments == 0) manifest.num_segments = 1;  // empty object

  // Segments first, manifest last: a reader never sees a manifest whose
  // segments are missing.
  std::size_t written = 0;
  Status failure = Status::OK();
  for (std::size_t i = 0; i < manifest.num_segments; ++i) {
    const std::size_t begin = i * options_.segment_bytes;
    const std::size_t end = std::min(value.size(), begin + options_.segment_bytes);
    Bytes segment(value.begin() + begin, value.begin() + end);
    failure = store_->Post(SegmentKey(key, i), std::move(segment));
    if (!failure.ok()) break;
    ++written;
  }
  if (!failure.ok()) {
    // Roll back what we managed to write (logical deletes; best effort).
    for (std::size_t i = 0; i < written; ++i) {
      Status s = store_->Delete(SegmentKey(key, i));
      (void)s;
    }
    return failure;
  }
  return store_->Post(key, EncodeManifest(manifest));
}

Result<ChunkedStore::Manifest> ChunkedStore::GetManifest(const std::string& key) {
  auto raw = store_->Get(key);
  if (!raw.ok()) return raw.status();
  return DecodeManifest(*raw);
}

bool ChunkedStore::IsChunked(const std::string& key) {
  return GetManifest(key).ok();
}

Result<Bytes> ChunkedStore::GetSegment(const std::string& key, std::size_t index) {
  auto manifest = GetManifest(key);
  if (!manifest.ok()) return manifest.status();
  if (index >= manifest->num_segments) {
    return Status::InvalidArgument("segment index out of range");
  }
  return store_->Get(SegmentKey(key, index));
}

Result<Bytes> ChunkedStore::Get(const std::string& key) {
  auto manifest = GetManifest(key);
  if (!manifest.ok()) return manifest.status();
  Bytes value;
  value.reserve(manifest->total_bytes);
  for (std::size_t i = 0; i < manifest->num_segments; ++i) {
    auto segment = store_->Get(SegmentKey(key, i));
    if (!segment.ok()) {
      if (segment.status().IsNotFound()) {
        return Status::Corruption("segment " + std::to_string(i) +
                                  " missing for chunked object " + key);
      }
      return segment.status();
    }
    value.insert(value.end(), segment->begin(), segment->end());
  }
  if (value.size() != manifest->total_bytes) {
    return Status::Corruption("reassembled size mismatch for " + key);
  }
  return value;
}

Status ChunkedStore::Delete(const std::string& key) {
  auto manifest = GetManifest(key);
  if (!manifest.ok()) return manifest.status();
  // Manifest first: readers immediately stop seeing the object, then the
  // segments become unreachable garbage that the tombstones cover.
  HOTMAN_RETURN_IF_ERROR(store_->Delete(key));
  for (std::size_t i = 0; i < manifest->num_segments; ++i) {
    Status s = store_->Delete(SegmentKey(key, i));
    (void)s;  // best effort; unreferenced segments are harmless
  }
  return Status::OK();
}

}  // namespace hotman::core
