#ifndef HOTMAN_CORE_CHUNKED_H_
#define HOTMAN_CORE_CHUNKED_H_

#include <string>
#include <vector>

#include "core/mystore.h"

namespace hotman::core {

/// Segmented large-object storage — the paper's future work: "More
/// attentions also will be paid to the segmentation, storage and schedule
/// of large video files."
///
/// A large value is split into fixed-size segments, each stored as its own
/// record under a derived key ("<key>#<index>"), plus a manifest record
/// under the original key describing the segmentation. Segments spread
/// across the ring independently (each segment key hashes to its own
/// preference list), so a 100 MB video is served by the whole cluster
/// rather than one unlucky replica set, and reads can be scheduled
/// segment-by-segment (streaming) or up-front (prefetch).
/// Segmentation parameters for ChunkedStore.
struct ChunkedOptions {
  std::size_t segment_bytes = 512 * 1024;  ///< segment size (512 KB)
};

class ChunkedStore {
 public:
  using Options = ChunkedOptions;

  /// Manifest of a stored object.
  struct Manifest {
    std::size_t total_bytes = 0;
    std::size_t segment_bytes = 0;
    std::size_t num_segments = 0;
  };

  ChunkedStore(MyStore* store, Options options = Options());

  /// Splits `value` into segments and stores manifest + segments. The write
  /// succeeds only if the manifest and every segment reach their quorums;
  /// on partial failure the already-written segments are deleted.
  Status Put(const std::string& key, const Bytes& value);

  /// Reassembles the object: manifest, then every segment in order.
  Result<Bytes> Get(const std::string& key);

  /// Reads one segment (the "schedule" building block for streaming: a
  /// player fetches segment i while playing segment i-1).
  Result<Bytes> GetSegment(const std::string& key, std::size_t index);

  /// Manifest lookup without touching the payload.
  Result<Manifest> GetManifest(const std::string& key);

  /// Deletes manifest and all segments (logical deletes).
  Status Delete(const std::string& key);

  /// True when `key` holds a chunked object (a manifest, not raw bytes).
  bool IsChunked(const std::string& key);

  const Options& options() const { return options_; }

  /// Key of segment `index` for object `key`.
  static std::string SegmentKey(const std::string& key, std::size_t index);

 private:
  static Bytes EncodeManifest(const Manifest& manifest);
  static Result<Manifest> DecodeManifest(const Bytes& bytes);

  MyStore* store_;
  Options options_;
};

}  // namespace hotman::core

#endif  // HOTMAN_CORE_CHUNKED_H_
