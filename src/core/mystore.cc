#include "core/mystore.h"

#include <cstdio>

#include "common/metrics.h"
#include "rest/signature.h"

namespace hotman::core {

namespace {

/// Client operations between pin-set refreshes. Small enough that a flash
/// crowd gets pinned within a beat of ramping; large enough that the
/// refresh scan stays off the per-op path.
constexpr std::uint64_t kHeatRefreshOps = 128;

}  // namespace

MyStore::MyStore(MyStoreConfig config)
    : config_(std::move(config)), front_heat_(config_.cache_heat) {
  cluster_ = std::make_unique<cluster::Cluster>(config_.cluster, config_.seed,
                                                config_.failures);
  cache_ = std::make_unique<cache::CachePool>(config_.cache_servers,
                                              config_.cache_bytes_per_server);
  tokens_ = std::make_unique<rest::TokenDb>(cluster_->loop()->clock());
  router_ = std::make_unique<rest::Router>(
      config_.rest_workers, [this](int worker, const rest::Request& request) {
        return HandleOnWorker(worker, request);
      });
  key_generator_ = std::make_unique<bson::ObjectIdGenerator>(
      0xFACADEull, cluster_->loop()->clock());
}

MyStore::~MyStore() = default;

Status MyStore::Start() { return cluster_->Start(); }

void MyStore::NoteHeat(const std::string& key) {
  front_heat_.Record(key, cluster_->loop()->Now());
  if (++heat_ops_since_refresh_ >= kHeatRefreshOps) {
    heat_ops_since_refresh_ = 0;
    RefreshHotPins();
  }
}

void MyStore::RefreshHotPins() {
  const Micros now = cluster_->loop()->Now();
  // Unpin first: a pinned key that cooled down — or decayed out of the
  // sketch entirely — loses its pin here, so decay bounds every pin's
  // lifetime and a flash crowd cannot leak pinned bytes forever.
  for (auto it = pinned_keys_.begin(); it != pinned_keys_.end();) {
    if (!front_heat_.IsHot(*it, now)) {
      cache_->Unpin(*it);
      it = pinned_keys_.erase(it);
    } else {
      ++it;
    }
  }
  for (const cluster::HeatEntry& entry : front_heat_.Snapshot(now).top) {
    if (!front_heat_.IsHot(entry.key, now)) continue;
    if (cache_->Pin(entry.key)) pinned_keys_.insert(entry.key);
  }
}

void MyStore::MaybePinHot(const std::string& key) {
  if (!front_heat_.IsHot(key, cluster_->loop()->Now())) return;
  if (cache_->Pin(key)) pinned_keys_.insert(key);
}

void MyStore::GetAsync(const std::string& key, GetCb cb) {
  NoteHeat(key);
  Bytes cached;
  if (cache_->Get(key, &cached)) {
    cb(std::move(cached));
    return;
  }
  cluster_->Get(key, [this, key, cb = std::move(cb)](
                         const Result<bson::Document>& record) {
    if (!record.ok()) {
      cb(record.status());
      return;
    }
    if (RecordIsDeleted(*record)) {
      cb(Status::NotFound("key deleted: " + key));
      return;
    }
    Bytes value = RecordValue(*record);
    cache_->Put(key, value);  // read-through insert
    MaybePinHot(key);         // admission bias: hot keys stick immediately
    cb(std::move(value));
  });
}

void MyStore::PostAsync(const std::string& key, Bytes value, MutateCb cb) {
  NoteHeat(key);
  cluster_->Put(key, value, [this, key, value, cb = std::move(cb)](const Status& s) {
    if (s.ok()) {
      cache_->Put(key, value);  // write-through on success
      MaybePinHot(key);
    }
    cb(s);
  });
}

void MyStore::DeleteAsync(const std::string& key, MutateCb cb) {
  NoteHeat(key);
  cache_->Erase(key);
  pinned_keys_.erase(key);
  cluster_->Delete(key, std::move(cb));
}

Result<Bytes> MyStore::Get(const std::string& key) {
  NoteHeat(key);
  Bytes cached;
  if (cache_->Get(key, &cached)) return cached;
  auto value = cluster_->GetSync(key);
  if (value.ok()) {
    cache_->Put(key, *value);
    MaybePinHot(key);
  }
  return value;
}

Status MyStore::Post(const std::string& key, Bytes value) {
  NoteHeat(key);
  Status s = cluster_->PutSync(key, value);
  if (s.ok()) {
    cache_->Put(key, std::move(value));
    MaybePinHot(key);
  }
  return s;
}

Result<std::string> MyStore::PostNew(Bytes value) {
  const std::string key = key_generator_->Next().ToHex();
  HOTMAN_RETURN_IF_ERROR(Post(key, std::move(value)));
  return key;
}

Status MyStore::Delete(const std::string& key) {
  NoteHeat(key);
  cache_->Erase(key);
  pinned_keys_.erase(key);
  return cluster_->DeleteSync(key);
}

rest::Response MyStore::Handle(const rest::Request& request) {
  return router_->Dispatch(request);
}

rest::Response MyStore::HandleSigned(const std::string& user,
                                     const rest::Request& request) {
  rest::Response response;
  auto token_it = request.query.find("token");
  auto sig_it = request.query.find("signature");
  if (token_it == request.query.end() || sig_it == request.query.end()) {
    response.code = rest::StatusCode::kUnauthorized;
    response.error = "missing token/signature";
    return response;
  }
  auto secret = tokens_->SecretKeyOf(user);
  if (!secret.ok()) {
    response.code = rest::StatusCode::kUnauthorized;
    response.error = secret.status().ToString();
    return response;
  }
  // The signature covers the URI *without* the auth parameters.
  rest::Request unsigned_request = request;
  unsigned_request.query.erase("token");
  unsigned_request.query.erase("signature");
  if (!rest::VerifySignature(token_it->second, unsigned_request.Uri(), *secret,
                             sig_it->second)) {
    response.code = rest::StatusCode::kUnauthorized;
    response.error = "bad signature";
    return response;
  }
  Status consumed = tokens_->ConsumeToken(user, token_it->second);
  if (!consumed.ok()) {
    response.code = rest::StatusCode::kUnauthorized;
    response.error = consumed.ToString();
    return response;
  }
  return Handle(unsigned_request);
}

std::string MyStore::StatsJson() {
  std::string out = "{\"cluster\":" + cluster_->StatsJson();
  out += ",\"cache\":{\"servers\":" + std::to_string(cache_->num_servers());
  out += ",\"hits\":" + std::to_string(cache_->TotalHits());
  out += ",\"misses\":" + std::to_string(cache_->TotalMisses());
  out += ",\"pinned\":" + std::to_string(cache_->TotalPinned());
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f", cache_->HitRate());
  out += ",\"hit_rate\":";
  out += rate;
  out += "}";
  out += ",\"router\":" + router_->StatsJson();
  out += ",\"traces\":[";
  bool first = true;
  for (const metrics::TraceRecord& trace : cluster_->RecentTraces()) {
    if (!first) out += ',';
    first = false;
    out += trace.ToJson();
  }
  out += "]}";
  return out;
}

rest::Response MyStore::HandleOnWorker(int /*worker*/, const rest::Request& request) {
  rest::Response response;
  // Observability endpoint: a reserved path, not a data resource.
  if (request.method == rest::Method::kGet && request.path == "/stats") {
    response.code = rest::StatusCode::kOk;
    response.body = ToBytes(StatsJson());
    return response;
  }
  const std::string key = request.ResourceKey();
  switch (request.method) {
    case rest::Method::kGet: {
      if (key.empty()) {
        response.code = rest::StatusCode::kBadRequest;
        response.error = "GET requires a key";
        return response;
      }
      auto value = Get(key);
      if (!value.ok()) {
        response.code = value.status().IsNotFound()
                            ? rest::StatusCode::kNotFound
                            : rest::StatusCode::kServiceUnavailable;
        response.error = value.status().ToString();
        return response;
      }
      response.code = rest::StatusCode::kOk;
      response.body = std::move(*value);
      return response;
    }
    case rest::Method::kPost: {
      if (key.empty() || key == "data") {
        auto new_key = PostNew(request.body);
        if (!new_key.ok()) {
          response.code = rest::StatusCode::kServiceUnavailable;
          response.error = new_key.status().ToString();
          return response;
        }
        response.code = rest::StatusCode::kCreated;
        response.body = ToBytes(*new_key);
        return response;
      }
      Status s = Post(key, request.body);
      if (!s.ok()) {
        response.code = rest::StatusCode::kServiceUnavailable;
        response.error = s.ToString();
        return response;
      }
      response.code = rest::StatusCode::kOk;
      return response;
    }
    case rest::Method::kDelete: {
      if (key.empty()) {
        response.code = rest::StatusCode::kBadRequest;
        response.error = "DELETE must have a key";
        return response;
      }
      Status s = Delete(key);
      if (!s.ok() && !s.IsNotFound()) {
        response.code = rest::StatusCode::kServiceUnavailable;
        response.error = s.ToString();
        return response;
      }
      response.code = rest::StatusCode::kNoContent;
      return response;
    }
  }
  response.code = rest::StatusCode::kBadRequest;
  return response;
}

}  // namespace hotman::core
