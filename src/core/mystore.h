#ifndef HOTMAN_CORE_MYSTORE_H_
#define HOTMAN_CORE_MYSTORE_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/cache_pool.h"
#include "cluster/cluster.h"
#include "cluster/heat_tracker.h"
#include "core/record.h"
#include "rest/request.h"
#include "rest/router.h"
#include "rest/token_db.h"

namespace hotman::core {

/// Top-level configuration: the four modules of Fig. 1.
struct MyStoreConfig {
  cluster::ClusterConfig cluster = cluster::ClusterConfig::PaperSetup();
  sim::FailureConfig failures = sim::FailureConfig::None();

  int cache_servers = 4;                                ///< §6.1 deployment
  std::size_t cache_bytes_per_server = std::size_t{1} << 30;  ///< 1 GB each
  int rest_workers = 8;     ///< spawn-fcgi logical processes
  bool require_auth = false;  ///< enable URI-signature checks on Handle()

  /// Front-side heat tracking over client keys: hot keys get pinned in the
  /// cache pool (and unpinned again once their heat decays), so a flash
  /// crowd cannot have its one working-set entry evicted by cold churn.
  cluster::HeatConfig cache_heat;

  std::uint64_t seed = 42;
};

/// The MyStore system: user interface (RESTful), distribution module
/// (round-robin router), cache module (key-hash-balanced LRU servers) and
/// the data storage module (the NWR cluster over the embedded document
/// store).
class MyStore {
 public:
  explicit MyStore(MyStoreConfig config);
  ~MyStore();

  MyStore(const MyStore&) = delete;
  MyStore& operator=(const MyStore&) = delete;

  /// Boots the storage cluster; must be called before any operation.
  Status Start();

  // --- native asynchronous API (workload drivers) ---------------------------

  using GetCb = std::function<void(const Result<Bytes>&)>;
  using MutateCb = std::function<void(const Status&)>;

  /// GET: "locates unstructured data with the key in cache or database (if
  /// it gets a cache miss, it will switch to database and the returned
  /// value will be inserted to cache)."
  void GetAsync(const std::string& key, GetCb cb);

  /// POST with key: "the data item in cache and database will be updated."
  void PostAsync(const std::string& key, Bytes value, MutateCb cb);

  /// DELETE: "the item with this key will be deleted from cache and set to
  /// be unavailable in database" (logical isDel tombstone).
  void DeleteAsync(const std::string& key, MutateCb cb);

  // --- blocking convenience (examples / tests) -------------------------------

  Result<Bytes> Get(const std::string& key);
  Status Post(const std::string& key, Bytes value);
  /// POST without key: "it will create a new item in database and return a
  /// key value to user; this key will be set to cache."
  Result<std::string> PostNew(Bytes value);
  Status Delete(const std::string& key);

  // --- REST surface -----------------------------------------------------------

  /// Dispatches a request through the distribution module. When
  /// `require_auth` is set, requests must carry valid token+signature query
  /// parameters for `user` (see HandleSigned).
  rest::Response Handle(const rest::Request& request);

  /// Authenticated dispatch: validates the Fig. 2 URI signature for `user`
  /// before handling.
  rest::Response HandleSigned(const std::string& user, const rest::Request& request);

  /// Whole-system observability snapshot, also served at `GET /stats`:
  ///   {"cluster":{counters,gauges,histograms},"cache":{...},
  ///    "router":{...},"traces":[...]}
  std::string StatsJson();

  // --- module access -----------------------------------------------------------

  cluster::Cluster* storage() { return cluster_.get(); }
  cache::CachePool* cache_pool() { return cache_.get(); }
  /// Keys currently pinned in the cache pool by the heat tracker (sorted).
  std::vector<std::string> HotPinnedKeys() const {
    return {pinned_keys_.begin(), pinned_keys_.end()};
  }
  const cluster::HeatTracker& front_heat() const { return front_heat_; }
  rest::TokenDb* token_db() { return tokens_.get(); }
  rest::Router* router() { return router_.get(); }
  const MyStoreConfig& config() const { return config_; }

  /// Runs the simulated cluster for `duration` (time passes only when
  /// someone pumps the loop).
  void RunFor(Micros duration) { cluster_->RunFor(duration); }

 private:
  rest::Response HandleOnWorker(int worker, const rest::Request& request);

  /// Counts one client operation on `key` against the front-side heat
  /// sketch; every kHeatRefreshOps operations the pin set is refreshed.
  void NoteHeat(const std::string& key);
  /// Re-derives the pin set from the sketch: keys that cooled (or decayed
  /// out entirely) are unpinned, currently-hot cached keys are pinned.
  void RefreshHotPins();
  /// Admission bias: pins `key` immediately when the sketch already flags
  /// it hot (called right after a cache insert).
  void MaybePinHot(const std::string& key);

  MyStoreConfig config_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cache::CachePool> cache_;
  std::unique_ptr<rest::TokenDb> tokens_;
  std::unique_ptr<rest::Router> router_;
  std::unique_ptr<bson::ObjectIdGenerator> key_generator_;

  cluster::HeatTracker front_heat_;
  std::set<std::string> pinned_keys_;
  std::uint64_t heat_ops_since_refresh_ = 0;
};

}  // namespace hotman::core

#endif  // HOTMAN_CORE_MYSTORE_H_
