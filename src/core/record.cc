#include "core/record.h"

#include <cstdio>
#include <cstdlib>

namespace hotman::core {

namespace {

const bson::Value* RequireField(const bson::Document& record, const char* name) {
  const bson::Value* v = record.Get(name);
  if (v == nullptr) {
    std::fprintf(stderr, "record missing required field %s\n", name);
    std::abort();
  }
  return v;
}

}  // namespace

bson::Document MakeRecord(const bson::ObjectId& id, std::string_view self_key,
                          Bytes value, bool is_copy, bool deleted, Micros timestamp,
                          std::string_view origin_node) {
  bson::Document record;
  record.Append(kFieldId, bson::Value(id));
  record.Append(kFieldSelfKey, bson::Value(self_key));
  record.Append(kFieldVal, bson::Value(bson::Binary(std::move(value), 0)));
  // The paper stores the flags as strings ("isData" : "1"); keep that shape.
  record.Append(kFieldIsData, bson::Value(is_copy ? "0" : "1"));
  record.Append(kFieldIsDel, bson::Value(deleted ? "1" : "0"));
  record.Append(kFieldTimestamp, bson::Value(static_cast<std::int64_t>(timestamp)));
  record.Append(kFieldOrigin, bson::Value(origin_node));
  return record;
}

bson::Document MakeTombstone(const bson::ObjectId& id, std::string_view self_key,
                             Micros timestamp, std::string_view origin_node) {
  return MakeRecord(id, self_key, Bytes{}, /*is_copy=*/false, /*deleted=*/true,
                    timestamp, origin_node);
}

Status ValidateRecord(const bson::Document& record) {
  const bson::Value* id = record.Get(kFieldId);
  if (id == nullptr || !id->is_object_id()) {
    return Status::InvalidArgument("record _id must be an ObjectId");
  }
  const bson::Value* key = record.Get(kFieldSelfKey);
  if (key == nullptr || !key->is_string() || key->as_string().empty()) {
    return Status::InvalidArgument("record self-key must be a non-empty string");
  }
  const bson::Value* val = record.Get(kFieldVal);
  if (val == nullptr || !val->is_binary()) {
    return Status::InvalidArgument("record val must be binary");
  }
  for (const char* flag : {kFieldIsData, kFieldIsDel}) {
    const bson::Value* f = record.Get(flag);
    if (f == nullptr || !f->is_string() ||
        (f->as_string() != "0" && f->as_string() != "1")) {
      return Status::InvalidArgument(std::string("record flag invalid: ") + flag);
    }
  }
  const bson::Value* ts = record.Get(kFieldTimestamp);
  if (ts == nullptr || !ts->is_int64()) {
    return Status::InvalidArgument("record _ts must be int64");
  }
  const bson::Value* origin = record.Get(kFieldOrigin);
  if (origin == nullptr || !origin->is_string()) {
    return Status::InvalidArgument("record _origin must be a string");
  }
  return Status::OK();
}

std::string RecordSelfKey(const bson::Document& record) {
  return RequireField(record, kFieldSelfKey)->as_string();
}

const Bytes& RecordValue(const bson::Document& record) {
  return RequireField(record, kFieldVal)->as_binary().data();
}

bool RecordIsDeleted(const bson::Document& record) {
  return RequireField(record, kFieldIsDel)->as_string() == "1";
}

bool RecordIsCopy(const bson::Document& record) {
  return RequireField(record, kFieldIsData)->as_string() == "0";
}

Micros RecordTimestamp(const bson::Document& record) {
  return RequireField(record, kFieldTimestamp)->as_int64();
}

std::string RecordOrigin(const bson::Document& record) {
  return RequireField(record, kFieldOrigin)->as_string();
}

bool SupersedesLww(const bson::Document& a, const bson::Document& b) {
  const Micros ta = RecordTimestamp(a);
  const Micros tb = RecordTimestamp(b);
  if (ta != tb) return ta > tb;
  return RecordOrigin(a) > RecordOrigin(b);
}

bson::Document AsReplicaCopy(const bson::Document& record) {
  bson::Document copy = record;
  copy.Set(kFieldIsData, bson::Value("0"));
  return copy;
}

}  // namespace hotman::core
