#ifndef HOTMAN_CORE_RECORD_H_
#define HOTMAN_CORE_RECORD_H_

#include <string>
#include <string_view>

#include "bson/document.h"
#include "bson/object_id.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace hotman::core {

/// Field names of the paper's record schema (§3.3):
///   {"_id": ObjectId(...), "self-key": "...", "val": BinData(0, ...),
///    "isData": "0|1", "isDel": "0|1"}
/// plus two internal reconciliation fields the cluster layer appends.
inline constexpr const char* kFieldId = "_id";
inline constexpr const char* kFieldSelfKey = "self-key";
inline constexpr const char* kFieldVal = "val";
inline constexpr const char* kFieldIsData = "isData";
inline constexpr const char* kFieldIsDel = "isDel";
/// Write timestamp (microseconds) used by last-write-wins reconciliation.
inline constexpr const char* kFieldTimestamp = "_ts";
/// Coordinator node that produced this version (timestamp tie-break).
inline constexpr const char* kFieldOrigin = "_origin";

/// Builds a full record document.
///
/// `is_copy` maps to the paper's isData flag ("indicates whether the record
/// is a copy"): the coordinator stores the original (isData=1) and the
/// N-1 replicas store copies (isData=0). `deleted` maps to isDel ("if the
/// record is deleted, just update the flag and not physically remove").
bson::Document MakeRecord(const bson::ObjectId& id, std::string_view self_key,
                          Bytes value, bool is_copy, bool deleted, Micros timestamp,
                          std::string_view origin_node);

/// A tombstone record for logical deletion of `self_key`.
bson::Document MakeTombstone(const bson::ObjectId& id, std::string_view self_key,
                             Micros timestamp, std::string_view origin_node);

/// Validates the record shape; returns InvalidArgument with the offending
/// field otherwise.
Status ValidateRecord(const bson::Document& record);

/// Accessors (each aborts on schema violation; call ValidateRecord on
/// untrusted input first).
std::string RecordSelfKey(const bson::Document& record);
const Bytes& RecordValue(const bson::Document& record);
bool RecordIsDeleted(const bson::Document& record);
bool RecordIsCopy(const bson::Document& record);
Micros RecordTimestamp(const bson::Document& record);
std::string RecordOrigin(const bson::Document& record);

/// Last-write-wins: true when `a` supersedes `b` — strictly newer
/// timestamp, with origin node id breaking exact ties deterministically
/// (§3.1 "last write wins policy").
bool SupersedesLww(const bson::Document& a, const bson::Document& b);

/// Returns a copy of `record` with the isData flag set for a replica copy.
bson::Document AsReplicaCopy(const bson::Document& record);

}  // namespace hotman::core

#endif  // HOTMAN_CORE_RECORD_H_
