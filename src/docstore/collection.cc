#include "docstore/collection.h"

#include <algorithm>

#include "bson/codec.h"
#include "query/projection.h"
#include "query/sort.h"
#include "query/update.h"

namespace hotman::docstore {

Collection::Collection(std::string name, bson::ObjectIdGenerator* id_generator)
    : name_(std::move(name)), id_generator_(id_generator) {}

Result<bson::Value> Collection::Insert(bson::Document doc) {
  bson::Value id;
  if (const bson::Value* existing = doc.Get("_id"); existing != nullptr) {
    id = *existing;
  } else {
    id = bson::Value(id_generator_->Next());
    // _id leads the document, MongoDB style.
    bson::Document with_id;
    with_id.Append("_id", id);
    for (const bson::Field& f : doc) with_id.Append(f.name, f.value);
    doc = std::move(with_id);
  }
  WriterMutexLock lock(&mu_);
  HOTMAN_RETURN_IF_ERROR(InsertLocked(std::move(doc), id));
  return id;
}

Status Collection::InsertLocked(bson::Document doc, const bson::Value& id) {
  if (docs_.count(id) > 0) {
    return Status::AlreadyExists("duplicate _id in collection " + name_);
  }
  for (auto& index : indexes_) {
    Status s = index->Insert(id, doc);
    if (!s.ok()) {
      // Roll back entries added to earlier indexes.
      for (auto& prior : indexes_) {
        if (prior.get() == index.get()) break;
        prior->Remove(id, doc);
      }
      return s;
    }
  }
  data_bytes_ += bson::EncodedSize(doc);
  NotifyPut(doc);
  docs_.emplace(id, std::move(doc));
  return Status::OK();
}

Result<bson::Document> Collection::FindById(const bson::Value& id) const {
  // Shared lock: point reads run concurrently. The returned copy is cheap —
  // bson::Binary payloads are shared_ptr-backed, so copying a document is
  // O(fields), not O(payload bytes).
  ReaderMutexLock lock(&mu_);
  auto it = docs_.find(id);
  if (it == docs_.end()) return Status::NotFound("no document with given _id");
  return it->second;
}

std::vector<bson::Value> Collection::CandidatesLocked(const QueryPlan& plan) const {
  std::vector<bson::Value> ids;
  switch (plan.kind) {
    case QueryPlan::Kind::kPrimaryLookup:
      if (plan.bounds.eq.has_value() && docs_.count(*plan.bounds.eq) > 0) {
        ids.reserve(1);
        ids.push_back(*plan.bounds.eq);
      }
      return ids;
    case QueryPlan::Kind::kIndexScan:
      for (const auto& index : indexes_) {
        if (index->spec().path == plan.index_path) {
          return index->RangeLookup(plan.bounds);
        }
      }
      [[fallthrough]];  // index vanished (shouldn't happen under the lock)
    case QueryPlan::Kind::kFullScan:
      ids.reserve(docs_.size());
      for (const auto& [id, doc] : docs_) ids.push_back(id);
      return ids;
  }
  return ids;
}

Result<std::vector<bson::Document>> Collection::Find(const bson::Document& filter,
                                                     const FindOptions& options) const {
  auto matcher = query::Matcher::Compile(filter);
  if (!matcher.ok()) return matcher.status();

  std::optional<query::Projection> projection;
  if (options.projection.has_value()) {
    auto compiled = query::Projection::Compile(*options.projection);
    if (!compiled.ok()) return compiled.status();
    projection = std::move(*compiled);
  }
  std::optional<query::SortSpec> sort;
  if (options.sort.has_value()) {
    auto compiled = query::SortSpec::Compile(*options.sort);
    if (!compiled.ok()) return compiled.status();
    if (!compiled->empty()) sort = std::move(*compiled);
  }

  std::vector<bson::Document> results;
  // Without a sort, skip/limit apply in candidate order, so the window can
  // be enforced during the scan: filtered-out and skipped documents are
  // never copied, and a limit stops the scan early. With a sort every match
  // must be materialized first and the window applied after ordering.
  const bool window_in_scan = !sort.has_value();
  {
    ReaderMutexLock lock(&mu_);
    const QueryPlan plan = ChoosePlan(*matcher, IndexSpecsLocked());
    const std::vector<bson::Value> candidates = CandidatesLocked(plan);
    std::int64_t to_skip = window_in_scan ? options.skip : 0;
    std::size_t cap = candidates.size();
    if (window_in_scan && options.limit >= 0) {
      cap = std::min(cap, static_cast<std::size_t>(options.limit));
    }
    results.reserve(cap);
    for (const bson::Value& id : candidates) {
      auto it = docs_.find(id);
      if (it == docs_.end()) continue;
      if (!matcher->Matches(it->second)) continue;
      if (window_in_scan) {
        if (to_skip > 0) {
          --to_skip;
          continue;
        }
        if (options.limit >= 0 &&
            results.size() >= static_cast<std::size_t>(options.limit)) {
          break;
        }
      }
      results.push_back(it->second);
    }
  }

  if (sort.has_value()) {
    std::stable_sort(results.begin(), results.end(),
                     [&sort](const bson::Document& a, const bson::Document& b) {
                       return sort->Less(a, b);
                     });
    if (options.skip > 0) {
      if (static_cast<std::size_t>(options.skip) >= results.size()) {
        results.clear();
      } else {
        results.erase(results.begin(), results.begin() + options.skip);
      }
    }
    if (options.limit >= 0 &&
        results.size() > static_cast<std::size_t>(options.limit)) {
      results.resize(options.limit);
    }
  }
  if (projection.has_value()) {
    for (bson::Document& doc : results) doc = projection->Apply(doc);
  }
  return results;
}

Result<std::optional<bson::Document>> Collection::FindOne(
    const bson::Document& filter) const {
  FindOptions options;
  options.limit = 1;
  auto results = Find(filter, options);
  if (!results.ok()) return results.status();
  if (results->empty()) return std::optional<bson::Document>{};
  return std::optional<bson::Document>{std::move(results->front())};
}

Result<UpdateResult> Collection::Update(const bson::Document& filter,
                                        const bson::Document& update,
                                        const UpdateOptions& options) {
  auto matcher = query::Matcher::Compile(filter);
  if (!matcher.ok()) return matcher.status();

  UpdateResult result;
  WriterMutexLock lock(&mu_);
  const QueryPlan plan = ChoosePlan(*matcher, IndexSpecsLocked());
  std::vector<bson::Value> matched_ids;
  for (const bson::Value& id : CandidatesLocked(plan)) {
    auto it = docs_.find(id);
    if (it == docs_.end() || !matcher->Matches(it->second)) continue;
    matched_ids.push_back(id);
    if (!options.multi) break;
  }

  if (matched_ids.empty()) {
    if (!options.upsert) return result;
    // Upsert: seed the new document from equality constraints, then apply.
    bson::Document seed;
    for (const std::string& path : matcher->ConstrainedPaths()) {
      query::FieldBounds b = matcher->BoundsFor(path);
      if (b.eq.has_value() && path.find('.') == std::string::npos) {
        seed.Set(path, *b.eq);
      }
    }
    HOTMAN_RETURN_IF_ERROR(query::ApplyUpdate(update, &seed));
    bson::Value id;
    if (const bson::Value* existing = seed.Get("_id"); existing != nullptr) {
      id = *existing;
    } else {
      id = bson::Value(id_generator_->Next());
      bson::Document with_id;
      with_id.Append("_id", id);
      for (const bson::Field& f : seed) with_id.Append(f.name, f.value);
      seed = std::move(with_id);
    }
    HOTMAN_RETURN_IF_ERROR(InsertLocked(std::move(seed), id));
    result.upserted_id = id;
    return result;
  }

  for (const bson::Value& id : matched_ids) {
    auto it = docs_.find(id);
    bson::Document updated = it->second;
    HOTMAN_RETURN_IF_ERROR(query::ApplyUpdate(update, &updated));
    ++result.matched;
    if (updated == it->second) continue;  // no-op update
    // Re-index: remove old entries, add new ones.
    for (auto& index : indexes_) index->Remove(id, it->second);
    Status index_status;
    for (auto& index : indexes_) {
      index_status = index->Insert(id, updated);
      if (!index_status.ok()) break;
    }
    if (!index_status.ok()) {
      // Restore old entries and fail.
      for (auto& index : indexes_) {
        index->Remove(id, updated);
        index->Insert(id, it->second).ok();
      }
      return index_status;
    }
    data_bytes_ += bson::EncodedSize(updated);
    data_bytes_ -= bson::EncodedSize(it->second);
    it->second = std::move(updated);
    NotifyPut(it->second);
    ++result.modified;
  }
  return result;
}

Result<std::size_t> Collection::Remove(const bson::Document& filter, bool multi) {
  auto matcher = query::Matcher::Compile(filter);
  if (!matcher.ok()) return matcher.status();

  WriterMutexLock lock(&mu_);
  const QueryPlan plan = ChoosePlan(*matcher, IndexSpecsLocked());
  std::vector<bson::Value> doomed;
  for (const bson::Value& id : CandidatesLocked(plan)) {
    auto it = docs_.find(id);
    if (it == docs_.end() || !matcher->Matches(it->second)) continue;
    doomed.push_back(id);
    if (!multi) break;
  }
  for (const bson::Value& id : doomed) {
    HOTMAN_RETURN_IF_ERROR(RemoveDocLocked(id));
  }
  return doomed.size();
}

Status Collection::RemoveDocLocked(const bson::Value& id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return Status::OK();
  for (auto& index : indexes_) index->Remove(id, it->second);
  data_bytes_ -= bson::EncodedSize(it->second);
  docs_.erase(it);
  NotifyRemove(id);
  return Status::OK();
}

Result<std::size_t> Collection::Count(const bson::Document& filter) const {
  if (filter.empty()) {
    ReaderMutexLock lock(&mu_);
    return docs_.size();
  }
  auto results = Find(filter);
  if (!results.ok()) return results.status();
  return results->size();
}

Status Collection::CreateIndex(const IndexSpec& spec) {
  if (spec.path.empty() || spec.path == "_id") {
    return Status::InvalidArgument("cannot create index on _id (already primary)");
  }
  WriterMutexLock lock(&mu_);
  for (const auto& index : indexes_) {
    if (index->spec().path == spec.path) {
      return Status::AlreadyExists("index exists on path: " + spec.path);
    }
  }
  auto index = std::make_unique<SecondaryIndex>(spec);
  for (const auto& [id, doc] : docs_) {
    HOTMAN_RETURN_IF_ERROR(index->Insert(id, doc));
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Status Collection::DropIndex(const std::string& path) {
  WriterMutexLock lock(&mu_);
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if ((*it)->spec().path == path) {
      indexes_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no index on path: " + path);
}

Result<QueryPlan> Collection::Explain(const bson::Document& filter) const {
  auto matcher = query::Matcher::Compile(filter);
  if (!matcher.ok()) return matcher.status();
  ReaderMutexLock lock(&mu_);
  return ChoosePlan(*matcher, IndexSpecsLocked());
}

Status Collection::PutDocument(bson::Document doc) {
  const bson::Value* id = doc.Get("_id");
  if (id == nullptr) return Status::InvalidArgument("PutDocument requires _id");
  const bson::Value id_copy = *id;
  WriterMutexLock lock(&mu_);
  auto it = docs_.find(id_copy);
  if (it != docs_.end()) {
    for (auto& index : indexes_) index->Remove(id_copy, it->second);
    data_bytes_ -= bson::EncodedSize(it->second);
    docs_.erase(it);
  }
  return InsertLocked(std::move(doc), id_copy);
}

Status Collection::RemoveById(const bson::Value& id) {
  WriterMutexLock lock(&mu_);
  return RemoveDocLocked(id);
}

void Collection::SetChangeListener(ChangeListener listener) {
  WriterMutexLock lock(&mu_);
  listener_ = std::move(listener);
}

void Collection::NotifyPut(const bson::Document& doc) {
  if (!listener_) return;
  ChangeEvent event;
  event.kind = ChangeEvent::Kind::kPut;
  event.collection = name_;
  event.document = doc;
  listener_(event);
}

void Collection::NotifyRemove(const bson::Value& id) {
  if (!listener_) return;
  ChangeEvent event;
  event.kind = ChangeEvent::Kind::kRemove;
  event.collection = name_;
  event.document.Append("_id", id);
  listener_(event);
}

std::size_t Collection::NumDocuments() const {
  ReaderMutexLock lock(&mu_);
  return docs_.size();
}

std::vector<IndexSpec> Collection::Indexes() const {
  ReaderMutexLock lock(&mu_);
  return IndexSpecsLocked();
}

std::vector<IndexSpec> Collection::IndexSpecsLocked() const {
  std::vector<IndexSpec> specs;
  specs.reserve(indexes_.size());
  for (const auto& index : indexes_) specs.push_back(index->spec());
  return specs;
}

std::size_t Collection::DataSizeBytes() const {
  ReaderMutexLock lock(&mu_);
  return data_bytes_;
}

}  // namespace hotman::docstore
