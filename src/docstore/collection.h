#ifndef HOTMAN_DOCSTORE_COLLECTION_H_
#define HOTMAN_DOCSTORE_COLLECTION_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bson/document.h"
#include "bson/object_id.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "docstore/index.h"
#include "docstore/planner.h"

namespace hotman::docstore {

/// Options for Collection::Find.
struct FindOptions {
  std::optional<bson::Document> projection;
  std::optional<bson::Document> sort;
  std::int64_t skip = 0;
  std::int64_t limit = -1;  ///< -1 = unlimited
};

/// Options for Collection::Update.
struct UpdateOptions {
  bool multi = false;   ///< update every match instead of the first
  bool upsert = false;  ///< insert when nothing matches
};

/// Outcome of Collection::Update.
struct UpdateResult {
  std::size_t matched = 0;
  std::size_t modified = 0;
  std::optional<bson::Value> upserted_id;
};

/// Physical change notification (journal / replication hook).
struct ChangeEvent {
  enum class Kind { kPut, kRemove };
  Kind kind = Kind::kPut;
  std::string collection;
  bson::Document document;  ///< kPut: full new state; kRemove: {"_id": id}
};

using ChangeListener = std::function<void(const ChangeEvent&)>;

/// A collection of BSON documents with a primary `_id` index, optional
/// secondary indexes, and MongoDB-style CRUD. Thread-safe.
///
/// This is the engine the paper deploys per node ("MongoDB database is
/// responsible for data persistence") providing "complex query functions
/// like relational databases".
///
/// Reads (FindById/Find/Count/Explain and the stats accessors) take mu_ in
/// shared mode and run concurrently; mutations take it exclusively. The
/// change listener only fires from mutation paths, so a shared holder can
/// never re-enter the journal (see DESIGN.md "Read-path concurrency").
class Collection {
 public:
  /// `id_generator` supplies `_id`s for inserts that lack one; it must
  /// outlive the collection (typically owned by the Database).
  Collection(std::string name, bson::ObjectIdGenerator* id_generator);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  const std::string& name() const { return name_; }

  /// Inserts `doc`, generating `_id` when absent. Fails with AlreadyExists
  /// if the `_id` (or a unique index key) already exists. Returns the `_id`.
  Result<bson::Value> Insert(bson::Document doc) HOTMAN_EXCLUDES(mu_);

  /// Point lookup by `_id`.
  Result<bson::Document> FindById(const bson::Value& id) const
      HOTMAN_EXCLUDES(mu_);

  /// All documents matching `filter`, honouring projection/sort/skip/limit.
  Result<std::vector<bson::Document>> Find(const bson::Document& filter,
                                           const FindOptions& options = {}) const
      HOTMAN_EXCLUDES(mu_);

  /// First match, or nullopt.
  Result<std::optional<bson::Document>> FindOne(const bson::Document& filter) const;

  /// Applies `update` (operator or replacement form) to matching documents.
  Result<UpdateResult> Update(const bson::Document& filter,
                              const bson::Document& update,
                              const UpdateOptions& options = {}) HOTMAN_EXCLUDES(mu_);

  /// Removes matching documents; returns how many were removed.
  Result<std::size_t> Remove(const bson::Document& filter, bool multi = true)
      HOTMAN_EXCLUDES(mu_);

  /// Number of documents matching `filter` ({} = all).
  Result<std::size_t> Count(const bson::Document& filter) const
      HOTMAN_EXCLUDES(mu_);

  /// Builds a secondary index over `spec.path` (back-filling existing
  /// documents); fails if an index on the path exists or a unique
  /// constraint is violated by current data.
  Status CreateIndex(const IndexSpec& spec) HOTMAN_EXCLUDES(mu_);

  /// Drops the index on `path`; NotFound when absent.
  Status DropIndex(const std::string& path) HOTMAN_EXCLUDES(mu_);

  /// Access path the planner would choose for `filter` (for tests/examples).
  Result<QueryPlan> Explain(const bson::Document& filter) const
      HOTMAN_EXCLUDES(mu_);

  /// Physical upsert by `_id` used by replication, journal replay and the
  /// cluster layer: replaces the document wholesale (indexes maintained).
  Status PutDocument(bson::Document doc) HOTMAN_EXCLUDES(mu_);

  /// Physical delete by `_id`; OK even when absent (idempotent replay).
  Status RemoveById(const bson::Value& id) HOTMAN_EXCLUDES(mu_);

  /// Registers the journal/replication hook (single listener).
  void SetChangeListener(ChangeListener listener) HOTMAN_EXCLUDES(mu_);

  std::size_t NumDocuments() const HOTMAN_EXCLUDES(mu_);
  std::vector<IndexSpec> Indexes() const HOTMAN_EXCLUDES(mu_);

  /// Approximate total encoded size of all documents (bytes).
  std::size_t DataSizeBytes() const HOTMAN_EXCLUDES(mu_);

 private:
  /// Ids of candidate documents under `plan` (kFullScan -> all ids).
  std::vector<bson::Value> CandidatesLocked(const QueryPlan& plan) const
      HOTMAN_REQUIRES_SHARED(mu_);

  /// Specs of current secondary indexes; caller must hold mu_ (any mode).
  std::vector<IndexSpec> IndexSpecsLocked() const HOTMAN_REQUIRES_SHARED(mu_);

  Status InsertLocked(bson::Document doc, const bson::Value& id)
      HOTMAN_REQUIRES(mu_);
  Status RemoveDocLocked(const bson::Value& id) HOTMAN_REQUIRES(mu_);
  void NotifyPut(const bson::Document& doc) HOTMAN_REQUIRES(mu_);
  void NotifyRemove(const bson::Value& id) HOTMAN_REQUIRES(mu_);

  std::string name_;
  bson::ObjectIdGenerator* id_generator_;
  mutable SharedMutex mu_;
  std::map<bson::Value, bson::Document, ValueLess> docs_ HOTMAN_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_ HOTMAN_GUARDED_BY(mu_);
  ChangeListener listener_ HOTMAN_GUARDED_BY(mu_);
  std::size_t data_bytes_ HOTMAN_GUARDED_BY(mu_) = 0;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_COLLECTION_H_
