#include "docstore/connection.h"

namespace hotman::docstore {

ConnectionLease::ConnectionLease(ConnectionPool* pool, std::unique_ptr<Connection> conn)
    : pool_(pool), conn_(std::move(conn)) {}

ConnectionLease::~ConnectionLease() {
  if (pool_ != nullptr && conn_ != nullptr) pool_->Release(std::move(conn_));
}

ConnectionLease::ConnectionLease(ConnectionLease&& other) noexcept
    : pool_(other.pool_), conn_(std::move(other.conn_)) {
  other.pool_ = nullptr;
}

ConnectionLease& ConnectionLease::operator=(ConnectionLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && conn_ != nullptr) pool_->Release(std::move(conn_));
    pool_ = other.pool_;
    conn_ = std::move(other.conn_);
    other.pool_ = nullptr;
  }
  return *this;
}

ConnectionPool::ConnectionPool(DocStoreServer* server, ConnectionConfig config)
    : server_(server), config_(std::move(config)) {
  WriterMutexLock lock(&mu_);
  for (int i = 0; i < config_.pool_min_size; ++i) {
    idle_.push_back(std::make_unique<Connection>(server_));
    ++live_;
  }
}

Status ConnectionPool::Connect() {
  const int attempts = config_.auto_connect_retry ? config_.max_retries + 1 : 1;
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    auto lease = Acquire();
    if (!lease.ok()) {
      last = lease.status();
      continue;
    }
    // The real connection test: query the version of the configured
    // database. Any exception during the probe fails the Connect.
    Result<std::string> version = (*lease)->server()->QueryVersion();
    if (version.ok()) return Status::OK();
    (*lease)->MarkBroken();
    last = version.status();
  }
  return last;
}

Result<ConnectionLease> ConnectionPool::Acquire() {
  HOTMAN_RETURN_IF_ERROR(server_->CheckConnectable());
  WriterMutexLock lock(&mu_);
  while (!idle_.empty()) {
    std::unique_ptr<Connection> conn = std::move(idle_.front());
    idle_.pop_front();
    if (conn->broken() || !conn->Ping().ok()) {
      --live_;  // drop broken connection
      continue;
    }
    return ConnectionLease(this, std::move(conn));
  }
  if (live_ >= static_cast<std::size_t>(config_.pool_max_size)) {
    return Status::Busy("connection pool exhausted");
  }
  ++live_;
  return ConnectionLease(this, std::make_unique<Connection>(server_));
}

void ConnectionPool::Release(std::unique_ptr<Connection> conn) {
  WriterMutexLock lock(&mu_);
  if (conn->broken()) {
    --live_;
    return;
  }
  idle_.push_back(std::move(conn));
}

std::size_t ConnectionPool::IdleCount() const {
  ReaderMutexLock lock(&mu_);
  return idle_.size();
}

std::size_t ConnectionPool::LiveCount() const {
  ReaderMutexLock lock(&mu_);
  return live_;
}

}  // namespace hotman::docstore
