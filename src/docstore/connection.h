#ifndef HOTMAN_DOCSTORE_CONNECTION_H_
#define HOTMAN_DOCSTORE_CONNECTION_H_

#include <deque>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "docstore/server.h"

namespace hotman::docstore {

/// Connection parameters, mirroring §5.1 step (2): the three pool-side
/// parameters the paper names (connecttimeoutms, sockettimeoutms,
/// autoconnectretry) plus the database-side endpoint identity.
struct ConnectionConfig {
  int connect_timeout_ms = 1000;   ///< connecttimeoutms
  int socket_timeout_ms = 2000;    ///< sockettimeoutms
  bool auto_connect_retry = true;  ///< autoconnectretry
  int max_retries = 2;             ///< attempts when auto_connect_retry

  std::string host = "127.0.0.1";  ///< database server IP
  int port = 27017;                ///< monitoring port (Table 1)
  std::string db_name = "mystore";

  int pool_min_size = 4;   ///< connections pre-created in memory
  int pool_max_size = 64;  ///< hard cap on live connections
};

/// One logical connection to a DocStoreServer. Connections become broken
/// when the server faults during use and are then discarded by the pool.
class Connection {
 public:
  explicit Connection(DocStoreServer* server) : server_(server) {}

  /// OK when the server end is still reachable.
  Status Ping() const { return server_->CheckConnectable(); }

  DocStoreServer* server() { return server_; }

  bool broken() const { return broken_; }
  void MarkBroken() { broken_ = true; }

 private:
  DocStoreServer* server_;
  bool broken_ = false;
};

/// RAII lease of a pooled connection; returns it on destruction.
class ConnectionPool;
class ConnectionLease {
 public:
  ConnectionLease() = default;
  ConnectionLease(ConnectionPool* pool, std::unique_ptr<Connection> conn);
  ~ConnectionLease();

  ConnectionLease(ConnectionLease&& other) noexcept;
  ConnectionLease& operator=(ConnectionLease&& other) noexcept;
  ConnectionLease(const ConnectionLease&) = delete;
  ConnectionLease& operator=(const ConnectionLease&) = delete;

  Connection* operator->() { return conn_.get(); }
  Connection* get() { return conn_.get(); }
  explicit operator bool() const { return conn_ != nullptr; }

 private:
  ConnectionPool* pool_ = nullptr;
  std::unique_ptr<Connection> conn_;
};

/// Connection pool per §5.1: "create a certain amount of connections in
/// memory in advance ... implemented as a singleton" — one pool instance
/// exists per storage node process (the cluster layer owns exactly one per
/// node; a process-wide default is also provided for standalone use).
class ConnectionPool {
 public:
  /// The pool pre-creates `config.pool_min_size` connections.
  ConnectionPool(DocStoreServer* server, ConnectionConfig config);

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// §5.1 step (3): a real end-to-end connection test — acquires a
  /// connection and queries the server version. "Only when the connection
  /// to the database is built really, the Connect will return true."
  /// Retries up to max_retries when auto_connect_retry is set.
  Status Connect() HOTMAN_EXCLUDES(mu_);

  /// Leases a connection (creating one up to pool_max_size). Fails with
  /// Busy when the pool is exhausted, or the server's fault status when
  /// unreachable.
  Result<ConnectionLease> Acquire() HOTMAN_EXCLUDES(mu_);

  /// Returns a connection to the pool (called by ConnectionLease).
  void Release(std::unique_ptr<Connection> conn) HOTMAN_EXCLUDES(mu_);

  const ConnectionConfig& config() const { return config_; }
  std::size_t IdleCount() const HOTMAN_EXCLUDES(mu_);
  std::size_t LiveCount() const HOTMAN_EXCLUDES(mu_);

 private:
  DocStoreServer* server_;
  ConnectionConfig config_;
  mutable SharedMutex mu_;
  std::deque<std::unique_ptr<Connection>> idle_ HOTMAN_GUARDED_BY(mu_);
  std::size_t live_ HOTMAN_GUARDED_BY(mu_) = 0;  // idle + leased
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_CONNECTION_H_
