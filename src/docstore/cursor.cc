#include "docstore/cursor.h"

#include <cstdio>
#include <cstdlib>

namespace hotman::docstore {

Cursor::Cursor(std::vector<bson::Document> docs, std::size_t batch_size)
    : docs_(std::move(docs)), batch_size_(batch_size == 0 ? 1 : batch_size) {}

const bson::Document& Cursor::Next() {
  if (!HasNext()) {
    std::fprintf(stderr, "Cursor::Next() called past the end\n");
    std::abort();
  }
  return docs_[pos_++];
}

std::size_t Cursor::NumBatches() const {
  return (docs_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<bson::Document> Cursor::ToVector() {
  std::vector<bson::Document> out(docs_.begin() + pos_, docs_.end());
  pos_ = docs_.size();
  return out;
}

}  // namespace hotman::docstore
