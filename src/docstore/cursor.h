#ifndef HOTMAN_DOCSTORE_CURSOR_H_
#define HOTMAN_DOCSTORE_CURSOR_H_

#include <cstddef>
#include <vector>

#include "bson/document.h"

namespace hotman::docstore {

/// Forward-only iterator over a query's result set with batched delivery
/// semantics (the client driver idiom: results arrive in batches of
/// `batch_size`, and NumBatches() reports how many round trips a remote
/// client would have made).
class Cursor {
 public:
  explicit Cursor(std::vector<bson::Document> docs, std::size_t batch_size = 101);

  /// True while documents remain.
  bool HasNext() const { return pos_ < docs_.size(); }

  /// Next document; callable only when HasNext().
  const bson::Document& Next();

  /// Documents not yet consumed.
  std::size_t Remaining() const { return docs_.size() - pos_; }

  /// Total result-set size.
  std::size_t Size() const { return docs_.size(); }

  /// Round trips a remote driver would need at the configured batch size.
  std::size_t NumBatches() const;

  /// Drains everything left into a vector.
  std::vector<bson::Document> ToVector();

 private:
  std::vector<bson::Document> docs_;
  std::size_t pos_ = 0;
  std::size_t batch_size_;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_CURSOR_H_
