#include "docstore/database.h"

#include "docstore/journal.h"

namespace hotman::docstore {

Database::Database(std::string name, std::uint64_t machine_id, const Clock* clock)
    : name_(std::move(name)), id_generator_(machine_id, clock) {}

Collection* Database::GetCollection(const std::string& name) {
  WriterMutexLock lock(&mu_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    auto collection = std::make_unique<Collection>(name, &id_generator_);
    it = collections_.emplace(name, std::move(collection)).first;
    HookCollectionLocked(it->second.get());
  }
  return it->second.get();
}

Collection* Database::FindCollection(const std::string& name) {
  ReaderMutexLock lock(&mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Status Database::DropCollection(const std::string& name) {
  WriterMutexLock lock(&mu_);
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection named " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::CollectionNames() const {
  ReaderMutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

std::size_t Database::TotalDocuments() const {
  ReaderMutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& [name, collection] : collections_) {
    total += collection->NumDocuments();
  }
  return total;
}

std::size_t Database::TotalDataBytes() const {
  ReaderMutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& [name, collection] : collections_) {
    total += collection->DataSizeBytes();
  }
  return total;
}

void Database::AttachJournal(Journal* journal) {
  // Call after Journal::Replay: replayed writes must not be re-journaled.
  WriterMutexLock lock(&mu_);
  journal_ = journal;
  for (auto& [name, collection] : collections_) {
    HookCollectionLocked(collection.get());
  }
}

void Database::HookCollectionLocked(Collection* collection) {
  if (journal_ == nullptr) {
    collection->SetChangeListener(nullptr);
    return;
  }
  Journal* journal = journal_;
  collection->SetChangeListener([journal](const ChangeEvent& event) {
    // Journal failures are surfaced via logs at a higher layer; the write
    // itself has already been applied in memory.
    Status s = journal->Append(event);
    (void)s;
  });
}

}  // namespace hotman::docstore
