#ifndef HOTMAN_DOCSTORE_DATABASE_H_
#define HOTMAN_DOCSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bson/object_id.h"
#include "common/clock.h"
#include "docstore/collection.h"

namespace hotman::docstore {

class Journal;

/// A named set of collections plus the node-wide ObjectId generator — one
/// Database per storage node.
class Database {
 public:
  /// `machine_id` seeds the ObjectId generator (one distinct value per
  /// node); `clock` timestamps generated ids.
  Database(std::string name, std::uint64_t machine_id, const Clock* clock);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  /// Fetches (creating on first use) the collection `name`.
  Collection* GetCollection(const std::string& name);

  /// The collection if it exists, else nullptr.
  Collection* FindCollection(const std::string& name);

  /// Drops `name`; NotFound when absent.
  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;

  /// Total documents across collections.
  std::size_t TotalDocuments() const;

  /// Total encoded bytes across collections.
  std::size_t TotalDataBytes() const;

  /// Routes every collection's change events (current and future) into
  /// `journal`. Pass nullptr to detach.
  void AttachJournal(Journal* journal);

  bson::ObjectIdGenerator* id_generator() { return &id_generator_; }

 private:
  void HookCollectionLocked(Collection* collection);

  std::string name_;
  bson::ObjectIdGenerator id_generator_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
  Journal* journal_ = nullptr;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_DATABASE_H_
