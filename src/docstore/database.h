#ifndef HOTMAN_DOCSTORE_DATABASE_H_
#define HOTMAN_DOCSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bson/object_id.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "docstore/collection.h"

namespace hotman::docstore {

class Journal;

/// A named set of collections plus the node-wide ObjectId generator — one
/// Database per storage node.
class Database {
 public:
  /// `machine_id` seeds the ObjectId generator (one distinct value per
  /// node); `clock` timestamps generated ids.
  Database(std::string name, std::uint64_t machine_id, const Clock* clock);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  /// Fetches (creating on first use) the collection `name`.
  Collection* GetCollection(const std::string& name) HOTMAN_EXCLUDES(mu_);

  /// The collection if it exists, else nullptr.
  Collection* FindCollection(const std::string& name) HOTMAN_EXCLUDES(mu_);

  /// Drops `name`; NotFound when absent.
  Status DropCollection(const std::string& name) HOTMAN_EXCLUDES(mu_);

  std::vector<std::string> CollectionNames() const HOTMAN_EXCLUDES(mu_);

  /// Total documents across collections.
  std::size_t TotalDocuments() const HOTMAN_EXCLUDES(mu_);

  /// Total encoded bytes across collections.
  std::size_t TotalDataBytes() const HOTMAN_EXCLUDES(mu_);

  /// Routes every collection's change events (current and future) into
  /// `journal`. Pass nullptr to detach.
  void AttachJournal(Journal* journal) HOTMAN_EXCLUDES(mu_);

  bson::ObjectIdGenerator* id_generator() { return &id_generator_; }

 private:
  void HookCollectionLocked(Collection* collection) HOTMAN_REQUIRES(mu_);

  std::string name_;
  bson::ObjectIdGenerator id_generator_;
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Collection>> collections_
      HOTMAN_GUARDED_BY(mu_);
  Journal* journal_ HOTMAN_GUARDED_BY(mu_) = nullptr;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_DATABASE_H_
