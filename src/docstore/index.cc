#include "docstore/index.h"

#include "query/path.h"

namespace hotman::docstore {

SecondaryIndex::SecondaryIndex(IndexSpec spec) : spec_(std::move(spec)) {}

std::vector<bson::Value> SecondaryIndex::ExtractKeys(const bson::Document& doc) const {
  std::vector<const bson::Value*> found;
  query::ResolvePath(doc, spec_.path, &found);
  std::vector<bson::Value> keys;
  if (found.empty()) {
    keys.emplace_back();  // missing field indexes as null
    return keys;
  }
  for (const bson::Value* v : found) {
    if (v->is_array()) {
      // Multi-key: one entry per element; empty arrays index as null.
      if (v->as_array().empty()) {
        keys.emplace_back();
      } else {
        for (const bson::Value& elem : v->as_array()) keys.push_back(elem);
      }
    } else {
      keys.push_back(*v);
    }
  }
  return keys;
}

Status SecondaryIndex::Insert(const bson::Value& id, const bson::Document& doc) {
  std::vector<bson::Value> keys = ExtractKeys(doc);
  if (spec_.unique) {
    for (const bson::Value& key : keys) {
      auto [lo, hi] = entries_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        if (it->second != id) {
          return Status::AlreadyExists("duplicate key in unique index " +
                                       spec_.Name());
        }
      }
    }
  }
  for (const bson::Value& key : keys) entries_.emplace(key, id);
  return Status::OK();
}

void SecondaryIndex::Remove(const bson::Value& id, const bson::Document& doc) {
  for (const bson::Value& key : ExtractKeys(doc)) {
    auto [lo, hi] = entries_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        entries_.erase(it);
        break;  // one entry per extracted key
      }
    }
  }
}

std::vector<bson::Value> SecondaryIndex::Lookup(const bson::Value& key) const {
  std::vector<bson::Value> ids;
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) ids.push_back(it->second);
  return ids;
}

std::vector<bson::Value> SecondaryIndex::RangeLookup(
    const query::FieldBounds& bounds) const {
  if (bounds.eq.has_value()) return Lookup(*bounds.eq);

  auto it = entries_.begin();
  auto end = entries_.end();
  if (bounds.lower.has_value()) {
    it = bounds.lower_inclusive ? entries_.lower_bound(*bounds.lower)
                                : entries_.upper_bound(*bounds.lower);
  }
  std::vector<bson::Value> ids;
  for (; it != end; ++it) {
    if (bounds.upper.has_value()) {
      const int c = it->first.Compare(*bounds.upper);
      if (c > 0 || (c == 0 && !bounds.upper_inclusive)) break;
    }
    // Range scans only apply within the operand's canonical type bracket
    // (BSON range queries do not cross type brackets).
    const bson::Value& probe = bounds.lower.has_value() ? *bounds.lower : *bounds.upper;
    if (it->first.CanonicalRank() != probe.CanonicalRank()) continue;
    ids.push_back(it->second);
  }
  return ids;
}

}  // namespace hotman::docstore
