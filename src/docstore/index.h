#ifndef HOTMAN_DOCSTORE_INDEX_H_
#define HOTMAN_DOCSTORE_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "query/matcher.h"

namespace hotman::docstore {

/// Orders bson::Value by the canonical BSON comparison.
struct ValueLess {
  bool operator()(const bson::Value& a, const bson::Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// Specification of a secondary index over one dotted field path.
struct IndexSpec {
  std::string path;
  bool unique = false;

  /// Index name, "path_1" MongoDB style.
  std::string Name() const { return path + "_1"; }
};

/// An ordered secondary index: maps indexed field value -> set of `_id`s.
///
/// Array fields are multi-key indexed (one entry per element), as in
/// MongoDB. Documents missing the field are indexed under null so that
/// `{field: null}` queries can use the index.
class SecondaryIndex {
 public:
  explicit SecondaryIndex(IndexSpec spec);

  const IndexSpec& spec() const { return spec_; }

  /// Adds `doc`'s entries. Fails with AlreadyExists on a unique violation
  /// (in which case nothing is inserted).
  Status Insert(const bson::Value& id, const bson::Document& doc);

  /// Removes `doc`'s entries (doc must be the previously inserted state).
  void Remove(const bson::Value& id, const bson::Document& doc);

  /// All ids whose indexed value equals `key`.
  std::vector<bson::Value> Lookup(const bson::Value& key) const;

  /// All ids with indexed value inside the (possibly half-unbounded) range.
  std::vector<bson::Value> RangeLookup(const query::FieldBounds& bounds) const;

  std::size_t NumEntries() const { return entries_.size(); }

 private:
  /// Keys this index extracts from `doc` (multi-key for arrays; null when
  /// the field is missing).
  std::vector<bson::Value> ExtractKeys(const bson::Document& doc) const;

  IndexSpec spec_;
  std::multimap<bson::Value, bson::Value, ValueLess> entries_;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_INDEX_H_
