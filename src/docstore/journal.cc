#include "docstore/journal.h"

#include <array>
#include <cstring>
#include <vector>

#include "bson/codec.h"
#include "common/bytes.h"
#include "docstore/database.h"

namespace hotman::docstore {

namespace {

constexpr std::uint8_t kKindPut = 1;
constexpr std::uint8_t kKindRemove = 2;

const std::uint32_t* Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint32_t* table = Crc32Table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Journal::Journal(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  // "a+b": create if absent, reads allowed (for Replay), appends at end.
  std::FILE* file = std::fopen(path.c_str(), "a+b");
  if (file == nullptr) {
    return Status::IOError("cannot open journal: " + path);
  }
  return std::unique_ptr<Journal>(new Journal(path, file));
}

Status Journal::Append(const ChangeEvent& event) {
  std::string payload;
  payload.push_back(static_cast<char>(
      event.kind == ChangeEvent::Kind::kPut ? kKindPut : kKindRemove));
  PutFixed32(&payload, static_cast<std::uint32_t>(event.collection.size()));
  payload.append(event.collection);
  bson::Encode(event.document, &payload);

  std::string record;
  PutFixed32(&record, static_cast<std::uint32_t>(payload.size()));
  record.append(payload);
  PutFixed32(&record, Crc32(payload.data(), payload.size()));

  WriterMutexLock lock(&mu_);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("journal write failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("journal flush failed");
  }
  ++appended_;
  appended_bytes_ += record.size();
  append_size_hist_.Record(static_cast<Micros>(record.size()));
  return Status::OK();
}

std::size_t Journal::AppendedBytes() const {
  ReaderMutexLock lock(&mu_);
  return appended_bytes_;
}

metrics::HistogramSnapshot Journal::AppendSizeSnapshot() const {
  ReaderMutexLock lock(&mu_);
  return append_size_hist_.Snapshot();
}

Status Journal::Replay(Database* db) {
  // Decode under mu_, apply after releasing it. Applying while holding mu_
  // would order journal-mutex before collection-mutex, the inverse of the
  // write path (Collection::Insert -> listener -> Append), and deadlock a
  // concurrent writer — as well as self-deadlock if this journal is already
  // attached to `db`.
  std::vector<ChangeEvent> events;
  {
    WriterMutexLock lock(&mu_);
    std::rewind(file_);
    for (;;) {
      std::uint8_t len_bytes[4];
      std::size_t n = std::fread(len_bytes, 1, 4, file_);
      if (n == 0) break;         // clean EOF
      if (n < 4) break;          // torn tail: stop
      const std::uint32_t payload_len = GetFixed32(len_bytes);
      if (payload_len < 5 || payload_len > (64u << 20)) break;  // implausible
      std::vector<std::uint8_t> payload(payload_len);
      if (std::fread(payload.data(), 1, payload_len, file_) != payload_len) {
        break;
      }
      std::uint8_t crc_bytes[4];
      if (std::fread(crc_bytes, 1, 4, file_) != 4) break;
      if (GetFixed32(crc_bytes) != Crc32(payload.data(), payload.size())) break;

      const std::uint8_t kind = payload[0];
      if (kind != kKindPut && kind != kKindRemove) break;  // torn tail
      const std::uint32_t name_len = GetFixed32(payload.data() + 1);
      if (5 + name_len > payload_len) break;
      std::string collection(reinterpret_cast<const char*>(payload.data() + 5),
                             name_len);
      std::string_view doc_bytes(
          reinterpret_cast<const char*>(payload.data() + 5 + name_len),
          payload_len - 5 - name_len);
      bson::Document doc;
      if (!bson::Decode(doc_bytes, &doc).ok()) break;

      ChangeEvent event;
      event.kind = kind == kKindPut ? ChangeEvent::Kind::kPut
                                    : ChangeEvent::Kind::kRemove;
      event.collection = std::move(collection);
      event.document = std::move(doc);
      events.push_back(std::move(event));
    }
    // Position back at the end for subsequent appends.
    std::fseek(file_, 0, SEEK_END);
  }

  for (ChangeEvent& event : events) {
    Collection* coll = db->GetCollection(event.collection);
    if (event.kind == ChangeEvent::Kind::kPut) {
      HOTMAN_RETURN_IF_ERROR(coll->PutDocument(std::move(event.document)));
    } else {
      const bson::Value* id = event.document.Get("_id");
      if (id == nullptr) break;
      HOTMAN_RETURN_IF_ERROR(coll->RemoveById(*id));
    }
  }
  return Status::OK();
}

std::size_t Journal::NumAppended() const {
  ReaderMutexLock lock(&mu_);
  return appended_;
}

}  // namespace hotman::docstore
