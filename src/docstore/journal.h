#ifndef HOTMAN_DOCSTORE_JOURNAL_H_
#define HOTMAN_DOCSTORE_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "docstore/collection.h"

namespace hotman::docstore {

class Database;

/// Append-only physical journal for crash recovery.
///
/// Record layout (little-endian):
///   [u32 payload_len][u8 kind][u32 name_len][name bytes][BSON doc][u32 crc32]
/// where crc32 covers everything from `kind` through the document bytes.
/// Replay is idempotent: kPut records are applied with PutDocument (upsert)
/// and kRemove with RemoveById. A torn tail (partial final record or CRC
/// mismatch) is truncated silently, as a crash mid-append would leave.
class Journal {
 public:
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if needed) the journal file at `path` for appending.
  static Result<std::unique_ptr<Journal>> Open(const std::string& path);

  /// Appends one change record and flushes it.
  Status Append(const ChangeEvent& event) HOTMAN_EXCLUDES(mu_);

  /// Replays the journal from the start into `db` (call before Append).
  /// Records are decoded under the journal lock but applied to `db` with no
  /// lock held: the write path locks collection-then-journal, so holding
  /// mu_ across PutDocument would invert that order.
  Status Replay(Database* db) HOTMAN_EXCLUDES(mu_);

  /// Records successfully appended since Open.
  std::size_t NumAppended() const HOTMAN_EXCLUDES(mu_);

  /// Bytes written (framing included) since Open.
  std::size_t AppendedBytes() const HOTMAN_EXCLUDES(mu_);

  /// On-disk record size of every successful append (framing included).
  metrics::HistogramSnapshot AppendSizeSnapshot() const HOTMAN_EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  explicit Journal(std::string path, std::FILE* file);

  std::string path_;
  mutable SharedMutex mu_;
  // The FILE stream itself (buffer + position) is what mu_ protects:
  // Append and Replay both move the file position.
  std::FILE* file_ HOTMAN_GUARDED_BY(mu_);
  std::size_t appended_ HOTMAN_GUARDED_BY(mu_) = 0;
  std::size_t appended_bytes_ HOTMAN_GUARDED_BY(mu_) = 0;
  metrics::Histogram append_size_hist_ HOTMAN_GUARDED_BY(mu_);
};

/// CRC-32 (IEEE 802.3 polynomial) over `len` bytes.
std::uint32_t Crc32(const void* data, std::size_t len);

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_JOURNAL_H_
