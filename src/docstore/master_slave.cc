#include "docstore/master_slave.h"

namespace hotman::docstore {

MasterSlaveCluster::MasterSlaveCluster(std::vector<DocStoreServer*> servers,
                                       std::string collection)
    : servers_(std::move(servers)), collection_(std::move(collection)) {}

Status MasterSlaveCluster::Put(const bson::Document& doc) {
  DocStoreServer* master = servers_.front();
  HOTMAN_RETURN_IF_ERROR(master->CheckAvailable());
  HOTMAN_RETURN_IF_ERROR(
      master->db()->GetCollection(collection_)->PutDocument(doc));
  bool missed = false;
  for (std::size_t i = 1; i < servers_.size(); ++i) {
    DocStoreServer* slave = servers_[i];
    if (!slave->CheckAvailable().ok()) {
      missed = true;  // slave misses this write entirely
      continue;
    }
    Status s = slave->db()->GetCollection(collection_)->PutDocument(doc);
    if (!s.ok()) missed = true;
  }
  if (missed) {
    MutexLock lock(&mu_);
    ++missed_replications_;
  }
  return Status::OK();
}

Result<bson::Document> MasterSlaveCluster::Get(const bson::Value& id) {
  Status last = Status::Unavailable("no reachable server");
  for (DocStoreServer* server : servers_) {
    Status available = server->CheckAvailable();
    if (!available.ok()) {
      last = available;
      continue;
    }
    Result<bson::Document> doc =
        server->db()->GetCollection(collection_)->FindById(id);
    if (doc.ok()) return doc;
    last = doc.status();
    if (doc.status().IsNotFound()) {
      // The master is authoritative for NotFound; a slave's NotFound may be
      // staleness, so keep trying further servers only on failover paths.
      if (server == servers_.front()) return doc.status();
    }
  }
  return last;
}

Status MasterSlaveCluster::Remove(const bson::Value& id) {
  DocStoreServer* master = servers_.front();
  HOTMAN_RETURN_IF_ERROR(master->CheckAvailable());
  HOTMAN_RETURN_IF_ERROR(master->db()->GetCollection(collection_)->RemoveById(id));
  for (std::size_t i = 1; i < servers_.size(); ++i) {
    DocStoreServer* slave = servers_[i];
    if (!slave->CheckAvailable().ok()) continue;
    Status s = slave->db()->GetCollection(collection_)->RemoveById(id);
    (void)s;
  }
  return Status::OK();
}

}  // namespace hotman::docstore
