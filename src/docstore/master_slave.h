#ifndef HOTMAN_DOCSTORE_MASTER_SLAVE_H_
#define HOTMAN_DOCSTORE_MASTER_SLAVE_H_

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "docstore/server.h"

namespace hotman::docstore {

/// Original MongoDB's "simple master/slave mechanism for data replication"
/// — the availability baseline the paper criticizes ("which reduces the
/// data availability obviously") and benchmarks against in Fig. 17.
///
/// Semantics:
///  - every write goes to the master and is then copied to each reachable
///    slave (slaves that are down simply miss the write — no hinted
///    handoff, no write-back, no quorum);
///  - when the master is unavailable, writes FAIL — this is the behaviour
///    that separates the baseline from the NWR layer under faults;
///  - reads prefer the master and fail over to any reachable slave (which
///    may return stale data after missed replications).
class MasterSlaveCluster {
 public:
  /// `servers[0]` is the master, the rest are slaves. Servers are borrowed.
  MasterSlaveCluster(std::vector<DocStoreServer*> servers, std::string collection);

  /// Upserts `doc` (must carry `_id`) on the master, then best-effort on
  /// every slave. Fails if the master is unavailable.
  Status Put(const bson::Document& doc);

  /// Reads by `_id` from the master, failing over to slaves.
  Result<bson::Document> Get(const bson::Value& id);

  /// Deletes by `_id` on the master (then best-effort on slaves).
  Status Remove(const bson::Value& id);

  DocStoreServer* master() { return servers_.front(); }
  const std::vector<DocStoreServer*>& servers() const { return servers_; }

  /// Writes that reached the master but missed >= 1 slave (staleness
  /// window metric used by tests).
  std::size_t missed_replications() const {
    MutexLock lock(&mu_);
    return missed_replications_;
  }

 private:
  std::vector<DocStoreServer*> servers_;
  std::string collection_;
  mutable Mutex mu_;
  std::size_t missed_replications_ HOTMAN_GUARDED_BY(mu_) = 0;
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_MASTER_SLAVE_H_
