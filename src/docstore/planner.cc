#include "docstore/planner.h"

namespace hotman::docstore {

std::string QueryPlan::ToString() const {
  switch (kind) {
    case Kind::kPrimaryLookup:
      return "PRIMARY";
    case Kind::kIndexScan:
      return "INDEX(" + index_path + ")";
    case Kind::kFullScan:
      return "SCAN";
  }
  return "?";
}

QueryPlan ChoosePlan(const query::Matcher& matcher,
                     const std::vector<IndexSpec>& indexes) {
  QueryPlan plan;

  // 1. `_id` equality is always the cheapest path.
  query::FieldBounds id_bounds = matcher.BoundsFor("_id");
  if (id_bounds.eq.has_value()) {
    plan.kind = QueryPlan::Kind::kPrimaryLookup;
    plan.bounds = std::move(id_bounds);
    return plan;
  }

  // 2. Prefer an equality-constrained index, then any range-constrained one.
  const IndexSpec* best_range = nullptr;
  query::FieldBounds best_range_bounds;
  for (const IndexSpec& spec : indexes) {
    query::FieldBounds b = matcher.BoundsFor(spec.path);
    if (b.eq.has_value()) {
      plan.kind = QueryPlan::Kind::kIndexScan;
      plan.index_path = spec.path;
      plan.bounds = std::move(b);
      return plan;
    }
    if (b.IsConstrained() && best_range == nullptr) {
      best_range = &spec;
      best_range_bounds = std::move(b);
    }
  }
  if (best_range != nullptr) {
    plan.kind = QueryPlan::Kind::kIndexScan;
    plan.index_path = best_range->path;
    plan.bounds = std::move(best_range_bounds);
    return plan;
  }

  plan.kind = QueryPlan::Kind::kFullScan;
  return plan;
}

}  // namespace hotman::docstore
