#ifndef HOTMAN_DOCSTORE_PLANNER_H_
#define HOTMAN_DOCSTORE_PLANNER_H_

#include <string>
#include <vector>

#include "docstore/index.h"
#include "query/matcher.h"

namespace hotman::docstore {

/// Access path chosen for a query.
struct QueryPlan {
  enum class Kind {
    kPrimaryLookup,  ///< exact `_id` match: O(log n) point read
    kIndexScan,      ///< bounded scan of one secondary index
    kFullScan,       ///< iterate every document
  };

  Kind kind = Kind::kFullScan;
  std::string index_path;       ///< for kIndexScan: the indexed field path
  query::FieldBounds bounds;    ///< for kPrimaryLookup/kIndexScan

  /// "PRIMARY", "INDEX(path)" or "SCAN" — used by Explain() and tests.
  std::string ToString() const;
};

/// Selects the cheapest access path for `matcher`: `_id` equality wins,
/// then an equality-constrained secondary index, then a range-constrained
/// one, and a full collection scan otherwise.
QueryPlan ChoosePlan(const query::Matcher& matcher,
                     const std::vector<IndexSpec>& indexes);

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_PLANNER_H_
