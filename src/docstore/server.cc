#include "docstore/server.h"

namespace hotman::docstore {

DocStoreServer::DocStoreServer(std::string address, std::uint64_t machine_id,
                               const Clock* clock)
    : address_(std::move(address)),
      db_(std::make_unique<Database>(address_, machine_id, clock)) {}

Result<std::string> DocStoreServer::QueryVersion() const {
  HOTMAN_RETURN_IF_ERROR(CheckAvailable());
  return std::string(kVersion);
}

Status DocStoreServer::CheckAvailable() const {
  switch (fault()) {
    case FaultMode::kNone:
      return Status::OK();
    case FaultMode::kNetworkException:
      return Status::NetworkError("network exception at " + address_);
    case FaultMode::kDiskError:
      return Status::IOError("disk IO error at " + address_);
    case FaultMode::kBlocked:
      return Status::Busy("server process blocked at " + address_);
    case FaultMode::kDown:
      return Status::Unavailable("node breakdown at " + address_);
  }
  return Status::OK();
}

Status DocStoreServer::CheckConnectable() const {
  switch (fault()) {
    case FaultMode::kNetworkException:
      return Status::NetworkError("network exception at " + address_);
    case FaultMode::kDown:
      return Status::Unavailable("node breakdown at " + address_);
    default:
      return Status::OK();
  }
}

}  // namespace hotman::docstore
