#ifndef HOTMAN_DOCSTORE_SERVER_H_
#define HOTMAN_DOCSTORE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/clock.h"
#include "docstore/database.h"

namespace hotman::docstore {

/// Fault modes a storage server can be driven into (Table 2's failure
/// taxonomy). Short failures (network/disk/blocked) recover by themselves;
/// kDown models node breakdown (a long failure).
enum class FaultMode {
  kNone = 0,
  kNetworkException,  ///< short: connections fail with NetworkError
  kDiskError,         ///< short: reads/writes fail with IOError
  kBlocked,           ///< short: the server process is wedged (Busy)
  kDown,              ///< long: node breakdown (Unavailable)
};

/// One "MongoDB node": a Database behind a fallible service surface.
///
/// The cluster layer talks to servers only through this class, which is
/// where fault injection applies — exactly the boundary at which the paper's
/// wrapped Connect/Get/Put operations observe exceptions.
class DocStoreServer {
 public:
  /// `address` is the node identity ("db1:27017"); `machine_id` seeds the
  /// ObjectId generator.
  DocStoreServer(std::string address, std::uint64_t machine_id, const Clock* clock);

  const std::string& address() const { return address_; }

  /// Server software version, queried by the connection test (§5.1 step 3).
  /// Matches Table 1's MongoDB 1.6.3.
  static constexpr const char* kVersion = "1.6.3";

  /// Version probe used by Connect's connection test. Fails under any fault.
  Result<std::string> QueryVersion() const;

  /// OK when the server can serve requests, else the fault's status.
  Status CheckAvailable() const;

  /// Same but for establishing a TCP connection: only network-level and
  /// breakdown faults reject connections (a blocked process still accepts).
  Status CheckConnectable() const;

  Database* db() { return db_.get(); }
  const Database* db() const { return db_.get(); }

  void SetFault(FaultMode mode) { fault_.store(mode, std::memory_order_relaxed); }
  FaultMode fault() const { return fault_.load(std::memory_order_relaxed); }
  bool IsHealthy() const { return fault() == FaultMode::kNone; }

 private:
  std::string address_;
  std::unique_ptr<Database> db_;
  // Lock-free by design: fault injection flips this from the test/driver
  // thread while worker threads read it on every operation; relaxed order
  // suffices because no other state is published through the flag.
  std::atomic<FaultMode> fault_{FaultMode::kNone};
};

}  // namespace hotman::docstore

#endif  // HOTMAN_DOCSTORE_SERVER_H_
