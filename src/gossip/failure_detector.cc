#include "gossip/failure_detector.h"

namespace hotman::gossip {

FailureDetector::FailureDetector(std::string self, net::Executor* loop,
                                 const NodeStateMap* states, Config config)
    : self_(std::move(self)), loop_(loop), states_(states), config_(config) {}

void FailureDetector::Start(TransitionFn on_transition) {
  if (running_) return;
  on_transition_ = std::move(on_transition);
  running_ = true;
  ScheduleNextCheck();
}

void FailureDetector::Stop() {
  if (!running_) return;
  running_ = false;
  loop_->CancelTimer(timer_);
}

void FailureDetector::ScheduleNextCheck() {
  timer_ = loop_->ScheduleTimer(config_.check_interval, [this]() {
    if (!running_) return;
    Check();
    ScheduleNextCheck();
  });
}

void FailureDetector::Check() {
  const Micros now = loop_->NowMicros();
  for (const std::string& endpoint : states_->Endpoints()) {
    if (endpoint == self_) continue;
    auto last = states_->LastHeard(endpoint);
    if (!last.has_value()) continue;  // never heard: no verdict yet
    const Micros silence = now - *last;
    Liveness verdict = Liveness::kAlive;
    if (silence >= config_.dead_after) {
      verdict = Liveness::kDead;
    } else if (silence >= config_.suspect_after) {
      verdict = Liveness::kSuspect;
    }
    auto it = verdicts_.find(endpoint);
    const Liveness prior = it == verdicts_.end() ? Liveness::kAlive : it->second;
    if (verdict != prior) {
      verdicts_[endpoint] = verdict;
      if (on_transition_) on_transition_(endpoint, prior, verdict);
    } else if (it == verdicts_.end()) {
      verdicts_.emplace(endpoint, verdict);
    }
  }
}

Liveness FailureDetector::StatusOf(const std::string& endpoint) const {
  auto it = verdicts_.find(endpoint);
  return it == verdicts_.end() ? Liveness::kAlive : it->second;
}

std::vector<std::string> FailureDetector::EndpointsIn(Liveness liveness) const {
  std::vector<std::string> out;
  for (const auto& [endpoint, verdict] : verdicts_) {
    if (verdict == liveness) out.push_back(endpoint);
  }
  return out;
}

}  // namespace hotman::gossip
