#ifndef HOTMAN_GOSSIP_FAILURE_DETECTOR_H_
#define HOTMAN_GOSSIP_FAILURE_DETECTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gossip/node_state.h"
#include "net/executor.h"

namespace hotman::gossip {

/// Liveness verdict for an endpoint.
enum class Liveness {
  kAlive,
  kSuspect,  ///< short failure suspected (missed heartbeats)
  kDead,     ///< long failure (silent beyond the dead threshold)
};

/// Heartbeat-staleness failure detector (§5.2.4).
///
/// Classifies peers by how long their gossiped state has been silent:
/// silence past `suspect_after` is a *short* failure (network exception,
/// blocked process — "the failure could recover itself"); silence past
/// `dead_after` is a *long* failure ("could not recover by itself"),
/// which on seed nodes triggers the cluster's long-failure repair.
class FailureDetector {
 public:
  struct Config {
    Micros suspect_after = 3 * kMicrosPerSecond;
    Micros dead_after = 15 * kMicrosPerSecond;
    Micros check_interval = 1 * kMicrosPerSecond;
  };

  using TransitionFn =
      std::function<void(const std::string& endpoint, Liveness from, Liveness to)>;

  FailureDetector(std::string self, net::Executor* loop, const NodeStateMap* states,
                  Config config);

  /// Starts periodic sweeps; `on_transition` fires on every state change.
  void Start(TransitionFn on_transition);
  void Stop();

  /// One sweep over all known endpoints (also callable directly in tests).
  void Check();

  /// Current verdict for `endpoint` (kAlive when never heard of — the
  /// detector only reports on endpoints it has state for).
  Liveness StatusOf(const std::string& endpoint) const;

  /// Endpoints currently classified as `liveness`.
  std::vector<std::string> EndpointsIn(Liveness liveness) const;

 private:
  void ScheduleNextCheck();

  std::string self_;
  net::Executor* loop_;
  const NodeStateMap* states_;
  Config config_;
  TransitionFn on_transition_;
  std::map<std::string, Liveness> verdicts_;
  bool running_ = false;
  net::TimerId timer_ = 0;
};

}  // namespace hotman::gossip

#endif  // HOTMAN_GOSSIP_FAILURE_DETECTOR_H_
