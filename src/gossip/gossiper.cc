#include "gossip/gossiper.h"

#include <algorithm>

namespace hotman::gossip {

Gossiper::Gossiper(std::string self, std::vector<std::string> seeds, bool is_seed,
                   net::Executor* loop, GossipConfig config, std::uint64_t rng_seed,
                   SendFn send)
    : self_(std::move(self)),
      seeds_(std::move(seeds)),
      is_seed_(is_seed),
      loop_(loop),
      config_(config),
      rng_(rng_seed),
      send_(std::move(send)) {
  for (const std::string& seed : seeds_) {
    if (seed != self_) peers_.insert(seed);
  }
}

void Gossiper::Boot(std::int64_t generation) {
  EndpointState* local = states_.GetOrCreate(self_);
  local->set_generation(generation);
  heartbeat_count_ = 0;
  local->SetEntry(kStateHeartbeat, "0", NextVersion());
  local->SetEntry(kStateStatus, "NORMAL", NextVersion());
  states_.TouchLiveness(self_, loop_->NowMicros());
}

void Gossiper::Start() {
  if (running_) return;
  running_ = true;
  ScheduleNextRound();
}

void Gossiper::ScheduleNextRound() {
  timer_ = loop_->ScheduleTimer(config_.interval, [this]() {
    if (!running_) return;
    Tick();
    ScheduleNextRound();
  });
}

void Gossiper::Stop() {
  if (!running_) return;
  running_ = false;
  loop_->CancelTimer(timer_);
}

void Gossiper::SetLocalState(const std::string& key, std::string value) {
  states_.GetOrCreate(self_)->SetEntry(key, std::move(value), NextVersion());
}

void Gossiper::AddPeer(const std::string& endpoint) {
  if (endpoint != self_) peers_.insert(endpoint);
}

std::vector<GossipDigest> Gossiper::BuildDigests() const {
  std::vector<GossipDigest> digests;
  for (const auto& [endpoint, state] : states_.states()) {
    digests.push_back(GossipDigest{endpoint, state.generation(), state.MaxVersion()});
  }
  return digests;
}

EndpointStateUpdate Gossiper::BuildUpdate(const std::string& endpoint,
                                          std::int64_t after_version) const {
  EndpointStateUpdate update;
  update.endpoint = endpoint;
  const EndpointState* state = states_.Get(endpoint);
  if (state == nullptr) return update;
  update.generation = state->generation();
  update.entries = state->EntriesAfter(after_version);
  return update;
}

void Gossiper::ApplyUpdates(const std::vector<EndpointStateUpdate>& updates) {
  for (const EndpointStateUpdate& update : updates) {
    if (update.endpoint == self_) continue;  // only we define our own state
    EndpointState incoming(update.generation);
    for (const auto& [key, entry] : update.entries) {
      incoming.SetEntry(key, entry.value, entry.version);
    }
    EndpointState* local = states_.GetOrCreate(update.endpoint);
    const bool changed = local->Merge(incoming);
    if (changed) {
      states_.TouchLiveness(update.endpoint, loop_->NowMicros());
      peers_.insert(update.endpoint);
      if (on_state_change_) {
        for (const auto& [key, entry] : update.entries) {
          const VersionedEntry* now_current = local->GetEntry(key);
          if (now_current != nullptr && now_current->version == entry.version) {
            on_state_change_(update.endpoint, key, entry.value);
          }
        }
      }
    }
  }
}

std::vector<std::string> Gossiper::ChoosePeers() {
  std::vector<std::string> chosen;
  if (peers_.empty()) return chosen;
  std::vector<std::string> seeds_alive;
  std::vector<std::string> all(peers_.begin(), peers_.end());
  for (const std::string& seed : seeds_) {
    if (seed != self_) seeds_alive.push_back(seed);
  }
  for (int i = 0; i < config_.fanout; ++i) {
    // Normal nodes bias toward seeds; seeds gossip uniformly (which keeps
    // seed-to-seed state "consistent all over the system").
    if (!is_seed_ && !seeds_alive.empty() && rng_.Chance(config_.seed_bias)) {
      chosen.push_back(seeds_alive[rng_.Uniform(seeds_alive.size())]);
    } else {
      chosen.push_back(all[rng_.Uniform(all.size())]);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  return chosen;
}

void Gossiper::Tick() {
  // (1) heartbeat++ and collect digests.
  ++heartbeat_count_;
  EndpointState* local = states_.GetOrCreate(self_);
  local->SetEntry(kStateHeartbeat, std::to_string(heartbeat_count_), NextVersion());
  states_.TouchLiveness(self_, loop_->NowMicros());

  SynMessage syn;
  syn.digests = BuildDigests();
  const bson::Document body = EncodeSyn(syn);
  for (const std::string& peer : ChoosePeers()) {
    ++rounds_;
    send_(peer, kMsgGossipSyn, body);
  }
}

void Gossiper::HandleSyn(const std::string& from, const bson::Document& body) {
  auto syn = DecodeSyn(body);
  if (!syn.ok()) return;  // malformed gossip is dropped
  peers_.insert(from);

  Ack1Message ack1;
  for (const GossipDigest& digest : syn->digests) {
    const EndpointState* local = states_.Get(digest.endpoint);
    if (local == nullptr) {
      // Unknown endpoint: ask for everything.
      ack1.requests.push_back(GossipDigest{digest.endpoint, 0, 0});
      continue;
    }
    if (digest.generation > local->generation()) {
      ack1.requests.push_back(GossipDigest{digest.endpoint, 0, 0});
    } else if (digest.generation < local->generation()) {
      ack1.states.push_back(BuildUpdate(digest.endpoint, 0));
    } else if (digest.max_version > local->MaxVersion()) {
      ack1.requests.push_back(
          GossipDigest{digest.endpoint, local->generation(), local->MaxVersion()});
    } else if (digest.max_version < local->MaxVersion()) {
      ack1.states.push_back(BuildUpdate(digest.endpoint, digest.max_version));
    }
  }
  // Endpoints the sender did not mention at all are news to it.
  for (const auto& [endpoint, state] : states_.states()) {
    bool mentioned = false;
    for (const GossipDigest& digest : syn->digests) {
      if (digest.endpoint == endpoint) {
        mentioned = true;
        break;
      }
    }
    if (!mentioned) ack1.states.push_back(BuildUpdate(endpoint, 0));
  }
  send_(from, kMsgGossipAck1, EncodeAck1(ack1));
}

void Gossiper::HandleAck1(const std::string& from, const bson::Document& body) {
  auto ack1 = DecodeAck1(body);
  if (!ack1.ok()) return;
  ApplyUpdates(ack1->states);

  Ack2Message ack2;
  for (const GossipDigest& request : ack1->requests) {
    if (states_.Get(request.endpoint) == nullptr) continue;
    const std::int64_t after =
        (request.generation == states_.Get(request.endpoint)->generation())
            ? request.max_version
            : 0;
    ack2.states.push_back(BuildUpdate(request.endpoint, after));
  }
  if (!ack2.states.empty()) send_(from, kMsgGossipAck2, EncodeAck2(ack2));
}

void Gossiper::HandleAck2(const std::string& from, const bson::Document& body) {
  (void)from;
  auto ack2 = DecodeAck2(body);
  if (!ack2.ok()) return;
  ApplyUpdates(ack2->states);
}

}  // namespace hotman::gossip
