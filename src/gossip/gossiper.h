#ifndef HOTMAN_GOSSIP_GOSSIPER_H_
#define HOTMAN_GOSSIP_GOSSIPER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "gossip/messages.h"
#include "gossip/node_state.h"
#include "net/executor.h"

namespace hotman::gossip {

/// Configuration of the anti-entropy protocol.
struct GossipConfig {
  Micros interval = 1 * kMicrosPerSecond;  ///< gossip round period
  int fanout = 1;                          ///< peers contacted per round
  /// Probability that a normal node gossips to a seed on a round (the
  /// paper's topology: "normal node communicates with seed nodes
  /// periodically"; seeds talk among themselves).
  double seed_bias = 0.6;
};

/// Push-pull gossiper for one node (§5.2.3).
///
/// Every round the node increments its heartbeat, picks peers (seed-biased)
/// and runs the three-message exchange:
///   A -> B: GossipDigestSynMessage   (digests: endpoint, generation, maxv)
///   B -> A: GossipDigestAck1Message  (states B is newer on + B's requests)
///   A -> B: GossipDigestAck2Message  (states satisfying B's requests)
/// Transport is injected (SendFn + net::Executor timers) so the same code
/// runs over the simulated network, over real TCP, or in-process in tests.
class Gossiper {
 public:
  /// Sends (to, message_type, body) into the transport.
  using SendFn =
      std::function<void(const std::string&, const std::string&, bson::Document)>;
  /// Fired when merged gossip changes `endpoint`'s entry `key`.
  using StateChangeFn = std::function<void(
      const std::string& endpoint, const std::string& key, const std::string& value)>;

  Gossiper(std::string self, std::vector<std::string> seeds, bool is_seed,
           net::Executor* loop, GossipConfig config, std::uint64_t rng_seed,
           SendFn send);

  /// Registers (re-registers) the local endpoint with a fresh boot
  /// generation and initial app state.
  void Boot(std::int64_t generation);

  /// Starts the periodic rounds on the event loop.
  void Start();
  void Stop();

  /// One gossip round: heartbeat++, choose peers, send Syn. Exposed for
  /// deterministic unit tests; Start() calls it on a timer.
  void Tick();

  /// Updates one of the local node's application states (load, vnodes,
  /// status, ...) with the next version number.
  void SetLocalState(const std::string& key, std::string value);

  /// Adds a peer learned out-of-band (e.g. from configuration).
  void AddPeer(const std::string& endpoint);

  /// Transport entry points (wired by the owner to the network dispatcher).
  void HandleSyn(const std::string& from, const bson::Document& body);
  void HandleAck1(const std::string& from, const bson::Document& body);
  void HandleAck2(const std::string& from, const bson::Document& body);

  void SetStateChangeListener(StateChangeFn fn) { on_state_change_ = std::move(fn); }

  const NodeStateMap& states() const { return states_; }
  NodeStateMap* mutable_states() { return &states_; }
  const std::string& self() const { return self_; }
  bool is_seed() const { return is_seed_; }
  const std::set<std::string>& peers() const { return peers_; }

  /// Count of completed three-way exchanges initiated by this node.
  std::size_t rounds() const { return rounds_; }

 private:
  std::vector<GossipDigest> BuildDigests() const;
  EndpointStateUpdate BuildUpdate(const std::string& endpoint,
                                  std::int64_t after_version) const;
  void ApplyUpdates(const std::vector<EndpointStateUpdate>& updates);
  std::vector<std::string> ChoosePeers();
  void ScheduleNextRound();
  std::int64_t NextVersion() { return ++version_counter_; }

  std::string self_;
  std::vector<std::string> seeds_;
  bool is_seed_;
  net::Executor* loop_;
  GossipConfig config_;
  Rng rng_;
  SendFn send_;
  StateChangeFn on_state_change_;

  NodeStateMap states_;
  std::set<std::string> peers_;
  std::int64_t version_counter_ = 0;
  std::int64_t heartbeat_count_ = 0;
  bool running_ = false;
  net::TimerId timer_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace hotman::gossip

#endif  // HOTMAN_GOSSIP_GOSSIPER_H_
