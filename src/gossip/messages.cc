#include "gossip/messages.h"

namespace hotman::gossip {

namespace {

using bson::Array;
using bson::Document;
using bson::Value;

Value EncodeDigest(const GossipDigest& digest) {
  Document doc;
  doc.Append("ep", digest.endpoint);
  doc.Append("gen", digest.generation);
  doc.Append("maxv", digest.max_version);
  return Value(std::move(doc));
}

Result<GossipDigest> DecodeDigest(const Value& v) {
  if (!v.is_document()) return Status::Corruption("digest must be a document");
  const Document& doc = v.as_document();
  const Value* ep = doc.Get("ep");
  const Value* gen = doc.Get("gen");
  const Value* maxv = doc.Get("maxv");
  if (ep == nullptr || !ep->is_string() || gen == nullptr || !gen->is_number() ||
      maxv == nullptr || !maxv->is_number()) {
    return Status::Corruption("malformed gossip digest");
  }
  GossipDigest out;
  out.endpoint = ep->as_string();
  out.generation = gen->NumberAsInt64();
  out.max_version = maxv->NumberAsInt64();
  return out;
}

Value EncodeStateUpdate(const EndpointStateUpdate& update) {
  Document doc;
  doc.Append("ep", update.endpoint);
  doc.Append("gen", update.generation);
  Array entries;
  for (const auto& [key, entry] : update.entries) {
    Document e;
    e.Append("k", key);
    e.Append("v", entry.value);
    e.Append("ver", entry.version);
    entries.emplace_back(std::move(e));
  }
  doc.Append("entries", std::move(entries));
  return Value(std::move(doc));
}

Result<EndpointStateUpdate> DecodeStateUpdate(const Value& v) {
  if (!v.is_document()) return Status::Corruption("state update must be a document");
  const Document& doc = v.as_document();
  const Value* ep = doc.Get("ep");
  const Value* gen = doc.Get("gen");
  const Value* entries = doc.Get("entries");
  if (ep == nullptr || !ep->is_string() || gen == nullptr || !gen->is_number() ||
      entries == nullptr || !entries->is_array()) {
    return Status::Corruption("malformed state update");
  }
  EndpointStateUpdate out;
  out.endpoint = ep->as_string();
  out.generation = gen->NumberAsInt64();
  for (const Value& ev : entries->as_array()) {
    if (!ev.is_document()) return Status::Corruption("malformed state entry");
    const Document& e = ev.as_document();
    const Value* k = e.Get("k");
    const Value* val = e.Get("v");
    const Value* ver = e.Get("ver");
    if (k == nullptr || !k->is_string() || val == nullptr || !val->is_string() ||
        ver == nullptr || !ver->is_number()) {
      return Status::Corruption("malformed state entry");
    }
    out.entries.emplace_back(k->as_string(),
                             VersionedEntry{val->as_string(), ver->NumberAsInt64()});
  }
  return out;
}

Array EncodeDigests(const std::vector<GossipDigest>& digests) {
  Array out;
  out.reserve(digests.size());
  for (const GossipDigest& d : digests) out.push_back(EncodeDigest(d));
  return out;
}

Result<std::vector<GossipDigest>> DecodeDigests(const Value* v) {
  if (v == nullptr || !v->is_array()) {
    return Status::Corruption("missing digest array");
  }
  std::vector<GossipDigest> out;
  for (const Value& dv : v->as_array()) {
    auto digest = DecodeDigest(dv);
    if (!digest.ok()) return digest.status();
    out.push_back(std::move(*digest));
  }
  return out;
}

Array EncodeStates(const std::vector<EndpointStateUpdate>& states) {
  Array out;
  out.reserve(states.size());
  for (const EndpointStateUpdate& s : states) out.push_back(EncodeStateUpdate(s));
  return out;
}

Result<std::vector<EndpointStateUpdate>> DecodeStates(const Value* v) {
  if (v == nullptr || !v->is_array()) {
    return Status::Corruption("missing states array");
  }
  std::vector<EndpointStateUpdate> out;
  for (const Value& sv : v->as_array()) {
    auto state = DecodeStateUpdate(sv);
    if (!state.ok()) return state.status();
    out.push_back(std::move(*state));
  }
  return out;
}

}  // namespace

bson::Document EncodeSyn(const SynMessage& msg) {
  Document doc;
  doc.Append("digests", EncodeDigests(msg.digests));
  return doc;
}

Result<SynMessage> DecodeSyn(const bson::Document& doc) {
  auto digests = DecodeDigests(doc.Get("digests"));
  if (!digests.ok()) return digests.status();
  SynMessage out;
  out.digests = std::move(*digests);
  return out;
}

bson::Document EncodeAck1(const Ack1Message& msg) {
  Document doc;
  doc.Append("states", EncodeStates(msg.states));
  doc.Append("requests", EncodeDigests(msg.requests));
  return doc;
}

Result<Ack1Message> DecodeAck1(const bson::Document& doc) {
  auto states = DecodeStates(doc.Get("states"));
  if (!states.ok()) return states.status();
  auto requests = DecodeDigests(doc.Get("requests"));
  if (!requests.ok()) return requests.status();
  Ack1Message out;
  out.states = std::move(*states);
  out.requests = std::move(*requests);
  return out;
}

bson::Document EncodeAck2(const Ack2Message& msg) {
  Document doc;
  doc.Append("states", EncodeStates(msg.states));
  return doc;
}

Result<Ack2Message> DecodeAck2(const bson::Document& doc) {
  auto states = DecodeStates(doc.Get("states"));
  if (!states.ok()) return states.status();
  Ack2Message out;
  out.states = std::move(*states);
  return out;
}

std::string FormatStateLine(const std::string& endpoint, const EndpointState& state) {
  auto entry_or = [&state](const char* key) -> std::string {
    const VersionedEntry* e = state.GetEntry(key);
    return e == nullptr ? "?" : e->value;
  };
  auto version_or = [&state](const char* key) -> std::int64_t {
    const VersionedEntry* e = state.GetEntry(key);
    return e == nullptr ? 0 : e->version;
  };
  std::string line = endpoint;
  line += "@";
  line += entry_or(kStateVnodes);
  line += ";bootGeneration:" + std::to_string(state.generation());
  line += ";heartbeat:" + entry_or(kStateHeartbeat) + "/" +
          std::to_string(version_or(kStateHeartbeat));
  line += ";load:" + entry_or(kStateLoad);
  return line;
}

}  // namespace hotman::gossip
