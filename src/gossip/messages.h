#ifndef HOTMAN_GOSSIP_MESSAGES_H_
#define HOTMAN_GOSSIP_MESSAGES_H_

#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "gossip/node_state.h"

namespace hotman::gossip {

/// Message type tags carried on the simulated network.
inline constexpr const char* kMsgGossipSyn = "GossipDigestSynMessage";
inline constexpr const char* kMsgGossipAck1 = "GossipDigestAck1Message";
inline constexpr const char* kMsgGossipAck2 = "GossipDigestAck2Message";

/// Digest of one endpoint's state: "node A collects states with key and
/// version and then sends it to node B".
struct GossipDigest {
  std::string endpoint;
  std::int64_t generation = 0;
  std::int64_t max_version = 0;
};

/// Full or delta state for one endpoint (shipped in Ack1/Ack2).
struct EndpointStateUpdate {
  std::string endpoint;
  std::int64_t generation = 0;
  std::vector<std::pair<std::string, VersionedEntry>> entries;
};

/// GossipDigestSynMessage: the opener of the push-pull exchange.
struct SynMessage {
  std::vector<GossipDigest> digests;
};

/// GossipDigestAck1Message: states B is newer on, plus the endpoints B
/// wants A's newer state for (each with the version B already has).
struct Ack1Message {
  std::vector<EndpointStateUpdate> states;
  std::vector<GossipDigest> requests;  ///< max_version = "send entries after this"
};

/// GossipDigestAck2Message: the states A sends back to satisfy B's requests.
struct Ack2Message {
  std::vector<EndpointStateUpdate> states;
};

/// BSON (de)serialization — gossip crosses the simulated network in the
/// same wire format as data.
bson::Document EncodeSyn(const SynMessage& msg);
Result<SynMessage> DecodeSyn(const bson::Document& doc);
bson::Document EncodeAck1(const Ack1Message& msg);
Result<Ack1Message> DecodeAck1(const bson::Document& doc);
bson::Document EncodeAck2(const Ack2Message& msg);
Result<Ack2Message> DecodeAck2(const bson::Document& doc);

/// Renders the paper's human-readable state line:
/// "host@vnodes;bootGeneration:g;heartbeat:h;load:l".
std::string FormatStateLine(const std::string& endpoint, const EndpointState& state);

}  // namespace hotman::gossip

#endif  // HOTMAN_GOSSIP_MESSAGES_H_
