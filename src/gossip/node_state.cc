#include "gossip/node_state.h"

#include <algorithm>

namespace hotman::gossip {

std::int64_t EndpointState::MaxVersion() const {
  std::int64_t max_version = 0;
  for (const auto& [key, entry] : entries_) {
    max_version = std::max(max_version, entry.version);
  }
  return max_version;
}

void EndpointState::SetEntry(const std::string& key, std::string value,
                             std::int64_t version) {
  entries_[key] = VersionedEntry{std::move(value), version};
}

const VersionedEntry* EndpointState::GetEntry(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, VersionedEntry>> EndpointState::EntriesAfter(
    std::int64_t after) const {
  std::vector<std::pair<std::string, VersionedEntry>> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.version > after) out.emplace_back(key, entry);
  }
  return out;
}

bool EndpointState::Merge(const EndpointState& other) {
  bool changed = false;
  if (other.generation_ > generation_) {
    // A reboot resets all state: replace wholesale.
    generation_ = other.generation_;
    entries_ = other.entries_;
    return true;
  }
  if (other.generation_ < generation_) return false;  // stale information
  for (const auto& [key, entry] : other.entries_) {
    auto it = entries_.find(key);
    if (it == entries_.end() || entry.version > it->second.version) {
      entries_[key] = entry;
      changed = true;
    }
  }
  return changed;
}

EndpointState* NodeStateMap::GetOrCreate(const std::string& endpoint) {
  return &states_[endpoint];
}

const EndpointState* NodeStateMap::Get(const std::string& endpoint) const {
  auto it = states_.find(endpoint);
  return it == states_.end() ? nullptr : &it->second;
}

std::vector<std::string> NodeStateMap::Endpoints() const {
  std::vector<std::string> out;
  out.reserve(states_.size());
  for (const auto& [endpoint, state] : states_) out.push_back(endpoint);
  return out;
}

void NodeStateMap::TouchLiveness(const std::string& endpoint, Micros now) {
  last_heard_[endpoint] = now;
}

std::optional<Micros> NodeStateMap::LastHeard(const std::string& endpoint) const {
  auto it = last_heard_.find(endpoint);
  if (it == last_heard_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hotman::gossip
