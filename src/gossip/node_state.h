#ifndef HOTMAN_GOSSIP_NODE_STATE_H_
#define HOTMAN_GOSSIP_NODE_STATE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hotman::gossip {

/// Well-known application-state keys (the fields of the paper's gossip
/// message template "HostAddress@VirtualNode;bootGeneration:...;heartbeat:
/// ...;load:...").
inline constexpr const char* kStateHeartbeat = "heartbeat";
inline constexpr const char* kStateLoad = "load";
inline constexpr const char* kStateVnodes = "vnodes";
inline constexpr const char* kStateStatus = "status";  // NORMAL / LEAVING / REMOVED

/// One gossiped key-value with its version: "each state is appended a
/// version number. The greater of version number means newer states."
struct VersionedEntry {
  std::string value;
  std::int64_t version = 0;
};

/// Everything one endpoint asserts about itself. `generation` increments on
/// every (re)boot; state entries carry per-endpoint monotone versions.
class EndpointState {
 public:
  EndpointState() = default;
  explicit EndpointState(std::int64_t generation) : generation_(generation) {}

  std::int64_t generation() const { return generation_; }
  void set_generation(std::int64_t g) { generation_ = g; }

  /// Highest version among entries (the digest's "maxVersion").
  std::int64_t MaxVersion() const;

  /// Sets `key` with an explicit version (merge path).
  void SetEntry(const std::string& key, std::string value, std::int64_t version);

  const VersionedEntry* GetEntry(const std::string& key) const;

  /// Entries with version strictly greater than `after` (delta shipping).
  std::vector<std::pair<std::string, VersionedEntry>> EntriesAfter(
      std::int64_t after) const;

  const std::map<std::string, VersionedEntry>& entries() const { return entries_; }

  /// Merges `other` into this endpoint's view: a newer generation replaces
  /// wholesale; the same generation takes the per-key max version. Returns
  /// true when anything changed.
  bool Merge(const EndpointState& other);

 private:
  std::int64_t generation_ = 0;
  std::map<std::string, VersionedEntry> entries_;
};

/// The local node's full view of the cluster: its own state plus what it
/// has heard about every other endpoint, with liveness bookkeeping.
class NodeStateMap {
 public:
  /// Endpoint state, creating an empty record when unknown.
  EndpointState* GetOrCreate(const std::string& endpoint);
  const EndpointState* Get(const std::string& endpoint) const;

  /// Endpoints currently known (including the local one).
  std::vector<std::string> Endpoints() const;

  /// Records that fresh information about `endpoint` arrived at `now`
  /// (feeds the failure detector).
  void TouchLiveness(const std::string& endpoint, Micros now);

  /// Last time fresh state for `endpoint` arrived, or nullopt if never.
  std::optional<Micros> LastHeard(const std::string& endpoint) const;

  const std::map<std::string, EndpointState>& states() const { return states_; }

 private:
  std::map<std::string, EndpointState> states_;
  std::map<std::string, Micros> last_heard_;
};

}  // namespace hotman::gossip

#endif  // HOTMAN_GOSSIP_NODE_STATE_H_
