#include "hashring/ketama.h"

#include "hashring/md5.h"

namespace hotman::hashring {

namespace {

std::uint32_t PointFromDigest(const Md5::Digest& d, int index) {
  const int base = index * 4;
  return (static_cast<std::uint32_t>(d[base + 3]) << 24) |
         (static_cast<std::uint32_t>(d[base + 2]) << 16) |
         (static_cast<std::uint32_t>(d[base + 1]) << 8) |
         static_cast<std::uint32_t>(d[base]);
}

}  // namespace

std::uint32_t KetamaHash(std::string_view key) {
  return PointFromDigest(Md5::Hash(key), 0);
}

std::uint32_t KetamaHashAt(std::string_view key, int index) {
  return PointFromDigest(Md5::Hash(key), index);
}

std::vector<std::uint32_t> VirtualPoints(std::string_view node_key, int count) {
  std::vector<std::uint32_t> points;
  points.reserve(count);
  for (int group = 0; static_cast<int>(points.size()) < count; ++group) {
    std::string salted(node_key);
    salted += '-';
    salted += std::to_string(group);
    const Md5::Digest d = Md5::Hash(salted);
    for (int i = 0; i < 4 && static_cast<int>(points.size()) < count; ++i) {
      points.push_back(PointFromDigest(d, i));
    }
  }
  return points;
}

std::size_t ModNPlacement(std::string_view key, std::size_t num_nodes) {
  return KetamaHash(key) % num_nodes;
}

}  // namespace hotman::hashring
