#ifndef HOTMAN_HASHRING_KETAMA_H_
#define HOTMAN_HASHRING_KETAMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hotman::hashring {

/// Ketama point hash: the low 4 bytes of MD5(key), as in libketama /
/// memcached (the paper cites Ketama [25] as its hash function).
std::uint32_t KetamaHash(std::string_view key);

/// The `index`-th of the four ring points a single MD5 digest yields.
/// Requires 0 <= index < 4.
std::uint32_t KetamaHashAt(std::string_view key, int index);

/// Ring positions for a node's virtual nodes: digests of "key-0", "key-1",
/// ... are each split into 4 points, Ketama style, until `count` points are
/// produced. Deterministic in (node_key, count); this realizes the paper's
/// revised virtual-node method where "the virtual node's random key on the
/// ring is decided by the physical node's key".
std::vector<std::uint32_t> VirtualPoints(std::string_view node_key, int count);

/// The paper's Eq. (2) baseline: Y = hash(X) mod N. Used by the micro-bench
/// that contrasts remap volume between consistent hashing and mod-N.
std::size_t ModNPlacement(std::string_view key, std::size_t num_nodes);

}  // namespace hotman::hashring

#endif  // HOTMAN_HASHRING_KETAMA_H_
