#ifndef HOTMAN_HASHRING_MD5_H_
#define HOTMAN_HASHRING_MD5_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace hotman::hashring {

/// MD5 digest (RFC 1321), implemented from scratch.
///
/// The paper uses MD5 twice: as the consistent-hash function ("Consistent
/// hashing usually takes MD5 as the function of hashing") and to sign
/// authorized REST request URIs (Fig. 2). MD5 is used here for fidelity to
/// the paper, not for security.
class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Md5();

  /// Absorbs `len` bytes.
  void Update(const void* data, std::size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  /// Completes the hash. The object must not be reused afterwards.
  Digest Finalize();

  /// One-shot helpers.
  static Digest Hash(std::string_view data);
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace hotman::hashring

#endif  // HOTMAN_HASHRING_MD5_H_
