#include "hashring/migration.h"

#include <set>

namespace hotman::hashring {

namespace {

/// Primary owner of the arc beginning at `point` under `ring` (the node of
/// the first virtual point strictly greater than `point`, wrapping).
const NodeId* OwnerAt(const Ring& ring, std::uint32_t point) {
  const auto& points = ring.points();
  if (points.empty()) return nullptr;
  auto it = points.upper_bound(point);
  if (it == points.end()) it = points.begin();
  return &it->second;
}

std::uint64_t ArcLength(std::uint32_t start, std::uint32_t end) {
  if (start == end) return std::uint64_t{1} << 32;  // whole ring
  if (start < end) return end - start;
  return (std::uint64_t{1} << 32) - start + end;
}

}  // namespace

std::vector<MigrationStep> PlanMigration(const Ring& before, const Ring& after) {
  std::vector<MigrationStep> steps;
  if (before.points().empty() || after.points().empty()) return steps;

  // Elementary arcs are delimited by the union of both rings' points.
  std::set<std::uint32_t> cuts;
  for (const auto& [p, node] : before.points()) cuts.insert(p);
  for (const auto& [p, node] : after.points()) cuts.insert(p);

  auto emit = [&steps, &before, &after](std::uint32_t start, std::uint32_t end) {
    // Owner is constant on [start, end); sample at `start`.
    const NodeId* from = OwnerAt(before, start);
    const NodeId* to = OwnerAt(after, start);
    if (from == nullptr || to == nullptr || *from == *to) return;
    steps.push_back(MigrationStep{Range{start, end}, *from, *to});
  };

  auto it = cuts.begin();
  std::uint32_t first = *it;
  std::uint32_t prev = first;
  for (++it; it != cuts.end(); ++it) {
    emit(prev, *it);
    prev = *it;
  }
  // Wrapping arc from the last cut back to the first.
  if (cuts.size() == 1) {
    emit(first, first);  // single point: whole ring
  } else {
    emit(prev, first);
  }
  return steps;
}

double MigratedFraction(const std::vector<MigrationStep>& steps) {
  std::uint64_t covered = 0;
  for (const MigrationStep& s : steps) covered += ArcLength(s.range.start, s.range.end);
  return static_cast<double>(covered) / static_cast<double>(std::uint64_t{1} << 32);
}

}  // namespace hotman::hashring
