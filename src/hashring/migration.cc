#include "hashring/migration.h"

#include <set>

namespace hotman::hashring {

namespace {

/// Primary owner of the arc beginning at `point` under `ring` (the node of
/// the first virtual point strictly greater than `point`, wrapping).
const NodeId* OwnerAt(const Ring& ring, std::uint32_t point) {
  const auto& points = ring.points();
  if (points.empty()) return nullptr;
  auto it = points.upper_bound(point);
  if (it == points.end()) it = points.begin();
  return &it->second;
}

std::uint64_t ArcLength(std::uint32_t start, std::uint32_t end) {
  if (start == end) return std::uint64_t{1} << 32;  // whole ring
  if (start < end) return end - start;
  return (std::uint64_t{1} << 32) - start + end;
}

}  // namespace

std::vector<MigrationStep> PlanMigration(const Ring& before, const Ring& after) {
  std::vector<MigrationStep> steps;
  if (before.points().empty() || after.points().empty()) return steps;

  // Elementary arcs are delimited by the union of both rings' points.
  std::set<std::uint32_t> cuts;
  for (const auto& [p, node] : before.points()) cuts.insert(p);
  for (const auto& [p, node] : after.points()) cuts.insert(p);

  auto emit = [&steps, &before, &after](std::uint32_t start, std::uint32_t end) {
    // Owner is constant on [start, end); sample at `start`.
    const NodeId* from = OwnerAt(before, start);
    const NodeId* to = OwnerAt(after, start);
    if (from == nullptr || to == nullptr || *from == *to) return;
    steps.push_back(MigrationStep{Range{start, end}, *from, *to});
  };

  auto it = cuts.begin();
  std::uint32_t first = *it;
  std::uint32_t prev = first;
  for (++it; it != cuts.end(); ++it) {
    emit(prev, *it);
    prev = *it;
  }
  // Wrapping arc from the last cut back to the first.
  if (cuts.size() == 1) {
    emit(first, first);  // single point: whole ring
  } else {
    emit(prev, first);
  }
  return steps;
}

namespace {

/// Shared elementary-arc walk: calls `emit(start, end)` for every arc
/// delimited by the union of both rings' virtual points (including the
/// wrapping arc), mirroring PlanMigration's loop exactly.
template <typename Emit>
void ForEachElementaryArc(const Ring& before, const Ring& after, Emit emit) {
  std::set<std::uint32_t> cuts;
  for (const auto& [p, node] : before.points()) cuts.insert(p);
  for (const auto& [p, node] : after.points()) cuts.insert(p);
  if (cuts.empty()) return;

  auto it = cuts.begin();
  std::uint32_t first = *it;
  std::uint32_t prev = first;
  for (++it; it != cuts.end(); ++it) {
    emit(prev, *it);
    prev = *it;
  }
  if (cuts.size() == 1) {
    emit(first, first);  // single point: whole ring
  } else {
    emit(prev, first);
  }
}

/// Appends {range, source, target}, merging with the previous step when the
/// arcs are adjacent and the endpoints match.
void AppendStep(std::vector<ReplicaMigrationStep>* steps, Range range,
                const NodeId& source, const NodeId& target) {
  for (ReplicaMigrationStep& prior : *steps) {
    if (prior.source == source && prior.target == target &&
        prior.range.end == range.start) {
      prior.range.end = range.end;
      return;
    }
  }
  steps->push_back(ReplicaMigrationStep{range, source, target});
}

}  // namespace

std::vector<ReplicaMigrationStep> PlanReplicaMigration(const Ring& before,
                                                       const Ring& after,
                                                       std::size_t replication) {
  std::vector<ReplicaMigrationStep> steps;
  if (before.points().empty() || after.points().empty()) return steps;

  ForEachElementaryArc(
      before, after, [&](std::uint32_t start, std::uint32_t end) {
        // Preference lists are constant on [start, end); sample at `start`
        // (PreferenceListForPoint walks from the first point strictly
        // greater, the same convention as key ownership).
        const std::vector<NodeId> before_prefs =
            before.PreferenceListForPoint(start, replication);
        if (before_prefs.empty()) return;
        const std::vector<NodeId> after_prefs =
            after.PreferenceListForPoint(start, replication);
        for (const NodeId& target : after_prefs) {
          bool had = false;
          for (const NodeId& member : before_prefs) {
            if (member == target) had = true;
          }
          if (had) continue;
          // Deterministic streamer: the first before-member that survives
          // into the after ring (on a join every before-member survives; on
          // a removal the departed node is skipped). Falls back to the old
          // primary so a plan is still emitted for replication == 1.
          const NodeId* source = nullptr;
          for (const NodeId& member : before_prefs) {
            if (member != target && after.HasNode(member)) {
              source = &member;
              break;
            }
          }
          if (source == nullptr && before_prefs.front() != target) {
            source = &before_prefs.front();
          }
          if (source == nullptr) continue;
          AppendStep(&steps, Range{start, end}, *source, target);
        }
      });
  return steps;
}

std::vector<ReplicaMigrationStep> PlanDecommission(const Ring& ring,
                                                   const NodeId& leaving,
                                                   std::size_t replication) {
  std::vector<ReplicaMigrationStep> steps;
  if (!ring.HasNode(leaving) || ring.NumPhysicalNodes() < 2) return steps;
  Ring after = ring;
  (void)after.RemoveNode(leaving);

  ForEachElementaryArc(ring, after, [&](std::uint32_t start, std::uint32_t end) {
    const std::vector<NodeId> before_prefs =
        ring.PreferenceListForPoint(start, replication);
    bool held = false;
    for (const NodeId& member : before_prefs) {
      if (member == leaving) held = true;
    }
    if (!held) return;
    const std::vector<NodeId> after_prefs =
        after.PreferenceListForPoint(start, replication);
    for (const NodeId& target : after_prefs) {
      bool had = false;
      for (const NodeId& member : before_prefs) {
        if (member == target) had = true;
      }
      if (!had) AppendStep(&steps, Range{start, end}, leaving, target);
    }
  });
  return steps;
}

double MigratedFraction(const std::vector<MigrationStep>& steps) {
  std::uint64_t covered = 0;
  for (const MigrationStep& s : steps) covered += ArcLength(s.range.start, s.range.end);
  return static_cast<double>(covered) / static_cast<double>(std::uint64_t{1} << 32);
}

}  // namespace hotman::hashring
