#ifndef HOTMAN_HASHRING_MIGRATION_H_
#define HOTMAN_HASHRING_MIGRATION_H_

#include <string>
#include <vector>

#include "hashring/ring.h"

namespace hotman::hashring {

/// One arc of keys whose primary owner changes between two ring
/// configurations.
struct MigrationStep {
  Range range;
  NodeId from;  ///< primary owner before
  NodeId to;    ///< primary owner after
};

/// Exact migration plan between two rings: merges the virtual points of
/// both configurations into elementary arcs and emits every arc whose
/// primary owner differs. The principal consistent-hashing property — the
/// departure or arrival of a node only affects its ring neighbours — is
/// checked by property tests on top of this planner.
std::vector<MigrationStep> PlanMigration(const Ring& before, const Ring& after);

/// Fraction of the 32-bit keyspace covered by `steps` (0.0 .. 1.0); the
/// expected remap fraction when a node joins an N-node ring is ~1/(N+1),
/// versus ~N/(N+1) for mod-N placement (the paper's Eq. (2) baseline).
double MigratedFraction(const std::vector<MigrationStep>& steps);

}  // namespace hotman::hashring

#endif  // HOTMAN_HASHRING_MIGRATION_H_
