#ifndef HOTMAN_HASHRING_MIGRATION_H_
#define HOTMAN_HASHRING_MIGRATION_H_

#include <string>
#include <vector>

#include "hashring/ring.h"

namespace hotman::hashring {

/// One arc of keys whose primary owner changes between two ring
/// configurations.
struct MigrationStep {
  Range range;
  NodeId from;  ///< primary owner before
  NodeId to;    ///< primary owner after
};

/// Exact migration plan between two rings: merges the virtual points of
/// both configurations into elementary arcs and emits every arc whose
/// primary owner differs. The principal consistent-hashing property — the
/// departure or arrival of a node only affects its ring neighbours — is
/// checked by property tests on top of this planner.
std::vector<MigrationStep> PlanMigration(const Ring& before, const Ring& after);

/// Fraction of the 32-bit keyspace covered by `steps` (0.0 .. 1.0); the
/// expected remap fraction when a node joins an N-node ring is ~1/(N+1),
/// versus ~N/(N+1) for mod-N placement (the paper's Eq. (2) baseline).
double MigratedFraction(const std::vector<MigrationStep>& steps);

/// One arc of keys that must be copied from `source` (a replica holder
/// under the `before` ring) to `target` (a preference member gained under
/// the `after` ring). Unlike MigrationStep this is replica-aware: an arc
/// is emitted whenever the N-member preference set changes, not only when
/// the primary moves.
struct ReplicaMigrationStep {
  Range range;
  NodeId source;  ///< designated streamer (holds the arc under `before`)
  NodeId target;  ///< new preference member under `after`
};

/// Exact replica-aware transfer plan between two ring configurations.
/// Walks the elementary arcs (union of both rings' cut points) and, for
/// every node that enters an arc's N-member preference list, emits one
/// step whose source is the first `before`-preference member that survives
/// into `after` (deterministic, so every node computing the plan agrees on
/// exactly one streamer per arc and no arc is streamed twice). Adjacent
/// arcs with an identical (source, target) pair are merged.
std::vector<ReplicaMigrationStep> PlanReplicaMigration(const Ring& before,
                                                       const Ring& after,
                                                       std::size_t replication);

/// Transfer plan for a graceful decommission, computed *by the departing
/// node before it leaves*: for every arc where `leaving` is a preference
/// member, emits steps sourced at `leaving` toward each node that enters
/// the arc's preference list once `leaving` is gone. This deliberately
/// overlaps with the survivors' own PlanReplicaMigration (LWW application
/// is idempotent): the departing node must not depend on any survivor
/// holding its data — with replication 1 it is the only holder.
std::vector<ReplicaMigrationStep> PlanDecommission(const Ring& ring,
                                                   const NodeId& leaving,
                                                   std::size_t replication);

}  // namespace hotman::hashring

#endif  // HOTMAN_HASHRING_MIGRATION_H_
