#include "hashring/ring.h"

#include "hashring/ketama.h"

namespace hotman::hashring {

bool Range::Contains(std::uint32_t point) const {
  if (start == end) return true;  // whole ring
  if (start < end) return point >= start && point < end;
  // Wrapping arc.
  return point >= start || point < end;
}

Status Ring::AddNode(const NodeId& node, int vnodes) {
  if (vnodes < 1) return Status::InvalidArgument("vnodes must be >= 1");
  if (vnode_counts_.count(node) > 0) {
    return Status::AlreadyExists("node already on ring: " + node);
  }
  for (std::uint32_t p : VirtualPoints(node, vnodes)) {
    // Extremely rare point collisions are resolved by deterministic linear
    // probing so that ring contents depend only on the membership set.
    while (points_.count(p) > 0) ++p;
    points_.emplace(p, node);
  }
  vnode_counts_.emplace(node, vnodes);
  return Status::OK();
}

Status Ring::RemoveNode(const NodeId& node) {
  auto it = vnode_counts_.find(node);
  if (it == vnode_counts_.end()) {
    return Status::NotFound("node not on ring: " + node);
  }
  for (auto point_it = points_.begin(); point_it != points_.end();) {
    if (point_it->second == node) {
      point_it = points_.erase(point_it);
    } else {
      ++point_it;
    }
  }
  vnode_counts_.erase(it);
  return Status::OK();
}

bool Ring::HasNode(const NodeId& node) const { return vnode_counts_.count(node) > 0; }

std::uint32_t Ring::HashKey(std::string_view key) { return KetamaHash(key); }

Result<NodeId> Ring::PrimaryFor(std::string_view key) const {
  if (points_.empty()) return Status::NotFound("ring is empty");
  const std::uint32_t h = HashKey(key);
  auto it = points_.upper_bound(h);
  if (it == points_.end()) it = points_.begin();  // wrap to the ring's start
  return it->second;
}

std::vector<NodeId> Ring::PreferenceList(std::string_view key, std::size_t n) const {
  return PreferenceListForPoint(HashKey(key), n);
}

std::vector<NodeId> Ring::PreferenceListForPoint(std::uint32_t point,
                                                 std::size_t n) const {
  std::vector<NodeId> result;
  if (points_.empty() || n == 0) return result;
  result.reserve(std::min(n, vnode_counts_.size()));
  auto it = points_.upper_bound(point);
  for (std::size_t steps = 0; steps < points_.size(); ++steps) {
    if (it == points_.end()) it = points_.begin();
    const NodeId& candidate = it->second;
    bool seen = false;
    for (const NodeId& chosen : result) {
      if (chosen == candidate) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      result.push_back(candidate);
      if (result.size() == n) break;
    }
    ++it;
  }
  return result;
}

std::vector<Range> Ring::RangesOwnedBy(const NodeId& node) const {
  std::vector<Range> ranges;
  if (points_.empty() || vnode_counts_.count(node) == 0) return ranges;
  if (points_.size() == 1) {
    // A single virtual point owns the whole ring.
    ranges.push_back(Range{points_.begin()->first, points_.begin()->first});
    return ranges;
  }
  auto prev = std::prev(points_.end());
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    if (it->second == node) {
      ranges.push_back(Range{prev->first, it->first});
    }
    prev = it;
  }
  return ranges;
}

int Ring::VnodeCount(const NodeId& node) const {
  auto it = vnode_counts_.find(node);
  return it == vnode_counts_.end() ? 0 : it->second;
}

std::vector<NodeId> Ring::Nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(vnode_counts_.size());
  for (const auto& [id, count] : vnode_counts_) nodes.push_back(id);
  return nodes;
}

}  // namespace hotman::hashring
