#ifndef HOTMAN_HASHRING_RING_H_
#define HOTMAN_HASHRING_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hotman::hashring {

/// Identifier of a physical storage node ("host:port" style string).
using NodeId = std::string;

/// A half-open arc [start, end) of the 32-bit hash ring, walking clockwise.
/// Keys hash into the arc ending at a virtual point `end` and are owned by
/// that point (Eq. (1): the first node position strictly greater than the
/// key's position). When start == end the arc covers the whole ring.
struct Range {
  std::uint32_t start = 0;  ///< inclusive
  std::uint32_t end = 0;    ///< exclusive

  /// True when `point` lies inside this arc (clockwise, wrap-aware).
  bool Contains(std::uint32_t point) const;

  friend bool operator==(const Range& a, const Range& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// The consistent-hash ring with the paper's revised virtual-node method.
///
/// Each physical node contributes `vnodes` points on the 32-bit ring (more
/// powerful node => more virtual nodes). A key is placed on the first
/// virtual point at or clockwise-after its hash (the paper's Eq. (1):
/// min n such that md5(n) > md5(X), wrapping at the top). Replica placement
/// walks further clockwise collecting *distinct physical* successors.
class Ring {
 public:
  /// Adds `node` with `vnodes` virtual points (vnodes >= 1). Fails with
  /// AlreadyExists if present.
  Status AddNode(const NodeId& node, int vnodes);

  /// Removes `node` and all its virtual points; NotFound if absent.
  Status RemoveNode(const NodeId& node);

  bool HasNode(const NodeId& node) const;

  /// Hash used for key placement (Ketama / MD5-low-word).
  static std::uint32_t HashKey(std::string_view key);

  /// The physical node owning `key`, or NotFound on an empty ring.
  Result<NodeId> PrimaryFor(std::string_view key) const;

  /// Up to `n` distinct physical nodes, starting at the key's primary and
  /// walking clockwise — the replica preference list. Fewer are returned if
  /// the ring has fewer than `n` physical nodes.
  std::vector<NodeId> PreferenceList(std::string_view key, std::size_t n) const;

  /// Same as PreferenceList but starting from a precomputed ring point.
  std::vector<NodeId> PreferenceListForPoint(std::uint32_t point, std::size_t n) const;

  /// Arcs of the ring whose primary owner is `node` (one per virtual point,
  /// unmerged). Empty when the node is absent.
  std::vector<Range> RangesOwnedBy(const NodeId& node) const;

  std::size_t NumPhysicalNodes() const { return vnode_counts_.size(); }
  std::size_t NumVirtualNodes() const { return points_.size(); }

  /// Virtual-point count configured for `node` (0 when absent).
  int VnodeCount(const NodeId& node) const;

  /// All physical node ids, sorted.
  std::vector<NodeId> Nodes() const;

  /// The raw point map (ring position -> owning physical node).
  const std::map<std::uint32_t, NodeId>& points() const { return points_; }

 private:
  std::map<std::uint32_t, NodeId> points_;
  std::map<NodeId, int> vnode_counts_;
};

}  // namespace hotman::hashring

#endif  // HOTMAN_HASHRING_RING_H_
