#include "net/client_proto.h"

namespace hotman::net {

namespace {

using bson::Document;
using bson::Value;

Result<std::uint64_t> GetU64(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_int64()) {
    return Status::Corruption(std::string("missing int64 field: ") + name);
  }
  return static_cast<std::uint64_t>(v->as_int64());
}

Result<std::string> GetStr(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_string()) {
    return Status::Corruption(std::string("missing string field: ") + name);
  }
  return v->as_string();
}

Result<bool> GetBool(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_bool()) {
    return Status::Corruption(std::string("missing bool field: ") + name);
  }
  return v->as_bool();
}

Result<Bytes> GetBin(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_binary()) {
    return Status::Corruption(std::string("missing binary field: ") + name);
  }
  return v->as_binary().data();
}

Result<double> GetF64(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_number()) {
    return Status::Corruption(std::string("missing numeric field: ") + name);
  }
  return v->NumberAsDouble();
}

std::int64_t AsI64(std::uint64_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

bson::Document EncodeClientPut(const ClientPutMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("key", Value(msg.key));
  doc.Append("val", Value(bson::Binary(msg.value)));
  return doc;
}

Result<ClientPutMsg> DecodeClientPut(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto key = GetStr(doc, "key");
  if (!key.ok()) return key.status();
  auto val = GetBin(doc, "val");
  if (!val.ok()) return val.status();
  ClientPutMsg out;
  out.req = *req;
  out.key = std::move(*key);
  out.value = std::move(*val);
  return out;
}

bson::Document EncodeClientAck(const ClientAckMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("ok", Value(msg.ok));
  doc.Append("err", Value(msg.error));
  return doc;
}

Result<ClientAckMsg> DecodeClientAck(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto ok = GetBool(doc, "ok");
  if (!ok.ok()) return ok.status();
  auto err = GetStr(doc, "err");
  if (!err.ok()) return err.status();
  ClientAckMsg out;
  out.req = *req;
  out.ok = *ok;
  out.error = std::move(*err);
  return out;
}

bson::Document EncodeClientGet(const ClientGetMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("key", Value(msg.key));
  return doc;
}

Result<ClientGetMsg> DecodeClientGet(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto key = GetStr(doc, "key");
  if (!key.ok()) return key.status();
  ClientGetMsg out;
  out.req = *req;
  out.key = std::move(*key);
  return out;
}

bson::Document EncodeClientGetAck(const ClientGetAckMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("ok", Value(msg.ok));
  doc.Append("found", Value(msg.found));
  doc.Append("val", Value(bson::Binary(msg.value)));
  doc.Append("err", Value(msg.error));
  return doc;
}

Result<ClientGetAckMsg> DecodeClientGetAck(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto ok = GetBool(doc, "ok");
  if (!ok.ok()) return ok.status();
  auto found = GetBool(doc, "found");
  if (!found.ok()) return found.status();
  auto val = GetBin(doc, "val");
  if (!val.ok()) return val.status();
  auto err = GetStr(doc, "err");
  if (!err.ok()) return err.status();
  ClientGetAckMsg out;
  out.req = *req;
  out.ok = *ok;
  out.found = *found;
  out.value = std::move(*val);
  out.error = std::move(*err);
  return out;
}

bson::Document EncodeClientStatsAck(const ClientStatsAckMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("json", Value(msg.json));
  return doc;
}

Result<ClientStatsAckMsg> DecodeClientStatsAck(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto json = GetStr(doc, "json");
  if (!json.ok()) return json.status();
  ClientStatsAckMsg out;
  out.req = *req;
  out.json = std::move(*json);
  return out;
}

bson::Document EncodeClientJoin(const ClientJoinMsg& msg) {
  Document doc;
  doc.Append("req", Value(AsI64(msg.req)));
  doc.Append("node", Value(msg.node));
  doc.Append("vnodes", Value(msg.vnodes));
  doc.Append("capacity", Value(msg.capacity));
  return doc;
}

Result<ClientJoinMsg> DecodeClientJoin(const bson::Document& doc) {
  auto req = GetU64(doc, "req");
  if (!req.ok()) return req.status();
  auto node = GetStr(doc, "node");
  if (!node.ok()) return node.status();
  auto vnodes = GetU64(doc, "vnodes");
  if (!vnodes.ok()) return vnodes.status();
  auto capacity = GetF64(doc, "capacity");
  if (!capacity.ok()) return capacity.status();
  ClientJoinMsg out;
  out.req = *req;
  out.node = std::move(*node);
  out.vnodes = static_cast<std::int64_t>(*vnodes);
  out.capacity = *capacity;
  return out;
}

}  // namespace hotman::net
