#ifndef HOTMAN_NET_CLIENT_PROTO_H_
#define HOTMAN_NET_CLIENT_PROTO_H_

#include <cstdint>
#include <string>

#include "bson/document.h"
#include "common/bytes.h"
#include "common/status.h"

namespace hotman::net {

/// Client-facing message types: the request surface a `hotmand` node exposes
/// to remote clients over the same framed transport the cluster uses
/// internally. A client addresses frames to the node's endpoint name; the
/// node replies to the client's (self-chosen, unique) endpoint name.
inline constexpr const char* kMsgClientPut = "client_put";
inline constexpr const char* kMsgClientPutAck = "client_put_ack";
inline constexpr const char* kMsgClientGet = "client_get";
inline constexpr const char* kMsgClientGetAck = "client_get_ack";
inline constexpr const char* kMsgClientDelete = "client_delete";
inline constexpr const char* kMsgClientDeleteAck = "client_delete_ack";
inline constexpr const char* kMsgClientStats = "client_stats";
inline constexpr const char* kMsgClientStatsAck = "client_stats_ack";
inline constexpr const char* kMsgClientJoin = "client_join";
inline constexpr const char* kMsgClientJoinAck = "client_join_ack";
inline constexpr const char* kMsgClientDecommission = "client_decommission";
inline constexpr const char* kMsgClientDecommissionAck =
    "client_decommission_ack";
inline constexpr const char* kMsgClientRebalanceStatus =
    "client_rebalance_status";
inline constexpr const char* kMsgClientRebalanceStatusAck =
    "client_rebalance_status_ack";

/// client_put payload.
struct ClientPutMsg {
  std::uint64_t req = 0;
  std::string key;
  Bytes value;
};

/// client_put_ack / client_delete_ack payload.
struct ClientAckMsg {
  std::uint64_t req = 0;
  bool ok = false;
  std::string error;
};

/// client_get / client_delete / client_stats payload (key empty for stats).
struct ClientGetMsg {
  std::uint64_t req = 0;
  std::string key;
};

/// client_get_ack payload. `ok` means the quorum read succeeded; `found`
/// distinguishes a present value from NotFound / tombstone.
struct ClientGetAckMsg {
  std::uint64_t req = 0;
  bool ok = false;
  bool found = false;
  Bytes value;
  std::string error;
};

/// client_stats_ack / client_rebalance_status_ack payload: a JSON snapshot
/// (the node's metrics, or the rebalancer's transfer/cursor state).
struct ClientStatsAckMsg {
  std::uint64_t req = 0;
  std::string json;
};

/// client_join payload: ask the receiving node to announce `node` to the
/// ring so migration streams it its share of the data. `vnodes` <= 0 means
/// "use the cluster default"; `capacity` scales it (capacity-weighted
/// placement, H2O-style heterogeneous nodes).
struct ClientJoinMsg {
  std::uint64_t req = 0;
  std::string node;
  std::int64_t vnodes = 0;
  double capacity = 1.0;
};

bson::Document EncodeClientJoin(const ClientJoinMsg& msg);
Result<ClientJoinMsg> DecodeClientJoin(const bson::Document& doc);

bson::Document EncodeClientPut(const ClientPutMsg& msg);
Result<ClientPutMsg> DecodeClientPut(const bson::Document& doc);
bson::Document EncodeClientAck(const ClientAckMsg& msg);
Result<ClientAckMsg> DecodeClientAck(const bson::Document& doc);
bson::Document EncodeClientGet(const ClientGetMsg& msg);
Result<ClientGetMsg> DecodeClientGet(const bson::Document& doc);
bson::Document EncodeClientGetAck(const ClientGetAckMsg& msg);
Result<ClientGetAckMsg> DecodeClientGetAck(const bson::Document& doc);
bson::Document EncodeClientStatsAck(const ClientStatsAckMsg& msg);
Result<ClientStatsAckMsg> DecodeClientStatsAck(const bson::Document& doc);

}  // namespace hotman::net

#endif  // HOTMAN_NET_CLIENT_PROTO_H_
