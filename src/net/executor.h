#ifndef HOTMAN_NET_EXECUTOR_H_
#define HOTMAN_NET_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"

namespace hotman::net {

/// Identifier of a scheduled timer (for cancellation). 0 is never issued.
using TimerId = std::uint64_t;

/// Deferred-execution surface the distributed layers (cluster/, gossip/)
/// program against: one-shot timers plus a time source. Implemented by the
/// deterministic sim::EventLoop (virtual time, single-threaded) and by
/// net::TcpTransport (real time, callbacks on its event-loop thread). Code
/// written against Executor therefore runs bit-identically in simulation
/// and as a genuine networked process.
///
/// Contract: callbacks fire on the executor's (single) event thread, never
/// concurrently with each other. ScheduleTimer/CancelTimer may be called
/// from callbacks.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  virtual TimerId ScheduleTimer(Micros delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; false when already fired or unknown.
  virtual bool CancelTimer(TimerId id) = 0;

  /// Current time in this executor's time base.
  virtual Micros NowMicros() const = 0;

  /// Clock view usable by components that only need time.
  virtual const Clock* clock() const = 0;
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_EXECUTOR_H_
