#include "net/frame.h"

#include <bit>
#include <cstring>

#include "bson/codec.h"

namespace hotman::net {

namespace {

constexpr char kFrom[] = "f";
constexpr char kTo[] = "t";
constexpr char kType[] = "y";
constexpr char kSentAt[] = "s";
constexpr char kBody[] = "b";

std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

void WriteU32Le(std::uint32_t v, char* p) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

void EncodeFrame(const Message& msg, std::string* out) {
  bson::Document envelope;
  envelope.Append(kFrom, msg.from);
  envelope.Append(kTo, msg.to);
  envelope.Append(kType, msg.type);
  envelope.Append(kSentAt, static_cast<std::int64_t>(msg.sent_at));
  envelope.Append(kBody, msg.body);

  const std::size_t header_at = out->size();
  out->append(kFrameHeaderBytes, '\0');
  bson::Encode(envelope, out);
  const std::size_t payload_len = out->size() - header_at - kFrameHeaderBytes;
  WriteU32Le(static_cast<std::uint32_t>(payload_len), out->data() + header_at);
}

Status DecodeEnvelope(std::string_view payload, Message* msg) {
  bson::Document envelope;
  HOTMAN_RETURN_IF_ERROR(bson::Decode(payload, &envelope));

  const bson::Value* from = envelope.Get(kFrom);
  const bson::Value* to = envelope.Get(kTo);
  const bson::Value* type = envelope.Get(kType);
  if (from == nullptr || !from->is_string() || to == nullptr ||
      !to->is_string() || type == nullptr || !type->is_string()) {
    return Status::Corruption("frame envelope missing f/t/y string fields");
  }
  msg->from = from->as_string();
  msg->to = to->as_string();
  msg->type = type->as_string();

  msg->sent_at = 0;
  if (const bson::Value* sent = envelope.Get(kSentAt); sent != nullptr) {
    if (!sent->is_number()) {
      return Status::Corruption("frame envelope s field is not numeric");
    }
    msg->sent_at = sent->NumberAsInt64();
  }

  msg->body = bson::Document();
  if (const bson::Value* body = envelope.Get(kBody); body != nullptr) {
    if (!body->is_document()) {
      return Status::Corruption("frame envelope b field is not a document");
    }
    msg->body = body->as_document();
  }
  return Status::OK();
}

void FrameReader::Append(std::string_view data) {
  if (!error_.ok()) return;  // stream is dead, don't buffer more
  // Compact once the consumed prefix dominates the buffer, amortizing the
  // memmove over many frames instead of paying it per frame.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data.data(), data.size());
}

Status FrameReader::Next(Message* msg, bool* complete) {
  *complete = false;
  if (!error_.ok()) return error_;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Status::OK();
  const std::uint32_t payload_len = ReadU32Le(buf_.data() + pos_);
  if (payload_len > max_frame_bytes_) {
    error_ = Status::Corruption("frame length exceeds maximum");
    return error_;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < payload_len) return Status::OK();
  const std::string_view payload(buf_.data() + pos_ + kFrameHeaderBytes,
                                 payload_len);
  Status st = DecodeEnvelope(payload, msg);
  if (!st.ok()) {
    error_ = st;
    return error_;
  }
  pos_ += kFrameHeaderBytes + payload_len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  *complete = true;
  return Status::OK();
}

}  // namespace hotman::net
