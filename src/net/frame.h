#ifndef HOTMAN_NET_FRAME_H_
#define HOTMAN_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/message.h"

namespace hotman::net {

/// Wire framing for net::Message over a byte stream (see DESIGN.md "net"):
///
///   u32-LE payload_len | payload (one BSON document)
///
/// The payload is the envelope {"f": from, "t": to, "y": type, "s": sent_at,
/// "b": body}, encoded with bson::codec — the same hardened codec the
/// storage layer uses, so a hostile or corrupt peer cannot take the process
/// past a clean Status::Corruption.

/// Bytes of the length prefix preceding every frame.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Frames whose declared payload exceeds this are rejected as corrupt
/// (protects the reader from a 4 GiB allocation off four hostile bytes).
/// Generous versus the ~16 MiB BSON document limit minus record sizes here.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u * 1024 * 1024;

/// Appends the framed encoding of `msg` to `*out`.
void EncodeFrame(const Message& msg, std::string* out);

/// Decodes a frame payload (the bytes after the length prefix) into `*msg`.
/// Corruption when the bytes are not a valid envelope ("f"/"t"/"y" string
/// fields required; "s" int and "b" document optional, defaulting to 0 and
/// empty).
Status DecodeEnvelope(std::string_view payload, Message* msg);

/// Incremental frame reader: feed it whatever byte chunks the socket
/// produces (partial headers, partial payloads, many frames at once) and
/// pull complete messages out. Corruption is sticky — a stream that framed
/// garbage cannot be resynchronized, so the connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes received from the stream.
  void Append(std::string_view data);

  /// Extracts the next complete message. OK with *complete=true on success;
  /// OK with *complete=false when more bytes are needed; Corruption (sticky)
  /// on an oversized length prefix or an undecodable envelope.
  Status Next(Message* msg, bool* complete);

  /// Bytes buffered but not yet consumed (tests; backpressure accounting).
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
  Status error_;         // sticky once set
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_FRAME_H_
