#ifndef HOTMAN_NET_MESSAGE_H_
#define HOTMAN_NET_MESSAGE_H_

#include <string>

#include "bson/document.h"
#include "common/clock.h"

namespace hotman::net {

/// One message between named endpoints. Bodies are BSON documents — the
/// same wire format the storage layer uses — so everything crossing a
/// transport is genuinely serializable. This is the unit both transports
/// move: the deterministic simulator delivers it in-process, the TCP
/// transport frames it onto a socket (see net/frame.h).
struct Message {
  std::string from;
  std::string to;
  std::string type;     ///< dispatch tag, e.g. "put_replica", "gossip_syn"
  bson::Document body;
  /// Stamp of the sender's clock at Send() time. Under the simulator this
  /// is virtual time; over TCP it is the sender's steady clock, comparable
  /// across processes on one machine (the loopback-cluster case) and used
  /// for the per-type frame latency histograms.
  Micros sent_at = 0;
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_MESSAGE_H_
