#include "net/remote_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hotman::net {

namespace {

Micros NowMicros() { return SystemClock::Default()->NowMicros(); }

int PollOne(int fd, short events, Micros deadline) {
  const Micros now = NowMicros();
  const Micros left = deadline > now ? deadline - now : 0;
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  // Round up so a sub-millisecond budget still polls once.
  const int timeout_ms = static_cast<int>((left + kMicrosPerMilli - 1) / kMicrosPerMilli);
  return ::poll(&pfd, 1, timeout_ms);
}

}  // namespace

RemoteClient::RemoteClient(RemoteClientConfig config)
    : config_(std::move(config)), reader_(config_.max_frame_bytes) {}

RemoteClient::~RemoteClient() { Close(); }

Status RemoteClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host (numeric IPv4 expected): " +
                                   config_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const Micros deadline = NowMicros() + config_.connect_timeout;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Status::NotConnected("connect: " + std::string(std::strerror(errno)));
    }
    if (PollOne(fd, POLLOUT, deadline) <= 0) {
      ::close(fd);
      return Status::Timeout("connect timed out: " + config_.host);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::NotConnected("connect: " + std::string(std::strerror(err)));
    }
  }
  fd_ = fd;
  reader_ = FrameReader(config_.max_frame_bytes);
  return Status::OK();
}

void RemoteClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RemoteClient::SendFrame(const Message& msg) {
  std::string wire;
  EncodeFrame(msg, &wire);
  std::size_t off = 0;
  const Micros deadline = NowMicros() + config_.op_timeout;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (PollOne(fd_, POLLOUT, deadline) <= 0) {
        return Status::Timeout("send stalled");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::NotConnected("send: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<Message> RemoteClient::WaitForAck(const char* ack_type,
                                         std::uint64_t req, Micros deadline) {
  char buf[65536];
  while (true) {
    // Drain whatever is already buffered before touching the socket.
    while (true) {
      Message msg;
      bool complete = false;
      HOTMAN_RETURN_IF_ERROR(reader_.Next(&msg, &complete));
      if (!complete) break;
      if (msg.type != ack_type) continue;
      const bson::Value* v = msg.body.Get("req");
      if (v == nullptr || !v->is_number()) continue;
      if (static_cast<std::uint64_t>(v->NumberAsInt64()) != req) continue;
      return msg;
    }
    if (NowMicros() >= deadline) return Status::Timeout("no ack from server");
    const int ready = PollOne(fd_, POLLIN, deadline);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return Status::Timeout("no ack from server");
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) return Status::NotConnected("server closed connection");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::NotConnected("recv: " + std::string(std::strerror(errno)));
  }
}

Result<Message> RemoteClient::Call(const std::string& server,
                                   const char* req_type, const char* ack_type,
                                   std::uint64_t req,
                                   const bson::Document& body) {
  Status last = Status::NotConnected("never attempted");
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      last = Connect();
      if (!last.ok()) continue;
    }
    Message msg;
    msg.from = config_.name;
    msg.to = server;
    msg.type = req_type;
    msg.body = body;
    msg.sent_at = NowMicros();
    last = SendFrame(msg);
    if (!last.ok()) {
      Close();
      continue;  // redial once; writes are idempotent (LWW)
    }
    auto reply = WaitForAck(ack_type, req, NowMicros() + config_.op_timeout);
    if (reply.ok()) return reply;
    // A timeout leaves the request possibly in flight; surface it rather
    // than blind-resending. Connection errors redial once.
    if (reply.status().IsTimeout()) return reply.status();
    last = reply.status();
    Close();
  }
  return last;
}

Status RemoteClient::Put(const std::string& server, const std::string& key,
                         Bytes value) {
  ClientPutMsg put;
  put.req = next_req_++;
  put.key = key;
  put.value = std::move(value);
  auto reply = Call(server, kMsgClientPut, kMsgClientPutAck, put.req,
                    EncodeClientPut(put));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientAck(reply->body);
  if (!ack.ok()) return ack.status();
  if (!ack->ok) return Status::QuorumFailed(ack->error);
  return Status::OK();
}

Result<Bytes> RemoteClient::Get(const std::string& server,
                                const std::string& key) {
  ClientGetMsg get;
  get.req = next_req_++;
  get.key = key;
  auto reply = Call(server, kMsgClientGet, kMsgClientGetAck, get.req,
                    EncodeClientGet(get));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientGetAck(reply->body);
  if (!ack.ok()) return ack.status();
  if (!ack->ok) return Status::QuorumFailed(ack->error);
  if (!ack->found) return Status::NotFound("key not found: " + key);
  return std::move(ack->value);
}

Status RemoteClient::Delete(const std::string& server, const std::string& key) {
  ClientGetMsg del;
  del.req = next_req_++;
  del.key = key;
  auto reply = Call(server, kMsgClientDelete, kMsgClientDeleteAck, del.req,
                    EncodeClientGet(del));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientAck(reply->body);
  if (!ack.ok()) return ack.status();
  if (!ack->ok) return Status::QuorumFailed(ack->error);
  return Status::OK();
}

Status RemoteClient::Join(const std::string& server, const std::string& node,
                          std::int64_t vnodes, double capacity) {
  ClientJoinMsg join;
  join.req = next_req_++;
  join.node = node;
  join.vnodes = vnodes;
  join.capacity = capacity;
  auto reply = Call(server, kMsgClientJoin, kMsgClientJoinAck, join.req,
                    EncodeClientJoin(join));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientAck(reply->body);
  if (!ack.ok()) return ack.status();
  if (!ack->ok) return Status::InvalidArgument(ack->error);
  return Status::OK();
}

Status RemoteClient::Decommission(const std::string& server) {
  ClientGetMsg dec;
  dec.req = next_req_++;
  auto reply = Call(server, kMsgClientDecommission, kMsgClientDecommissionAck,
                    dec.req, EncodeClientGet(dec));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientAck(reply->body);
  if (!ack.ok()) return ack.status();
  if (!ack->ok) return Status::InvalidArgument(ack->error);
  return Status::OK();
}

Result<std::string> RemoteClient::RebalanceStatus(const std::string& server) {
  ClientGetMsg status;
  status.req = next_req_++;
  auto reply = Call(server, kMsgClientRebalanceStatus,
                    kMsgClientRebalanceStatusAck, status.req,
                    EncodeClientGet(status));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientStatsAck(reply->body);
  if (!ack.ok()) return ack.status();
  return std::move(ack->json);
}

Result<std::string> RemoteClient::Stats(const std::string& server) {
  ClientGetMsg stats;
  stats.req = next_req_++;
  auto reply = Call(server, kMsgClientStats, kMsgClientStatsAck, stats.req,
                    EncodeClientGet(stats));
  if (!reply.ok()) return reply.status();
  auto ack = DecodeClientStatsAck(reply->body);
  if (!ack.ok()) return ack.status();
  return std::move(ack->json);
}

}  // namespace hotman::net
