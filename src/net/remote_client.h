#ifndef HOTMAN_NET_REMOTE_CLIENT_H_
#define HOTMAN_NET_REMOTE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "net/client_proto.h"
#include "net/frame.h"
#include "net/message.h"

namespace hotman::net {

/// Remote client configuration. `name` is the endpoint name this client
/// identifies as in its frames' `from` field; the server learns it from the
/// first frame and routes acks back over the same connection, so it must be
/// unique among the server's peers (pid-qualified names work well).
struct RemoteClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "client";
  Micros connect_timeout = 2 * kMicrosPerSecond;
  Micros op_timeout = 10 * kMicrosPerSecond;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Blocking client for one `hotmand` node: framed request, poll()-bounded
/// wait for the matching ack. Single-threaded by design — workload drivers
/// that want concurrency open one client per worker.
///
/// A failed send or a dropped connection triggers one transparent
/// redial + resend per operation (all client ops are idempotent:
/// puts/deletes are LWW writes, gets and stats are reads). Timeouts do not
/// resend — the request may still be in flight, and a stale ack arriving
/// later is discarded by request-id matching.
class RemoteClient {
 public:
  explicit RemoteClient(RemoteClientConfig config);
  ~RemoteClient();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// Dials the node. Operations connect lazily, so calling this is optional;
  /// it exists to surface connectivity errors eagerly.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// `server` is the node's endpoint name (its cluster address).
  Status Put(const std::string& server, const std::string& key, Bytes value);
  Result<Bytes> Get(const std::string& server, const std::string& key);
  Status Delete(const std::string& server, const std::string& key);
  /// The node's metrics snapshot as JSON.
  Result<std::string> Stats(const std::string& server);

  /// Announces `node` (an already-running hotmand) to the ring through the
  /// connected member; data streams to it in the background. `vnodes` <= 0
  /// uses the cluster default; `capacity` scales it for heterogeneous
  /// hardware.
  Status Join(const std::string& server, const std::string& node,
              std::int64_t vnodes = 0, double capacity = 1.0);
  /// Gracefully decommissions the connected node: it streams its data out,
  /// leaves the ring and shuts down. OK means "started", not "finished" —
  /// watch rebalance-status on the survivors for progress.
  Status Decommission(const std::string& server);
  /// The node's rebalancer state (active transfers, cursors) as JSON.
  Result<std::string> RebalanceStatus(const std::string& server);

 private:
  Status SendFrame(const Message& msg);
  /// Reads frames until one with `ack_type` and request id `req` arrives or
  /// `deadline` passes. Frames for other (timed-out, abandoned) requests are
  /// discarded.
  Result<Message> WaitForAck(const char* ack_type, std::uint64_t req,
                             Micros deadline);
  Result<Message> Call(const std::string& server, const char* req_type,
                       const char* ack_type, std::uint64_t req,
                       const bson::Document& body);

  RemoteClientConfig config_;
  int fd_ = -1;
  FrameReader reader_;
  std::uint64_t next_req_ = 1;
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_REMOTE_CLIENT_H_
