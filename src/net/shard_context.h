#ifndef HOTMAN_NET_SHARD_CONTEXT_H_
#define HOTMAN_NET_SHARD_CONTEXT_H_

namespace hotman::net {

/// Which shard's reactor context the calling thread is currently executing
/// in. Shard-affine state (a StorageNode shard's pending tables, dirty set,
/// hint ledger) may only be touched when Current() equals its shard index;
/// the routing layer consults Current() to decide between a direct call
/// (already home) and a mailbox hop.
///
/// In the threaded runtime every reactor thread pins its shard index for
/// its lifetime. In the deterministic single-threaded runtime the scope is
/// pushed around each delivered closure, so the same discipline holds on
/// one thread.
struct ShardContext {
  /// Shard index of the current execution context, or -1 when the calling
  /// thread is outside any shard (setup threads, benchmark drivers).
  static int Current();

  /// RAII context push: marks the calling thread as executing shard
  /// `shard` until destruction, restoring the previous value after.
  class Scope {
   public:
    explicit Scope(int shard);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    int prev_;
  };
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_SHARD_CONTEXT_H_
