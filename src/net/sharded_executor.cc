#include "net/sharded_executor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "net/tcp_transport.h"
#include "sim/shard_scheduler.h"

namespace hotman::net {

namespace {

/// Shard context of the calling thread. Reactor threads pin theirs for
/// life; the deterministic runtime pushes a scope around each delivery.
thread_local int tls_current_shard = -1;
/// SPSC producer lane owned by the calling thread (-1: overflow lane).
thread_local int tls_producer_lane = -1;

}  // namespace

int ShardContext::Current() { return tls_current_shard; }

ShardContext::Scope::Scope(int shard) : prev_(tls_current_shard) {
  tls_current_shard = shard;
}

ShardContext::Scope::~Scope() { tls_current_shard = prev_; }

// --- mailboxes --------------------------------------------------------------

/// One shard's inbound mail: an SPSC lane per registered producer plus a
/// mutexed overflow lane for unregistered threads and full rings. The
/// consumer (the owning reactor) drains every lane on each tick.
struct ShardedExecutor::Mailboxes {
  Mailboxes(int lanes, std::size_t capacity) {
    lanes_.reserve(lanes);
    for (int i = 0; i < lanes; ++i) {
      lanes_.push_back(std::make_unique<SpscQueue<std::function<void()>>>(capacity));
    }
  }

  /// Producer side; `lane` < 0 or a full ring goes through the overflow
  /// mutex (off the hot path by construction). Returns false when the
  /// mailbox no longer accepts (consumer stopping): the post is dropped
  /// and the caller counts it.
  ///
  /// Conservation law: every closure handed to Push either (a) lands and
  /// is later drained (run, or counted by CloseAndCount), or (b) makes
  /// Push return false so the caller counts the drop — exactly one of the
  /// two. The in_flight_ gate is what closes the lock-free race: a
  /// producer that passed the accepting_ check has announced itself, so
  /// CloseAndCount cannot take its final drain until that push has landed.
  /// Both sides use seq_cst so either the producer sees accepting_ ==
  /// false or CloseAndCount sees in_flight_ > 0 (never neither).
  bool Push(int lane, std::function<void()> fn,
            std::atomic<std::uint64_t>* overflows) {
    in_flight_.fetch_add(1, std::memory_order_seq_cst);
    if (!accepting_.load(std::memory_order_seq_cst)) {
      in_flight_.fetch_sub(1, std::memory_order_seq_cst);
      return false;
    }
    bool pushed = false;
    if (lane >= 0 && lane < static_cast<int>(lanes_.size())) {
      // TryPush only moves from fn on success; a full ring leaves it
      // intact for the overflow path below.
      pushed = lanes_[lane]->TryPush(std::move(fn));
      if (!pushed) overflows->fetch_add(1, std::memory_order_relaxed);
    }
    if (!pushed) {
      MutexLock lock(&overflow_mu_);
      overflow_.push_back(std::move(fn));
    }
    in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }

  /// Consumer side: drains every lane into `out`.
  std::size_t DrainInto(std::vector<std::function<void()>>* out) {
    std::size_t n = 0;
    for (auto& lane : lanes_) n += lane->Drain(out);
    {
      MutexLock lock(&overflow_mu_);
      if (!overflow_.empty()) {
        n += overflow_.size();
        for (auto& fn : overflow_) out->push_back(std::move(fn));
        overflow_.clear();
      }
    }
    return n;
  }

  /// Stops accepting, waits out producers that already passed the
  /// accepting_ gate, and returns how many queued closures were thrown
  /// away (shutdown accounting). Idempotent; later Pushes return false.
  std::size_t CloseAndCount() {
    accepting_.store(false, std::memory_order_seq_cst);
    // Producers that loaded accepting_ == true have already bumped
    // in_flight_; once it hits zero their items are published (Push's
    // final fetch_sub sequences after the ring/overflow store), so the
    // drain below sees every closure that will ever land.
    while (in_flight_.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    std::vector<std::function<void()>> dropped;
    DrainInto(&dropped);
    return dropped.size();
  }

  std::vector<std::unique_ptr<SpscQueue<std::function<void()>>>> lanes_;
  std::atomic<bool> accepting_{true};
  std::atomic<int> in_flight_{0};
  Mutex overflow_mu_;
  std::vector<std::function<void()>> overflow_ HOTMAN_GUARDED_BY(overflow_mu_);
};

// --- shard reactor ----------------------------------------------------------

/// One shard's event loop: a dedicated thread around its own epoll fd (the
/// eventfd is its only registered interest today; per-shard sockets slot in
/// here later), an eventfd doorbell, a deadline-ordered timer queue, and
/// the shard's mailboxes. Mirrors TcpTransport's loop discipline at a
/// fraction of the surface: timers and posted closures run exclusively on
/// the reactor thread.
class ShardReactor : public Executor {
 public:
  ShardReactor(int index, int lanes, std::size_t lane_capacity,
               std::atomic<std::uint64_t>* overflows,
               std::atomic<std::uint64_t>* dropped)
      : index_(index),
        clock_(SystemClock::Default()),
        mail_(lanes, lane_capacity),
        overflows_(overflows),
        dropped_(dropped) {}

  ~ShardReactor() override {
    Halt();
    // fds close here, not in Halt(): a producer that raced Halt() may
    // still call Wake() on wake_fd_, and writing to a recycled fd number
    // would corrupt whatever reopened it. By destruction time the owner
    // has quiesced all producers (same contract as deleting any executor).
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
  }

  Status Launch() {
    if (state_.load() != LoopState::kIdle) {
      return Status::AlreadyExists("reactor already started");
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
      return Status::IOError("eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    state_.store(LoopState::kRunning);
    thread_ = std::thread([this] { LoopMain(); });
    return Status::OK();
  }

  void Halt() {
    // From here on cross-thread Post/ScheduleTimer drop (and count)
    // instead of running inline: the loop thread may still be executing
    // its final drained batch, so an inline run would put two threads on
    // this shard's state at once.
    LoopState expected = LoopState::kRunning;
    state_.compare_exchange_strong(expected, LoopState::kStopping);
    if (thread_.joinable()) {
      Wake();
      thread_.join();
    }
    dropped_->fetch_add(mail_.CloseAndCount(), std::memory_order_relaxed);
    timers_.clear();
    timer_deadline_.clear();
  }

  int index() const { return index_; }
  ShardedExecutor::Mailboxes* mail() { return &mail_; }

  void Wake() {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }

  bool OnReactorThread() const {
    return thread_.get_id() == std::this_thread::get_id();
  }

  /// Posts through the caller's lane; drops (counted) when stopping.
  bool Post(std::function<void()> fn) {
    if (OnReactorThread()) {
      fn();
      return true;
    }
    switch (state_.load(std::memory_order_acquire)) {
      case LoopState::kIdle: {
        // The loop does not exist yet (setup, single-threaded by
        // contract): run inline in this shard's context.
        ShardContext::Scope scope(index_);
        fn();
        return true;
      }
      case LoopState::kStopping:
        // Racing or past Halt(): the loop thread may still be running its
        // final batch, so inline execution here would break the one-
        // thread-per-shard invariant. Drop + count, like TcpTransport.
        dropped_->fetch_add(1, std::memory_order_relaxed);
        return false;
      case LoopState::kRunning:
        break;
    }
    if (!mail_.Push(tls_producer_lane, std::move(fn), overflows_)) {
      dropped_->fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Wake();
    return true;
  }

  // Executor surface (same contract as TcpTransport's).
  TimerId ScheduleTimer(Micros delay, std::function<void()> fn) override {
    const TimerId id = next_timer_.fetch_add(1);
    if (OnReactorThread()) {
      ScheduleLocal(id, delay, std::move(fn));
      return id;
    }
    switch (state_.load(std::memory_order_acquire)) {
      case LoopState::kIdle:
        ScheduleLocal(id, delay, std::move(fn));
        return id;
      case LoopState::kStopping:
        dropped_->fetch_add(1, std::memory_order_relaxed);
        return id;
      case LoopState::kRunning:
        break;
    }
    if (mail_.Push(tls_producer_lane,
                   [this, id, delay, fn = std::move(fn)]() mutable {
                     ScheduleLocal(id, delay, std::move(fn));
                   },
                   overflows_)) {
      Wake();
    } else {
      dropped_->fetch_add(1, std::memory_order_relaxed);
    }
    return id;
  }

  bool CancelTimer(TimerId id) override {
    if (OnReactorThread()) return CancelLocal(id);
    switch (state_.load(std::memory_order_acquire)) {
      case LoopState::kIdle:
        return CancelLocal(id);
      case LoopState::kStopping:
        return false;  // loop gone; the timer will never fire anyway
      case LoopState::kRunning:
        break;
    }
    // Cross-thread cancellation is best-effort, as on TcpTransport.
    Post([this, id] { CancelLocal(id); });
    return true;
  }

  Micros NowMicros() const override { return clock_->NowMicros(); }
  const Clock* clock() const override { return clock_; }

 private:
  void ScheduleLocal(TimerId id, Micros delay, std::function<void()> fn) {
    const Micros deadline = NowMicros() + std::max<Micros>(delay, 0);
    timers_.emplace(std::make_pair(deadline, id), std::move(fn));
    timer_deadline_.emplace(id, deadline);
  }

  bool CancelLocal(TimerId id) {
    auto it = timer_deadline_.find(id);
    if (it == timer_deadline_.end()) return false;
    timers_.erase(std::make_pair(it->second, id));
    timer_deadline_.erase(it);
    return true;
  }

  int NextTimerDelayMillis() const {
    if (timers_.empty()) return 1000;
    const Micros now = clock_->NowMicros();
    const Micros next = timers_.begin()->first.first;
    if (next <= now) return 0;
    return static_cast<int>(std::min<Micros>(
        (next - now + kMicrosPerMilli - 1) / kMicrosPerMilli, 1000));
  }

  void LoopMain() {
    tls_current_shard = index_;
    tls_producer_lane = index_;
    epoll_event events[8];
    std::vector<std::function<void()>> batch;
    while (state_.load(std::memory_order_acquire) == LoopState::kRunning) {
      const int n =
          ::epoll_wait(epoll_fd_, events, 8, NextTimerDelayMillis());
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == wake_fd_) {
          std::uint64_t drained = 0;
          (void)!::read(wake_fd_, &drained, sizeof(drained));
        }
      }
      batch.clear();
      mail_.DrainInto(&batch);
      for (auto& fn : batch) fn();
      RunDueTimers();
    }
    tls_current_shard = -1;
    tls_producer_lane = -1;
  }

  void RunDueTimers() {
    const Micros now = NowMicros();
    while (!timers_.empty() && timers_.begin()->first.first <= now) {
      auto it = timers_.begin();
      const TimerId id = it->first.second;
      std::function<void()> fn = std::move(it->second);
      timers_.erase(it);
      timer_deadline_.erase(id);
      fn();
    }
  }

  /// kIdle: no loop thread yet — setup is single-threaded, run inline.
  /// kRunning: the loop drains; cross-thread calls go through mailboxes.
  /// kStopping: Halt() began (terminal) — the loop will never drain
  /// again and may still be finishing its last batch, so cross-thread
  /// calls drop and count instead of running inline on a foreign thread.
  enum class LoopState { kIdle, kRunning, kStopping };

  const int index_;
  const Clock* clock_;
  std::atomic<LoopState> state_{LoopState::kIdle};
  std::atomic<std::uint64_t> next_timer_{1};
  std::thread thread_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  ShardedExecutor::Mailboxes mail_;
  std::atomic<std::uint64_t>* overflows_;
  std::atomic<std::uint64_t>* dropped_;
  // Reactor-thread-only.
  std::map<std::pair<Micros, TimerId>, std::function<void()>> timers_;
  std::unordered_map<TimerId, Micros> timer_deadline_;
};

// --- sharded executor -------------------------------------------------------

ShardedExecutor::ShardedExecutor(Executor* base, ShardedExecutorConfig config)
    : config_(config), base_(base) {
  if (config_.shards < 1) config_.shards = 1;
  if (!config_.threaded) {
    sim_scheduler_ = std::make_unique<sim::ShardScheduler>(base_, config_.shards);
  }
}

ShardedExecutor::ShardedExecutor(TcpTransport* transport,
                                 ShardedExecutorConfig config)
    : config_(config), base_(transport), transport_(transport) {
  if (config_.shards < 1) config_.shards = 1;
  config_.threaded = true;
}

ShardedExecutor::~ShardedExecutor() { Shutdown(); }

Status ShardedExecutor::Launch() {
  if (state_.load() != State::kIdle) {
    return Status::AlreadyExists("sharded executor already started");
  }
  if (config_.threaded) {
    const int lanes = config_.shards + config_.external_producer_lanes;
    const int first = transport_ != nullptr ? 1 : 0;
    for (int shard = first; shard < config_.shards; ++shard) {
      auto reactor = std::make_unique<ShardReactor>(
          shard, lanes, config_.mailbox_capacity, &mailbox_overflows_,
          &posts_dropped_stopped_);
      HOTMAN_RETURN_IF_ERROR(reactor->Launch());
      reactors_.push_back(std::move(reactor));
    }
    if (transport_ != nullptr) {
      shard0_mail_ = std::make_unique<Mailboxes>(lanes, config_.mailbox_capacity);
      // The transport loop is shard 0: tag its thread and drain shard 0's
      // mailboxes on every loop tick.
      transport_->SetTickHook([this] { DrainShardZero(); });
      transport_->Post([] {
        tls_current_shard = 0;
        tls_producer_lane = 0;
      });
    }
  }
  state_.store(State::kRunning);
  return Status::OK();
}

void ShardedExecutor::Shutdown() {
  // kRunning -> kStopped exactly once; producers that read kRunning just
  // before the flip land in mailboxes whose CloseAndCount below drains or
  // counts them, and later producers see kStopped and drop + count.
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopped)) return;
  if (transport_ != nullptr && shard0_mail_ != nullptr) {
    // SetTickHook(nullptr) returning quiesces the drain hook; the mailbox
    // object itself must outlive Shutdown() (producers racing the state
    // flip may still be inside Push), so it is never reset — CloseAndCount
    // makes it reject everything from here on, and the unique_ptr dies
    // with the executor.
    transport_->SetTickHook(nullptr);
    posts_dropped_stopped_.fetch_add(shard0_mail_->CloseAndCount(),
                                     std::memory_order_relaxed);
  }
  // Reactors are halted but, like shard0_mail_, stay allocated until
  // destruction: a racing PostThreaded that saw kRunning may still hold a
  // reactor pointer, and a halted reactor safely drops + counts.
  for (auto& reactor : reactors_) reactor->Halt();
}

int ShardedExecutor::ShardForPoint(std::uint32_t point, int shards) {
  if (shards <= 1) return 0;
  // Contiguous arcs of the 32-bit ketama circle: shard = floor(point *
  // shards / 2^32). Keys and vnodes that are neighbors on the ring stay
  // neighbors in a shard.
  return static_cast<int>(
      (static_cast<std::uint64_t>(point) * static_cast<std::uint64_t>(shards)) >>
      32);
}

Executor* ShardedExecutor::executor(int shard) {
  if (!config_.threaded) return base_;
  if (transport_ != nullptr && shard == 0) return base_;
  const std::size_t slot =
      static_cast<std::size_t>(transport_ != nullptr ? shard - 1 : shard);
  if (slot >= reactors_.size()) {
    // Threaded reactors are created by Launch() (and survive, halted,
    // until destruction); handing out a null executor here would be a
    // delayed crash at the caller.
    HOTMAN_LOG(kError) << "ShardedExecutor::executor(" << shard
                       << ") before Launch()";
    std::abort();
  }
  return reactors_[slot].get();
}

void ShardedExecutor::Post(int shard, std::function<void()> fn) {
  if (!config_.threaded) {
    sim_scheduler_->Post(shard, std::move(fn));
    return;
  }
  PostThreaded(shard, std::move(fn));
}

bool ShardedExecutor::PostThreaded(int shard, std::function<void()> fn) {
  if (tls_current_shard == shard) {
    fn();
    return true;
  }
  switch (state_.load(std::memory_order_acquire)) {
    case State::kIdle: {
      // Setup contract (single-threaded by construction): run inline in
      // the target shard's context, like TcpTransport::Post at kIdle.
      ShardContext::Scope scope(shard);
      fn();
      return true;
    }
    case State::kStopped:
      // Racing or past Shutdown(): reactors may still be finishing their
      // final batches, so inline execution would break shard affinity.
      posts_dropped_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    case State::kRunning:
      break;
  }
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
  if (transport_ != nullptr && shard == 0) {
    if (!shard0_mail_->Push(tls_producer_lane, std::move(fn),
                            &mailbox_overflows_)) {
      posts_dropped_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    transport_->Wake();
    return true;
  }
  ShardReactor* reactor =
      reactors_[static_cast<std::size_t>(transport_ != nullptr ? shard - 1 : shard)]
          .get();
  return reactor->Post(std::move(fn));
}

void ShardedExecutor::DrainShardZero() {
  std::vector<std::function<void()>> batch;
  shard0_mail_->DrainInto(&batch);
  for (auto& fn : batch) fn();
}

void ShardedExecutor::PostSync(int shard, std::function<void()> fn) {
  if (!config_.threaded || state_.load(std::memory_order_acquire) == State::kIdle ||
      tls_current_shard == shard) {
    ShardContext::Scope scope(shard);
    fn();
    return;
  }
  // Off-hot-path rendezvous (stats merges, stop): mutex + cv is fine here.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  const bool posted = PostThreaded(shard, [&mu, &cv, &done, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  if (!posted) return;  // dropped by a racing Stop(); counted there
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&done] { return done; });
}

int ShardedExecutor::RegisterExternalProducer() {
  const int slot = next_external_lane_.fetch_add(1);
  if (slot >= config_.external_producer_lanes) return -1;
  tls_producer_lane = config_.shards + slot;
  return tls_producer_lane;
}

std::uint64_t ShardedExecutor::cross_posts() const {
  if (!config_.threaded) return sim_scheduler_->cross_posts();
  return cross_posts_.load(std::memory_order_relaxed);
}

std::uint64_t ShardedExecutor::mailbox_overflows() const {
  return mailbox_overflows_.load(std::memory_order_relaxed);
}

std::uint64_t ShardedExecutor::posts_dropped_stopped() const {
  return posts_dropped_stopped_.load(std::memory_order_relaxed);
}

void ShardedExecutor::ExportStats(metrics::Registry* registry) const {
  registry->gauge("sharded.shards")->Set(config_.shards);
  registry->counter("sharded.cross_posts")->Increment(cross_posts());
  registry->counter("sharded.mailbox_overflows")->Increment(mailbox_overflows());
  registry->counter("sharded.posts_dropped_stopped")
      ->Increment(posts_dropped_stopped());
}

}  // namespace hotman::net
