#ifndef HOTMAN_NET_SHARDED_EXECUTOR_H_
#define HOTMAN_NET_SHARDED_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/executor.h"
#include "net/shard_context.h"
#include "net/spsc_queue.h"

namespace hotman::sim {
class ShardScheduler;
}  // namespace hotman::sim

namespace hotman::net {

class TcpTransport;
class ShardReactor;

/// Shard-per-core runtime configuration.
struct ShardedExecutorConfig {
  int shards = 1;
  /// Threaded mode runs one reactor thread per shard (each with its own
  /// epoll fd, eventfd and timer queue — the real daemon and benches).
  /// Non-threaded mode multiplexes every shard onto the base executor with
  /// deterministic zero-delay hops (the simulator and chaos sweeps).
  bool threaded = false;
  /// Per-lane SPSC mailbox capacity (rounded up to a power of two).
  std::size_t mailbox_capacity = 1024;
  /// Extra registered-producer lanes beyond the shard threads themselves
  /// (benchmark client threads and the like).
  int external_producer_lanes = 8;
};

/// N reactors behind one node: a deterministic key→shard mapping derived
/// from ring position, one executor per shard, and cross-shard message
/// passing over lock-free SPSC mailboxes drained on each reactor tick.
///
/// Shard 0 is the node's "system shard": when a TcpTransport is attached
/// its event loop *is* shard 0 (gossip, membership and the wire protocol
/// stay loop-resident and unchanged), and reactors 1..N-1 carry the
/// keyed coordinator/replica work. Without an attached transport every
/// shard gets its own reactor (standalone benches and tests). In
/// non-threaded mode all shards share the base executor and hops become
/// deterministic zero-delay events (sim::ShardScheduler).
class ShardedExecutor {
 public:
  /// Non-threaded (deterministic) runtime over any executor, or a
  /// standalone threaded reactor pool when `config.threaded` is set.
  ShardedExecutor(Executor* base, ShardedExecutorConfig config);

  /// Threaded runtime whose shard 0 is `transport`'s event loop; reactors
  /// are created for shards 1..N-1 and the transport's per-tick drain hook
  /// empties shard 0's mailboxes.
  ShardedExecutor(TcpTransport* transport, ShardedExecutorConfig config);

  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Starts the reactor threads (threaded mode; the attached transport, if
  /// any, must already be started). No-op in non-threaded mode. (Named
  /// Launch/Shutdown rather than Start/Stop so whole-program analysis can
  /// tell the real-runtime lifecycle apart from event-loop Start/Stop
  /// methods — deterministic layers never call these.)
  Status Launch();

  /// Stops and joins the reactors; closures still sitting in mailboxes are
  /// dropped and counted, and so is any Post that races or follows the
  /// shutdown (run-or-count, never silently lost and never run inline on a
  /// foreign thread). Terminal: the executor cannot be relaunched, and the
  /// halted reactors and mailboxes stay allocated until destruction so
  /// racing producers never touch freed state. The attached transport is
  /// left running (its owner stops it).
  void Shutdown();

  int num_shards() const { return config_.shards; }
  bool threaded() const { return config_.threaded; }

  /// Ring-position → shard: the hash point space [0, 2^32) is split into
  /// `shards` contiguous arcs, so a key's shard is derived from the same
  /// coordinate that places it on the consistent-hash ring. (The hash
  /// itself lives a layer up — cluster/ maps key → ketama point → shard —
  /// keeping net/ free of hashring/ dependencies.)
  static int ShardForPoint(std::uint32_t point, int shards);

  /// The executor shard `shard`'s callbacks and timers must run on. In
  /// non-threaded mode every shard maps to the base executor.
  Executor* executor(int shard);

  /// Runs `fn` in shard `shard`'s context. Same-shard calls run inline;
  /// cross-shard calls travel through the caller's SPSC lane (threaded) or
  /// become a deterministic zero-delay event (non-threaded). Lock-free on
  /// the hot path: a registered producer only falls back to the mutexed
  /// overflow lane when its ring is full.
  void Post(int shard, std::function<void()> fn);

  /// Runs `fn` on `shard` and waits for it (setup, stats merges, teardown
  /// — never the hot path). Runs inline when already home.
  void PostSync(int shard, std::function<void()> fn);

  /// Claims an SPSC producer lane for the calling thread (benchmark
  /// clients). Returns the lane index, or -1 when the lanes are exhausted
  /// (such a thread still posts correctly, via the overflow lane).
  int RegisterExternalProducer();

  std::uint64_t cross_posts() const;
  std::uint64_t mailbox_overflows() const;
  std::uint64_t posts_dropped_stopped() const;

  /// sharded.* counters for /stats.
  void ExportStats(metrics::Registry* registry) const;

 private:
  friend class ShardReactor;
  struct Mailboxes;

  /// Returns false only when a racing Stop() dropped the closure.
  bool PostThreaded(int shard, std::function<void()> fn);
  /// Drains shard 0's mailboxes on the attached transport's loop tick.
  void DrainShardZero();

  /// kIdle: before Launch() — single-threaded setup, posts run inline.
  /// kRunning: reactors live; cross-shard posts travel through mailboxes.
  /// kStopped: Shutdown() began (terminal) — cross-shard posts drop and
  /// count. Read/written concurrently by producer threads, so atomic.
  enum class State { kIdle, kRunning, kStopped };

  ShardedExecutorConfig config_;
  Executor* base_ = nullptr;          ///< non-threaded base (or transport)
  TcpTransport* transport_ = nullptr; ///< threaded mode's shard 0, if any
  std::atomic<State> state_{State::kIdle};

  std::unique_ptr<sim::ShardScheduler> sim_scheduler_;  ///< non-threaded
  std::vector<std::unique_ptr<ShardReactor>> reactors_; ///< threaded
  std::unique_ptr<Mailboxes> shard0_mail_;  ///< threaded + transport mode

  std::atomic<int> next_external_lane_{0};
  std::atomic<std::uint64_t> cross_posts_{0};
  std::atomic<std::uint64_t> mailbox_overflows_{0};
  std::atomic<std::uint64_t> posts_dropped_stopped_{0};
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_SHARDED_EXECUTOR_H_
