#include "net/sim_transport.h"

#include "bson/codec.h"

namespace hotman::net {

void SimTransport::Send(Message msg) {
  const std::size_t payload_bytes = bson::EncodedSize(msg.body);
  network_.Send(std::move(msg), payload_bytes);
}

}  // namespace hotman::net
