#ifndef HOTMAN_NET_SIM_TRANSPORT_H_
#define HOTMAN_NET_SIM_TRANSPORT_H_

#include <string>

#include "net/transport.h"
#include "sim/network.h"
#include "sim/network_config.h"

namespace hotman::net {

/// Transport over the deterministic simulator: adapts sim::SimNetwork +
/// sim::EventLoop to the net::Transport surface the cluster and gossip
/// layers are written against. Owns the SimNetwork; the EventLoop is shared
/// with the experiment driver (which advances virtual time).
///
/// Payload accounting uses bson::EncodedSize(msg.body) — the bytes the real
/// transport would put on the wire for the body — so simulated transmission
/// times are identical to what SimNetwork users measured before the
/// Transport split.
class SimTransport : public Transport {
 public:
  SimTransport(sim::EventLoop* loop, sim::NetworkConfig config,
               std::uint64_t seed)
      : loop_(loop), network_(loop, config, seed) {}

  // Transport surface.
  void RegisterEndpoint(const std::string& name, Handler handler) override {
    network_.RegisterEndpoint(name, std::move(handler));
  }
  void UnregisterEndpoint(const std::string& name) override {
    network_.UnregisterEndpoint(name);
  }
  void Send(Message msg) override;
  void ExportStats(metrics::Registry* registry) const override {
    network_.ExportStats(registry);
  }

  // Executor surface (delegates to the sim loop).
  TimerId ScheduleTimer(Micros delay, std::function<void()> fn) override {
    return loop_->ScheduleTimer(delay, std::move(fn));
  }
  bool CancelTimer(TimerId id) override { return loop_->CancelTimer(id); }
  Micros NowMicros() const override { return loop_->NowMicros(); }
  const Clock* clock() const override { return loop_->clock(); }

  // Fault-injection passthroughs, so failure experiments keep their exact
  // API (`cluster.network()->PartitionLink(...)`) across the refactor.
  void PartitionLink(const std::string& a, const std::string& b) {
    network_.PartitionLink(a, b);
  }
  void HealLink(const std::string& a, const std::string& b) {
    network_.HealLink(a, b);
  }
  void Disconnect(const std::string& name) { network_.Disconnect(name); }
  void Reconnect(const std::string& name) { network_.Reconnect(name); }
  bool IsDisconnected(const std::string& name) const {
    return network_.IsDisconnected(name);
  }
  bool HasEndpoint(const std::string& name) const {
    return network_.HasEndpoint(name);
  }

  // Chaos passthroughs (probabilistic drop/duplicate/reorder rules the
  // nemesis scheduler in src/chaos/ composes into timed fault schedules).
  void SetLinkChaos(const std::string& from, const std::string& to,
                    sim::LinkChaos chaos) {
    network_.SetLinkChaos(from, to, chaos);
  }
  void ClearLinkChaos(const std::string& from, const std::string& to) {
    network_.ClearLinkChaos(from, to);
  }
  void SetEndpointChaos(const std::string& name, sim::LinkChaos chaos) {
    network_.SetEndpointChaos(name, chaos);
  }
  void ClearEndpointChaos(const std::string& name) {
    network_.ClearEndpointChaos(name);
  }
  void ClearAllChaos() { network_.ClearAllChaos(); }

  std::size_t messages_sent() const { return network_.messages_sent(); }
  std::size_t messages_dropped() const { return network_.messages_dropped(); }
  std::size_t bytes_sent() const { return network_.bytes_sent(); }
  const metrics::Histogram& delivery_histogram() const {
    return network_.delivery_histogram();
  }

  /// The underlying simulator, for components that are explicitly sim-aware
  /// (FailureInjector). Cluster/gossip code must not touch this.
  sim::SimNetwork* sim_network() { return &network_; }

 private:
  sim::EventLoop* loop_;
  sim::SimNetwork network_;
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_SIM_TRANSPORT_H_
