#ifndef HOTMAN_NET_SPSC_QUEUE_H_
#define HOTMAN_NET_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace hotman::net {

/// Bounded lock-free single-producer/single-consumer ring.
///
/// One designated producer thread calls TryPush; one designated consumer
/// thread calls Drain/Empty. No mutex anywhere: the producer publishes a
/// slot with a release store of its cursor and the consumer observes it
/// with an acquire load, so the item written before the push is visible
/// after the pop. This is the cross-shard mailbox primitive of the
/// shard-per-core runtime — reactors exchange closures through one lane
/// per (producer, consumer) pair and never share a hot-path lock.
///
/// Capacity is rounded up to a power of two so the cursors can run free
/// and slot selection is a mask. A full ring rejects the push (the caller
/// escalates to its overflow path and counts the event); it never blocks.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity = 1024) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full — and then leaves
  /// `item` untouched (it is only moved from on success), so the caller can
  /// route the very same item to its overflow path.
  bool TryPush(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops one item into `*out`; false when empty.
  bool TryPop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves every currently-visible item into `*out`
  /// (appended) and returns how many were drained.
  std::size_t Drain(std::vector<T>* out) {
    std::size_t n = 0;
    T item;
    while (TryPop(&item)) {
      out->push_back(std::move(item));
      ++n;
    }
    return n;
  }

  /// Either side (racy by nature; exact only on the consumer thread).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Separate cache lines so the producer's tail stores never invalidate the
  // consumer's head line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_SPSC_QUEUE_H_
