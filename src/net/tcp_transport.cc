#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "bson/codec.h"
#include "common/logging.h"

namespace hotman::net {

namespace {

constexpr int kMaxEpollEvents = 64;
constexpr Micros kHousekeepingPeriod = 200 * kMicrosPerMilli;

void SetNoDelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)), clock_(SystemClock::Default()) {
  for (const auto& [name, addr] : config_.peers) {
    peers_[name].addr = addr;
  }
}

TcpTransport::~TcpTransport() { Stop(); }

bool TcpTransport::OnLoopThread() const {
  return loop_thread_.get_id() == std::this_thread::get_id();
}

Status TcpTransport::Start() {
  if (running_.load()) return Status::AlreadyExists("transport already started");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd failed");
  }
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev);

  if (config_.listen_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      Stop();
      return Status::IOError("listen socket failed");
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.listen_port));
    if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
      Stop();
      return Status::InvalidArgument("listen_host must be a numeric IPv4 address");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
      Stop();
      return Status::IOError(std::string("bind/listen failed: ") + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    listen_port_ = ntohs(bound.sin_port);
    epoll_event lev{};
    lev.events = EPOLLIN;
    lev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev);
  }

  // Arm the periodic housekeeping timer before the loop thread exists; no
  // concurrency yet, so inserting directly is safe.
  const TimerId hk = next_timer_.fetch_add(1);
  ScheduleOnLoop(hk, kHousekeepingPeriod, [this] { Housekeeping(); });

  running_.store(true);
  {
    MutexLock lock(&ops_mu_);
    loop_state_ = LoopState::kRunning;
  }
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  {
    // From here on Post() drops (and counts) instead of enqueueing: the
    // loop below is about to stop draining, so an enqueue could never run.
    MutexLock lock(&ops_mu_);
    if (loop_state_ == LoopState::kRunning) loop_state_ = LoopState::kStopping;
  }
  if (loop_thread_.joinable()) {
    running_.store(false);
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
    loop_thread_.join();
  }
  running_.store(false);
  // The loop thread is gone (or never existed); tear down on this thread.
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    if (conn->established) {
      MutexLock lock(&stats_mu_);
      ++stats_.connections_closed;
      --stats_.connections_open;
    }
  }
  conns_.clear();
  conns_by_peer_.clear();
  timers_.clear();
  timer_deadline_.clear();
  {
    MutexLock lock(&ops_mu_);
    if (!pending_ops_.empty()) {
      // Ops the loop never got to drain: dropped, but accounted for.
      MutexLock stats_lock(&stats_mu_);
      stats_.posts_dropped_stopped += pending_ops_.size();
      pending_ops_.clear();
    }
    loop_state_ = LoopState::kIdle;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

void TcpTransport::AddOrUpdatePeer(const std::string& name, TcpPeer peer) {
  Post([this, name, peer] {
    PeerState& state = peers_[name];
    state.addr = peer;
    state.backoff = 0;
    state.next_attempt_at = 0;
  });
}

void TcpTransport::Post(std::function<void()> fn) {
  if (OnLoopThread()) {
    fn();
    return;
  }
  {
    MutexLock lock(&ops_mu_);
    switch (loop_state_) {
      case LoopState::kRunning:
        pending_ops_.push_back(std::move(fn));
        fn = nullptr;
        break;
      case LoopState::kStopping: {
        // Racing Stop(): the loop will never drain again, and running the
        // closure here would race the dying loop thread. Drop + count.
        MutexLock stats_lock(&stats_mu_);
        ++stats_.posts_dropped_stopped;
        return;
      }
      case LoopState::kIdle:
        break;  // run inline below, outside the lock
    }
  }
  if (fn != nullptr) {
    // The loop does not exist (setup/teardown, single-threaded by contract).
    fn();
    return;
  }
  Wake();
}

void TcpTransport::Wake() {
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void TcpTransport::SetTickHook(std::function<void()> hook) {
  MutexLock lock(&hook_mu_);
  tick_hook_ = std::move(hook);
}

void TcpTransport::RegisterEndpoint(const std::string& name, Handler handler) {
  Post([this, name, handler = std::move(handler)]() mutable {
    endpoints_[name] = std::move(handler);
  });
}

void TcpTransport::UnregisterEndpoint(const std::string& name) {
  Post([this, name] { endpoints_.erase(name); });
}

void TcpTransport::Send(Message msg) {
  Post([this, msg = std::move(msg)]() mutable { SendOnLoop(std::move(msg)); });
}

TimerId TcpTransport::ScheduleTimer(Micros delay, std::function<void()> fn) {
  const TimerId id = next_timer_.fetch_add(1);
  Post([this, id, delay, fn = std::move(fn)]() mutable {
    ScheduleOnLoop(id, delay, std::move(fn));
  });
  return id;
}

TimerId TcpTransport::ScheduleOnLoop(TimerId id, Micros delay,
                                     std::function<void()> fn) {
  const Micros deadline = NowMicros() + std::max<Micros>(delay, 0);
  timers_.emplace(std::make_pair(deadline, id), std::move(fn));
  timer_deadline_.emplace(id, deadline);
  return id;
}

bool TcpTransport::CancelTimer(TimerId id) {
  if (!running_.load() || OnLoopThread()) {
    auto it = timer_deadline_.find(id);
    if (it == timer_deadline_.end()) return false;
    timers_.erase(std::make_pair(it->second, id));
    timer_deadline_.erase(it);
    return true;
  }
  // Cross-thread cancellation is best-effort: the timer may fire before the
  // op reaches the loop. Loop-resident components (the only schedulers in
  // practice) always take the exact path above.
  Post([this, id] {
    auto it = timer_deadline_.find(id);
    if (it == timer_deadline_.end()) return;
    timers_.erase(std::make_pair(it->second, id));
    timer_deadline_.erase(it);
  });
  return true;
}

void TcpTransport::LoopMain() {
  epoll_event events[kMaxEpollEvents];
  while (running_.load()) {
    const int timeout_ms = NextTimerDelayMillis();
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      HOTMAN_LOG(kError) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
      } else if (fd == listen_fd_) {
        HandleListenReady();
      } else {
        HandleConnEvent(fd, events[i].events);
      }
    }
    ProcessOps();
    {
      // Holding hook_mu_ across the call is what makes SetTickHook(nullptr)
      // a quiescence barrier for the previous hook.
      MutexLock lock(&hook_mu_);
      if (tick_hook_) tick_hook_();
    }
    RunDueTimers();
  }
}

void TcpTransport::ProcessOps() {
  std::vector<std::function<void()>> ops;
  {
    MutexLock lock(&ops_mu_);
    ops.swap(pending_ops_);
  }
  for (auto& op : ops) op();
}

void TcpTransport::RunDueTimers() {
  const Micros now = NowMicros();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto it = timers_.begin();
    const TimerId id = it->first.second;
    std::function<void()> fn = std::move(it->second);
    timers_.erase(it);
    timer_deadline_.erase(id);
    fn();
  }
}

int TcpTransport::NextTimerDelayMillis() const {
  if (timers_.empty()) return 1000;
  const Micros now = clock_->NowMicros();
  const Micros next = timers_.begin()->first.first;
  if (next <= now) return 0;
  const Micros diff = next - now;
  return static_cast<int>(
      std::min<Micros>((diff + kMicrosPerMilli - 1) / kMicrosPerMilli, 1000));
}

void TcpTransport::HandleListenReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      HOTMAN_LOG(kWarn) << "accept failed: " << std::strerror(errno);
      return;
    }
    SetNoDelay(fd);
    auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->inbound = true;
    conn->established = true;
    conn->last_read_at = conn->last_write_progress = NowMicros();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
    {
      MutexLock lock(&stats_mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_open;
    }
  }
}

void TcpTransport::HandleConnEvent(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // closed earlier in this batch
  Conn* conn = it->second.get();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    if (conn->connecting) {
      FinishConnect(conn);  // reads SO_ERROR, fails with backoff
    } else {
      CloseConn(conn, /*failed=*/false, "peer hung up");
    }
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    HandleWritable(conn);
    if (conns_.find(fd) == conns_.end()) return;  // closed while writing
  }
  if ((events & EPOLLIN) != 0) {
    HandleReadable(conn);
  }
}

void TcpTransport::FinishConnect(Conn* conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  if (err != 0) {
    HOTMAN_LOG(kWarn) << "connect to " << conn->name
                      << " failed: " << std::strerror(err);
    CloseConn(conn, /*failed=*/true, "connect failed");
    return;
  }
  conn->connecting = false;
  conn->established = true;
  conn->last_read_at = conn->last_write_progress = NowMicros();
  if (auto pit = peers_.find(conn->name); pit != peers_.end()) {
    pit->second.backoff = 0;
    pit->second.next_attempt_at = 0;
  }
  {
    MutexLock lock(&stats_mu_);
    ++stats_.connections_opened;
    ++stats_.connections_open;
  }
  UpdateEpoll(conn);
}

void TcpTransport::HandleWritable(Conn* conn) {
  const int fd = conn->fd;
  if (conn->connecting) {
    FinishConnect(conn);  // may destroy conn on failure
    if (conns_.find(fd) == conns_.end()) return;
  }
  while (conn->outbuf_off < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->outbuf_off,
               conn->outbuf.size() - conn->outbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf_off += static_cast<std::size_t>(n);
      conn->last_write_progress = NowMicros();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn, /*failed=*/false, "write error");
    return;
  }
  if (conn->outbuf_off >= conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outbuf_off = 0;
    UpdateEpoll(conn);
  }
}

void TcpTransport::HandleReadable(Conn* conn) {
  const int fd = conn->fd;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      conn->last_read_at = NowMicros();
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      CloseConn(conn, /*failed=*/false, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn, /*failed=*/false, "read error");
    return;
  }
  while (true) {
    Message msg;
    bool complete = false;
    const std::size_t before = conn->reader.buffered_bytes();
    const Status st = conn->reader.Next(&msg, &complete);
    if (!st.ok()) {
      HOTMAN_LOG(kWarn) << "corrupt frame from fd " << conn->fd << ": "
                        << st.ToString();
      CloseConn(conn, /*failed=*/false, "corrupt frame");
      return;
    }
    if (!complete) break;
    const std::size_t wire_bytes = before - conn->reader.buffered_bytes();
    if (conn->name.empty() && !msg.from.empty()) {
      // Inbound connections announce their identity with their first frame;
      // replies to that peer route back over this connection.
      conn->name = msg.from;
      conns_by_peer_.emplace(conn->name, conn);
    }
    DeliverLocally(msg, wire_bytes);
    if (conns_.find(fd) == conns_.end()) return;  // handler closed us
  }
}

void TcpTransport::DeliverLocally(const Message& msg, std::size_t wire_bytes) {
  auto it = endpoints_.find(msg.to);
  if (it == endpoints_.end()) {
    MutexLock lock(&stats_mu_);
    ++stats_.frames_dropped;
    ++stats_.dropped_no_endpoint;
    return;
  }
  {
    MutexLock lock(&stats_mu_);
    ++stats_.frames_delivered;
    stats_.bytes_delivered += wire_bytes;
    const Micros latency = std::max<Micros>(NowMicros() - msg.sent_at, 0);
    stats_.latency_by_type[msg.type].Record(latency);
  }
  it->second(msg);
}

void TcpTransport::SendOnLoop(Message msg) {
  msg.sent_at = NowMicros();
  if (endpoints_.count(msg.to) > 0) {
    // Loopback to a local endpoint (a coordinator replicating to itself):
    // no socket, but the accounting and the deferred delivery match the
    // remote path.
    const std::size_t approx_bytes = kFrameHeaderBytes + bson::EncodedSize(msg.body);
    {
      MutexLock lock(&stats_mu_);
      ++stats_.frames_sent;
      stats_.bytes_sent += approx_bytes;
    }
    const TimerId id = next_timer_.fetch_add(1);
    ScheduleOnLoop(id, 0, [this, approx_bytes, msg = std::move(msg)] {
      DeliverLocally(msg, approx_bytes);
    });
    return;
  }
  if (epoll_fd_ < 0) {
    MutexLock lock(&stats_mu_);
    ++stats_.frames_dropped;
    ++stats_.dropped_not_connected;
    return;
  }
  Conn* conn = nullptr;
  if (auto cit = conns_by_peer_.find(msg.to); cit != conns_by_peer_.end()) {
    conn = cit->second;
  }
  if (conn == nullptr) {
    auto pit = peers_.find(msg.to);
    if (pit == peers_.end()) {
      MutexLock lock(&stats_mu_);
      ++stats_.frames_dropped;
      ++stats_.dropped_no_endpoint;
      return;
    }
    if (NowMicros() < pit->second.next_attempt_at) {
      MutexLock lock(&stats_mu_);
      ++stats_.frames_dropped;
      ++stats_.dropped_not_connected;
      return;
    }
    conn = ConnectTo(msg.to, &pit->second);
    if (conn == nullptr) {
      MutexLock lock(&stats_mu_);
      ++stats_.frames_dropped;
      ++stats_.dropped_not_connected;
      return;
    }
  }
  std::string frame;
  EncodeFrame(msg, &frame);
  const std::size_t queued = conn->outbuf.size() - conn->outbuf_off;
  if (queued + frame.size() > config_.max_outbound_queue_bytes) {
    MutexLock lock(&stats_mu_);
    ++stats_.frames_dropped;
    ++stats_.dropped_backpressure;
    return;
  }
  // Compact the consumed prefix before growing (bounded by the watermark).
  if (conn->outbuf_off > 0 && conn->outbuf_off * 2 > conn->outbuf.size()) {
    conn->outbuf.erase(0, conn->outbuf_off);
    conn->outbuf_off = 0;
  }
  conn->outbuf += frame;
  {
    MutexLock lock(&stats_mu_);
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
  }
  UpdateEpoll(conn);
}

TcpTransport::Conn* TcpTransport::ConnectTo(const std::string& name,
                                            PeerState* peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer->addr.port);
  if (::inet_pton(AF_INET, peer->addr.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    HOTMAN_LOG(kWarn) << "peer " << name << " has non-numeric host "
                      << peer->addr.host;
    return nullptr;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    peer->backoff = std::clamp<Micros>(peer->backoff * 2,
                                       config_.reconnect_backoff_min,
                                       config_.reconnect_backoff_max);
    peer->next_attempt_at = NowMicros() + peer->backoff;
    MutexLock lock(&stats_mu_);
    ++stats_.connections_failed;
    return nullptr;
  }
  auto owned = std::make_unique<Conn>(config_.max_frame_bytes);
  Conn* conn = owned.get();
  conn->fd = fd;
  conn->name = name;
  conn->connecting = (rc != 0);
  conn->established = (rc == 0);
  conn->connect_started = NowMicros();
  conn->last_read_at = conn->last_write_progress = conn->connect_started;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conns_.emplace(fd, std::move(owned));
  conns_by_peer_[name] = conn;
  if (conn->established) {
    peer->backoff = 0;
    peer->next_attempt_at = 0;
    MutexLock lock(&stats_mu_);
    ++stats_.connections_opened;
    ++stats_.connections_open;
  }
  return conn;
}

void TcpTransport::CloseConn(Conn* conn, bool failed, const char* why) {
  HOTMAN_LOG(kDebug) << "closing connection fd " << conn->fd << " ("
                     << (conn->name.empty() ? "?" : conn->name) << "): " << why;
  if (!conn->name.empty()) {
    if (auto it = conns_by_peer_.find(conn->name);
        it != conns_by_peer_.end() && it->second == conn) {
      conns_by_peer_.erase(it);
    }
    if (failed) {
      if (auto pit = peers_.find(conn->name); pit != peers_.end()) {
        pit->second.backoff = std::clamp<Micros>(
            pit->second.backoff * 2, config_.reconnect_backoff_min,
            config_.reconnect_backoff_max);
        pit->second.next_attempt_at = NowMicros() + pit->second.backoff;
      }
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  {
    MutexLock lock(&stats_mu_);
    if (failed) {
      ++stats_.connections_failed;
    } else {
      ++stats_.connections_closed;
    }
    if (conn->established) --stats_.connections_open;
  }
  conns_.erase(conn->fd);  // destroys conn
}

void TcpTransport::UpdateEpoll(Conn* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (conn->connecting || conn->outbuf_off < conn->outbuf.size()) {
    ev.events |= EPOLLOUT;
  }
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpTransport::Housekeeping() {
  const Micros now = NowMicros();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    if (conn->connecting &&
        now - conn->connect_started > config_.connect_timeout) {
      CloseConn(conn, /*failed=*/true, "connect timeout");
      continue;
    }
    if (conn->established && conn->outbuf_off < conn->outbuf.size() &&
        now - conn->last_write_progress > config_.write_stall_timeout) {
      CloseConn(conn, /*failed=*/false, "write stalled");
      continue;
    }
    if (config_.read_idle_timeout > 0 && conn->established &&
        now - conn->last_read_at > config_.read_idle_timeout) {
      CloseConn(conn, /*failed=*/false, "read idle");
      continue;
    }
  }
  const TimerId id = next_timer_.fetch_add(1);
  ScheduleOnLoop(id, kHousekeepingPeriod, [this] { Housekeeping(); });
}

void TcpTransport::ExportStats(metrics::Registry* registry) const {
  MutexLock lock(&stats_mu_);
  registry->counter("net.frames_sent")->Increment(stats_.frames_sent);
  registry->counter("net.frames_delivered")->Increment(stats_.frames_delivered);
  registry->counter("net.frames_dropped")->Increment(stats_.frames_dropped);
  registry->counter("net.bytes_sent")->Increment(stats_.bytes_sent);
  registry->counter("net.bytes_delivered")->Increment(stats_.bytes_delivered);
  registry->counter("net.dropped_no_endpoint")
      ->Increment(stats_.dropped_no_endpoint);
  registry->counter("net.dropped_not_connected")
      ->Increment(stats_.dropped_not_connected);
  registry->counter("net.dropped_backpressure")
      ->Increment(stats_.dropped_backpressure);
  registry->counter("net.connections_opened")
      ->Increment(stats_.connections_opened);
  registry->counter("net.connections_accepted")
      ->Increment(stats_.connections_accepted);
  registry->counter("net.connections_failed")
      ->Increment(stats_.connections_failed);
  registry->counter("net.connections_closed")
      ->Increment(stats_.connections_closed);
  registry->counter("net.posts_dropped_stopped")
      ->Increment(stats_.posts_dropped_stopped);
  registry->gauge("net.connections_open")->Set(stats_.connections_open);
  for (const auto& [type, hist] : stats_.latency_by_type) {
    registry->histogram("net.frame_latency." + type)->MergeFrom(hist);
  }
}

}  // namespace hotman::net
