#ifndef HOTMAN_NET_TCP_TRANSPORT_H_
#define HOTMAN_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/transport.h"

namespace hotman::net {

/// Address of a named peer.
struct TcpPeer {
  std::string host;
  std::uint16_t port = 0;
};

/// Knobs of the real transport. Defaults suit a loopback cluster; the
/// timeouts exist so a wedged peer costs a bounded amount of memory and
/// time, never a hang.
struct TcpTransportConfig {
  std::string listen_host = "127.0.0.1";
  /// Port to accept on; 0 picks an ephemeral port (see listen_port()),
  /// -1 disables the listener (pure client transport).
  int listen_port = 0;
  /// Known peer addresses by endpoint name. Peers not listed can still
  /// reach us inbound (their name is learned from their first frame) and
  /// receive replies over that connection.
  std::map<std::string, TcpPeer> peers;

  Micros connect_timeout = 2 * kMicrosPerSecond;
  /// Close a connection whose outbound buffer has made no progress for
  /// this long (peer stopped reading).
  Micros write_stall_timeout = 5 * kMicrosPerSecond;
  /// Close a connection with no inbound bytes for this long; 0 disables
  /// (idle cluster links are legitimate between gossip rounds).
  Micros read_idle_timeout = 0;
  Micros reconnect_backoff_min = 50 * kMicrosPerMilli;
  Micros reconnect_backoff_max = 2 * kMicrosPerSecond;

  /// Per-connection outbound high watermark: frames that would push the
  /// buffered bytes past this are dropped and counted (backpressure policy;
  /// the replication layer's quorums own reliability, so shedding beats
  /// unbounded buffering).
  std::size_t max_outbound_queue_bytes = 4u * 1024 * 1024;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Real asynchronous transport: an epoll event loop on a dedicated thread,
/// length-prefixed BSON frames (net/frame.h), lazy connections with
/// reconnect-backoff, bounded outbound queues, and the same best-effort
/// drop semantics as the simulator — the cluster layer cannot tell them
/// apart, which is the point.
///
/// Threading: endpoint handlers and timers fire exclusively on the loop
/// thread, preserving the single-threaded discipline StorageNode/Gossiper
/// assume. The public surface (Send, ScheduleTimer, Post, ExportStats, ...)
/// is safe to call from any thread; calls from foreign threads are handed
/// to the loop via an eventfd-signalled op queue.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds the listener (unless disabled) and starts the loop thread.
  Status Start();

  /// Graceful shutdown: wakes the loop, closes every connection, joins the
  /// thread. Idempotent; afterwards Send/ScheduleTimer are no-ops.
  void Stop();

  /// Actual bound port (resolves listen_port = 0). Valid after Start().
  std::uint16_t listen_port() const { return listen_port_; }

  /// Adds or replaces a peer address (membership change). Thread-safe.
  void AddOrUpdatePeer(const std::string& name, TcpPeer peer);

  /// Runs `fn` on the loop thread (setup of loop-owned components, e.g. the
  /// daemon constructing its StorageNode). Runs inline when already on the
  /// loop thread, or when the loop has never started / has fully stopped
  /// (single-threaded setup/teardown contract). A post that races Stop() is
  /// dropped and counted (net.posts_dropped_stopped) — never silently lost
  /// and never run concurrently with the dying loop.
  void Post(std::function<void()> fn);

  /// Interrupts the loop's epoll wait (so a mailbox filled from another
  /// thread is drained promptly). Safe from any thread while started.
  void Wake();

  /// Installs (or clears, with nullptr) a hook the loop runs once per
  /// iteration after draining its op queue. Synchronous: on return the
  /// previous hook is no longer running and never will again — safe to tear
  /// down whatever it drained. Used by ShardedExecutor to empty shard 0's
  /// mailboxes on the transport loop.
  void SetTickHook(std::function<void()> hook);

  // Transport surface.
  void RegisterEndpoint(const std::string& name, Handler handler) override;
  void UnregisterEndpoint(const std::string& name) override;
  void Send(Message msg) override;
  void ExportStats(metrics::Registry* registry) const override;

  // Executor surface. Time is the process steady clock — comparable across
  // the processes of a loopback cluster, which is what makes the per-type
  // frame latency histograms meaningful.
  TimerId ScheduleTimer(Micros delay, std::function<void()> fn) override;
  bool CancelTimer(TimerId id) override;
  Micros NowMicros() const override { return clock_->NowMicros(); }
  const Clock* clock() const override { return clock_; }

 private:
  /// One TCP connection (inbound or outbound). Loop-thread-only.
  struct Conn {
    explicit Conn(std::size_t max_frame_bytes) : reader(max_frame_bytes) {}

    int fd = -1;
    std::string name;          ///< peer endpoint name; learned from the
                               ///< first frame on inbound connections
    bool inbound = false;
    bool connecting = false;   ///< non-blocking connect() still in flight
    bool established = false;
    FrameReader reader;
    std::string outbuf;        ///< pending wire bytes (bounded)
    std::size_t outbuf_off = 0;
    Micros connect_started = 0;
    Micros last_read_at = 0;
    Micros last_write_progress = 0;
  };

  /// Reconnect state of a named, addressable peer. Loop-thread-only.
  struct PeerState {
    TcpPeer addr;
    Micros backoff = 0;
    Micros next_attempt_at = 0;
  };

  // --- loop-thread-only internals (no locking needed) ---
  void LoopMain();
  void ProcessOps();
  void RunDueTimers();
  int NextTimerDelayMillis() const;
  void HandleListenReady();
  void HandleConnEvent(int fd, std::uint32_t events);
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void FinishConnect(Conn* conn);
  void DeliverLocally(const Message& msg, std::size_t wire_bytes);
  void SendOnLoop(Message msg);
  Conn* ConnectTo(const std::string& name, PeerState* peer);
  void CloseConn(Conn* conn, bool failed, const char* why);
  void UpdateEpoll(Conn* conn);
  void Housekeeping();

  TimerId ScheduleOnLoop(TimerId id, Micros delay, std::function<void()> fn);
  bool OnLoopThread() const;

  TcpTransportConfig config_;
  const Clock* clock_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> next_timer_{1};
  std::thread loop_thread_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  // Loop-thread state. Touched before Start()/after Stop() only by the
  // single setup/teardown thread.
  std::map<std::string, Handler> endpoints_;
  std::map<std::string, PeerState> peers_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;           // by fd
  std::unordered_map<std::string, Conn*> conns_by_peer_;
  std::map<std::pair<Micros, TimerId>, std::function<void()>> timers_;
  std::unordered_map<TimerId, Micros> timer_deadline_;

  // Lock order: ops_mu_ before stats_mu_ (a posted op may record stats while
  // draining, but stats export never re-enters the op queue).
  mutable Mutex ops_mu_ HOTMAN_ACQUIRED_BEFORE(stats_mu_);
  std::vector<std::function<void()>> pending_ops_ HOTMAN_GUARDED_BY(ops_mu_);
  /// Lifecycle from the op queue's point of view. kRunning: enqueue + wake.
  /// kStopping: the loop will never drain again — drop and count.
  /// kIdle (never started / fully stopped): run inline, the historical
  /// single-threaded setup/teardown contract.
  enum class LoopState { kIdle, kRunning, kStopping };
  LoopState loop_state_ HOTMAN_GUARDED_BY(ops_mu_) = LoopState::kIdle;

  /// Per-tick hook (shard 0 mailbox drain). Runs under hook_mu_ so
  /// SetTickHook(nullptr) returning guarantees the hook is quiesced.
  mutable Mutex hook_mu_;
  std::function<void()> tick_hook_ HOTMAN_GUARDED_BY(hook_mu_);

  // Counters/histograms live behind their own lock because ExportStats may
  // run off-loop (the daemon's stats endpoint) while the loop records.
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t dropped_no_endpoint = 0;
    std::uint64_t dropped_not_connected = 0;
    std::uint64_t dropped_backpressure = 0;
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_failed = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t posts_dropped_stopped = 0;
    std::int64_t connections_open = 0;
    std::map<std::string, metrics::Histogram> latency_by_type;
  };
  mutable Mutex stats_mu_ HOTMAN_ACQUIRED_AFTER(ops_mu_);
  Stats stats_ HOTMAN_GUARDED_BY(stats_mu_);
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_TCP_TRANSPORT_H_
