#include "net/transport.h"

#include "common/logging.h"

namespace hotman::net {

void Transport::ExportStats(metrics::Registry* /*registry*/) const {}

void Dispatcher::On(const std::string& type, Handler handler) {
  handlers_[type] = std::move(handler);
}

bool Dispatcher::Dispatch(const Message& msg) const {
  auto it = handlers_.find(msg.type);
  if (it == handlers_.end()) return false;
  it->second(msg);
  return true;
}

Transport::Handler Dispatcher::AsTransportHandler() {
  return [this](const Message& msg) {
    if (!Dispatch(msg)) {
      ++unknown_;
      HOTMAN_LOG(kWarn) << msg.to << ": unknown message type " << msg.type
                        << " from " << msg.from;
    }
  };
}

}  // namespace hotman::net
