#ifndef HOTMAN_NET_TRANSPORT_H_
#define HOTMAN_NET_TRANSPORT_H_

#include <functional>
#include <map>
#include <string>

#include "common/metrics.h"
#include "net/executor.h"
#include "net/message.h"

namespace hotman::net {

/// Message transport between named endpoints, plus the timer surface those
/// endpoints schedule against (Executor). This is the seam between the
/// distributed layers and the wire: cluster/ and gossip/ are written purely
/// against Transport, so the identical StorageNode/Gossiper code runs
/// deterministically over net::SimTransport in tests and experiments, and
/// as real cooperating processes over net::TcpTransport in `hotmand`.
///
/// Delivery semantics (both implementations): best-effort, unordered across
/// peers, FIFO-ish per peer, silently lossy — a message may be dropped when
/// the destination is unknown, a connection is down or backed up, or (sim)
/// a partition/random loss strikes. Senders cannot observe delivery; the
/// replication layer's quorums, timeouts and hinted handoff own reliability.
class Transport : public Executor {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Registers `name` as a local endpoint; inbound messages addressed to it
  /// invoke `handler` on the transport's event thread. Re-registering
  /// replaces the handler (a restarted node).
  virtual void RegisterEndpoint(const std::string& name, Handler handler) = 0;

  /// Removes the endpoint; messages addressed to it are dropped (counted).
  virtual void UnregisterEndpoint(const std::string& name) = 0;

  /// Sends `msg` (msg.from/to/type must be set). Asynchronous and
  /// fire-and-forget; the transport stamps msg.sent_at.
  virtual void Send(Message msg) = 0;

  /// Writes this transport's counters/gauges/histograms into `registry`
  /// under the shared "net.*" vocabulary (see DESIGN.md "net"), so sim
  /// benches and real `hotmand` runs feed one dashboard. Default: nothing.
  virtual void ExportStats(metrics::Registry* registry) const;
};

/// Per-type handler table: the piece every endpoint used to hand-roll as an
/// if/else chain over msg.type. Register handlers with On(), install the
/// result of AsTransportHandler() as the endpoint handler; unknown types are
/// logged and counted rather than crashing (hostile or version-skewed peers
/// may send anything).
class Dispatcher {
 public:
  using Handler = Transport::Handler;

  /// Registers (or replaces) the handler for `type`.
  void On(const std::string& type, Handler handler);

  /// Routes one message; returns false when no handler matched.
  bool Dispatch(const Message& msg) const;

  /// Endpoint handler that dispatches and warn-logs unmatched types.
  Transport::Handler AsTransportHandler();

  std::size_t unknown_count() const { return unknown_; }

 private:
  std::map<std::string, Handler> handlers_;
  std::size_t unknown_ = 0;
};

}  // namespace hotman::net

#endif  // HOTMAN_NET_TRANSPORT_H_
