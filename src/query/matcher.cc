#include "query/matcher.h"

#include <functional>
#include <map>
#include <regex>

#include "query/path.h"

namespace hotman::query {
namespace internal {

namespace {

using bson::Array;
using bson::Document;
using bson::Field;
using bson::Type;
using bson::Value;

/// Applies `pred` to every value reachable at `path`, expanding leaf arrays
/// element-wise when `expand_arrays` (MongoDB's implicit "matches any array
/// element" rule). Returns true if any application succeeds.
bool AnyCandidate(const Document& doc, const std::vector<std::string>& path,
                  bool expand_arrays,
                  const std::function<bool(const Value&)>& pred) {
  std::vector<const Value*> candidates;
  ResolvePath(doc, path, &candidates);
  for (const Value* v : candidates) {
    if (pred(*v)) return true;
    if (expand_arrays && v->is_array()) {
      for (const Value& elem : v->as_array()) {
        if (pred(elem)) return true;
      }
    }
  }
  return false;
}

bool HasAnyCandidate(const Document& doc, const std::vector<std::string>& path) {
  std::vector<const Value*> candidates;
  ResolvePath(doc, path, &candidates);
  return !candidates.empty();
}

}  // namespace

/// Base of the compiled filter tree.
class MatchNode {
 public:
  virtual ~MatchNode() = default;
  virtual bool Matches(const Document& doc) const = 0;

  /// Accumulates index-usable bounds; only conjunctive nodes contribute.
  virtual void CollectBounds(std::map<std::string, FieldBounds>* bounds) const {
    (void)bounds;
  }
};

namespace {

class AndNode final : public MatchNode {
 public:
  explicit AndNode(std::vector<std::unique_ptr<MatchNode>> children)
      : children_(std::move(children)) {}

  bool Matches(const Document& doc) const override {
    for (const auto& c : children_) {
      if (!c->Matches(doc)) return false;
    }
    return true;
  }

  void CollectBounds(std::map<std::string, FieldBounds>* bounds) const override {
    for (const auto& c : children_) c->CollectBounds(bounds);
  }

 private:
  std::vector<std::unique_ptr<MatchNode>> children_;
};

class OrNode final : public MatchNode {
 public:
  explicit OrNode(std::vector<std::unique_ptr<MatchNode>> children)
      : children_(std::move(children)) {}

  bool Matches(const Document& doc) const override {
    for (const auto& c : children_) {
      if (c->Matches(doc)) return true;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<MatchNode>> children_;
};

class NorNode final : public MatchNode {
 public:
  explicit NorNode(std::vector<std::unique_ptr<MatchNode>> children)
      : children_(std::move(children)) {}

  bool Matches(const Document& doc) const override {
    for (const auto& c : children_) {
      if (c->Matches(doc)) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<MatchNode>> children_;
};

class NotNode final : public MatchNode {
 public:
  explicit NotNode(std::unique_ptr<MatchNode> child) : child_(std::move(child)) {}

  bool Matches(const Document& doc) const override { return !child_->Matches(doc); }

 private:
  std::unique_ptr<MatchNode> child_;
};

class EqNode final : public MatchNode {
 public:
  EqNode(std::string path_str, std::vector<std::string> path, Value operand)
      : path_str_(std::move(path_str)),
        path_(std::move(path)),
        operand_(std::move(operand)) {}

  bool Matches(const Document& doc) const override {
    if (operand_.is_null()) {
      // {a: null} matches documents where a is null or missing entirely.
      if (!HasAnyCandidate(doc, path_)) return true;
      return AnyCandidate(doc, path_, /*expand_arrays=*/true,
                          [this](const Value& v) { return v == operand_; });
    }
    return AnyCandidate(doc, path_, /*expand_arrays=*/true,
                        [this](const Value& v) { return v == operand_; });
  }

  void CollectBounds(std::map<std::string, FieldBounds>* bounds) const override {
    (*bounds)[path_str_].eq = operand_;
  }

 private:
  std::string path_str_;
  std::vector<std::string> path_;
  Value operand_;
};

enum class RangeOp { kGt, kGte, kLt, kLte };

class RangeNode final : public MatchNode {
 public:
  RangeNode(std::string path_str, std::vector<std::string> path, RangeOp op,
            Value operand)
      : path_str_(std::move(path_str)),
        path_(std::move(path)),
        op_(op),
        operand_(std::move(operand)) {}

  bool Matches(const Document& doc) const override {
    const int rank = operand_.CanonicalRank();
    return AnyCandidate(doc, path_, /*expand_arrays=*/true,
                        [this, rank](const Value& v) {
                          if (v.CanonicalRank() != rank) return false;
                          int c = v.Compare(operand_);
                          switch (op_) {
                            case RangeOp::kGt:
                              return c > 0;
                            case RangeOp::kGte:
                              return c >= 0;
                            case RangeOp::kLt:
                              return c < 0;
                            case RangeOp::kLte:
                              return c <= 0;
                          }
                          return false;
                        });
  }

  void CollectBounds(std::map<std::string, FieldBounds>* bounds) const override {
    FieldBounds& b = (*bounds)[path_str_];
    switch (op_) {
      case RangeOp::kGt:
        b.lower = operand_;
        b.lower_inclusive = false;
        break;
      case RangeOp::kGte:
        b.lower = operand_;
        b.lower_inclusive = true;
        break;
      case RangeOp::kLt:
        b.upper = operand_;
        b.upper_inclusive = false;
        break;
      case RangeOp::kLte:
        b.upper = operand_;
        b.upper_inclusive = true;
        break;
    }
  }

 private:
  std::string path_str_;
  std::vector<std::string> path_;
  RangeOp op_;
  Value operand_;
};

class InNode final : public MatchNode {
 public:
  InNode(std::vector<std::string> path, Array options)
      : path_(std::move(path)), options_(std::move(options)) {}

  bool Matches(const Document& doc) const override {
    for (const Value& opt : options_) {
      if (opt.is_null() && !HasAnyCandidate(doc, path_)) return true;
    }
    return AnyCandidate(doc, path_, /*expand_arrays=*/true, [this](const Value& v) {
      for (const Value& opt : options_) {
        if (v == opt) return true;
      }
      return false;
    });
  }

 private:
  std::vector<std::string> path_;
  Array options_;
};

class ExistsNode final : public MatchNode {
 public:
  ExistsNode(std::vector<std::string> path, bool expected)
      : path_(std::move(path)), expected_(expected) {}

  bool Matches(const Document& doc) const override {
    return HasAnyCandidate(doc, path_) == expected_;
  }

 private:
  std::vector<std::string> path_;
  bool expected_;
};

class TypeNode final : public MatchNode {
 public:
  TypeNode(std::vector<std::string> path, Type type)
      : path_(std::move(path)), type_(type) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/false,
                        [this](const Value& v) { return v.type() == type_; });
  }

 private:
  std::vector<std::string> path_;
  Type type_;
};

class SizeNode final : public MatchNode {
 public:
  SizeNode(std::vector<std::string> path, std::int64_t size)
      : path_(std::move(path)), size_(size) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/false,
                        [this](const Value& v) {
                          return v.is_array() &&
                                 static_cast<std::int64_t>(v.as_array().size()) == size_;
                        });
  }

 private:
  std::vector<std::string> path_;
  std::int64_t size_;
};

class ModNode final : public MatchNode {
 public:
  ModNode(std::vector<std::string> path, std::int64_t divisor, std::int64_t remainder)
      : path_(std::move(path)), divisor_(divisor), remainder_(remainder) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/true,
                        [this](const Value& v) {
                          return v.is_number() &&
                                 v.NumberAsInt64() % divisor_ == remainder_;
                        });
  }

 private:
  std::vector<std::string> path_;
  std::int64_t divisor_;
  std::int64_t remainder_;
};

class RegexNode final : public MatchNode {
 public:
  RegexNode(std::vector<std::string> path, std::regex re)
      : path_(std::move(path)), re_(std::move(re)) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/true,
                        [this](const Value& v) {
                          return v.is_string() &&
                                 std::regex_search(v.as_string(), re_);
                        });
  }

 private:
  std::vector<std::string> path_;
  std::regex re_;
};

class AllNode final : public MatchNode {
 public:
  AllNode(std::vector<std::string> path, Array required)
      : path_(std::move(path)), required_(std::move(required)) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/false, [this](const Value& v) {
      for (const Value& req : required_) {
        bool found = false;
        if (v == req) {
          found = true;
        } else if (v.is_array()) {
          for (const Value& elem : v.as_array()) {
            if (elem == req) {
              found = true;
              break;
            }
          }
        }
        if (!found) return false;
      }
      return true;
    });
  }

 private:
  std::vector<std::string> path_;
  Array required_;
};

class ElemMatchNode final : public MatchNode {
 public:
  ElemMatchNode(std::vector<std::string> path, std::unique_ptr<MatchNode> element_filter,
                bool scalar_mode)
      : path_(std::move(path)),
        element_filter_(std::move(element_filter)),
        scalar_mode_(scalar_mode) {}

  bool Matches(const Document& doc) const override {
    return AnyCandidate(doc, path_, /*expand_arrays=*/false, [this](const Value& v) {
      if (!v.is_array()) return false;
      for (const Value& elem : v.as_array()) {
        if (scalar_mode_) {
          // Wrap the scalar so the operator sub-filter (compiled against the
          // reserved field name) can evaluate it.
          Document wrapper;
          wrapper.Append(kScalarField, elem);
          if (element_filter_->Matches(wrapper)) return true;
        } else if (elem.is_document() && element_filter_->Matches(elem.as_document())) {
          return true;
        }
      }
      return false;
    });
  }

  static constexpr const char* kScalarField = "$elem";

 private:
  std::vector<std::string> path_;
  std::unique_ptr<MatchNode> element_filter_;
  bool scalar_mode_;
};

// --- Compilation -----------------------------------------------------------

Result<std::unique_ptr<MatchNode>> CompileFilter(const Document& filter);

bool IsOperatorDocument(const Value& v) {
  if (!v.is_document() || v.as_document().empty()) return false;
  for (const Field& f : v.as_document()) {
    if (f.name.empty() || f.name[0] != '$') return false;
  }
  return true;
}

Result<Type> ParseTypeOperand(const Value& v) {
  if (v.is_number()) {
    const auto tag = v.NumberAsInt64();
    switch (tag) {
      case 0x01:
      case 0x02:
      case 0x03:
      case 0x04:
      case 0x05:
      case 0x07:
      case 0x08:
      case 0x09:
      case 0x0A:
      case 0x10:
      case 0x12:
        return static_cast<Type>(tag);
      default:
        return Status::InvalidArgument("$type: unknown type number");
    }
  }
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "double") return Type::kDouble;
    if (s == "string") return Type::kString;
    if (s == "object") return Type::kDocument;
    if (s == "array") return Type::kArray;
    if (s == "binData") return Type::kBinary;
    if (s == "objectId") return Type::kObjectId;
    if (s == "bool") return Type::kBool;
    if (s == "date") return Type::kDateTime;
    if (s == "null") return Type::kNull;
    if (s == "int") return Type::kInt32;
    if (s == "long") return Type::kInt64;
    return Status::InvalidArgument("$type: unknown type name: " + s);
  }
  return Status::InvalidArgument("$type operand must be a number or string");
}

/// Compiles one {$op: operand, ...} document applied to `path`.
Result<std::unique_ptr<MatchNode>> CompileOperators(const std::string& path_str,
                                                    const Document& ops) {
  std::vector<std::unique_ptr<MatchNode>> nodes;
  auto path = SplitPath(path_str);
  // $regex/$options pair is handled jointly.
  const Value* regex_operand = ops.Get("$regex");
  const Value* regex_options = ops.Get("$options");
  if (regex_operand != nullptr) {
    if (!regex_operand->is_string()) {
      return Status::InvalidArgument("$regex operand must be a string");
    }
    auto flags = std::regex::ECMAScript;
    if (regex_options != nullptr) {
      if (!regex_options->is_string()) {
        return Status::InvalidArgument("$options must be a string");
      }
      for (char c : regex_options->as_string()) {
        if (c == 'i') {
          flags |= std::regex::icase;
        } else if (c != 'm' && c != 's' && c != 'x') {
          return Status::InvalidArgument("unsupported $options flag");
        }
      }
    }
    try {
      nodes.push_back(std::make_unique<RegexNode>(
          path, std::regex(regex_operand->as_string(), flags)));
    } catch (const std::regex_error&) {
      return Status::InvalidArgument("invalid $regex pattern");
    }
  }

  for (const Field& f : ops) {
    const std::string& op = f.name;
    const Value& operand = f.value;
    if (op == "$regex" || op == "$options") continue;  // handled above
    if (op == "$eq") {
      nodes.push_back(std::make_unique<EqNode>(path_str, path, operand));
    } else if (op == "$ne") {
      nodes.push_back(std::make_unique<NotNode>(
          std::make_unique<EqNode>(path_str, path, operand)));
    } else if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte") {
      RangeOp ro = op == "$gt"    ? RangeOp::kGt
                   : op == "$gte" ? RangeOp::kGte
                   : op == "$lt"  ? RangeOp::kLt
                                  : RangeOp::kLte;
      nodes.push_back(std::make_unique<RangeNode>(path_str, path, ro, operand));
    } else if (op == "$in" || op == "$nin") {
      if (!operand.is_array()) {
        return Status::InvalidArgument(op + " operand must be an array");
      }
      auto in = std::make_unique<InNode>(path, operand.as_array());
      if (op == "$in") {
        nodes.push_back(std::move(in));
      } else {
        nodes.push_back(std::make_unique<NotNode>(std::move(in)));
      }
    } else if (op == "$exists") {
      bool expected = operand.is_bool() ? operand.as_bool()
                      : operand.is_number() ? operand.NumberAsInt64() != 0
                                            : true;
      nodes.push_back(std::make_unique<ExistsNode>(path, expected));
    } else if (op == "$type") {
      auto type = ParseTypeOperand(operand);
      if (!type.ok()) return type.status();
      nodes.push_back(std::make_unique<TypeNode>(path, *type));
    } else if (op == "$size") {
      if (!operand.is_number()) {
        return Status::InvalidArgument("$size operand must be a number");
      }
      nodes.push_back(std::make_unique<SizeNode>(path, operand.NumberAsInt64()));
    } else if (op == "$mod") {
      if (!operand.is_array() || operand.as_array().size() != 2 ||
          !operand.as_array()[0].is_number() || !operand.as_array()[1].is_number()) {
        return Status::InvalidArgument("$mod operand must be [divisor, remainder]");
      }
      const std::int64_t divisor = operand.as_array()[0].NumberAsInt64();
      if (divisor == 0) return Status::InvalidArgument("$mod divisor must be nonzero");
      nodes.push_back(std::make_unique<ModNode>(path, divisor,
                                                operand.as_array()[1].NumberAsInt64()));
    } else if (op == "$all") {
      if (!operand.is_array()) {
        return Status::InvalidArgument("$all operand must be an array");
      }
      nodes.push_back(std::make_unique<AllNode>(path, operand.as_array()));
    } else if (op == "$elemMatch") {
      if (!operand.is_document()) {
        return Status::InvalidArgument("$elemMatch operand must be a document");
      }
      const bool scalar_mode = IsOperatorDocument(operand);
      std::unique_ptr<MatchNode> sub;
      if (scalar_mode) {
        auto compiled =
            CompileOperators(ElemMatchNode::kScalarField, operand.as_document());
        if (!compiled.ok()) return compiled.status();
        sub = std::move(*compiled);
      } else {
        auto compiled = CompileFilter(operand.as_document());
        if (!compiled.ok()) return compiled.status();
        sub = std::move(*compiled);
      }
      nodes.push_back(
          std::make_unique<ElemMatchNode>(path, std::move(sub), scalar_mode));
    } else if (op == "$not") {
      if (!operand.is_document() || !IsOperatorDocument(operand)) {
        return Status::InvalidArgument("$not operand must be an operator document");
      }
      auto sub = CompileOperators(path_str, operand.as_document());
      if (!sub.ok()) return sub.status();
      nodes.push_back(std::make_unique<NotNode>(std::move(*sub)));
    } else {
      return Status::InvalidArgument("unknown query operator: " + op);
    }
  }

  if (nodes.size() == 1) return std::move(nodes.front());
  return std::unique_ptr<MatchNode>(std::make_unique<AndNode>(std::move(nodes)));
}

Result<std::vector<std::unique_ptr<MatchNode>>> CompileClauseArray(const Value& v,
                                                                   const char* op) {
  if (!v.is_array() || v.as_array().empty()) {
    return Status::InvalidArgument(std::string(op) +
                                   " requires a non-empty array of filters");
  }
  std::vector<std::unique_ptr<MatchNode>> children;
  for (const Value& clause : v.as_array()) {
    if (!clause.is_document()) {
      return Status::InvalidArgument(std::string(op) + " clauses must be documents");
    }
    auto child = CompileFilter(clause.as_document());
    if (!child.ok()) return child.status();
    children.push_back(std::move(*child));
  }
  return children;
}

Result<std::unique_ptr<MatchNode>> CompileFilter(const Document& filter) {
  std::vector<std::unique_ptr<MatchNode>> nodes;
  for (const Field& f : filter) {
    if (f.name == "$and" || f.name == "$or" || f.name == "$nor") {
      auto children = CompileClauseArray(f.value, f.name.c_str());
      if (!children.ok()) return children.status();
      if (f.name == "$and") {
        nodes.push_back(std::make_unique<AndNode>(std::move(*children)));
      } else if (f.name == "$or") {
        nodes.push_back(std::make_unique<OrNode>(std::move(*children)));
      } else {
        nodes.push_back(std::make_unique<NorNode>(std::move(*children)));
      }
    } else if (f.name == "$comment") {
      continue;
    } else if (!f.name.empty() && f.name[0] == '$') {
      return Status::InvalidArgument("unknown top-level operator: " + f.name);
    } else if (IsOperatorDocument(f.value)) {
      auto node = CompileOperators(f.name, f.value.as_document());
      if (!node.ok()) return node.status();
      nodes.push_back(std::move(*node));
    } else {
      nodes.push_back(
          std::make_unique<EqNode>(f.name, SplitPath(f.name), f.value));
    }
  }
  if (nodes.size() == 1) return std::move(nodes.front());
  return std::unique_ptr<MatchNode>(std::make_unique<AndNode>(std::move(nodes)));
}

}  // namespace
}  // namespace internal

Matcher::Matcher(std::unique_ptr<internal::MatchNode> root) : root_(std::move(root)) {}
Matcher::Matcher(Matcher&&) noexcept = default;
Matcher& Matcher::operator=(Matcher&&) noexcept = default;
Matcher::~Matcher() = default;

Result<Matcher> Matcher::Compile(const bson::Document& filter) {
  auto root = internal::CompileFilter(filter);
  if (!root.ok()) return root.status();
  return Matcher(std::move(*root));
}

bool Matcher::Matches(const bson::Document& doc) const { return root_->Matches(doc); }

FieldBounds Matcher::BoundsFor(const std::string& path) const {
  std::map<std::string, FieldBounds> bounds;
  root_->CollectBounds(&bounds);
  auto it = bounds.find(path);
  return it == bounds.end() ? FieldBounds{} : it->second;
}

std::vector<std::string> Matcher::ConstrainedPaths() const {
  std::map<std::string, FieldBounds> bounds;
  root_->CollectBounds(&bounds);
  std::vector<std::string> paths;
  paths.reserve(bounds.size());
  for (const auto& [path, b] : bounds) {
    if (b.IsConstrained()) paths.push_back(path);
  }
  return paths;
}

}  // namespace hotman::query
