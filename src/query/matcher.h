#ifndef HOTMAN_QUERY_MATCHER_H_
#define HOTMAN_QUERY_MATCHER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"

namespace hotman::query {

/// Range/equality constraint a filter places on one dotted field path; the
/// query planner uses this to pick an index (see docstore/planner).
struct FieldBounds {
  std::optional<bson::Value> eq;       ///< exact-match constraint
  std::optional<bson::Value> lower;    ///< range lower bound
  bool lower_inclusive = true;
  std::optional<bson::Value> upper;    ///< range upper bound
  bool upper_inclusive = true;

  bool IsConstrained() const {
    return eq.has_value() || lower.has_value() || upper.has_value();
  }
};

namespace internal {
class MatchNode;
}  // namespace internal

/// A compiled MongoDB-style query filter.
///
/// Supported operators: implicit equality, `$eq $ne $gt $gte $lt $lte $in
/// $nin $exists $type $size $mod $regex $all $elemMatch $not` on fields and
/// `$and $or $nor` as top-level logical connectives. This is the "complex
/// query functions like relational databases" surface the paper's storage
/// layer exposes via MongoDB.
class Matcher {
 public:
  Matcher(Matcher&&) noexcept;
  Matcher& operator=(Matcher&&) noexcept;
  ~Matcher();

  /// Compiles `filter`; rejects unknown operators and malformed operands.
  static Result<Matcher> Compile(const bson::Document& filter);

  /// True when `doc` satisfies the filter.
  bool Matches(const bson::Document& doc) const;

  /// Constraint the filter places on `path` (top-level conjuncts only);
  /// disjunctions and negations constrain nothing.
  FieldBounds BoundsFor(const std::string& path) const;

  /// Dotted paths with top-level constraints (index-selection candidates).
  std::vector<std::string> ConstrainedPaths() const;

 private:
  explicit Matcher(std::unique_ptr<internal::MatchNode> root);

  std::unique_ptr<internal::MatchNode> root_;
};

}  // namespace hotman::query

#endif  // HOTMAN_QUERY_MATCHER_H_
