#include "query/path.h"

#include <cstdlib>

namespace hotman::query {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '.') {
      parts.emplace_back(path.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool IsArrayIndex(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

namespace {

void ResolveFrom(const bson::Value& value, const std::vector<std::string>& path,
                 std::size_t depth, std::vector<const bson::Value*>* out) {
  if (depth == path.size()) {
    out->push_back(&value);
    return;
  }
  const std::string& comp = path[depth];
  if (value.is_document()) {
    const bson::Value* next = value.as_document().Get(comp);
    if (next != nullptr) ResolveFrom(*next, path, depth + 1, out);
    return;
  }
  if (value.is_array()) {
    const bson::Array& arr = value.as_array();
    if (IsArrayIndex(comp)) {
      const std::size_t idx = std::strtoull(comp.c_str(), nullptr, 10);
      if (idx < arr.size()) ResolveFrom(arr[idx], path, depth + 1, out);
      return;
    }
    // Fan out over elements: each document element continues the traversal.
    for (const bson::Value& elem : arr) {
      if (elem.is_document()) ResolveFrom(elem, path, depth, out);
    }
  }
}

}  // namespace

void ResolvePath(const bson::Document& doc, const std::vector<std::string>& path,
                 std::vector<const bson::Value*>* out) {
  if (path.empty()) return;
  const bson::Value* first = doc.Get(path[0]);
  if (first != nullptr) ResolveFrom(*first, path, 1, out);
}

void ResolvePath(const bson::Document& doc, std::string_view path,
                 std::vector<const bson::Value*>* out) {
  ResolvePath(doc, SplitPath(path), out);
}

const bson::Value* ResolveFirst(const bson::Document& doc, std::string_view path) {
  std::vector<const bson::Value*> values;
  ResolvePath(doc, path, &values);
  return values.empty() ? nullptr : values.front();
}

bson::Document* MakePathParent(bson::Document* doc,
                               const std::vector<std::string>& path,
                               std::string* leaf) {
  bson::Document* cur = doc;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bson::Value* next = cur->GetMutable(path[i]);
    if (next == nullptr) {
      cur->Set(path[i], bson::Value(bson::Document()));
      next = cur->GetMutable(path[i]);
    }
    if (!next->is_document()) return nullptr;
    cur = &next->as_document();
  }
  *leaf = path.back();
  return cur;
}

}  // namespace hotman::query
