#ifndef HOTMAN_QUERY_PATH_H_
#define HOTMAN_QUERY_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "bson/document.h"

namespace hotman::query {

/// Splits a dotted path ("a.b.0.c") into components.
std::vector<std::string> SplitPath(std::string_view path);

/// Resolves a dotted path against `doc` with MongoDB traversal semantics:
///  - a document component looks up the field by name;
///  - an array met at a numeric component indexes into it;
///  - an array met at a non-numeric component fans out across its elements
///    (each element that is a document continues the traversal).
/// All reachable leaf values are appended to `*out` (pointers into `doc`,
/// valid while `doc` is alive). Missing paths produce no output.
void ResolvePath(const bson::Document& doc, const std::vector<std::string>& path,
                 std::vector<const bson::Value*>* out);

/// Convenience overload taking the dotted string.
void ResolvePath(const bson::Document& doc, std::string_view path,
                 std::vector<const bson::Value*>* out);

/// First value on the path, or nullptr (convenience for single-valued use).
const bson::Value* ResolveFirst(const bson::Document& doc, std::string_view path);

/// True when every character of `s` is a decimal digit (array index form).
bool IsArrayIndex(std::string_view s);

/// Navigates to (and creates, document-by-document) the parent of the last
/// path component for update operators; returns the parent document and
/// stores the leaf name in `*leaf`. Returns nullptr when an intermediate
/// component exists with a non-document type (update must fail).
bson::Document* MakePathParent(bson::Document* doc,
                               const std::vector<std::string>& path,
                               std::string* leaf);

}  // namespace hotman::query

#endif  // HOTMAN_QUERY_PATH_H_
