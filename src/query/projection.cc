#include "query/projection.h"

#include "query/path.h"

namespace hotman::query {

namespace {

using bson::Document;
using bson::Field;
using bson::Value;

/// Copies into `*out` only the subtree of `value` selected by path suffixes.
/// `suffixes` holds the remaining components of each matching path; an empty
/// suffix means "take the whole value".
bool ProjectInclude(const Value& value,
                    const std::vector<std::vector<std::string>>& suffixes,
                    std::size_t depth, Value* out) {
  // If any path is fully consumed, include the whole value.
  for (const auto& p : suffixes) {
    if (depth == p.size()) {
      *out = value;
      return true;
    }
  }
  if (!value.is_document()) return false;
  Document result;
  for (const Field& f : value.as_document()) {
    std::vector<std::vector<std::string>> matching;
    for (const auto& p : suffixes) {
      if (depth < p.size() && p[depth] == f.name) matching.push_back(p);
    }
    if (matching.empty()) continue;
    Value sub;
    if (ProjectInclude(f.value, matching, depth + 1, &sub)) {
      result.Append(f.name, std::move(sub));
    }
  }
  if (result.empty()) return false;
  *out = Value(std::move(result));
  return true;
}

/// Removes from `*doc` every subtree selected by the exclusion paths.
void ProjectExclude(Document* doc, const std::vector<std::vector<std::string>>& paths,
                    std::size_t depth) {
  for (const auto& p : paths) {
    if (depth >= p.size()) continue;
    if (depth + 1 == p.size()) {
      doc->Remove(p[depth]);
    } else {
      Value* v = doc->GetMutable(p[depth]);
      if (v != nullptr && v->is_document()) {
        ProjectExclude(&v->as_document(), {p}, depth + 1);
      }
    }
  }
}

}  // namespace

Result<Projection> Projection::Compile(const bson::Document& spec) {
  Projection proj;
  bool mode_set = false;
  for (const Field& f : spec) {
    bool include;
    if (f.value.is_bool()) {
      include = f.value.as_bool();
    } else if (f.value.is_number()) {
      include = f.value.NumberAsInt64() != 0;
    } else {
      return Status::InvalidArgument("projection values must be 0/1 or booleans");
    }
    if (f.name == "_id") {
      proj.include_id_ = include;
      continue;
    }
    if (mode_set && include != proj.inclusive_) {
      return Status::InvalidArgument(
          "projection cannot mix inclusion and exclusion (except _id)");
    }
    proj.inclusive_ = include;
    mode_set = true;
    proj.paths_.push_back(SplitPath(f.name));
  }
  if (!mode_set) proj.inclusive_ = false;  // only _id mentioned (or empty spec)
  return proj;
}

bson::Document Projection::Apply(const bson::Document& doc) const {
  if (paths_.empty()) {
    // Only the _id directive (or nothing) was given.
    bson::Document out = doc;
    if (!include_id_) out.Remove("_id");
    return out;
  }
  if (inclusive_) {
    bson::Document out;
    if (include_id_) {
      const Value* id = doc.Get("_id");
      if (id != nullptr) out.Append("_id", *id);
    }
    for (const Field& f : doc) {
      if (f.name == "_id") continue;
      std::vector<std::vector<std::string>> matching;
      for (const auto& p : paths_) {
        if (!p.empty() && p[0] == f.name) matching.push_back(p);
      }
      if (matching.empty()) continue;
      Value sub;
      if (ProjectInclude(f.value, matching, 1, &sub)) {
        out.Append(f.name, std::move(sub));
      }
    }
    return out;
  }
  bson::Document out = doc;
  ProjectExclude(&out, paths_, 0);
  if (!include_id_) out.Remove("_id");
  return out;
}

}  // namespace hotman::query
