#ifndef HOTMAN_QUERY_PROJECTION_H_
#define HOTMAN_QUERY_PROJECTION_H_

#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"

namespace hotman::query {

/// A compiled MongoDB-style projection: {"a": 1, "b.c": 1} (inclusive) or
/// {"a": 0} (exclusive). `_id` is included by default and may be excluded
/// explicitly in either mode; mixing inclusion and exclusion of other fields
/// is rejected, as in MongoDB.
class Projection {
 public:
  /// Compiles the projection spec; an empty spec projects everything.
  static Result<Projection> Compile(const bson::Document& spec);

  /// Applies the projection to `doc`, returning the reduced document.
  bson::Document Apply(const bson::Document& doc) const;

  bool IsIdentity() const { return paths_.empty() && include_id_; }

 private:
  Projection() = default;

  bool inclusive_ = true;
  bool include_id_ = true;
  std::vector<std::vector<std::string>> paths_;  // split dotted paths
};

}  // namespace hotman::query

#endif  // HOTMAN_QUERY_PROJECTION_H_
