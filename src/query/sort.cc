#include "query/sort.h"

#include "query/path.h"

namespace hotman::query {

Result<SortSpec> SortSpec::Compile(const bson::Document& spec) {
  SortSpec out;
  for (const bson::Field& f : spec) {
    if (!f.value.is_number()) {
      return Status::InvalidArgument("sort directions must be numeric");
    }
    const std::int64_t dir = f.value.NumberAsInt64();
    if (dir != 1 && dir != -1) {
      return Status::InvalidArgument("sort direction must be 1 or -1");
    }
    out.keys_.push_back(Key{f.name, dir > 0});
  }
  return out;
}

int SortSpec::Compare(const bson::Document& a, const bson::Document& b) const {
  static const bson::Value null_value;
  for (const Key& key : keys_) {
    const bson::Value* va = ResolveFirst(a, key.path);
    const bson::Value* vb = ResolveFirst(b, key.path);
    const bson::Value& ra = va != nullptr ? *va : null_value;
    const bson::Value& rb = vb != nullptr ? *vb : null_value;
    int c = ra.Compare(rb);
    if (c != 0) return key.ascending ? c : -c;
  }
  return 0;
}

}  // namespace hotman::query
