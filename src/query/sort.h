#ifndef HOTMAN_QUERY_SORT_H_
#define HOTMAN_QUERY_SORT_H_

#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"

namespace hotman::query {

/// A compiled sort specification: {"size": 1, "name": -1}. Missing fields
/// sort as null (lowest canonical bracket), matching MongoDB.
class SortSpec {
 public:
  /// One sort key: dotted path plus direction.
  struct Key {
    std::string path;
    bool ascending = true;
  };

  /// Compiles the spec; values must be numeric (positive = ascending).
  static Result<SortSpec> Compile(const bson::Document& spec);

  /// Three-way comparison of two documents under this spec.
  int Compare(const bson::Document& a, const bson::Document& b) const;

  /// Strict-weak-ordering functor for std::sort.
  bool Less(const bson::Document& a, const bson::Document& b) const {
    return Compare(a, b) < 0;
  }

  bool empty() const { return keys_.empty(); }
  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
};

}  // namespace hotman::query

#endif  // HOTMAN_QUERY_SORT_H_
