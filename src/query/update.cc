#include "query/update.h"

#include "query/path.h"

namespace hotman::query {

namespace {

using bson::Array;
using bson::DateTime;
using bson::Document;
using bson::Field;
using bson::Value;

Status ApplySet(Document* doc, const std::string& path_str, const Value& v) {
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$set: path traverses a non-document: " + path_str);
  }
  parent->Set(leaf, v);
  return Status::OK();
}

Status ApplyUnset(Document* doc, const std::string& path_str) {
  auto path = SplitPath(path_str);
  Document* cur = doc;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Value* next = cur->GetMutable(path[i]);
    if (next == nullptr || !next->is_document()) return Status::OK();  // nothing to do
    cur = &next->as_document();
  }
  cur->Remove(path.back());
  return Status::OK();
}

Status ApplyArith(Document* doc, const std::string& path_str, const Value& operand,
                  bool multiply) {
  const char* op = multiply ? "$mul" : "$inc";
  if (!operand.is_number()) {
    return Status::InvalidArgument(std::string(op) + " operand must be numeric");
  }
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument(std::string(op) + ": path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) {
    // Missing field: $inc seeds with the operand, $mul with zero.
    parent->Set(leaf, multiply ? Value(std::int64_t{0}) : operand);
    return Status::OK();
  }
  if (!existing->is_number()) {
    return Status::InvalidArgument(std::string(op) + " target is not numeric");
  }
  // Preserve integer arithmetic when both sides are integral.
  const bool ints =
      existing->type() != bson::Type::kDouble && operand.type() != bson::Type::kDouble;
  if (ints) {
    const std::int64_t result =
        multiply ? existing->NumberAsInt64() * operand.NumberAsInt64()
                 : existing->NumberAsInt64() + operand.NumberAsInt64();
    *existing = Value(result);
  } else {
    const double result = multiply
                              ? existing->NumberAsDouble() * operand.NumberAsDouble()
                              : existing->NumberAsDouble() + operand.NumberAsDouble();
    *existing = Value(result);
  }
  return Status::OK();
}

Status ApplyMinMax(Document* doc, const std::string& path_str, const Value& operand,
                   bool is_max) {
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$min/$max: path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) {
    parent->Set(leaf, operand);
    return Status::OK();
  }
  const int c = operand.Compare(*existing);
  if ((is_max && c > 0) || (!is_max && c < 0)) *existing = operand;
  return Status::OK();
}

Status ApplyPush(Document* doc, const std::string& path_str, const Value& operand) {
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$push: path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) {
    parent->Set(leaf, Value(Array{}));
    existing = parent->GetMutable(leaf);
  }
  if (!existing->is_array()) {
    return Status::InvalidArgument("$push target is not an array");
  }
  // $each pushes every element of its operand array.
  if (operand.is_document() && operand.as_document().Has("$each")) {
    const Value* each = operand.as_document().Get("$each");
    if (!each->is_array()) {
      return Status::InvalidArgument("$push $each operand must be an array");
    }
    for (const Value& v : each->as_array()) existing->as_array().push_back(v);
  } else {
    existing->as_array().push_back(operand);
  }
  return Status::OK();
}

Status ApplyPop(Document* doc, const std::string& path_str, const Value& operand) {
  if (!operand.is_number()) {
    return Status::InvalidArgument("$pop operand must be 1 or -1");
  }
  const std::int64_t dir = operand.NumberAsInt64();
  if (dir != 1 && dir != -1) {
    return Status::InvalidArgument("$pop operand must be 1 or -1");
  }
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$pop: path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) return Status::OK();
  if (!existing->is_array()) {
    return Status::InvalidArgument("$pop target is not an array");
  }
  Array& arr = existing->as_array();
  if (arr.empty()) return Status::OK();
  if (dir == 1) {
    arr.pop_back();
  } else {
    arr.erase(arr.begin());
  }
  return Status::OK();
}

Status ApplyPull(Document* doc, const std::string& path_str, const Value& operand) {
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$pull: path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) return Status::OK();
  if (!existing->is_array()) {
    return Status::InvalidArgument("$pull target is not an array");
  }
  Array& arr = existing->as_array();
  Array kept;
  kept.reserve(arr.size());
  for (Value& v : arr) {
    if (v != operand) kept.push_back(std::move(v));
  }
  arr = std::move(kept);
  return Status::OK();
}

Status ApplyAddToSet(Document* doc, const std::string& path_str, const Value& operand) {
  auto path = SplitPath(path_str);
  std::string leaf;
  Document* parent = MakePathParent(doc, path, &leaf);
  if (parent == nullptr) {
    return Status::InvalidArgument("$addToSet: path traverses a non-document");
  }
  Value* existing = parent->GetMutable(leaf);
  if (existing == nullptr) {
    parent->Set(leaf, Value(Array{}));
    existing = parent->GetMutable(leaf);
  }
  if (!existing->is_array()) {
    return Status::InvalidArgument("$addToSet target is not an array");
  }
  Array& arr = existing->as_array();
  for (const Value& v : arr) {
    if (v == operand) return Status::OK();
  }
  arr.push_back(operand);
  return Status::OK();
}

Status ApplyRename(Document* doc, const std::string& from, const Value& to) {
  if (!to.is_string()) {
    return Status::InvalidArgument("$rename operand must be a string");
  }
  auto path = SplitPath(from);
  if (path.size() != 1 || SplitPath(to.as_string()).size() != 1) {
    return Status::NotSupported("$rename supports top-level fields only");
  }
  Value* existing = doc->GetMutable(from);
  if (existing == nullptr) return Status::OK();
  Value moved = std::move(*existing);
  doc->Remove(from);
  doc->Set(to.as_string(), std::move(moved));
  return Status::OK();
}

Status ApplyOperator(const std::string& op, const Document& args, Document* doc) {
  for (const Field& f : args) {
    Status s;
    if (op == "$set") {
      s = ApplySet(doc, f.name, f.value);
    } else if (op == "$unset") {
      s = ApplyUnset(doc, f.name);
    } else if (op == "$inc") {
      s = ApplyArith(doc, f.name, f.value, /*multiply=*/false);
    } else if (op == "$mul") {
      s = ApplyArith(doc, f.name, f.value, /*multiply=*/true);
    } else if (op == "$min") {
      s = ApplyMinMax(doc, f.name, f.value, /*is_max=*/false);
    } else if (op == "$max") {
      s = ApplyMinMax(doc, f.name, f.value, /*is_max=*/true);
    } else if (op == "$push") {
      s = ApplyPush(doc, f.name, f.value);
    } else if (op == "$pop") {
      s = ApplyPop(doc, f.name, f.value);
    } else if (op == "$pull") {
      s = ApplyPull(doc, f.name, f.value);
    } else if (op == "$addToSet") {
      s = ApplyAddToSet(doc, f.name, f.value);
    } else if (op == "$rename") {
      s = ApplyRename(doc, f.name, f.value);
    } else {
      return Status::InvalidArgument("unknown update operator: " + op);
    }
    HOTMAN_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

}  // namespace

bool IsOperatorUpdate(const bson::Document& update) {
  if (update.empty()) return false;
  for (const Field& f : update) {
    if (f.name.empty() || f.name[0] != '$') return false;
  }
  return true;
}

Status ApplyUpdate(const bson::Document& update, bson::Document* doc) {
  if (!IsOperatorUpdate(update)) {
    for (const Field& f : update) {
      if (!f.name.empty() && f.name[0] == '$') {
        return Status::InvalidArgument(
            "update mixes operator and replacement forms");
      }
    }
    // Replacement form: keep _id, replace everything else.
    const Value* id = doc->Get("_id");
    Document replaced;
    if (id != nullptr) replaced.Append("_id", *id);
    for (const Field& f : update) {
      if (f.name == "_id") continue;  // _id is immutable
      replaced.Append(f.name, f.value);
    }
    *doc = std::move(replaced);
    return Status::OK();
  }
  // Operator form: validate-then-mutate by applying to a scratch copy first.
  Document scratch = *doc;
  for (const Field& f : update) {
    if (!f.value.is_document()) {
      return Status::InvalidArgument("update operator operand must be a document");
    }
    HOTMAN_RETURN_IF_ERROR(ApplyOperator(f.name, f.value.as_document(), &scratch));
  }
  *doc = std::move(scratch);
  return Status::OK();
}

}  // namespace hotman::query
