#ifndef HOTMAN_QUERY_UPDATE_H_
#define HOTMAN_QUERY_UPDATE_H_

#include "bson/document.h"
#include "common/status.h"

namespace hotman::query {

/// Applies a MongoDB-style update specification to `*doc` in place.
///
/// Two forms are accepted, mirroring MongoDB:
///  - operator form: every top-level key is an update operator
///    (`$set $unset $inc $mul $rename $min $max $push $pop $pull $addToSet
///    $currentDate`), applied field by field;
///  - replacement form: no top-level key is an operator; the document body
///    is replaced wholesale, preserving the original `_id`.
/// On error the document is left unmodified (operators are validated before
/// any mutation).
Status ApplyUpdate(const bson::Document& update, bson::Document* doc);

/// True when `update` is in operator form (all keys start with '$').
bool IsOperatorUpdate(const bson::Document& update);

}  // namespace hotman::query

#endif  // HOTMAN_QUERY_UPDATE_H_
