#include "rebalance/messages.h"

namespace hotman::rebalance {

namespace {

using bson::Document;
using bson::Value;

Result<std::string> GetStr(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_string()) {
    return Status::Corruption(std::string("missing string field: ") + name);
  }
  return v->as_string();
}

Result<std::int64_t> GetI64(const Document& doc, const char* name) {
  const Value* v = doc.Get(name);
  if (v == nullptr || !v->is_number()) {
    return Status::Corruption(std::string("missing number field: ") + name);
  }
  return v->NumberAsInt64();
}

void AppendWatermark(Document* doc, const Watermark& wm) {
  doc->Append("wm_p", Value(static_cast<std::int64_t>(wm.point)));
  doc->Append("wm_k", Value(wm.key));
}

Result<Watermark> GetWatermark(const Document& doc) {
  auto point = GetI64(doc, "wm_p");
  if (!point.ok()) return point.status();
  auto key = GetStr(doc, "wm_k");
  if (!key.ok()) return key.status();
  Watermark wm;
  wm.point = static_cast<std::uint32_t>(*point);
  wm.key = std::move(*key);
  return wm;
}

}  // namespace

bson::Document EncodeRangeDigest(const RangeDigestMsg& msg) {
  Document doc;
  doc.Append("id", Value(msg.transfer_id));
  bson::Array arcs;
  arcs.reserve(msg.arcs.size());
  for (const hashring::Range& arc : msg.arcs) {
    Document item;
    item.Append("s", Value(static_cast<std::int64_t>(arc.start)));
    item.Append("e", Value(static_cast<std::int64_t>(arc.end)));
    arcs.emplace_back(std::move(item));
  }
  doc.Append("arcs", Value(std::move(arcs)));
  doc.Append("total", Value(static_cast<std::int64_t>(msg.total_records)));
  return doc;
}

Result<RangeDigestMsg> DecodeRangeDigest(const bson::Document& doc) {
  auto id = GetStr(doc, "id");
  if (!id.ok()) return id.status();
  const Value* arcs = doc.Get("arcs");
  if (arcs == nullptr || !arcs->is_array()) {
    return Status::Corruption("range_digest missing arcs");
  }
  RangeDigestMsg out;
  out.transfer_id = std::move(*id);
  for (const Value& av : arcs->as_array()) {
    if (!av.is_document()) return Status::Corruption("malformed arc");
    const Document& item = av.as_document();
    auto start = GetI64(item, "s");
    if (!start.ok()) return start.status();
    auto end = GetI64(item, "e");
    if (!end.ok()) return end.status();
    out.arcs.push_back(hashring::Range{static_cast<std::uint32_t>(*start),
                                       static_cast<std::uint32_t>(*end)});
  }
  auto total = GetI64(doc, "total");
  if (total.ok()) out.total_records = static_cast<std::uint64_t>(*total);
  return out;
}

bson::Document EncodeRangeAck(const RangeAckMsg& msg) {
  Document doc;
  doc.Append("id", Value(msg.transfer_id));
  doc.Append("ok", Value(msg.ok));
  AppendWatermark(&doc, msg.watermark);
  return doc;
}

Result<RangeAckMsg> DecodeRangeAck(const bson::Document& doc) {
  auto id = GetStr(doc, "id");
  if (!id.ok()) return id.status();
  const Value* ok = doc.Get("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Corruption("range_ack missing ok");
  }
  auto wm = GetWatermark(doc);
  if (!wm.ok()) return wm.status();
  RangeAckMsg out;
  out.transfer_id = std::move(*id);
  out.ok = ok->as_bool();
  out.watermark = std::move(*wm);
  return out;
}

bson::Document EncodeRangePush(const RangePushMsg& msg) {
  Document doc;
  doc.Append("id", Value(msg.transfer_id));
  bson::Array records;
  records.reserve(msg.records.size());
  for (const bson::Document& record : msg.records) {
    records.emplace_back(Value(record));
  }
  doc.Append("recs", Value(std::move(records)));
  AppendWatermark(&doc, msg.watermark);
  return doc;
}

Result<RangePushMsg> DecodeRangePush(const bson::Document& doc) {
  auto id = GetStr(doc, "id");
  if (!id.ok()) return id.status();
  const Value* records = doc.Get("recs");
  if (records == nullptr || !records->is_array()) {
    return Status::Corruption("range_push missing recs");
  }
  auto wm = GetWatermark(doc);
  if (!wm.ok()) return wm.status();
  RangePushMsg out;
  out.transfer_id = std::move(*id);
  for (const Value& rv : records->as_array()) {
    if (!rv.is_document()) return Status::Corruption("malformed push record");
    out.records.push_back(rv.as_document());
  }
  out.watermark = std::move(*wm);
  return out;
}

bson::Document EncodeTransferDone(const TransferDoneMsg& msg) {
  Document doc;
  doc.Append("id", Value(msg.transfer_id));
  return doc;
}

Result<TransferDoneMsg> DecodeTransferDone(const bson::Document& doc) {
  auto id = GetStr(doc, "id");
  if (!id.ok()) return id.status();
  TransferDoneMsg out;
  out.transfer_id = std::move(*id);
  return out;
}

}  // namespace hotman::rebalance
