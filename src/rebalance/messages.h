#ifndef HOTMAN_REBALANCE_MESSAGES_H_
#define HOTMAN_REBALANCE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "hashring/ring.h"

namespace hotman::rebalance {

/// Wire vocabulary of the rebalance subsystem. One *transfer* moves the
/// records of a set of ring arcs from a source node to a target node:
///
///   source                                target
///     | --- range_digest {id, arcs} --------> |   (open / resume probe)
///     | <-- range_ack {id, watermark} ------- |   (target's high-water)
///     | --- range_push {id, records, wm} ---> |   (throttled batch)
///     | <-- range_ack {id, watermark} ------- |   (advances the cursor)
///     |            ... repeat ...             |
///     | --- transfer_done {id} -------------> |   (target drops cursor)
///
/// Records stream in a canonical order — ascending (ring point, key) — so a
/// single watermark cursor makes the transfer resumable: a source that lost
/// its in-memory progress (crash, restart) re-sends range_digest and the
/// target answers with the last position it durably applied; the source
/// fast-forwards instead of re-streaming from zero. Batches are applied
/// with last-write-wins semantics, so overlap around the watermark is
/// idempotent and a key is never duplicated.
inline constexpr const char* kMsgRangeDigest = "range_digest";
inline constexpr const char* kMsgRangeAck = "range_ack";
inline constexpr const char* kMsgRangePush = "range_push";
inline constexpr const char* kMsgTransferDone = "transfer_done";

/// Position in the canonical stream order of a transfer: the (ring point,
/// key) of the last record applied. The zero value ({0, ""}) means
/// "nothing applied yet" — it sorts before every real record because keys
/// are never empty.
struct Watermark {
  std::uint32_t point = 0;
  std::string key;

  bool IsZero() const { return point == 0 && key.empty(); }

  friend bool operator<(const Watermark& a, const Watermark& b) {
    if (a.point != b.point) return a.point < b.point;
    return a.key < b.key;
  }
  friend bool operator==(const Watermark& a, const Watermark& b) {
    return a.point == b.point && a.key == b.key;
  }
  friend bool operator<=(const Watermark& a, const Watermark& b) {
    return a < b || a == b;
  }
};

/// range_digest payload: opens (or resumes) a transfer of `arcs`.
struct RangeDigestMsg {
  std::string transfer_id;  ///< content-derived (md5 of source|target|arcs)
  std::vector<hashring::Range> arcs;
  std::uint64_t total_records = 0;  ///< source-side estimate (observability)
};

/// range_ack payload: the target's cursor after a digest or push.
struct RangeAckMsg {
  std::string transfer_id;
  bool ok = true;
  Watermark watermark;
};

/// range_push payload: one throttled batch, plus the stream position of its
/// last record (positional — it advances even past records the source
/// skipped, so resume never stalls on a purged key).
struct RangePushMsg {
  std::string transfer_id;
  std::vector<bson::Document> records;
  Watermark watermark;
};

/// transfer_done payload: the source streamed every record; the target
/// forgets the cursor.
struct TransferDoneMsg {
  std::string transfer_id;
};

bson::Document EncodeRangeDigest(const RangeDigestMsg& msg);
Result<RangeDigestMsg> DecodeRangeDigest(const bson::Document& doc);
bson::Document EncodeRangeAck(const RangeAckMsg& msg);
Result<RangeAckMsg> DecodeRangeAck(const bson::Document& doc);
bson::Document EncodeRangePush(const RangePushMsg& msg);
Result<RangePushMsg> DecodeRangePush(const bson::Document& doc);
bson::Document EncodeTransferDone(const TransferDoneMsg& msg);
Result<TransferDoneMsg> DecodeTransferDone(const bson::Document& doc);

}  // namespace hotman::rebalance

#endif  // HOTMAN_REBALANCE_MESSAGES_H_
