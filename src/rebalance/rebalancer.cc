#include "rebalance/rebalancer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "bson/codec.h"
#include "common/logging.h"
#include "core/record.h"
#include "hashring/md5.h"

namespace hotman::rebalance {

void RebalanceStats::MergeFrom(const RebalanceStats& other) {
  transfers_started += other.transfers_started;
  transfers_completed += other.transfers_completed;
  transfers_aborted += other.transfers_aborted;
  arcs_planned += other.arcs_planned;
  arcs_completed += other.arcs_completed;
  records_streamed += other.records_streamed;
  bytes_streamed += other.bytes_streamed;
  records_received += other.records_received;
  records_skipped += other.records_skipped;
  throttle_stalls += other.throttle_stalls;
  resumes += other.resumes;
  retries += other.retries;
  autonomic_reweights += other.autonomic_reweights;
}

Rebalancer::Rebalancer(const RebalanceConfig& config, RebalancerEnv env)
    : config_(config), env_(std::move(env)) {}

void Rebalancer::Stop() {
  running_ = false;
  if (retry_ticker_ != 0) {
    env_.executor->CancelTimer(retry_ticker_);
    retry_ticker_ = 0;
  }
  for (auto& [id, t] : transfers_) {
    if (t->send_timer != 0) env_.executor->CancelTimer(t->send_timer);
  }
  transfers_.clear();
  global_inflight_bytes_ = 0;
}

void Rebalancer::ForgetSourceState() {
  for (auto& [id, t] : transfers_) {
    if (t->send_timer != 0) env_.executor->CancelTimer(t->send_timer);
  }
  transfers_.clear();
  global_inflight_bytes_ = 0;
}

void Rebalancer::OnStateLoss() {
  ForgetSourceState();
  watermarks_.clear();
}

std::string Rebalancer::TransferId(const hashring::NodeId& source,
                                   const hashring::NodeId& target,
                                   const std::vector<hashring::Range>& arcs) {
  std::string material = source + "|" + target;
  for (const hashring::Range& arc : arcs) {
    material += "|" + std::to_string(arc.start) + ":" + std::to_string(arc.end);
  }
  return hashring::Md5::HexDigest(material);
}

void Rebalancer::StartTransfers(
    const std::vector<hashring::ReplicaMigrationStep>& steps,
    std::function<void()> on_all_complete) {
  // Group this node's steps by target; each group is one transfer.
  std::map<hashring::NodeId, std::vector<hashring::Range>> groups;
  for (const hashring::ReplicaMigrationStep& step : steps) {
    if (step.source != env_.self) continue;
    groups[step.target].push_back(step.range);
    ++stats_.arcs_planned;
  }
  if (groups.empty()) {
    if (on_all_complete) on_all_complete();
    return;
  }

  // Completion fan-in across the group (the decommission path waits for
  // every outgoing transfer before announcing its departure).
  auto remaining = std::make_shared<std::size_t>(groups.size());
  auto one_done = [remaining, on_all_complete]() {
    if (--*remaining == 0 && on_all_complete) on_all_complete();
  };

  std::vector<bson::Document> records = env_.snapshot();
  for (auto& [target, arcs] : groups) {
    std::sort(arcs.begin(), arcs.end(),
              [](const hashring::Range& a, const hashring::Range& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });
    const std::string id = TransferId(env_.self, target, arcs);
    auto existing = transfers_.find(id);
    if (existing != transfers_.end() && !existing->second->done) {
      existing->second->completions.push_back(one_done);
      continue;
    }

    auto t = std::make_unique<Transfer>();
    t->id = id;
    t->target = target;
    t->arcs = arcs;
    for (const bson::Document& record : records) {
      const std::string key = core::RecordSelfKey(record);
      const std::uint32_t point = hashring::Ring::HashKey(key);
      for (const hashring::Range& arc : t->arcs) {
        if (arc.Contains(point)) {
          t->keys.emplace_back(point, key);
          break;
        }
      }
    }
    std::sort(t->keys.begin(), t->keys.end());
    t->keys.erase(std::unique(t->keys.begin(), t->keys.end()), t->keys.end());
    t->completions.push_back(one_done);
    t->last_progress = env_.executor->NowMicros();
    t->next_send_at = t->last_progress;

    if (t->keys.empty()) {
      // Nothing to move: tell the target to drop any stale cursor from an
      // earlier partial attempt and finish immediately.
      env_.send_msg(target, kMsgTransferDone,
                EncodeTransferDone(TransferDoneMsg{id}));
      stats_.arcs_completed += t->arcs.size();
      one_done();
      continue;
    }

    ++stats_.transfers_started;
    Transfer& ref = *t;
    transfers_[id] = std::move(t);
    SendDigest(ref);
  }
  EnsureRetryTicker();
}

void Rebalancer::SendDigest(Transfer& t) {
  RangeDigestMsg digest;
  digest.transfer_id = t.id;
  digest.arcs = t.arcs;
  digest.total_records = t.keys.size();
  env_.send_msg(t.target, kMsgRangeDigest, EncodeRangeDigest(digest));
}

bool Rebalancer::SourcingKey(std::string_view key) const {
  if (transfers_.empty()) return false;
  const std::uint32_t point = hashring::Ring::HashKey(key);
  for (const auto& [id, t] : transfers_) {
    if (t->done) continue;
    for (const hashring::Range& arc : t->arcs) {
      if (arc.Contains(point)) return true;
    }
  }
  return false;
}

void Rebalancer::HandleRangeAck(const std::string& from,
                                const bson::Document& body) {
  if (!running_ || !env_.available()) return;
  Result<RangeAckMsg> ack = DecodeRangeAck(body);
  if (!ack.ok()) return;
  auto it = transfers_.find(ack->transfer_id);
  if (it == transfers_.end() || it->second->done) return;
  Transfer& t = *it->second;
  if (from != t.target) return;

  if (t.batch_in_flight) {
    t.batch_in_flight = false;
    global_inflight_bytes_ -= t.inflight_bytes;
    t.inflight_bytes = 0;
  }
  if (!ack->ok) return;  // target refused; the retry ticker re-probes

  // The target's watermark is authoritative: rewind when pushes were lost
  // (its cursor is behind ours), fast-forward when it already holds a
  // prefix from an earlier attempt (resume).
  const std::pair<std::uint32_t, std::string> wm{ack->watermark.point,
                                                 ack->watermark.key};
  const std::size_t position =
      ack->watermark.IsZero()
          ? 0
          : static_cast<std::size_t>(
                std::upper_bound(t.keys.begin(), t.keys.end(), wm) -
                t.keys.begin());
  if (position > t.cursor) ++stats_.resumes;
  t.cursor = position;
  t.last_progress = env_.executor->NowMicros();

  const std::string id = t.id;
  MaybeSendNext(id);

  // A freed byte budget may unblock transfers stalled on it.
  if (global_inflight_bytes_ < config_.max_inflight_bytes) {
    std::vector<std::string> ids;
    for (const auto& [other_id, other] : transfers_) {
      if (!other->done && !other->batch_in_flight && other_id != id) {
        ids.push_back(other_id);
      }
    }
    for (const std::string& other_id : ids) MaybeSendNext(other_id);
  }
}

void Rebalancer::MaybeSendNext(const std::string& id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || it->second->done) return;
  Transfer& t = *it->second;
  if (!running_ || t.batch_in_flight) return;
  if (t.cursor >= t.keys.size()) {
    FinishTransfer(id, /*completed=*/true);
    return;
  }
  if (!env_.available()) return;  // crashed; the retry ticker resumes us

  const Micros now = env_.executor->NowMicros();
  if (config_.records_per_sec > 0 && now < t.next_send_at) {
    ++stats_.throttle_stalls;
    if (t.send_timer == 0) {
      t.send_timer =
          env_.executor->ScheduleTimer(t.next_send_at - now, [this, id]() {
            auto timer_it = transfers_.find(id);
            if (timer_it != transfers_.end()) timer_it->second->send_timer = 0;
            MaybeSendNext(id);
          });
    }
    return;
  }
  if (global_inflight_bytes_ >= config_.max_inflight_bytes) {
    ++stats_.throttle_stalls;  // retried when an ack frees the budget
    return;
  }

  const std::size_t batch =
      config_.batch_records > 0 ? static_cast<std::size_t>(config_.batch_records)
                                : 32;
  const std::size_t end_index = std::min(t.cursor + batch, t.keys.size());
  RangePushMsg push;
  push.transfer_id = id;
  std::size_t bytes = 0;
  for (std::size_t i = t.cursor; i < end_index; ++i) {
    Result<bson::Document> record = env_.lookup(t.keys[i].second);
    if (!record.ok()) continue;  // purged since the snapshot; cursor still advances
    bytes += bson::EncodeToString(*record).size();
    push.records.push_back(std::move(*record));
  }
  push.watermark =
      Watermark{t.keys[end_index - 1].first, t.keys[end_index - 1].second};

  if (config_.records_per_sec > 0) {
    const Micros pace = static_cast<Micros>(end_index - t.cursor) *
                        kMicrosPerSecond / config_.records_per_sec;
    t.next_send_at = std::max(now, t.next_send_at) + pace;
  }
  t.cursor = end_index;
  t.batch_in_flight = true;
  t.inflight_bytes = bytes;
  global_inflight_bytes_ += bytes;
  stats_.records_streamed += push.records.size();
  stats_.bytes_streamed += bytes;
  t.last_progress = now;
  env_.send_msg(t.target, kMsgRangePush, EncodeRangePush(push));
}

void Rebalancer::FinishTransfer(const std::string& id, bool completed) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = *it->second;
  t.done = true;
  if (t.send_timer != 0) {
    env_.executor->CancelTimer(t.send_timer);
    t.send_timer = 0;
  }
  if (t.batch_in_flight) {
    global_inflight_bytes_ -= t.inflight_bytes;
    t.inflight_bytes = 0;
    t.batch_in_flight = false;
  }
  if (completed) {
    env_.send_msg(t.target, kMsgTransferDone,
              EncodeTransferDone(TransferDoneMsg{id}));
    ++stats_.transfers_completed;
    stats_.arcs_completed += t.arcs.size();
  } else {
    ++stats_.transfers_aborted;
  }
  std::vector<std::function<void()>> completions = std::move(t.completions);
  transfers_.erase(it);
  for (auto& completion : completions) completion();
}

void Rebalancer::EnsureRetryTicker() {
  if (retry_ticker_ != 0 || transfers_.empty() || !running_) return;
  retry_ticker_ = env_.executor->ScheduleTimer(config_.retry_interval,
                                               [this]() { OnRetryTick(); });
}

void Rebalancer::OnRetryTick() {
  retry_ticker_ = 0;
  if (!running_) return;
  const Micros now = env_.executor->NowMicros();
  std::vector<std::string> ids;
  ids.reserve(transfers_.size());
  for (const auto& [id, t] : transfers_) ids.push_back(id);
  for (const std::string& id : ids) {
    auto it = transfers_.find(id);
    if (it == transfers_.end() || it->second->done) continue;
    Transfer& t = *it->second;
    if (!env_.peer_known(t.target)) {
      HOTMAN_LOG(kWarn) << env_.self << ": aborting transfer " << id  // NOLINT(hotman-transitive-blocking) leaf log sink: bounded lock-copy + stderr write, log text is not replay state
                        << " — target " << t.target << " left the ring";
      FinishTransfer(id, /*completed=*/false);
      continue;
    }
    if (!env_.available()) continue;
    if (now - t.last_progress >= config_.retry_interval) {
      // No progress for a full interval: the push or its ack was lost, or
      // the target was down. Drop the in-flight claim and re-probe; the
      // digest ack rewinds or fast-forwards the cursor as needed.
      if (t.batch_in_flight) {
        t.batch_in_flight = false;
        global_inflight_bytes_ -= t.inflight_bytes;
        t.inflight_bytes = 0;
      }
      ++stats_.retries;
      SendDigest(t);
    } else if (!t.batch_in_flight) {
      MaybeSendNext(id);
    }
  }
  EnsureRetryTicker();
}

// --- target side -----------------------------------------------------------

void Rebalancer::HandleRangeDigest(const std::string& from,
                                   const bson::Document& body) {
  if (!running_ || !env_.available()) return;
  Result<RangeDigestMsg> digest = DecodeRangeDigest(body);
  if (!digest.ok()) return;
  const Watermark& wm = watermarks_[digest->transfer_id];  // default: zero
  RangeAckMsg ack;
  ack.transfer_id = digest->transfer_id;
  ack.ok = true;
  ack.watermark = wm;
  env_.send_msg(from, kMsgRangeAck, EncodeRangeAck(ack));
}

void Rebalancer::HandleRangePush(const std::string& from,
                                 const bson::Document& body) {
  if (!running_ || !env_.available()) return;
  Result<RangePushMsg> push = DecodeRangePush(body);
  if (!push.ok()) return;
  const std::string id = push->transfer_id;
  Watermark& wm = watermarks_[id];

  std::vector<bson::Document> fresh;
  fresh.reserve(push->records.size());
  for (bson::Document& record : push->records) {
    const std::string key = core::RecordSelfKey(record);
    Watermark at{hashring::Ring::HashKey(key), key};
    if (!wm.IsZero() && at <= wm) {
      ++stats_.records_skipped;  // resume overlap; already applied
      continue;
    }
    fresh.push_back(std::move(record));
  }

  const Watermark batch_mark =
      wm < push->watermark ? push->watermark : wm;
  auto finish = [this, id, from, batch_mark](bool all_ok) {
    if (!running_ || !env_.available()) return;
    RangeAckMsg ack;
    ack.transfer_id = id;
    Watermark& cursor = watermarks_[id];
    if (all_ok) {
      // Only a fully-applied batch advances the cursor; a partial batch is
      // re-streamed by the source after its retry probe.
      if (cursor < batch_mark) cursor = batch_mark;
      ack.ok = true;
    } else {
      ack.ok = false;
    }
    ack.watermark = cursor;
    env_.send_msg(from, kMsgRangeAck, EncodeRangeAck(ack));
  };

  if (fresh.empty()) {
    finish(true);
    return;
  }
  // Apply through the host's service station so an inbound stream competes
  // for the same capacity as foreground work (that contention is exactly
  // what the throttle bounds); ack once the whole batch has been absorbed.
  auto pending = std::make_shared<std::size_t>(fresh.size());
  auto all_ok = std::make_shared<bool>(true);
  stats_.records_received += fresh.size();
  for (bson::Document& record : fresh) {
    env_.apply(record, [pending, all_ok, finish](bool ok) {
      if (!ok) *all_ok = false;
      if (--*pending == 0) finish(*all_ok);
    });
  }
}

void Rebalancer::HandleTransferDone(const std::string& from,
                                    const bson::Document& body) {
  (void)from;
  if (!running_) return;
  Result<TransferDoneMsg> done = DecodeTransferDone(body);
  if (!done.ok()) return;
  watermarks_.erase(done->transfer_id);
}

// --- introspection ---------------------------------------------------------

std::size_t Rebalancer::active_transfers() const {
  std::size_t active = 0;
  for (const auto& [id, t] : transfers_) {
    if (!t->done) ++active;
  }
  return active;
}

std::string Rebalancer::StatusJson() const {
  std::string json = "{\"active\":" + std::to_string(active_transfers()) +
                     ",\"inflight_bytes\":" +
                     std::to_string(global_inflight_bytes_) +
                     ",\"transfers\":[";
  bool first = true;
  for (const auto& [id, t] : transfers_) {
    if (t->done) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"id\":\"" + id + "\",\"target\":\"" + t->target +
            "\",\"streamed\":" + std::to_string(t->cursor) +
            ",\"total\":" + std::to_string(t->keys.size()) + "}";
  }
  json += "]}";
  return json;
}

}  // namespace hotman::rebalance
