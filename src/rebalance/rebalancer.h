#ifndef HOTMAN_REBALANCE_REBALANCER_H_
#define HOTMAN_REBALANCE_REBALANCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bson/document.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "hashring/migration.h"
#include "hashring/ring.h"
#include "net/executor.h"
#include "rebalance/messages.h"

namespace hotman::rebalance {

/// Tuning of the live data-movement subsystem. Lives inside ClusterConfig
/// so a whole cluster shares one policy; the throttle exists to keep
/// foreground p99 bounded while a rebalance streams in the background
/// (measured by bench_rebalance).
struct RebalanceConfig {
  /// Master switch: off falls back to the pre-rebalancer behaviour (blunt
  /// re-replication on membership change, anti-entropy fills new nodes).
  bool enabled = true;

  /// Source-side pacing: records per second across each transfer
  /// (0 = unthrottled). The default keeps a laptop-scale background
  /// rebalance well below foreground service capacity.
  int records_per_sec = 2000;

  /// Records per range_push batch (ack-paced: one batch in flight per
  /// transfer).
  int batch_records = 32;

  /// Byte budget across all in-flight batches of this node's outgoing
  /// transfers; a transfer stalls (counted) rather than exceed it.
  std::size_t max_inflight_bytes = 256 * 1024;

  /// Loss recovery: a transfer with no progress for this long re-sends its
  /// range_digest (the target's watermark makes that idempotent).
  Micros retry_interval = kMicrosPerSecond;

  /// H2O-style autonomic trigger: when on, a node whose record count
  /// exceeds `imbalance_threshold` times the cluster mean (as gossiped via
  /// the load state key) sheds ring weight and streams the released arcs
  /// out. Off by default: membership changes still rebalance explicitly.
  bool autonomic = false;
  double imbalance_threshold = 2.0;
  Micros autonomic_interval = 5 * kMicrosPerSecond;
  int autonomic_min_vnodes = 8;
};

/// Counters exported as rebalance.* in /stats.
struct RebalanceStats {
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_aborted = 0;   ///< target left the ring mid-stream
  std::uint64_t arcs_planned = 0;        ///< steps this node was source for
  std::uint64_t arcs_completed = 0;
  std::uint64_t records_streamed = 0;    ///< source side, sent
  std::uint64_t bytes_streamed = 0;
  std::uint64_t records_received = 0;    ///< target side, applied
  std::uint64_t records_skipped = 0;     ///< target side, below watermark
  std::uint64_t throttle_stalls = 0;     ///< sends deferred by pacing/budget
  std::uint64_t resumes = 0;             ///< digest acks that fast-forwarded
  std::uint64_t retries = 0;             ///< digests re-sent on stall
  std::uint64_t autonomic_reweights = 0;

  void MergeFrom(const RebalanceStats& other);
};

/// The surface the Rebalancer needs from its host node, as hooks so the
/// subsystem stays free of cluster/ dependencies (and unit-testable
/// against fakes). All hooks are invoked on the host's system shard
/// (shard 0), matching anti-entropy.
struct RebalancerEnv {
  hashring::NodeId self;

  /// Sends a cluster message (type, body) to a peer endpoint.
  std::function<void(const hashring::NodeId& to, const std::string& type,
                     bson::Document body)>
      send_msg;

  /// Snapshot of every record held locally (all shard partitions).
  std::function<std::vector<bson::Document>()> snapshot;

  /// Freshest local version of `key` (NotFound when purged since the
  /// snapshot).
  std::function<Result<bson::Document>(const std::string& key)> lookup;

  /// Target side: applies a pushed record (LWW, idempotent) and calls
  /// `done(ok)` when the node's service station has absorbed the work —
  /// that routing is what makes an unthrottled inbound stream visibly
  /// contend with foreground traffic. `ok == false` (shed, crashed, store
  /// error) keeps the watermark where it was so the source re-streams.
  std::function<void(const bson::Document& record,
                     std::function<void(bool ok)> done)>
      apply;

  /// True while the node is up (not crash-injected); a down node neither
  /// streams nor acks.
  std::function<bool()> available;

  /// True while `peer` is still a ring member; a transfer whose target
  /// left is aborted instead of retried forever.
  std::function<bool(const hashring::NodeId& peer)> peer_known;

  /// Timers + clock (the node's shard-0 executor).
  net::Executor* executor = nullptr;
};

/// Per-node engine of elastic membership: turns replica-aware migration
/// plans into throttled, resumable record streams over the host's
/// transport. Source side: StartTransfers() filters the plan to steps this
/// node must stream and drives one transfer per (source, target, arcs)
/// group. Target side: the Handle* methods apply pushed batches and
/// maintain per-transfer watermark cursors so a source that lost its
/// progress resumes instead of restarting. System-shard work, like
/// anti-entropy: everything here runs on shard 0.
class Rebalancer {
 public:
  Rebalancer(const RebalanceConfig& config, RebalancerEnv env);

  void Start() { running_ = true; }
  /// Cancels timers and drops transfer state (watermarks on the target
  /// side of other nodes survive, which is the point).
  void Stop();

  /// Source side: begins streaming every step whose source is this node.
  /// `on_all_complete` (optional) fires once every such transfer has
  /// completed or aborted — the decommission path announces its departure
  /// from it. Steps sourced elsewhere are ignored.
  void StartTransfers(const std::vector<hashring::ReplicaMigrationStep>& steps,
                      std::function<void()> on_all_complete = nullptr)
      HOTMAN_SHARD_AFFINE;

  /// Crash/test hook: forgets all source-side progress, as a freshly
  /// restarted process would. The next StartTransfers for the same arcs
  /// regenerates the same content-derived transfer ids and resumes from
  /// the targets' watermarks.
  void ForgetSourceState() HOTMAN_SHARD_AFFINE;

  /// Crash-with-state-loss hook: a wiped node has neither source progress
  /// nor target watermarks (sources re-stream from zero; LWW keeps that
  /// idempotent).
  void OnStateLoss() HOTMAN_SHARD_AFFINE;

  /// True when `key` lies inside an arc this node is actively streaming
  /// out (the ownership sweep defers purging such keys to the transfer's
  /// completion hook).
  bool SourcingKey(std::string_view key) const HOTMAN_SHARD_AFFINE;

  /// Wire handlers (registered by the host on its dispatcher, shard 0).
  void HandleRangeDigest(const std::string& from, const bson::Document& body)
      HOTMAN_SHARD_AFFINE;
  void HandleRangeAck(const std::string& from, const bson::Document& body)
      HOTMAN_SHARD_AFFINE;
  void HandleRangePush(const std::string& from, const bson::Document& body)
      HOTMAN_SHARD_AFFINE;
  void HandleTransferDone(const std::string& from, const bson::Document& body)
      HOTMAN_SHARD_AFFINE;

  std::size_t active_transfers() const;
  bool Idle() const { return active_transfers() == 0; }
  RebalanceStats stats() const { return stats_; }
  /// Counts an autonomic reweight decided by the host (the trigger logic
  /// lives with gossip state, in the host).
  void CountAutonomicReweight() { ++stats_.autonomic_reweights; }

  /// Human/ctl-facing status: active transfer ids with progress.
  std::string StatusJson() const;

 private:
  /// Source-side state of one outgoing transfer.
  struct Transfer {
    std::string id;
    hashring::NodeId target;
    std::vector<hashring::Range> arcs;
    /// Canonical stream order: ascending (ring point, key).
    std::vector<std::pair<std::uint32_t, std::string>> keys;
    std::size_t cursor = 0;       ///< next index to stream
    bool batch_in_flight = false;
    std::size_t inflight_bytes = 0;
    Micros next_send_at = 0;      ///< pacing gate
    Micros last_progress = 0;     ///< for the retry ticker
    std::size_t progress_mark = 0;
    bool done = false;
    net::TimerId send_timer = 0;
    std::vector<std::function<void()>> completions;
  };

  static std::string TransferId(const hashring::NodeId& source,
                                const hashring::NodeId& target,
                                const std::vector<hashring::Range>& arcs);

  void SendDigest(Transfer& t);
  void MaybeSendNext(const std::string& id);
  void FinishTransfer(const std::string& id, bool completed);
  void EnsureRetryTicker();
  void OnRetryTick();

  RebalanceConfig config_;
  RebalancerEnv env_;
  bool running_ = false;

  std::map<std::string, std::unique_ptr<Transfer>> transfers_;
  std::size_t global_inflight_bytes_ = 0;
  net::TimerId retry_ticker_ = 0;

  /// Target-side cursors: transfer id -> high-water applied. Dropped on
  /// transfer_done; survive source crashes, which is what makes transfers
  /// resumable.
  std::map<std::string, Watermark> watermarks_;

  RebalanceStats stats_;
};

}  // namespace hotman::rebalance

#endif  // HOTMAN_REBALANCE_REBALANCER_H_
