#include "rest/request.h"

namespace hotman::rest {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kPost:
      return "POST";
    case Method::kDelete:
      return "DELETE";
  }
  return "?";
}

std::string Request::ResourceKey() const {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return path;
  return path.substr(slash + 1);
}

std::string Request::Uri() const {
  std::string uri = path;
  bool first = true;
  for (const auto& [name, value] : query) {
    uri += first ? '?' : '&';
    first = false;
    uri += name;
    uri += '=';
    uri += value;
  }
  return uri;
}

bool ParseUri(std::string_view uri, std::string* path,
              std::map<std::string, std::string>* query) {
  path->clear();
  query->clear();
  const std::size_t qmark = uri.find('?');
  *path = std::string(uri.substr(0, qmark));
  if (path->empty() || (*path)[0] != '/') return false;
  if (qmark == std::string_view::npos) return true;
  std::string_view qs = uri.substr(qmark + 1);
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    std::string_view pair = qs.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    (*query)[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
    if (amp == std::string_view::npos) break;
    qs = qs.substr(amp + 1);
  }
  return true;
}

}  // namespace hotman::rest
