#ifndef HOTMAN_REST_REQUEST_H_
#define HOTMAN_REST_REQUEST_H_

#include <map>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace hotman::rest {

/// The three HTTP methods the interface exposes (§4): GET retrieves, POST
/// creates or updates, DELETE removes.
enum class Method { kGet, kPost, kDelete };

const char* MethodName(Method method);

/// A parsed RESTful request. URIs look like
///   /data/<key>?token=...&signature=...
/// and are stateless: everything the server needs is in the request.
struct Request {
  Method method = Method::kGet;
  std::string path;                         ///< "/data/Resistor5"
  std::map<std::string, std::string> query; ///< decoded query parameters
  Bytes body;                               ///< POST payload

  /// Resource key (last path segment), empty for collection-level POST.
  std::string ResourceKey() const;

  /// The full URI (path + canonically ordered query string).
  std::string Uri() const;
};

/// HTTP-ish status codes used by the interface.
enum class StatusCode {
  kOk = 200,
  kCreated = 201,
  kNoContent = 204,
  kBadRequest = 400,
  kUnauthorized = 401,
  kNotFound = 404,
  kServiceUnavailable = 503,
};

struct Response {
  StatusCode code = StatusCode::kOk;
  Bytes body;
  std::string error;

  bool ok() const { return static_cast<int>(code) < 400; }
};

/// Parses "path?a=1&b=2" into path + query map; returns false on malformed
/// input (empty path, bad pair syntax).
bool ParseUri(std::string_view uri, std::string* path,
              std::map<std::string, std::string>* query);

}  // namespace hotman::rest

#endif  // HOTMAN_REST_REQUEST_H_
