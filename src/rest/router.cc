#include "rest/router.h"

namespace hotman::rest {

Router::Router(int workers, Handler handler)
    : workers_(workers < 1 ? 1 : workers),
      handler_(std::move(handler)),
      counts_(workers_, 0) {}

Response Router::Dispatch(const Request& request) {
  const int worker = static_cast<int>(next_++ % workers_);
  ++counts_[worker];
  return handler_(worker, request);
}

}  // namespace hotman::rest
