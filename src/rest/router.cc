#include "rest/router.h"

namespace hotman::rest {

Router::Router(int workers, Handler handler)
    : workers_(workers < 1 ? 1 : workers),
      handler_(std::move(handler)),
      counts_(workers_, 0) {}

Response Router::Dispatch(const Request& request) {
  const int worker = static_cast<int>(next_++ % workers_);
  ++counts_[worker];
  return handler_(worker, request);
}

std::string Router::StatsJson() const {
  std::size_t total = 0;
  std::string per_worker = "[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    total += counts_[i];
    if (i > 0) per_worker += ',';
    per_worker += std::to_string(counts_[i]);
  }
  per_worker += ']';
  return "{\"workers\":" + std::to_string(workers_) +
         ",\"dispatched\":" + std::to_string(total) +
         ",\"per_worker\":" + per_worker + "}";
}

}  // namespace hotman::rest
