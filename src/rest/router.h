#ifndef HOTMAN_REST_ROUTER_H_
#define HOTMAN_REST_ROUTER_H_

#include <functional>
#include <string>
#include <vector>

#include "rest/request.h"

namespace hotman::rest {

/// The distribution module of Fig. 1: an Nginx-style front end spreading
/// requests round-robin across spawn-fcgi-managed logical worker processes
/// ("the distribution is based on round-robin algorithm").
///
/// Workers are handler functions; the worker index is passed through so the
/// owner can model per-process capacity (a ServiceStation per worker).
class Router {
 public:
  /// Handles one request on worker `worker_index`.
  using Handler = std::function<Response(int worker_index, const Request&)>;

  /// `workers` logical processes sharing one handler function.
  Router(int workers, Handler handler);

  /// Dispatches `request` to the next worker round-robin.
  Response Dispatch(const Request& request);

  int num_workers() const { return workers_; }

  /// Requests dispatched so far, per worker (balance introspection).
  const std::vector<std::size_t>& dispatch_counts() const { return counts_; }

  /// Distribution-module stats as JSON:
  ///   {"workers":N,"dispatched":total,"per_worker":[...]}
  std::string StatsJson() const;

 private:
  int workers_;
  Handler handler_;
  std::size_t next_ = 0;
  std::vector<std::size_t> counts_;
};

}  // namespace hotman::rest

#endif  // HOTMAN_REST_ROUTER_H_
