#include "rest/signature.h"

#include "hashring/md5.h"

namespace hotman::rest {

std::string ComputeSignature(std::string_view token, std::string_view uri,
                             std::string_view secret_key) {
  std::string input;
  input.reserve(token.size() + uri.size() + secret_key.size());
  input.append(token);
  input.append(uri);
  input.append(secret_key);
  return hashring::Md5::HexDigest(input);
}

std::string BuildSignedUri(std::string_view uri, std::string_view token,
                           std::string_view secret_key) {
  const std::string signature = ComputeSignature(token, uri, secret_key);
  std::string signed_uri(uri);
  signed_uri += (uri.find('?') == std::string_view::npos) ? '?' : '&';
  signed_uri += "token=";
  signed_uri.append(token);
  signed_uri += "&signature=";
  signed_uri += signature;
  return signed_uri;
}

bool VerifySignature(std::string_view token, std::string_view uri,
                     std::string_view secret_key, std::string_view signature) {
  return ComputeSignature(token, uri, secret_key) == signature;
}

}  // namespace hotman::rest
