#ifndef HOTMAN_REST_SIGNATURE_H_
#define HOTMAN_REST_SIGNATURE_H_

#include <string>
#include <string_view>

namespace hotman::rest {

/// URI digital-signature scheme of Fig. 2.
///
/// RESTful interfaces are stateless, so sessions and cookies are out; the
/// only way left is a URI-based digital signature. "The secret key is a
/// string to identify unique user and the token is a string to identify a
/// single request. MD5 hash is applied to generate signature": the client
/// obtains a TOKEN, then computes
///     signature = MD5(token + request_uri + secret_key)
/// and appends token + signature to the request URI. The server recomputes
/// the digest with the same inputs to authorize the request.

/// Computes the hex MD5 digest signature for (token, uri, secret_key).
std::string ComputeSignature(std::string_view token, std::string_view uri,
                             std::string_view secret_key);

/// Builds the authorized request URI:
/// "<uri><?|&>token=<token>&signature=<sig>".
std::string BuildSignedUri(std::string_view uri, std::string_view token,
                           std::string_view secret_key);

/// Server-side check: true when `signature` matches (token, uri, secret).
bool VerifySignature(std::string_view token, std::string_view uri,
                     std::string_view secret_key, std::string_view signature);

}  // namespace hotman::rest

#endif  // HOTMAN_REST_SIGNATURE_H_
