#include "rest/token_db.h"

#include "hashring/md5.h"

namespace hotman::rest {

TokenDb::TokenDb(const Clock* clock, Micros ttl) : clock_(clock), ttl_(ttl) {}

std::string TokenDb::RegisterUser(const std::string& user) {
  auto it = secrets_.find(user);
  if (it != secrets_.end()) return it->second;
  // Deterministic but opaque secret.
  const std::string secret = hashring::Md5::HexDigest("secret:" + user);
  secrets_.emplace(user, secret);
  return secret;
}

Result<std::string> TokenDb::SecretKeyOf(const std::string& user) const {
  auto it = secrets_.find(user);
  if (it == secrets_.end()) return Status::NotFound("unknown user: " + user);
  return it->second;
}

Result<std::string> TokenDb::IssueToken(const std::string& user) {
  if (secrets_.count(user) == 0) {
    return Status::NotFound("unknown user: " + user);
  }
  const std::string token =
      hashring::Md5::HexDigest("token:" + user + ":" + std::to_string(next_token_++));
  tokens_.emplace(token, TokenInfo{user, clock_->NowMicros() + ttl_});
  return token;
}

Status TokenDb::ConsumeToken(const std::string& user, const std::string& token) {
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return Status::Unauthorized("unknown or already used token");
  }
  const TokenInfo info = it->second;
  tokens_.erase(it);  // single-use: consumed on first validation attempt
  if (info.user != user) return Status::Unauthorized("token issued to another user");
  if (clock_->NowMicros() > info.expires_at) {
    return Status::Unauthorized("token expired");
  }
  return Status::OK();
}

}  // namespace hotman::rest
