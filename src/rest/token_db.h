#ifndef HOTMAN_REST_TOKEN_DB_H_
#define HOTMAN_REST_TOKEN_DB_H_

#include <map>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace hotman::rest {

/// The TOKEN DB of Fig. 2: issues per-request tokens bound to a user's
/// secret key and validates them exactly once.
///
/// "Once users need to request data, the first thing is to get TOKEN from
/// TOKEN DB" — a token identifies a single request and expires both on use
/// and after a time-to-live.
class TokenDb {
 public:
  /// `ttl` bounds a token's validity window.
  TokenDb(const Clock* clock, Micros ttl = 60 * kMicrosPerSecond);

  /// Registers a user and returns their secret key (idempotent: an existing
  /// user keeps their key). The secret is "obtained from the web interface"
  /// out-of-band in the paper; here it is returned directly.
  std::string RegisterUser(const std::string& user);

  /// The user's secret key; NotFound for unknown users.
  Result<std::string> SecretKeyOf(const std::string& user) const;

  /// Issues a fresh single-use token for `user`.
  Result<std::string> IssueToken(const std::string& user);

  /// Validates and consumes `token` for `user`: Unauthorized when unknown,
  /// already used, expired, or issued to someone else.
  Status ConsumeToken(const std::string& user, const std::string& token);

  std::size_t outstanding_tokens() const { return tokens_.size(); }

 private:
  struct TokenInfo {
    std::string user;
    Micros expires_at;
  };

  const Clock* clock_;
  Micros ttl_;
  std::uint64_t next_token_ = 1;
  std::map<std::string, std::string> secrets_;  // user -> secret key
  std::map<std::string, TokenInfo> tokens_;     // token -> info
};

}  // namespace hotman::rest

#endif  // HOTMAN_REST_TOKEN_DB_H_
