#include "sim/event_loop.h"

namespace hotman::sim {

EventId EventLoop::Schedule(Micros delay, std::function<void()> fn) {
  return ScheduleAt(Now() + (delay < 0 ? 0 : delay), std::move(fn));
}

EventId EventLoop::ScheduleAt(Micros when, std::function<void()> fn) {
  if (when < Now()) when = Now();
  const EventId id = next_id_++;
  queue_.push(Event{when, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool EventLoop::Cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);  // lazily removed when popped
  return true;
}

void EventLoop::FireNext() {
  const Event event = queue_.top();
  queue_.pop();
  if (auto cancelled_it = cancelled_.find(event.id); cancelled_it != cancelled_.end()) {
    cancelled_.erase(cancelled_it);
    return;
  }
  auto it = handlers_.find(event.id);
  if (it == handlers_.end()) return;
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  if (event.when > clock_.NowMicros()) clock_.SetTime(event.when);
  fn();
}

std::size_t EventLoop::RunUntilIdle() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    const bool was_cancelled = cancelled_.count(queue_.top().id) > 0;
    FireNext();
    if (!was_cancelled) ++fired;
  }
  return fired;
}

std::size_t EventLoop::RunUntil(Micros deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    const bool was_cancelled = cancelled_.count(queue_.top().id) > 0;
    FireNext();
    if (!was_cancelled) ++fired;
  }
  if (clock_.NowMicros() < deadline) clock_.SetTime(deadline);
  return fired;
}

}  // namespace hotman::sim
