#ifndef HOTMAN_SIM_EVENT_LOOP_H_
#define HOTMAN_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "net/executor.h"

namespace hotman::sim {

/// Identifier of a scheduled event (for cancellation).
using EventId = std::uint64_t;

/// Deterministic discrete-event loop: the time base of every distributed
/// experiment. Events fire in (time, schedule-order) order; the virtual
/// clock jumps instantaneously between events, so a simulated 7x24-hour run
/// costs only the work actually scheduled.
///
/// Implements net::Executor, so components written against the transport
/// abstraction (StorageNode, Gossiper, ServiceStation) schedule timers here
/// in simulation and on TcpTransport's real event loop in `hotmand` without
/// noticing the difference.
class EventLoop : public net::Executor {
 public:
  explicit EventLoop(Micros start_time = 0) : clock_(start_time) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  Micros Now() const { return clock_.NowMicros(); }

  /// net::Executor surface: delegates to Schedule/Cancel/Now.
  net::TimerId ScheduleTimer(Micros delay, std::function<void()> fn) override {
    return Schedule(delay, std::move(fn));
  }
  bool CancelTimer(net::TimerId id) override { return Cancel(id); }
  Micros NowMicros() const override { return Now(); }

  /// Clock view usable by components that only need time.
  const Clock* clock() const override { return &clock_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  EventId Schedule(Micros delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (clamped to now).
  EventId ScheduleAt(Micros when, std::function<void()> fn);

  /// Cancels a pending event; false when already fired or unknown.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty. Returns events fired.
  std::size_t RunUntilIdle();

  /// Runs events with fire time <= `deadline`; afterwards the clock rests
  /// at `deadline` (or later if an event pushed it). Returns events fired.
  std::size_t RunUntil(Micros deadline);

  /// Runs for `duration` from the current time.
  std::size_t RunFor(Micros duration) { return RunUntil(Now() + duration); }

  std::size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Micros when;
    EventId id;
    // Ordered min-first by (when, id): id breaks ties deterministically in
    // schedule order.
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void FireNext();

  ManualClock clock_;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_EVENT_LOOP_H_
