#include "sim/failure_injector.h"

#include <algorithm>

namespace hotman::sim {

using docstore::DocStoreServer;
using docstore::FaultMode;

FailureInjector::FailureInjector(EventLoop* loop, SimNetwork* network,
                                 FailureConfig config, std::uint64_t seed)
    : loop_(loop), network_(network), config_(config), rng_(seed) {}

Micros FailureInjector::ShortDuration() {
  const Micros span = config_.short_failure_max - config_.short_failure_min;
  if (span <= 0) return config_.short_failure_min;
  return config_.short_failure_min +
         static_cast<Micros>(rng_.Uniform(static_cast<std::uint64_t>(span)));
}

Micros FailureInjector::BreakdownDuration() {
  const Micros span = config_.breakdown_max - config_.breakdown_min;
  if (span <= 0) return config_.breakdown_min;
  return config_.breakdown_min +
         static_cast<Micros>(rng_.Uniform(static_cast<std::uint64_t>(span)));
}

void FailureInjector::RegisterServer(DocStoreServer* server) {
  if (std::find(servers_.begin(), servers_.end(), server) == servers_.end()) {
    servers_.push_back(server);
  }
}

void FailureInjector::UnregisterServer(DocStoreServer* server) {
  servers_.erase(std::remove(servers_.begin(), servers_.end(), server),
                 servers_.end());
}

bool FailureInjector::InjectRolled(DocStoreServer* server, bool net, bool disk,
                                   bool block, bool down, Micros short_duration) {
  if (server->fault() != FaultMode::kNone) return false;  // already failed

  // Long failure dominates: it subsumes any simultaneous short failure.
  if (down) {
    ++stats_.breakdowns;
    server->SetFault(FaultMode::kDown);
    if (network_ != nullptr) network_->Disconnect(server->address());
    if (config_.breakdowns_recover) ScheduleBreakdownRecovery(server);
    return true;
  }
  if (net) {
    ++stats_.network_exceptions;
    server->SetFault(FaultMode::kNetworkException);
    if (network_ != nullptr) network_->Disconnect(server->address());
    ScheduleRecovery(server, short_duration);
    return true;
  }
  if (disk) {
    ++stats_.disk_errors;
    server->SetFault(FaultMode::kDiskError);
    ScheduleRecovery(server, short_duration);
    return true;
  }
  if (block) {
    ++stats_.blocked_processes;
    server->SetFault(FaultMode::kBlocked);
    ScheduleRecovery(server, short_duration);
    return true;
  }
  return false;
}

bool FailureInjector::MaybeInject(DocStoreServer* server) {
  // Draw all four dice unconditionally so the random stream is identical
  // across fault/no-fault comparisons of the same seed.
  const bool net = rng_.Chance(config_.p_network_exception);
  const bool disk = rng_.Chance(config_.p_disk_io_error);
  const bool block = rng_.Chance(config_.p_blocking_process);
  const bool down = rng_.Chance(config_.p_node_breakdown);
  const Micros duration = ShortDuration();
  return InjectRolled(server, net, disk, block, down, duration);
}

bool FailureInjector::MaybeInjectAnywhere() {
  const bool net = rng_.Chance(config_.p_network_exception);
  const bool disk = rng_.Chance(config_.p_disk_io_error);
  const bool block = rng_.Chance(config_.p_blocking_process);
  const bool down = rng_.Chance(config_.p_node_breakdown);
  const Micros duration = ShortDuration();
  if (servers_.empty() || !(net || disk || block || down)) return false;
  DocStoreServer* victim = servers_[rng_.Uniform(servers_.size())];
  return InjectRolled(victim, net, disk, block, down, duration);
}

void FailureInjector::Inject(DocStoreServer* server, FaultMode mode, Micros duration) {
  server->SetFault(mode);
  if (network_ != nullptr &&
      (mode == FaultMode::kNetworkException || mode == FaultMode::kDown)) {
    network_->Disconnect(server->address());
  }
  if (mode != FaultMode::kDown && duration > 0) {
    ScheduleRecovery(server, duration);
  }
}

void FailureInjector::Revive(DocStoreServer* server) {
  server->SetFault(FaultMode::kNone);
  if (network_ != nullptr) network_->Reconnect(server->address());
}

void FailureInjector::ScheduleRecovery(DocStoreServer* server, Micros duration) {
  loop_->Schedule(duration, [this, server]() {
    // Only short failures self-recover; a breakdown that replaced the short
    // fault in the meantime must stay.
    if (server->fault() != FaultMode::kDown) {
      server->SetFault(FaultMode::kNone);
      if (network_ != nullptr) network_->Reconnect(server->address());
    }
  });
}

void FailureInjector::ScheduleBreakdownRecovery(DocStoreServer* server) {
  loop_->Schedule(BreakdownDuration(), [this, server]() {
    if (server->fault() != FaultMode::kDown) return;  // manually handled
    Revive(server);
    if (rejoin_) rejoin_(server);
  });
}

}  // namespace hotman::sim
