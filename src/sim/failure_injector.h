#ifndef HOTMAN_SIM_FAILURE_INJECTOR_H_
#define HOTMAN_SIM_FAILURE_INJECTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "docstore/server.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace hotman::sim {

/// Table 2 of the paper: per-operation fault probabilities.
struct FailureConfig {
  double p_network_exception = 0.1;   ///< short failure, type 1
  double p_disk_io_error = 0.002;     ///< short failure, type 2
  double p_blocking_process = 0.002;  ///< short failure, type 3
  double p_node_breakdown = 0.001;    ///< long failure, type 4

  /// Short failures self-recover after a uniform duration in this window.
  Micros short_failure_min = 50 * kMicrosPerMilli;
  Micros short_failure_max = 500 * kMicrosPerMilli;

  /// Long failures (node breakdown): the node stays silent long enough for
  /// seeds to classify the failure as long and run repair, then the node is
  /// "replaced" and rejoins (disable via breakdowns_recover=false for
  /// permanent-loss experiments).
  bool breakdowns_recover = true;
  Micros breakdown_min = 30 * kMicrosPerSecond;
  Micros breakdown_max = 90 * kMicrosPerSecond;

  /// All-zero configuration (the "no-fault" arm of Figs. 16-17).
  static FailureConfig None() {
    FailureConfig c;
    c.p_network_exception = 0.0;
    c.p_disk_io_error = 0.0;
    c.p_blocking_process = 0.0;
    c.p_node_breakdown = 0.0;
    return c;
  }
};

/// Counters of injected faults (reported by the fault benches).
struct FailureStats {
  std::size_t network_exceptions = 0;
  std::size_t disk_errors = 0;
  std::size_t blocked_processes = 0;
  std::size_t breakdowns = 0;

  std::size_t total() const {
    return network_exceptions + disk_errors + blocked_processes + breakdowns;
  }
};

/// Drives servers (and their network endpoints) into the paper's failure
/// modes. Call MaybeInject(server) once per storage operation targeting
/// that server; the dice decide whether the operation sees a fault. Short
/// failures are automatically healed after a random interval via the event
/// loop ("the failure could recover itself"); node breakdowns persist until
/// the cluster layer performs long-failure repair (or Revive is called).
class FailureInjector {
 public:
  FailureInjector(EventLoop* loop, SimNetwork* network, FailureConfig config,
                  std::uint64_t seed);

  /// Rolls the per-operation dice for `server`. Returns true when a new
  /// fault was injected (an existing fault is left untouched).
  bool MaybeInject(docstore::DocStoreServer* server);

  /// Adds `server` to the pool MaybeInjectAnywhere() draws victims from.
  void RegisterServer(docstore::DocStoreServer* server);
  void UnregisterServer(docstore::DocStoreServer* server);

  /// Per-client-operation injection (Table 2's probabilities are per
  /// operation on the whole test system): rolls the dice once and, on a
  /// hit, faults a uniformly chosen registered server.
  bool MaybeInjectAnywhere();

  /// Fired when a broken-down server has been replaced and should rejoin
  /// the cluster (wired by cluster::Cluster).
  using RejoinHandler = std::function<void(docstore::DocStoreServer*)>;
  void SetRejoinHandler(RejoinHandler handler) { rejoin_ = std::move(handler); }

  /// Forces a specific fault (used by targeted tests/examples).
  void Inject(docstore::DocStoreServer* server, docstore::FaultMode mode,
              Micros duration);

  /// Clears any fault on `server` immediately.
  void Revive(docstore::DocStoreServer* server);

  const FailureStats& stats() const { return stats_; }
  const FailureConfig& config() const { return config_; }

 private:
  void ScheduleRecovery(docstore::DocStoreServer* server, Micros duration);
  void ScheduleBreakdownRecovery(docstore::DocStoreServer* server);
  Micros ShortDuration();
  Micros BreakdownDuration();
  bool InjectRolled(docstore::DocStoreServer* server, bool net, bool disk,
                    bool block, bool down, Micros short_duration);

  EventLoop* loop_;
  SimNetwork* network_;
  FailureConfig config_;
  Rng rng_;
  FailureStats stats_;
  std::vector<docstore::DocStoreServer*> servers_;
  RejoinHandler rejoin_;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_FAILURE_INJECTOR_H_
