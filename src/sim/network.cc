#include "sim/network.h"

#include <algorithm>

namespace hotman::sim {

namespace {

std::pair<std::string, std::string> NormalizedLink(const std::string& a,
                                                   const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

SimNetwork::SimNetwork(EventLoop* loop, NetworkConfig config, std::uint64_t seed)
    : loop_(loop), config_(config), rng_(seed) {}

void SimNetwork::RegisterEndpoint(const std::string& name, Handler handler) {
  endpoints_[name] = std::move(handler);
}

void SimNetwork::UnregisterEndpoint(const std::string& name) {
  endpoints_.erase(name);
}

Micros SimNetwork::DeliveryDelay(std::size_t payload_bytes) {
  const Micros transmission = static_cast<Micros>(
      static_cast<double>(payload_bytes) / config_.bandwidth_bytes_per_sec *
      kMicrosPerSecond);
  Micros jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<Micros>(rng_.Uniform(static_cast<std::uint64_t>(config_.jitter)));
  }
  return config_.base_latency + transmission + jitter;
}

bool SimNetwork::Send(Message msg, std::size_t payload_bytes) {
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  const bool sender_cut = disconnected_.count(msg.from) > 0;
  const bool receiver_cut =
      disconnected_.count(msg.to) > 0 || endpoints_.count(msg.to) == 0;
  const bool link_cut = cut_links_.count(NormalizedLink(msg.from, msg.to)) > 0;
  const bool dropped = rng_.Chance(config_.drop_probability);
  // The delay must be drawn even for dropped messages so that the random
  // stream (and therefore the rest of the run) is independent of fault
  // placement.
  const Micros delay = DeliveryDelay(payload_bytes);
  if (sender_cut || receiver_cut || link_cut || dropped) {
    ++messages_dropped_;
    return false;
  }
  msg.sent_at = loop_->Now();
  delivery_hist_.Record(delay);
  const std::string to = msg.to;
  loop_->Schedule(delay, [this, msg = std::move(msg)]() {
    // Re-check on delivery: the endpoint may have died in flight.
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end() || disconnected_.count(msg.to) > 0) {
      ++messages_dropped_;
      return;
    }
    it->second(msg);
  });
  return true;
}

void SimNetwork::PartitionLink(const std::string& a, const std::string& b) {
  cut_links_.insert(NormalizedLink(a, b));
}

void SimNetwork::HealLink(const std::string& a, const std::string& b) {
  cut_links_.erase(NormalizedLink(a, b));
}

void SimNetwork::Disconnect(const std::string& name) { disconnected_.insert(name); }

void SimNetwork::Reconnect(const std::string& name) { disconnected_.erase(name); }

bool SimNetwork::IsDisconnected(const std::string& name) const {
  return disconnected_.count(name) > 0;
}

bool SimNetwork::HasEndpoint(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

}  // namespace hotman::sim
