#include "sim/network.h"

#include <algorithm>

namespace hotman::sim {

namespace {

std::pair<std::string, std::string> NormalizedLink(const std::string& a,
                                                   const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

SimNetwork::SimNetwork(EventLoop* loop, NetworkConfig config, std::uint64_t seed)
    : loop_(loop), config_(config), rng_(seed), chaos_rng_(seed ^ 0xc4a05a11dead1ull) {}

void SimNetwork::SetLinkChaos(const std::string& from, const std::string& to,
                              LinkChaos chaos) {
  link_chaos_[{from, to}] = chaos;
}

void SimNetwork::ClearLinkChaos(const std::string& from, const std::string& to) {
  link_chaos_.erase({from, to});
}

void SimNetwork::SetEndpointChaos(const std::string& name, LinkChaos chaos) {
  endpoint_chaos_[name] = chaos;
}

void SimNetwork::ClearEndpointChaos(const std::string& name) {
  endpoint_chaos_.erase(name);
}

void SimNetwork::ClearAllChaos() {
  link_chaos_.clear();
  endpoint_chaos_.clear();
}

bool SimNetwork::ApplyChaos(const Message& msg, Micros* delay, bool* duplicate) {
  if (link_chaos_.empty() && endpoint_chaos_.empty()) return true;
  const LinkChaos* rules[3] = {nullptr, nullptr, nullptr};
  auto link_it = link_chaos_.find({msg.from, msg.to});
  if (link_it != link_chaos_.end()) rules[0] = &link_it->second;
  auto from_it = endpoint_chaos_.find(msg.from);
  if (from_it != endpoint_chaos_.end()) rules[1] = &from_it->second;
  if (msg.to != msg.from) {
    auto to_it = endpoint_chaos_.find(msg.to);
    if (to_it != endpoint_chaos_.end()) rules[2] = &to_it->second;
  }
  for (const LinkChaos* rule : rules) {
    if (rule == nullptr || !rule->Active()) continue;
    if (rule->drop_probability > 0.0 &&
        chaos_rng_.Chance(rule->drop_probability)) {
      return false;
    }
    if (rule->extra_delay_max > 0) {
      const Micros lo = rule->extra_delay_min;
      const Micros hi = std::max(rule->extra_delay_max, lo);
      *delay += static_cast<Micros>(chaos_rng_.UniformRange(lo, hi));
    }
    if (rule->duplicate_probability > 0.0 &&
        chaos_rng_.Chance(rule->duplicate_probability)) {
      *duplicate = true;
    }
  }
  return true;
}

void SimNetwork::RegisterEndpoint(const std::string& name, Handler handler) {
  endpoints_[name] = std::move(handler);
}

void SimNetwork::UnregisterEndpoint(const std::string& name) {
  endpoints_.erase(name);
}

Micros SimNetwork::DeliveryDelay(std::size_t payload_bytes) {
  const Micros transmission = static_cast<Micros>(
      static_cast<double>(payload_bytes) / config_.bandwidth_bytes_per_sec *
      kMicrosPerSecond);
  Micros jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<Micros>(rng_.Uniform(static_cast<std::uint64_t>(config_.jitter)));
  }
  return config_.base_latency + transmission + jitter;
}

bool SimNetwork::Send(Message msg, std::size_t payload_bytes) {
  ++frames_sent_;
  bytes_sent_ += payload_bytes;
  const bool no_endpoint = endpoints_.count(msg.to) == 0;
  const bool endpoint_cut =
      disconnected_.count(msg.from) > 0 || disconnected_.count(msg.to) > 0;
  const bool link_cut = cut_links_.count(NormalizedLink(msg.from, msg.to)) > 0;
  const bool dropped = rng_.Chance(config_.drop_probability);
  // The delay must be drawn even for dropped messages so that the random
  // stream (and therefore the rest of the run) is independent of fault
  // placement.
  const Micros delay = DeliveryDelay(payload_bytes);
  if (no_endpoint || endpoint_cut || link_cut || dropped) {
    // Every fault is attributed to exactly one cause (most specific first)
    // so experiments can assert what was lost and why.
    ++frames_dropped_;
    if (no_endpoint) {
      ++dropped_no_endpoint_;
    } else if (endpoint_cut) {
      ++dropped_disconnected_;
    } else if (link_cut) {
      ++dropped_partition_;
    } else {
      ++dropped_random_;
    }
    return false;
  }
  Micros chaos_delay = delay;
  bool duplicate = false;
  if (!ApplyChaos(msg, &chaos_delay, &duplicate)) {
    ++frames_dropped_;
    ++dropped_chaos_;
    return false;
  }
  msg.sent_at = loop_->Now();
  delivery_hist_.Record(chaos_delay);
  if (duplicate) {
    // The copy rolls its own extra delay so the pair lands out of order
    // more often than not — duplication doubles as a reordering stressor.
    Micros dup_delay = delay;
    bool dup_again = false;
    if (ApplyChaos(msg, &dup_delay, &dup_again)) {
      ++chaos_duplicates_;
      ScheduleDelivery(msg, payload_bytes, dup_delay);
    }
  }
  ScheduleDelivery(std::move(msg), payload_bytes, chaos_delay);
  return true;
}

void SimNetwork::ScheduleDelivery(Message msg, std::size_t payload_bytes,
                                  Micros delay) {
  loop_->Schedule(delay, [this, payload_bytes, msg = std::move(msg)]() {
    // Re-check on delivery: the endpoint may have died in flight.
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end() || disconnected_.count(msg.to) > 0) {
      ++frames_dropped_;
      ++dropped_in_flight_;
      return;
    }
    ++frames_delivered_;
    bytes_delivered_ += payload_bytes;
    it->second(msg);
  });
}

void SimNetwork::PartitionLink(const std::string& a, const std::string& b) {
  cut_links_.insert(NormalizedLink(a, b));
}

void SimNetwork::HealLink(const std::string& a, const std::string& b) {
  cut_links_.erase(NormalizedLink(a, b));
}

void SimNetwork::Disconnect(const std::string& name) { disconnected_.insert(name); }

void SimNetwork::Reconnect(const std::string& name) { disconnected_.erase(name); }

bool SimNetwork::IsDisconnected(const std::string& name) const {
  return disconnected_.count(name) > 0;
}

bool SimNetwork::HasEndpoint(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

void SimNetwork::ExportStats(metrics::Registry* registry) const {
  registry->counter("net.frames_sent")->Increment(frames_sent_);
  registry->counter("net.frames_delivered")->Increment(frames_delivered_);
  registry->counter("net.frames_dropped")->Increment(frames_dropped_);
  registry->counter("net.bytes_sent")->Increment(bytes_sent_);
  registry->counter("net.bytes_delivered")->Increment(bytes_delivered_);
  registry->counter("net.dropped_partition")->Increment(dropped_partition_);
  registry->counter("net.dropped_disconnected")->Increment(dropped_disconnected_);
  registry->counter("net.dropped_no_endpoint")->Increment(dropped_no_endpoint_);
  registry->counter("net.dropped_random")->Increment(dropped_random_);
  registry->counter("net.dropped_in_flight")->Increment(dropped_in_flight_);
  registry->counter("net.dropped_chaos")->Increment(dropped_chaos_);
  registry->counter("net.chaos_duplicates")->Increment(chaos_duplicates_);
  registry->histogram("net.delivery_delay")->MergeFrom(delivery_hist_);
}

}  // namespace hotman::sim
