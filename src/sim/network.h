#ifndef HOTMAN_SIM_NETWORK_H_
#define HOTMAN_SIM_NETWORK_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "bson/document.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "sim/event_loop.h"

namespace hotman::sim {

/// One message in flight on the simulated LAN. Bodies are BSON documents —
/// the same wire format the storage layer uses — so everything crossing the
/// "network" is genuinely serializable.
struct Message {
  std::string from;
  std::string to;
  std::string type;     ///< dispatch tag, e.g. "put", "gossip_syn"
  bson::Document body;
  Micros sent_at = 0;
};

/// Latency/bandwidth/fault model of one LAN (the paper's gigabit switch).
struct NetworkConfig {
  Micros base_latency = 200;          ///< per-hop propagation + switching
  Micros jitter = 100;                ///< uniform extra [0, jitter)
  double bandwidth_bytes_per_sec = 125.0e6;  ///< 1 Gbit/s
  double drop_probability = 0.0;      ///< uniform message loss
};

/// Deterministic message-passing network over the event loop, with
/// partitions and per-endpoint disconnection for failure experiments.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(EventLoop* loop, NetworkConfig config, std::uint64_t seed);

  /// Registers `name` as a reachable endpoint. Re-registering replaces the
  /// handler (a restarted node).
  void RegisterEndpoint(const std::string& name, Handler handler);

  /// Removes the endpoint entirely (node breakdown).
  void UnregisterEndpoint(const std::string& name);

  /// Sends `msg` (msg.from/to must be set); `payload_bytes` drives the
  /// transmission-time component. Delivery is asynchronous; the message is
  /// silently dropped when the destination is missing, a partition
  /// separates the endpoints, or random loss strikes — exactly like UDP on
  /// a flaky LAN. Returns whether the message was actually enqueued (used
  /// by tests; real senders cannot observe this).
  bool Send(Message msg, std::size_t payload_bytes);

  /// Cuts both directions between `a` and `b`.
  void PartitionLink(const std::string& a, const std::string& b);

  /// Heals the link.
  void HealLink(const std::string& a, const std::string& b);

  /// Disconnects `name` from everyone (network exception at that node).
  void Disconnect(const std::string& name);
  void Reconnect(const std::string& name);
  bool IsDisconnected(const std::string& name) const;

  bool HasEndpoint(const std::string& name) const;

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_dropped() const { return messages_dropped_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

  /// End-to-end delivery delay (propagation + transmission + jitter) of
  /// every message actually enqueued for delivery.
  const metrics::Histogram& delivery_histogram() const { return delivery_hist_; }

  EventLoop* loop() { return loop_; }

 private:
  Micros DeliveryDelay(std::size_t payload_bytes);

  EventLoop* loop_;
  NetworkConfig config_;
  Rng rng_;
  std::map<std::string, Handler> endpoints_;
  std::set<std::pair<std::string, std::string>> cut_links_;  // normalized pairs
  std::set<std::string> disconnected_;
  std::size_t messages_sent_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t bytes_sent_ = 0;
  metrics::Histogram delivery_hist_;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_NETWORK_H_
