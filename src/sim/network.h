#ifndef HOTMAN_SIM_NETWORK_H_
#define HOTMAN_SIM_NETWORK_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "net/message.h"
#include "sim/event_loop.h"
#include "sim/network_config.h"

namespace hotman::sim {

/// The simulated LAN moves the same message type the real transport frames
/// onto sockets; everything crossing the "network" is genuinely
/// serializable. (Alias retained for the many existing sim call sites.)
using Message = ::hotman::net::Message;

/// Deterministic message-passing network over the event loop, with
/// partitions and per-endpoint disconnection for failure experiments.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(EventLoop* loop, NetworkConfig config, std::uint64_t seed);

  // --- chaos surface (drop/duplicate/reorder; see src/chaos/) ---------------

  /// Installs a probabilistic fault rule on the *directed* link from->to
  /// (asymmetric by construction: the reverse direction is untouched).
  /// Replaces any previous rule on that direction.
  void SetLinkChaos(const std::string& from, const std::string& to,
                    LinkChaos chaos);
  void ClearLinkChaos(const std::string& from, const std::string& to);

  /// Installs a rule applying to every message `name` sends *or* receives
  /// (a slow or flaky node rather than a flaky link).
  void SetEndpointChaos(const std::string& name, LinkChaos chaos);
  void ClearEndpointChaos(const std::string& name);

  /// Removes every chaos rule (the nemesis "heal everything" step).
  void ClearAllChaos();

  /// Registers `name` as a reachable endpoint. Re-registering replaces the
  /// handler (a restarted node).
  void RegisterEndpoint(const std::string& name, Handler handler);

  /// Removes the endpoint entirely (node breakdown).
  void UnregisterEndpoint(const std::string& name);

  /// Sends `msg` (msg.from/to must be set); `payload_bytes` drives the
  /// transmission-time component. Delivery is asynchronous; the message is
  /// silently dropped when the destination is missing, a partition
  /// separates the endpoints, or random loss strikes — exactly like UDP on
  /// a flaky LAN. Returns whether the message was actually enqueued (used
  /// by tests; real senders cannot observe this).
  bool Send(Message msg, std::size_t payload_bytes);

  /// Cuts both directions between `a` and `b`.
  void PartitionLink(const std::string& a, const std::string& b);

  /// Heals the link.
  void HealLink(const std::string& a, const std::string& b);

  /// Disconnects `name` from everyone (network exception at that node).
  void Disconnect(const std::string& name);
  void Reconnect(const std::string& name);
  bool IsDisconnected(const std::string& name) const;

  bool HasEndpoint(const std::string& name) const;

  std::size_t messages_sent() const { return frames_sent_; }
  std::size_t messages_dropped() const { return frames_dropped_; }
  std::size_t messages_delivered() const { return frames_delivered_; }
  std::size_t bytes_sent() const { return bytes_sent_; }
  std::size_t bytes_delivered() const { return bytes_delivered_; }

  /// Drop causes (sum equals messages_dropped()): faults are counted, never
  /// silent, so partition experiments can assert exactly what was lost.
  std::size_t dropped_partition() const { return dropped_partition_; }
  std::size_t dropped_disconnected() const { return dropped_disconnected_; }
  std::size_t dropped_no_endpoint() const { return dropped_no_endpoint_; }
  std::size_t dropped_random() const { return dropped_random_; }
  std::size_t dropped_in_flight() const { return dropped_in_flight_; }
  std::size_t dropped_chaos() const { return dropped_chaos_; }

  /// Extra deliveries manufactured by duplication rules (each also counts
  /// in messages_delivered(), which may therefore exceed messages_sent()).
  std::size_t chaos_duplicates() const { return chaos_duplicates_; }

  /// Writes counters into `registry` under the shared "net.*" vocabulary
  /// (same names TcpTransport emits; see DESIGN.md "net"), so sim benches
  /// and real `hotmand` runs feed one dashboard.
  void ExportStats(metrics::Registry* registry) const;

  /// End-to-end delivery delay (propagation + transmission + jitter) of
  /// every message actually enqueued for delivery.
  const metrics::Histogram& delivery_histogram() const { return delivery_hist_; }

  EventLoop* loop() { return loop_; }

 private:
  Micros DeliveryDelay(std::size_t payload_bytes);
  /// Applies every chaos rule matching msg.from -> msg.to. Returns false
  /// when a drop rule fired; otherwise adds extra delay to `*delay` and
  /// sets `*duplicate` when a duplication rule fired.
  bool ApplyChaos(const Message& msg, Micros* delay, bool* duplicate);
  void ScheduleDelivery(Message msg, std::size_t payload_bytes, Micros delay);

  EventLoop* loop_;
  NetworkConfig config_;
  Rng rng_;
  /// Chaos rolls draw from a separate stream so installing/removing rules
  /// never perturbs the base network's jitter/drop sequence: a run with the
  /// nemesis disabled is bit-identical to one that never linked it.
  Rng chaos_rng_;
  std::map<std::string, Handler> endpoints_;
  std::set<std::pair<std::string, std::string>> cut_links_;  // normalized pairs
  std::set<std::string> disconnected_;
  std::map<std::pair<std::string, std::string>, LinkChaos> link_chaos_;
  std::map<std::string, LinkChaos> endpoint_chaos_;
  std::size_t frames_sent_ = 0;
  std::size_t frames_dropped_ = 0;
  std::size_t frames_delivered_ = 0;
  std::size_t bytes_sent_ = 0;
  std::size_t bytes_delivered_ = 0;
  std::size_t dropped_partition_ = 0;
  std::size_t dropped_disconnected_ = 0;
  std::size_t dropped_no_endpoint_ = 0;
  std::size_t dropped_random_ = 0;
  std::size_t dropped_in_flight_ = 0;
  std::size_t dropped_chaos_ = 0;
  std::size_t chaos_duplicates_ = 0;
  metrics::Histogram delivery_hist_;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_NETWORK_H_
