#ifndef HOTMAN_SIM_NETWORK_CONFIG_H_
#define HOTMAN_SIM_NETWORK_CONFIG_H_

#include "common/clock.h"

namespace hotman::sim {

/// Latency/bandwidth/fault model of one LAN (the paper's gigabit switch).
///
/// Split from sim/network.h so configuration consumers (cluster/config.h)
/// can describe a simulated network without depending on the simulator
/// machinery itself — the Transport boundary lint forbids cluster/ and
/// gossip/ from including sim/network.h.
struct NetworkConfig {
  Micros base_latency = 200;          ///< per-hop propagation + switching
  Micros jitter = 100;                ///< uniform extra [0, jitter)
  double bandwidth_bytes_per_sec = 125.0e6;  ///< 1 Gbit/s
  double drop_probability = 0.0;      ///< uniform message loss
};

/// One chaos rule on a directed link or an endpoint (the nemesis surface
/// the chaos harness drives; see src/chaos/). Unlike PartitionLink — a
/// hard bidirectional cut — these are probabilistic, directional, and
/// compose: a message crossing several matching rules rolls each one.
struct LinkChaos {
  double drop_probability = 0.0;       ///< lose the message (asymmetric drop)
  double duplicate_probability = 0.0;  ///< deliver a second copy
  /// Extra delivery delay, uniform in [extra_delay_min, extra_delay_max].
  /// Because every message is scheduled independently, a randomized extra
  /// delay *is* reordering: a later message can overtake an earlier one.
  Micros extra_delay_min = 0;
  Micros extra_delay_max = 0;

  bool Active() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           extra_delay_max > 0;
  }
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_NETWORK_CONFIG_H_
