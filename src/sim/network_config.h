#ifndef HOTMAN_SIM_NETWORK_CONFIG_H_
#define HOTMAN_SIM_NETWORK_CONFIG_H_

#include "common/clock.h"

namespace hotman::sim {

/// Latency/bandwidth/fault model of one LAN (the paper's gigabit switch).
///
/// Split from sim/network.h so configuration consumers (cluster/config.h)
/// can describe a simulated network without depending on the simulator
/// machinery itself — the Transport boundary lint forbids cluster/ and
/// gossip/ from including sim/network.h.
struct NetworkConfig {
  Micros base_latency = 200;          ///< per-hop propagation + switching
  Micros jitter = 100;                ///< uniform extra [0, jitter)
  double bandwidth_bytes_per_sec = 125.0e6;  ///< 1 Gbit/s
  double drop_probability = 0.0;      ///< uniform message loss
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_NETWORK_CONFIG_H_
