#include "sim/service_station.h"

#include <algorithm>

namespace hotman::sim {

ServiceStation::ServiceStation(net::Executor* loop, ServiceConfig config)
    : loop_(loop), config_(config), started_at_(loop->NowMicros()) {
  for (int i = 0; i < config_.workers; ++i) worker_free_.push(started_at_);
}

Micros ServiceStation::ServiceTime(std::size_t bytes) const {
  return config_.base_service_micros +
         static_cast<Micros>(static_cast<double>(bytes) /
                             config_.process_bytes_per_sec * kMicrosPerSecond);
}

bool ServiceStation::Submit(std::size_t payload_bytes, Done done) {
  if (QueueLength() >= config_.max_queue) {
    ++shed_;
    return false;
  }
  const Micros now = loop_->NowMicros();
  Micros free_at = worker_free_.top();
  worker_free_.pop();
  const Micros start = std::max(now, free_at);
  const Micros service = ServiceTime(payload_bytes);
  const Micros completion = start + service;
  worker_free_.push(completion);
  busy_accum_ += service;
  ++in_flight_;
  queue_wait_hist_.Record(start - now);
  service_hist_.Record(service);
  loop_->ScheduleTimer(completion - now,
                       [this, queueing = start - now, service, done = std::move(done)]() {
                         --in_flight_;
                         ++completed_;
                         if (done) done(queueing, service);
                       });
  return true;
}

double ServiceStation::Utilization() const {
  const Micros elapsed = loop_->NowMicros() - started_at_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_accum_) /
         (static_cast<double>(elapsed) * config_.workers);
}

}  // namespace hotman::sim
