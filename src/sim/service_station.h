#ifndef HOTMAN_SIM_SERVICE_STATION_H_
#define HOTMAN_SIM_SERVICE_STATION_H_

#include <functional>
#include <queue>
#include <vector>

#include "common/metrics.h"
#include "net/executor.h"

namespace hotman::sim {

/// Service-time model of one server process.
struct ServiceConfig {
  int workers = 8;                         ///< concurrent request handlers
  Micros base_service_micros = 300;        ///< fixed per-request CPU cost
  double process_bytes_per_sec = 120.0e6;  ///< payload-proportional cost
  std::size_t max_queue = 10000;           ///< beyond this, requests are shed
};

/// A c-server queueing station: requests occupy one of `workers` slots for
/// base + payload/rate microseconds; excess requests queue FIFO. This is
/// what produces the paper's scalability shape (Figs. 13-14): latency grows
/// once offered load exceeds capacity and throughput plateaus at the
/// service rate.
///
/// The station is analytic: worker occupancy is tracked as a min-heap of
/// free times, so each Submit costs O(log workers) regardless of how much
/// virtual time the request spends queued.
class ServiceStation {
 public:
  using Done = std::function<void(Micros queueing_delay, Micros service_time)>;

  /// `loop` provides the timers and clock; the station runs equally over
  /// the sim EventLoop (virtual time) and a real transport's loop.
  ServiceStation(net::Executor* loop, ServiceConfig config);

  /// Submits a request of `payload_bytes`; `done` fires at completion with
  /// the decomposed delays. Returns false when the queue overflowed (the
  /// request is shed and `done` never fires).
  bool Submit(std::size_t payload_bytes, Done done);

  /// Requests admitted but not yet completed.
  std::size_t InFlight() const { return in_flight_; }

  /// Requests waiting for a worker (in-flight beyond worker count).
  std::size_t QueueLength() const {
    return in_flight_ > static_cast<std::size_t>(config_.workers)
               ? in_flight_ - config_.workers
               : 0;
  }

  std::size_t completed() const { return completed_; }
  std::size_t shed() const { return shed_; }

  /// Mean worker utilization since construction (0..workers).
  double Utilization() const;

  /// Admission-time decomposition of every admitted request: time spent
  /// waiting for a free worker vs. time being serviced.
  const metrics::Histogram& queue_wait_histogram() const { return queue_wait_hist_; }
  const metrics::Histogram& service_histogram() const { return service_hist_; }

 private:
  Micros ServiceTime(std::size_t bytes) const;

  net::Executor* loop_;
  ServiceConfig config_;
  // Earliest-free virtual time per worker, as a min-heap.
  std::priority_queue<Micros, std::vector<Micros>, std::greater<Micros>> worker_free_;
  std::size_t in_flight_ = 0;
  std::size_t completed_ = 0;
  std::size_t shed_ = 0;
  Micros busy_accum_ = 0;
  Micros started_at_ = 0;
  metrics::Histogram queue_wait_hist_;
  metrics::Histogram service_hist_;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_SERVICE_STATION_H_
