#include "sim/shard_scheduler.h"

#include <utility>

#include "net/shard_context.h"

namespace hotman::sim {

ShardScheduler::ShardScheduler(net::Executor* base, int shards)
    : base_(base), shards_(shards < 1 ? 1 : shards) {}

void ShardScheduler::Post(int shard, std::function<void()> fn) {
  // A single-shard node never hops: every delivery context is the one
  // shard, so the schedule (and therefore every seeded history) is
  // identical to the pre-sharding runtime.
  if (shards_ == 1 || net::ShardContext::Current() == shard) {
    ++inline_runs_;
    net::ShardContext::Scope scope(shard);
    fn();
    return;
  }
  ++cross_posts_;
  base_->ScheduleTimer(0, [shard, fn = std::move(fn)]() {
    net::ShardContext::Scope scope(shard);
    fn();
  });
}

}  // namespace hotman::sim
