#ifndef HOTMAN_SIM_SHARD_SCHEDULER_H_
#define HOTMAN_SIM_SHARD_SCHEDULER_H_

#include <cstdint>
#include <functional>

#include "net/executor.h"

namespace hotman::sim {

/// Deterministic multi-shard scheduling for the simulated runtime.
///
/// In simulation every shard of a node shares the one sim event loop, so a
/// cross-shard mailbox hop is modeled as a zero-delay event on the base
/// executor: the loop fires zero-delay events in (virtual time, schedule
/// order), which makes the interleaving of shard hops a pure function of
/// the seed — chaos sweeps replay bit-identically. A post that targets the
/// shard the caller is already executing (per net::ShardContext) runs
/// inline, exactly like a same-shard call in the threaded runtime; with a
/// single shard every post is same-shard and the schedule is byte-for-byte
/// the unsharded one.
class ShardScheduler {
 public:
  ShardScheduler(net::Executor* base, int shards);

  int shards() const { return shards_; }

  /// Runs `fn` in shard `shard`'s context: inline when the caller is
  /// already on that shard, otherwise as a zero-delay event in global
  /// schedule order.
  void Post(int shard, std::function<void()> fn);

  std::uint64_t cross_posts() const { return cross_posts_; }
  std::uint64_t inline_runs() const { return inline_runs_; }

 private:
  net::Executor* base_;
  int shards_;
  std::uint64_t cross_posts_ = 0;
  std::uint64_t inline_runs_ = 0;
};

}  // namespace hotman::sim

#endif  // HOTMAN_SIM_SHARD_SCHEDULER_H_
