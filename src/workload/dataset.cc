#include "workload/dataset.h"

#include <algorithm>
#include <cmath>

namespace hotman::workload {

Dataset::Dataset(const DatasetSpec& spec) : spec_(spec) {
  Rng rng(spec.seed);
  items_.reserve(spec.count);
  const double log_min = std::log(static_cast<double>(spec.min_bytes));
  const double log_max = std::log(static_cast<double>(std::max(spec.max_bytes,
                                                                spec.min_bytes + 1)));
  for (std::size_t i = 0; i < spec.count; ++i) {
    const double u = rng.NextDouble();
    const auto size =
        static_cast<std::size_t>(std::exp(log_min + u * (log_max - log_min)));
    Item item;
    item.key = spec.key_prefix + std::to_string(i);
    item.size_bytes = std::clamp(size, spec.min_bytes, spec.max_bytes);
    total_bytes_ += item.size_bytes;
    items_.push_back(std::move(item));
  }
  // §6.2: "these files are sorted by their sizes".
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) {
                     return a.size_bytes < b.size_bytes;
                   });
}

Bytes Dataset::Payload(const Item& item) const {
  // Deterministic pseudo-XML content derived from the key; exact size.
  static constexpr char kTemplate[] =
      "<component><name>%</name><scene>virtual-experiment</scene>"
      "<payload>ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789</payload></component>";
  Bytes out;
  out.reserve(item.size_bytes);
  std::size_t cursor = 0;
  while (out.size() < item.size_bytes) {
    const char c = kTemplate[cursor % (sizeof(kTemplate) - 1)];
    out.push_back(c == '%' ? static_cast<std::uint8_t>('a' + cursor % 26)
                           : static_cast<std::uint8_t>(c));
    ++cursor;
  }
  return out;
}

std::size_t Dataset::GaussianPick(Rng* rng, double mu, double sigma,
                                  double mu_units) const {
  if (items_.empty()) return 0;
  const double g = rng->NextGaussian(mu, sigma);
  const double fraction = std::clamp(g / mu_units, 0.0, 1.0);
  auto index = static_cast<std::size_t>(fraction * static_cast<double>(items_.size()));
  return std::min(index, items_.size() - 1);
}

std::size_t Dataset::UniformPick(Rng* rng) const {
  return items_.empty() ? 0 : rng->Uniform(items_.size());
}

}  // namespace hotman::workload
