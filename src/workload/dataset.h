#ifndef HOTMAN_WORKLOAD_DATASET_H_
#define HOTMAN_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"

namespace hotman::workload {

/// One stored object of the evaluation dataset.
struct Item {
  std::string key;
  std::size_t size_bytes = 0;
};

/// Dataset specification. Two presets mirror the paper:
///  - System evaluation (§6.1): XML files of 3-600 KB (700 k items / 36 GB
///    full scale, scaled down by `count`), log-uniform sizes.
///  - Storage-module evaluation (§6.2): files of 18-7633 KB, items fetched
///    "according to the Gaussian distribution of their sizes with
///    parameters mu=15, sigma=5" over the size-sorted dataset.
struct DatasetSpec {
  std::size_t count = 10000;
  std::size_t min_bytes = 3 * 1024;
  std::size_t max_bytes = 600 * 1024;
  std::string key_prefix = "res";
  std::uint64_t seed = 1;

  static DatasetSpec SystemEvaluation(std::size_t count = 10000) {
    DatasetSpec spec;
    spec.count = count;
    spec.min_bytes = 3 * 1024;
    spec.max_bytes = 600 * 1024;
    spec.key_prefix = "xml";
    return spec;
  }

  static DatasetSpec StorageModuleEvaluation(std::size_t count = 10000) {
    DatasetSpec spec;
    spec.count = count;
    spec.min_bytes = 18 * 1024;
    spec.max_bytes = 7633 * 1024;
    spec.key_prefix = "file";
    return spec;
  }
};

/// A deterministic synthetic dataset: item sizes are drawn log-uniformly
/// in [min, max] (file-size distributions are heavy-tailed) and items are
/// kept sorted by size, matching §6.2's "files are sorted by their sizes".
class Dataset {
 public:
  explicit Dataset(const DatasetSpec& spec);

  const std::vector<Item>& items() const { return items_; }
  const Item& item(std::size_t i) const { return items_[i]; }
  std::size_t size() const { return items_.size(); }

  /// Sum of item sizes.
  std::size_t TotalBytes() const { return total_bytes_; }

  /// Deterministic pseudo-XML payload of exactly `item.size_bytes` bytes.
  /// Cheap to regenerate, so benches don't hold 36 GB in memory.
  Bytes Payload(const Item& item) const;

  /// §6.2 selection rule: draws g ~ N(mu, sigma), interprets it as a
  /// position in `mu_units` equal slices of the size-sorted dataset and
  /// returns that item's index (clamped to the valid range). With the
  /// paper's (mu=15, sigma=5) and mu_units=100, picks concentrate in the
  /// lower-middle of the size distribution.
  std::size_t GaussianPick(Rng* rng, double mu = 15.0, double sigma = 5.0,
                           double mu_units = 100.0) const;

  /// Uniform pick.
  std::size_t UniformPick(Rng* rng) const;

 private:
  DatasetSpec spec_;
  std::vector<Item> items_;
  std::size_t total_bytes_ = 0;
};

}  // namespace hotman::workload

#endif  // HOTMAN_WORKLOAD_DATASET_H_
