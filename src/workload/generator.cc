#include "workload/generator.h"

#include <memory>

namespace hotman::workload {

FrontEnd::FrontEnd(sim::EventLoop* loop, sim::ServiceConfig config)
    : station_(loop, config) {}

KvTarget FrontEnd::Wrap(KvTarget inner) {
  KvTarget wrapped;
  sim::ServiceStation* station = &station_;
  // Callbacks are held via shared_ptr because Submit may shed the request,
  // in which case the callback must still be invocable for the Busy reply.
  wrapped.put = [station, put = inner.put](const std::string& key, Bytes value,
                                           std::function<void(const Status&)> cb) {
    auto shared_cb =
        std::make_shared<std::function<void(const Status&)>>(std::move(cb));
    const std::size_t bytes = value.size();
    const bool admitted = station->Submit(
        bytes, [put, key, value = std::move(value), shared_cb](Micros,
                                                               Micros) mutable {
          put(key, std::move(value), [shared_cb](const Status& s) {
            (*shared_cb)(s);
          });
        });
    if (!admitted) (*shared_cb)(Status::Busy("application tier overloaded"));
  };
  wrapped.get = [station, get = inner.get](
                    const std::string& key,
                    std::function<void(const Result<Bytes>&)> cb) {
    auto shared_cb =
        std::make_shared<std::function<void(const Result<Bytes>&)>>(std::move(cb));
    // Ingress: parse + route. Egress: the worker also relays the response
    // body to the client, so payload bytes are charged on the way out.
    const bool admitted =
        station->Submit(256, [station, get, key, shared_cb](Micros, Micros) {
          get(key, [station, shared_cb](const Result<Bytes>& value) {
            if (!value.ok()) {
              (*shared_cb)(value);
              return;
            }
            const bool relayed = station->Submit(
                value->size(),
                [shared_cb, value](Micros, Micros) { (*shared_cb)(value); });
            if (!relayed) {
              (*shared_cb)(Status::Busy("application tier overloaded"));
            }
          });
        });
    if (!admitted) (*shared_cb)(Status::Busy("application tier overloaded"));
  };
  wrapped.del = [station, del = inner.del](const std::string& key,
                                           std::function<void(const Status&)> cb) {
    auto shared_cb =
        std::make_shared<std::function<void(const Status&)>>(std::move(cb));
    const bool admitted =
        station->Submit(0, [del, key, shared_cb](Micros, Micros) {
          del(key, [shared_cb](const Status& s) { (*shared_cb)(s); });
        });
    if (!admitted) (*shared_cb)(Status::Busy("application tier overloaded"));
  };
  return wrapped;
}

KvTarget TargetFor(core::MyStore* store) {
  KvTarget target;
  target.put = [store](const std::string& key, Bytes value,
                       std::function<void(const Status&)> cb) {
    store->PostAsync(key, std::move(value), std::move(cb));
  };
  target.get = [store](const std::string& key,
                       std::function<void(const Result<Bytes>&)> cb) {
    store->GetAsync(key, std::move(cb));
  };
  target.del = [store](const std::string& key, std::function<void(const Status&)> cb) {
    store->DeleteAsync(key, std::move(cb));
  };
  return target;
}

KvTarget TargetFor(baselines::FsStore* store) {
  KvTarget target;
  target.put = [store](const std::string& key, Bytes value,
                       std::function<void(const Status&)> cb) {
    store->PutAsync(key, std::move(value), std::move(cb));
  };
  target.get = [store](const std::string& key,
                       std::function<void(const Result<Bytes>&)> cb) {
    store->GetAsync(key, std::move(cb));
  };
  target.del = [store](const std::string& key, std::function<void(const Status&)> cb) {
    store->DeleteAsync(key, std::move(cb));
  };
  return target;
}

KvTarget TargetFor(baselines::RelStore* store) {
  KvTarget target;
  target.put = [store](const std::string& key, Bytes value,
                       std::function<void(const Status&)> cb) {
    store->PutAsync(key, std::move(value), std::move(cb));
  };
  target.get = [store](const std::string& key,
                       std::function<void(const Result<Bytes>&)> cb) {
    store->GetAsync(key, std::move(cb));
  };
  target.del = [store](const std::string& key, std::function<void(const Status&)> cb) {
    store->DeleteAsync(key, std::move(cb));
  };
  return target;
}

}  // namespace hotman::workload
