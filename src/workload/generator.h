#ifndef HOTMAN_WORKLOAD_GENERATOR_H_
#define HOTMAN_WORKLOAD_GENERATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "baselines/fs_store.h"
#include "baselines/rel_store.h"
#include "common/bytes.h"
#include "common/status.h"
#include "core/mystore.h"
#include "sim/service_station.h"

namespace hotman::workload {

/// Uniform asynchronous key-value surface the load generator drives; every
/// system under test (MyStore, ext3-FS baseline, MySQL-style baseline) is
/// adapted to it so the comparison benches exercise identical call paths.
struct KvTarget {
  std::function<void(const std::string& key, Bytes value,
                     std::function<void(const Status&)> cb)>
      put;
  std::function<void(const std::string& key,
                     std::function<void(const Result<Bytes>&)> cb)>
      get;
  std::function<void(const std::string& key, std::function<void(const Status&)> cb)>
      del;
};

/// The application-node tier (Fig. 1's Nginx + spawn-fcgi logical
/// processes) as a queueing station in front of a target. Its bounded
/// queue is what caps TTFB once offered load exceeds capacity (the
/// Fig. 13 plateau); shed requests fail with Busy.
class FrontEnd {
 public:
  FrontEnd(sim::EventLoop* loop, sim::ServiceConfig config = DefaultConfig());

  /// Wraps `inner` so every operation first passes through this tier.
  KvTarget Wrap(KvTarget inner);

  sim::ServiceStation* station() { return &station_; }

  static sim::ServiceConfig DefaultConfig() {
    // Calibrated so the application tier saturates around 1000 closed-loop
    // clients with 0-500 ms think time (the Fig. 13 knee): capacity ≈
    // workers / service_time ≈ 6 / 1.5 ms ≈ 4000 req/s ≈ 1000 clients x 4
    // req/s each; the bounded queue caps waiting at ~200 ms.
    sim::ServiceConfig config;
    config.workers = 6;                    // logical processes
    config.base_service_micros = 600;      // parse + route + auth (x2: in/out)
    config.process_bytes_per_sec = 150.0e6;
    config.max_queue = 800;                // admission bound
    return config;
  }

 private:
  sim::ServiceStation station_;
};

/// Adapters binding each system to the uniform target surface.
KvTarget TargetFor(core::MyStore* store);
KvTarget TargetFor(baselines::FsStore* store);
KvTarget TargetFor(baselines::RelStore* store);

}  // namespace hotman::workload

#endif  // HOTMAN_WORKLOAD_GENERATOR_H_
