#include "workload/history.h"

#include "hashring/md5.h"

namespace hotman::workload {

std::uint64_t History::Invoke(int client, OpKind kind, const std::string& key,
                              const std::string& value, Micros now) {
  const std::uint64_t id = next_id_++;
  HistoryOp op;
  op.id = id;
  op.client = client;
  op.kind = kind;
  op.key = key;
  op.value = value;
  op.invoked_at = now;
  index_.emplace(id, ops_.size());
  ops_.push_back(std::move(op));
  return id;
}

void History::Complete(std::uint64_t id, OpStatus status,
                       const std::string& value,
                       const std::string& coordinator, Micros now) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  HistoryOp& op = ops_[it->second];
  if (op.completed) return;  // first completion wins
  op.completed = true;
  op.status = status;
  op.completed_at = now;
  op.coordinator = coordinator;
  if (op.kind == OpKind::kGet) op.value = value;
}

std::string History::Canonical() const {
  std::string out;
  out.reserve(ops_.size() * 64);
  for (const HistoryOp& op : ops_) {
    out += std::to_string(op.id);
    out += " c";
    out += std::to_string(op.client);
    out += ' ';
    out += KindName(op.kind);
    out += ' ';
    out += op.key;
    out += " v=";
    out += op.value;
    out += ' ';
    out += op.completed ? StatusName(op.status) : "pending";
    out += " i=";
    out += std::to_string(op.invoked_at);
    out += " d=";
    out += std::to_string(op.completed_at);
    out += " @";
    out += op.coordinator;
    out += '\n';
  }
  return out;
}

std::string History::HexHash() const {
  return hashring::Md5::HexDigest(Canonical());
}

const char* History::KindName(OpKind kind) {
  switch (kind) {
    case OpKind::kPut:
      return "put";
    case OpKind::kGet:
      return "get";
    case OpKind::kDelete:
      return "del";
  }
  return "?";
}

const char* History::StatusName(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kNotFound:
      return "absent";
    case OpStatus::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace hotman::workload
