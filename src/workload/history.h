#ifndef HOTMAN_WORKLOAD_HISTORY_H_
#define HOTMAN_WORKLOAD_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hotman::workload {

/// What a recorded client operation did.
enum class OpKind { kPut, kGet, kDelete };

/// How a recorded client operation ended.
///
/// For reads, kOk carries a value and kNotFound is an authoritative
/// absence. For writes, kOk means the coordinator acknowledged the quorum;
/// kFailed means the client saw an error or timeout — the write is
/// *indeterminate* (it may still have landed on some replicas), and the
/// consistency checker must treat it as "possibly visible, never required".
enum class OpStatus { kOk, kNotFound, kFailed };

/// One client operation, recorded at invocation and completion — the unit
/// of the chaos harness's history log (a Jepsen-style complete history).
struct HistoryOp {
  std::uint64_t id = 0;   ///< unique, in invocation order
  int client = 0;         ///< sequential session the op belongs to
  OpKind kind = OpKind::kPut;
  std::string key;
  /// Put: the (unique) value written. Get: the value returned, empty on
  /// absence. Delete: empty.
  std::string value;
  OpStatus status = OpStatus::kFailed;
  Micros invoked_at = 0;
  Micros completed_at = 0;  ///< 0 while in flight (never completed)
  bool completed = false;
  std::string coordinator;  ///< node that answered, when known
};

/// Append-only history of client operations against the cluster.
///
/// The chaos harness records every operation's invocation and completion
/// here; the offline checker (chaos/checker.h) replays the result against
/// the NWR consistency model. `Canonical()` is a stable text rendering and
/// `HexHash()` its MD5 — two runs with the same seed must produce the same
/// hash (the harness's determinism contract).
class History {
 public:
  /// Records the start of an operation; returns its id. `value` is the
  /// written value for puts (empty otherwise).
  std::uint64_t Invoke(int client, OpKind kind, const std::string& key,
                       const std::string& value, Micros now);

  /// Records completion. For gets, `value` is the returned value (empty on
  /// absence or failure). `coordinator` may be empty when unknown.
  void Complete(std::uint64_t id, OpStatus status, const std::string& value,
                const std::string& coordinator, Micros now);

  const std::vector<HistoryOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// One line per operation in invocation order — the canonical rendering
  /// hashed for determinism checks and written to history files.
  std::string Canonical() const;

  /// MD5 hex digest of Canonical().
  std::string HexHash() const;

  static const char* KindName(OpKind kind);
  static const char* StatusName(OpStatus status);

 private:
  std::vector<HistoryOp> ops_;
  std::map<std::uint64_t, std::size_t> index_;  // id -> position in ops_
  std::uint64_t next_id_ = 1;
};

}  // namespace hotman::workload

#endif  // HOTMAN_WORKLOAD_HISTORY_H_
