#include "workload/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hotman::workload {

std::vector<Micros> LatencyRecorder::Sorted() const {
  std::vector<Micros> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

Micros LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Micros LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyRecorder::MeanMicros() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (Micros s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Micros LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<Micros> sorted = Sorted();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(std::llround(rank))];
}

std::vector<Micros> LatencyRecorder::SortedEvery(std::size_t stride) const {
  std::vector<Micros> sorted = Sorted();
  if (stride <= 1) return sorted;
  std::vector<Micros> thinned;
  for (std::size_t i = 0; i < sorted.size(); i += stride) {
    thinned.push_back(sorted[i]);
  }
  return thinned;
}

std::size_t LatencyRecorder::CountWithin(Micros bound) const {
  std::size_t count = 0;
  for (Micros s : samples_) {
    if (s <= bound) ++count;
  }
  return count;
}

std::string LatencyRecorder::JsonSummary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%zu,\"mean_us\":%.1f,\"min_us\":%lld,"
                "\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld,"
                "\"max_us\":%lld}",
                samples_.size(), MeanMicros(),
                static_cast<long long>(Min()),
                static_cast<long long>(Percentile(50.0)),
                static_cast<long long>(Percentile(95.0)),
                static_cast<long long>(Percentile(99.0)),
                static_cast<long long>(Max()));
  return buf;
}

double ThroughputMeter::Rps() const {
  const double seconds = ElapsedSeconds();
  return seconds <= 0.0 ? 0.0 : static_cast<double>(ops_) / seconds;
}

double ThroughputMeter::ThroughputMBps() const {
  const double seconds = ElapsedSeconds();
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(bytes_) / (1024.0 * 1024.0) / seconds;
}

std::string FormatRow(const std::vector<std::string>& cells, int width) {
  std::string row;
  for (const std::string& cell : cells) {
    std::string padded = cell;
    if (static_cast<int>(padded.size()) < width) {
      padded.append(width - padded.size(), ' ');
    }
    row += padded;
    row += ' ';
  }
  return row;
}

}  // namespace hotman::workload
