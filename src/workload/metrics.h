#ifndef HOTMAN_WORKLOAD_METRICS_H_
#define HOTMAN_WORKLOAD_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hotman::workload {

/// Collects latency samples and derives the statistics the paper's figures
/// report: means, percentiles, and sorted completion-time curves (Fig. 17
/// plots "operations sorted by their consuming time, every 100th").
class LatencyRecorder {
 public:
  void Record(Micros sample) { samples_.push_back(sample); }

  std::size_t count() const { return samples_.size(); }
  Micros Min() const;
  Micros Max() const;
  double MeanMicros() const;
  double MeanMillis() const { return MeanMicros() / 1000.0; }

  /// p in [0, 100].
  Micros Percentile(double p) const;

  /// Sorted samples, thinned to every `stride`-th (Fig. 17's
  /// "representative operations ... by interval of 100 operations").
  std::vector<Micros> SortedEvery(std::size_t stride) const;

  /// Count of samples <= `bound` (the vertical axis of Fig. 17).
  std::size_t CountWithin(Micros bound) const;

  /// Latency summary as JSON, field-compatible with
  /// metrics::HistogramSnapshot::ToJson():
  ///   {"count":N,"mean_us":..,"min_us":..,"p50_us":..,"p95_us":..,
  ///    "p99_us":..,"max_us":..}
  std::string JsonSummary() const;

  const std::vector<Micros>& samples() const { return samples_; }

 private:
  // Sorted lazily; kept simple since analysis happens after the run.
  std::vector<Micros> Sorted() const;

  std::vector<Micros> samples_;
};

/// Windowed throughput/RPS accounting over virtual time.
class ThroughputMeter {
 public:
  void Start(Micros now) { started_at_ = now; }
  void Stop(Micros now) { stopped_at_ = now; }

  void RecordOp(std::size_t bytes) {
    ++ops_;
    bytes_ += bytes;
  }
  void RecordFailure() { ++failures_; }

  std::size_t ops() const { return ops_; }
  std::size_t failures() const { return failures_; }
  std::size_t bytes() const { return bytes_; }

  double ElapsedSeconds() const {
    return static_cast<double>(stopped_at_ - started_at_) / kMicrosPerSecond;
  }
  /// Successful requests per second.
  double Rps() const;
  /// Payload megabytes per second (the paper's MB/s axis).
  double ThroughputMBps() const;

 private:
  Micros started_at_ = 0;
  Micros stopped_at_ = 0;
  std::size_t ops_ = 0;
  std::size_t failures_ = 0;
  std::size_t bytes_ = 0;
};

/// One row of a printed results table; benches use this to emit uniform,
/// grep-friendly output.
std::string FormatRow(const std::vector<std::string>& cells, int width = 14);

}  // namespace hotman::workload

#endif  // HOTMAN_WORKLOAD_METRICS_H_
